#!/usr/bin/env python
"""Oversubscribed leaf–spine fabrics: when the bottleneck leaves the host.

The paper's evaluation assumes a non-blocking big switch; the topology
subsystem lifts that assumption. This example:

* builds one workload and runs Saath and UC-TCP on three fabrics — the big
  switch, a 1:1 leaf–spine and a 4:1 oversubscribed leaf–spine,
* shows how a degraded spine downlink (a LinkDegradation dynamics event on
  a *core* link, impossible to express before) stretches completion times,
* prints which core links the ECMP path selector assigned to cross-rack
  pairs.

Expected output: the 1:1 leaf–spine tracks the big switch closely (only
ECMP hash collisions separate them), while the 4:1 fabric slows every
policy down by roughly the oversubscription pressure on its cross-rack
traffic — sweep `saath-repro run-experiment fig-oversub` for the full
policy × ratio picture.
"""

import numpy as np

from repro import SimulationConfig, clone_coflows, make_scheduler, run_policy
from repro.simulator.dynamics import LinkDegradation, LinkRecovery
from repro.simulator.topology import LeafSpineTopology, PathMap
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


def mean_cct(result) -> float:
    return float(np.mean([c.cct() for c in result.coflows]))


def main() -> None:
    spec = fb_like_spec(num_machines=16, num_coflows=40)
    fabric = spec.make_fabric()
    workload = WorkloadGenerator(spec, seed=11).generate_coflows(fabric)
    config = SimulationConfig()

    fabrics = {
        "big-switch": None,
        "leaf-spine 1:1": LeafSpineTopology(
            fabric, racks=4, spines=2, oversub=1.0
        ),
        "leaf-spine 4:1": LeafSpineTopology(
            fabric, racks=4, spines=2, oversub=4.0
        ),
    }

    print(f"workload: {len(workload)} coflows on {fabric.num_machines} "
          f"machines (4 racks x 4 hosts, 2 spines)\n")
    print(f"{'fabric':>16} {'saath mean CCT':>15} {'uc-tcp mean CCT':>16}")
    means = {}
    for label, topology in fabrics.items():
        row = []
        for policy in ("saath", "uc-tcp"):
            result = run_policy(
                make_scheduler(policy, config), clone_coflows(workload),
                fabric, config, topology=topology,
            )
            means[(label, policy)] = mean_cct(result)
            row.append(means[(label, policy)])
        print(f"{label:>16} {row[0]:>15.3f} {row[1]:>16.3f}")

    slow_saath = means[("leaf-spine 4:1", "saath")] / means[
        ("big-switch", "saath")]
    slow_uctcp = means[("leaf-spine 4:1", "uc-tcp")] / means[
        ("big-switch", "uc-tcp")]
    print(f"\n4:1 oversubscription slowdown: saath {slow_saath:.2f}x, "
          f"uc-tcp {slow_uctcp:.2f}x")

    # ---- a core-link incident -------------------------------------------
    # Under per-flow fair sharing the mapping from lost capacity to lost
    # throughput is direct, which makes UC-TCP the clean lens for a fault:
    # one spine downlink runs at 10% for the first 5 seconds.
    topo = fabrics["leaf-spine 4:1"]
    victim = topo.downlink(0, 0)
    incident = [
        LinkDegradation(time=0.0, link=victim, factor=0.1),
        LinkRecovery(time=5.0, link=victim),
    ]
    degraded = run_policy(
        make_scheduler("uc-tcp", config), clone_coflows(workload), fabric,
        config, topology=topo, dynamics=incident,
    )
    print(f"\ncore-link incident: {topo.link_name(victim)} at 10% capacity "
          f"for 5 s (uc-tcp)")
    print(f"  mean CCT {means[('leaf-spine 4:1', 'uc-tcp')]:.3f} s -> "
          f"{mean_cct(degraded):.3f} s")

    # ---- where did the paths go? ----------------------------------------
    pmap = PathMap(topo, "ecmp")
    print("\nECMP spine choices for a few cross-rack pairs:")
    for src, dst_machine in ((0, 5), (1, 9), (2, 13)):
        links = pmap.extra_links(src, dst_machine + fabric.num_machines)
        names = ", ".join(topo.link_name(link) for link in links)
        print(f"  machine {src} -> machine {dst_machine}: {names}")


if __name__ == "__main__":
    main()
