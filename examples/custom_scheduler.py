#!/usr/bin/env python
"""Extending the library: write and register a custom coflow scheduler.

Implements "Widest-CoFlow-First" — an intentionally naive policy that
admits coflows all-or-none in *decreasing* width order — registers it under
a new policy name, and races it against Saath and Aalo on the same
workload. The point is the extension surface:

* subclass :class:`repro.Scheduler` and implement ``schedule``,
* reuse the building blocks (``PortLedger`` via ``state.make_ledger()``,
  the rate helpers in ``repro.simulator.ratealloc``),
* call :func:`repro.register_policy` so the CLI, experiments and the rest
  of the harness can refer to it by name.
"""

import numpy as np

from repro import (
    Allocation,
    Scheduler,
    SimulationConfig,
    clone_coflows,
    make_scheduler,
    register_policy,
    run_policy,
)
from repro.analysis.metrics import per_coflow_speedups
from repro.simulator.ratealloc import equal_rate_for_coflow, greedy_residual_rates
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


class WidestCoflowFirst(Scheduler):
    """All-or-none admission in decreasing width order (a bad idea)."""

    name = "widest-first"
    clairvoyant = False

    def schedule(self, state, now):
        ledger = state.make_ledger()
        allocation = Allocation()
        order = sorted(
            state.active_coflows,
            key=lambda c: (-c.width, c.arrival_time, c.coflow_id),
        )
        missed = []
        for coflow in order:
            flows = state.schedulable_flows(coflow, now)
            if not flows:
                continue
            ports = {p for f in flows for p in (f.src, f.dst)}
            if all(ledger.has_capacity(p, self.config.min_rate)
                   for p in ports):
                rates = equal_rate_for_coflow(coflow, ledger, flows=flows)
                if rates:
                    allocation.rates.update(rates)
                    allocation.scheduled_coflows.add(coflow.coflow_id)
                    continue
            missed.append(coflow)
        leftovers = [
            f for c in missed for f in state.schedulable_flows(c, now)
        ]
        allocation.rates.update(greedy_residual_rates(leftovers, ledger))
        return allocation


def main() -> None:
    register_policy(WidestCoflowFirst.name, WidestCoflowFirst)

    spec = fb_like_spec(num_machines=20, num_coflows=50)
    fabric = spec.make_fabric()
    workload = WorkloadGenerator(spec, seed=11).generate_coflows(fabric)
    config = SimulationConfig()

    ccts = {}
    for policy in ("aalo", "saath", "widest-first"):
        result = run_policy(
            make_scheduler(policy, config), clone_coflows(workload),
            fabric, config,
        )
        ccts[policy] = result.ccts()
        print(f"{policy:>14}: average CCT "
              f"{np.mean(list(ccts[policy].values())):.3f} s")

    for policy in ("saath", "widest-first"):
        sp = np.array(list(
            per_coflow_speedups(ccts["aalo"], ccts[policy]).values()
        ))
        print(f"\n{policy} vs aalo: median {np.median(sp):.2f}x, "
              f"P90 {np.percentile(sp, 90):.2f}x")
    print("\n(widest-first is deliberately terrible — scheduling the most "
          "contended\ncoflows first maximises blocking, the exact opposite "
          "of LCoF.)")


if __name__ == "__main__":
    main()
