#!/usr/bin/env python
"""Observability: trace, meter and phase-profile one run end to end.

Runs the same small FB-like workload under Saath three ways:

1. **bare** — no instrumentation (the production configuration: every
   hook is a single attribute check),
2. **traced** — a jsonl :class:`~repro.observability.Tracer`, a
   :class:`~repro.observability.MetricsRegistry` and
   :class:`~repro.observability.PhaseTimers` all attached,
3. **chrome** — the same run again writing a Chrome ``trace_event`` file
   you can open in ``chrome://tracing`` or https://ui.perfetto.dev.

and then proves the layer's core promise: the instrumented results are
**byte-identical** to the bare run — observability reads state, it never
perturbs it. Finally it prints the metric counters (which engine kernels
actually ran, compiled vs Python) and the phase-timer breakdown.

Equivalent CLI::

    saath-repro simulate --policy saath --workload fb --coflows 60 \
        --trace-out run.jsonl --metrics metrics.json
    PYTHONPATH=src python tools/check_trace.py run.jsonl
    PYTHONPATH=src python tools/metrics_report.py metrics.json
"""

import tempfile
from pathlib import Path

from repro import SimulationConfig, clone_coflows, make_scheduler, run_policy
from repro.observability import MetricsRegistry, PhaseTimers, Tracer
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


def main() -> None:
    spec = fb_like_spec(num_machines=20, num_coflows=60)
    fabric = spec.make_fabric()
    workload = WorkloadGenerator(spec, seed=5).generate_coflows(fabric)
    config = SimulationConfig()
    outdir = Path(tempfile.mkdtemp(prefix="traced-run-"))

    # 1. Bare run: the reference bytes.
    bare = run_policy(
        make_scheduler("saath", config), clone_coflows(workload), fabric,
        config,
    )

    # 2. Fully instrumented run (jsonl trace + metrics + phase timers).
    metrics = MetricsRegistry()
    timers = PhaseTimers()
    with Tracer(str(outdir / "run.jsonl"),
                metadata={"policy": "saath", "workload": "fb-like"}) as tracer:
        traced = run_policy(
            make_scheduler("saath", config), clone_coflows(workload), fabric,
            config, tracer=tracer, metrics=metrics, timers=timers,
        )
    print(f"jsonl trace : {tracer.path} ({tracer.events} events)")

    # 3. Same run once more as a Chrome trace_event file.
    with Tracer(str(outdir / "run.trace.json"), format="chrome") as chrome:
        chromed = run_policy(
            make_scheduler("saath", config), clone_coflows(workload), fabric,
            config, tracer=chrome,
        )
    print(f"chrome trace: {chrome.path} (open in chrome://tracing)")

    # The non-perturbation guarantee, checked the way the tests check it.
    assert traced.ccts() == bare.ccts()
    assert chromed.ccts() == bare.ccts()
    assert traced.makespan == bare.makespan
    print("instrumented runs are byte-identical to the bare run\n")

    print("selected metrics:")
    for name in sorted(metrics.counters):
        if name.startswith(("kernel.", "session.", "coflows.", "flows.")):
            print(f"  {name:<40s} {metrics.counters[name]:>10.0f}")
    metrics.save(str(outdir / "metrics.json"))
    print(f"\nfull registry saved to {outdir / 'metrics.json'}")
    print("render it with: PYTHONPATH=src python tools/metrics_report.py "
          f"{outdir / 'metrics.json'}\n")

    print(timers.report())


if __name__ == "__main__":
    main()
