#!/usr/bin/env python
"""Multi-stage analytics query as a CoFlow DAG (§4.3).

Models a Hive-style query: two parallel map/shuffle branches feed a final
join stage, and the join runs in two waves (a chain). Each stage is one
coflow; the engine releases a stage when its parents complete, exactly as
Saath's DAG representation prescribes ("one CoFlow for every stage").

Prints the per-stage timeline and the critical path, then compares the
end-to-end query time under Saath vs Aalo while a background workload
congests the cluster.
"""

from repro import Fabric, SimulationConfig, clone_coflows, gbps, make_coflow, mb
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import run_policy
from repro.workloads.dag import chain_stages, critical_path_stages, fan_in_stages


def build_query(fabric: Fabric):
    """Branch A (ids 0), branch B (1), join stage (2), second wave (3)."""
    rcv = fabric.receiver_port
    stages = fan_in_stages(
        0, 0.0,
        branch_transfers=[
            [(0, rcv(4), mb(200)), (1, rcv(5), mb(200))],  # branch A
            [(2, rcv(6), mb(400))],  # branch B (the straggler branch)
        ],
        final_transfers=[(4, rcv(7), mb(150)), (5, rcv(7), mb(150))],
        flow_id_start=0,
        job_id=1,
    )
    # The join's output shuffles again in a second wave.
    wave2 = chain_stages(
        3, 0.0,
        [[(7, rcv(0), mb(100))]],
        flow_id_start=100,
        job_id=1,
    )
    wave2[0].depends_on = (2,)
    return stages + wave2


def build_background(fabric: Fabric):
    """Competing single-stage coflows that keep the ports busy."""
    rcv = fabric.receiver_port
    return [
        make_coflow(10 + i, 0.05 * i,
                    [(i % 3, rcv(4 + i % 3), mb(80))],
                    flow_id_start=1000 + 10 * i)
        for i in range(8)
    ]


def main() -> None:
    fabric = Fabric(num_machines=8, port_rate=gbps(1))
    config = SimulationConfig()
    query = build_query(fabric)
    workload = query + build_background(fabric)

    print("critical path (stage ids):",
          " -> ".join(map(str, critical_path_stages(query))))
    print()

    for policy in ("aalo", "saath"):
        result = run_policy(
            make_scheduler(policy, config), clone_coflows(workload),
            fabric, config,
        )
        print(f"[{policy}] per-stage completion:")
        for stage_id in (0, 1, 2, 3):
            stage = result.coflow(stage_id)
            print(f"  stage {stage_id}: released {stage.arrival_time * 1e3:7.1f} ms, "
                  f"finished {stage.finish_time * 1e3:7.1f} ms "
                  f"(CCT {stage.cct() * 1e3:6.1f} ms)")
        query_done = result.coflow(3).finish_time
        print(f"  => query completes at {query_done * 1e3:.1f} ms\n")


if __name__ == "__main__":
    main()
