#!/usr/bin/env python
"""Quickstart: compare Saath and Aalo on a small synthetic cluster.

The 60-second tour of the public API:

* build a workload (here: a seeded FB-like synthetic trace on 20 machines),
* run two registered scheduling policies on identical copies,
* compare per-coflow completion times.

Saath's gains are statistical — it wins on workloads with mixed coflow
sizes and real port contention (tiny symmetric toys can tie or even favour
FIFO). This example uses 50 coflows so the distribution is visible.
"""

import numpy as np

from repro import SimulationConfig, clone_coflows, make_scheduler, run_policy
from repro.analysis.metrics import per_coflow_speedups
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


def main() -> None:
    spec = fb_like_spec(num_machines=20, num_coflows=50)
    fabric = spec.make_fabric()
    workload = WorkloadGenerator(spec, seed=7).generate_coflows(fabric)
    config = SimulationConfig()

    results = {}
    for policy in ("aalo", "saath"):
        scheduler = make_scheduler(policy, config)
        results[policy] = run_policy(
            scheduler, clone_coflows(workload), fabric, config
        )

    speedups = per_coflow_speedups(
        results["aalo"].ccts(), results["saath"].ccts()
    )
    values = np.array(list(speedups.values()))

    print(f"workload: {len(workload)} coflows on {fabric.num_machines} "
          f"machines\n")
    print(f"{'policy':>8} {'avg CCT (s)':>12} {'P50 CCT (s)':>12}")
    for policy, result in results.items():
        ccts = np.array([c.cct() for c in result.coflows])
        print(f"{policy:>8} {ccts.mean():>12.3f} {np.median(ccts):>12.3f}")

    print(f"\nper-coflow speedup of Saath over Aalo:")
    print(f"  median {np.median(values):.2f}x   "
          f"P90 {np.percentile(values, 90):.2f}x   "
          f"improved {np.mean(values > 1.001) * 100:.0f}% of coflows")

    slowest = max(speedups, key=speedups.get)
    print(f"\nbiggest win: coflow {slowest} "
          f"({results['aalo'].cct(slowest):.3f} s under Aalo -> "
          f"{results['saath'].cct(slowest):.3f} s under Saath)")


if __name__ == "__main__":
    main()
