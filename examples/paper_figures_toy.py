#!/usr/bin/env python
"""Replay the paper's hand-worked figures (Fig. 1, 4, 5, 8, 17).

Each scenario from :mod:`repro.experiments.toy` is executed under the
schedulers the figure discusses and the resulting CCTs are printed in the
figure's own time unit ``t`` (1 second here), next to the values the paper
derives. Useful both as documentation and as a sanity harness for the
scheduler implementations.
"""

from repro.config import QueueConfig, SimulationConfig
from repro.experiments.toy import ALL_SCENARIOS, PORT_RATE, UNIT_BYTES
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import run_policy
from repro.simulator.flows import clone_coflows

#: Keep every toy coflow inside the first priority queue so the figures'
#: single-queue reasoning applies (thresholds play no role in them).
CONFIG = SimulationConfig(
    port_rate=PORT_RATE,
    queues=QueueConfig(num_queues=6, start_threshold=100 * UNIT_BYTES,
                       growth_factor=10.0),
    min_rate=1e-3,
)

POLICIES = ("aalo", "saath", "saath-no-wc", "lwtf")


def main() -> None:
    for name, builder in ALL_SCENARIOS.items():
        scenario = builder()
        print(f"== {name}: {builder.__doc__.strip().splitlines()[0]}")
        for policy in POLICIES:
            result = run_policy(
                make_scheduler(policy, CONFIG),
                clone_coflows(scenario.coflows),
                scenario.fabric,
                CONFIG,
            )
            ccts = {
                c.coflow_id: result.cct(c.coflow_id) / (UNIT_BYTES / PORT_RATE)
                for c in scenario.coflows
            }
            cct_str = "  ".join(
                f"C{cid}={cct:.2f}t" for cid, cct in sorted(ccts.items())
            )
            avg = sum(ccts.values()) / len(ccts)
            print(f"  {policy:>12}: {cct_str}  (avg {avg:.2f}t)")
        if scenario.paper_ccts:
            for label, values in scenario.paper_ccts.items():
                avg = sum(values.values()) / len(values)
                paper_str = "  ".join(
                    f"C{cid}={v:.2f}t" for cid, v in sorted(values.items())
                )
                print(f"  {'paper ' + label:>12}: {paper_str}  (avg {avg:.2f}t)")
        print()


if __name__ == "__main__":
    main()
