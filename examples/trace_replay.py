#!/usr/bin/env python
"""Replay an FB-like synthetic trace under every registered policy.

Demonstrates the workload pipeline the paper's §6 evaluation uses:

1. generate (or load) a coflow-benchmark trace,
2. expand it to simulator coflows on a big-switch fabric,
3. replay under each scheduling policy,
4. report the per-coflow speedup of Saath over each baseline.

To replay the *real* Facebook trace instead, download ``FB2010-1Hr-150-0.txt``
from github.com/coflow/coflow-benchmark and pass it as argv[1].
"""

import sys

import numpy as np

from repro import Fabric, SimulationConfig, clone_coflows, make_scheduler, run_policy
from repro.analysis.metrics import per_coflow_speedups
from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator
from repro.workloads.traces import load_trace, trace_to_coflows

POLICIES = ("aalo", "varys-sebf", "uc-tcp", "saath")


def load_workload(path: str | None):
    config = SimulationConfig()
    if path:
        trace = load_trace(path)
        fabric = Fabric(num_machines=trace.num_ports,
                        port_rate=config.port_rate)
        return fabric, trace_to_coflows(trace, fabric)
    spec = fb_like_spec(num_machines=40, num_coflows=120)
    fabric = spec.make_fabric()
    return fabric, WorkloadGenerator(spec, seed=42).generate_coflows(fabric)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else None
    fabric, workload = load_workload(path)
    print(f"workload: {len(workload)} coflows, "
          f"{sum(c.width for c in workload)} flows, "
          f"{fabric.num_machines} machines\n")

    config = SimulationConfig()
    ccts = {}
    for policy in POLICIES:
        result = run_policy(
            make_scheduler(policy, config), clone_coflows(workload),
            fabric, config,
        )
        ccts[policy] = result.ccts()
        print(f"{policy:>12}: average CCT {result.average_cct():.3f} s "
              f"({result.reschedules} schedule rounds)")

    print("\nSaath speedup (median [p10, p90]):")
    for baseline in POLICIES:
        if baseline == "saath":
            continue
        sp = np.array(list(
            per_coflow_speedups(ccts[baseline], ccts["saath"]).values()
        ))
        print(f"  over {baseline:>12}: {np.median(sp):6.2f}x "
              f"[{np.percentile(sp, 10):.2f}, {np.percentile(sp, 90):.2f}]")


if __name__ == "__main__":
    main()
