#!/usr/bin/env python
"""Collective training jobs as coflow DAGs, with a straggling worker.

Builds a ring all-reduce training job (three iterations with a compute
gap between them), runs it under Saath and Aalo, and reports the
per-iteration time — the metric a training cluster actually cares about.
Then a `StragglerEvent` slows one worker to 25% mid-run and a recovery
lifts it, showing how a single slow sender stretches every iteration it
touches and only those.

Also contrasts packed vs spread placement on an oversubscribed
leaf-spine fabric: packed keeps the ring rack-local, spread drags every
ring step through the 4:1 core.
"""

from repro import Fabric, SimulationConfig, clone_coflows, gbps, mb
from repro.schedulers.registry import make_scheduler
from repro.simulator.dynamics import StragglerEvent
from repro.simulator.engine import run_policy
from repro.simulator.topology import TopologySpec
from repro.workloads.collectives import (
    iteration_times,
    place_workers,
    training_job,
)


def main() -> None:
    fabric = Fabric(num_machines=8, port_rate=gbps(1))
    workers = [0, 1, 2, 3]

    def make_job():
        return training_job(
            "ring", 3, fabric=fabric, workers=workers, volume=mb(256),
            compute_gap=0.2,
        )

    print("== ring all-reduce, 4 workers x 3 iterations, 256 MB/round ==")
    config = SimulationConfig()
    for policy in ("saath", "aalo"):
        job = make_job()
        result = run_policy(
            make_scheduler(policy, config), clone_coflows(job.coflows),
            fabric, config,
        )
        times = iteration_times(job, result.ccts())
        rendered = ", ".join(f"{t:.3f}" for t in times)
        print(f"  {policy:>6}: per-iteration times = [{rendered}] s")

    print("\n== worker 2 drops to 25% speed at t=1.5s, recovers at t=4s ==")
    job = make_job()
    dynamics = [
        StragglerEvent(time=1.5, worker=2, efficiency=0.25),
        StragglerEvent(time=4.0, worker=2, efficiency=1.0),
    ]
    result = run_policy(
        make_scheduler("saath", config), clone_coflows(job.coflows),
        fabric, config, dynamics=dynamics,
    )
    times = iteration_times(job, result.ccts())
    rendered = ", ".join(f"{t:.3f}" for t in times)
    print(f"   saath: per-iteration times = [{rendered}] s "
          "(only the iteration overlapping the slow window stretches)")

    print("\n== placement on a 4:1 oversubscribed leaf-spine (2 racks) ==")
    topo_spec = TopologySpec(kind="leaf-spine", racks=2, oversub=4.0)
    for placement in ("packed", "spread"):
        placed = place_workers(4, fabric, racks=2, placement=placement)
        job = training_job("ring", 1, fabric=fabric, workers=placed,
                           volume=mb(256))
        result = run_policy(
            make_scheduler("saath", config), clone_coflows(job.coflows),
            fabric, config, topology=topo_spec.build(fabric),
        )
        total = sum(iteration_times(job, result.ccts()))
        print(f"  {placement:>6} on machines {placed}: "
              f"all-reduce time = {total:.3f} s")


if __name__ == "__main__":
    main()
