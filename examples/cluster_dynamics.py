#!/usr/bin/env python
"""Stragglers, failures, and Saath's SRTF-approximation rescue (§4.3).

Injects a straggling flow into a wide coflow while rival coflows stream in.
Without the §4.3 promotion rule, the straggling coflow sinks down the
priority queues and keeps losing to fresh arrivals; with promotion enabled,
the coordinator estimates its tiny remaining work from the flows that
already finished and lifts it back into a high-priority queue.

Also demonstrates failure injection (a flow restart losing its progress)
and port degradation (a congested link at half capacity).
"""

from repro import Fabric, SimulationConfig, clone_coflows, gbps, make_coflow, mb
from repro.rng import make_rng
from repro.schedulers.registry import make_scheduler
from repro.simulator.dynamics import (
    FlowRestart,
    FlowSlowdown,
    PortDegradation,
    inject_stragglers,
)
from repro.simulator.engine import run_policy


def straggler_scenario(fabric: Fabric):
    """A wide coflow with one straggling flow, racing fresh arrivals.

    The victim has four 200 MB flows; three finish on time, the fourth
    (on sender 3) runs at 90% speed. By total progress the victim sits deep
    in queue 2 (~800 MB sent), but its *remaining* work is a few tens of
    MB — the §4.3 estimate places it in queue 1, above the 60 MB rivals'
    queue position, so promotion lets it finish ahead of them.
    """
    rcv = fabric.receiver_port
    victim = make_coflow(
        0, 0.0,
        [(0, rcv(4), mb(200)), (1, rcv(5), mb(200)),
         (2, rcv(6), mb(200)), (3, rcv(7), mb(200))],
        flow_id_start=0,
    )
    rivals = [
        make_coflow(1 + i, 1.70 + 0.05 * i, [(3, rcv(1), mb(60))],
                    flow_id_start=100 + 10 * i)
        for i in range(6)
    ]
    # Flow 3 (sender 3) runs slightly slow: a classic straggler. When the
    # rivals arrive it has ~9 MB left; remaining x width = 36 MB puts the
    # promoted victim in queue 1, while its 800 MB of total progress pins
    # the unpromoted victim in queue 2 behind every rival.
    dynamics = [FlowSlowdown(time=0.0, flow_id=3, efficiency=0.9)]
    return [victim, *rivals], dynamics


def main() -> None:
    fabric = Fabric(num_machines=8, port_rate=gbps(1))
    workload, dynamics = straggler_scenario(fabric)

    print("== straggler rescue (victim coflow 0, one flow at 90% speed) ==")
    for promotion in (False, True):
        config = SimulationConfig(enable_dynamics_promotion=promotion)
        result = run_policy(
            make_scheduler("saath", config), clone_coflows(workload),
            fabric, config, dynamics=list(dynamics),
        )
        label = "with §4.3 promotion" if promotion else "without promotion"
        print(f"  {label:>24}: victim CCT = {result.cct(0):.3f} s, "
              f"avg CCT = {result.average_cct():.3f} s")

    print("\n== failure: flow restart at t=1s loses all progress ==")
    config = SimulationConfig()
    c = make_coflow(0, 0.0, [(0, fabric.receiver_port(3), mb(200))])
    result = run_policy(
        make_scheduler("saath", config), [c], fabric, config,
        dynamics=[FlowRestart(time=1.0, flow_id=0)],
    )
    print(f"  CCT with restart: {result.cct(0):.3f} s "
          f"(no-failure baseline: {mb(200) / gbps(1):.3f} s)")

    print("\n== degraded link: sender port 0 at 50% capacity ==")
    c = make_coflow(0, 0.0, [(0, fabric.receiver_port(3), mb(200))])
    result = run_policy(
        make_scheduler("saath", config), [c], fabric, config,
        dynamics=[PortDegradation(time=0.0, port=0, factor=0.5)],
    )
    print(f"  CCT on degraded link: {result.cct(0):.3f} s")

    print("\n== random straggler injection over a synthetic workload ==")
    from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

    spec = fb_like_spec(num_machines=20, num_coflows=40)
    coflows = WorkloadGenerator(spec, seed=3).generate_coflows()
    actions = inject_stragglers(coflows, make_rng(3), fraction=0.05,
                                efficiency=0.3)
    config = SimulationConfig(enable_dynamics_promotion=True)
    result = run_policy(
        make_scheduler("saath", config), coflows, spec.make_fabric(),
        config, dynamics=actions,
    )
    print(f"  {len(actions)} stragglers injected; "
          f"all {len(result.coflows)} coflows completed; "
          f"avg CCT = {result.average_cct():.3f} s")


if __name__ == "__main__":
    main()
