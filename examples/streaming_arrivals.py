#!/usr/bin/env python
"""Open-loop streaming workloads: coflows as a lazy, unbounded stream.

The classic entry point materialises every coflow up front — fine for a
526-coflow trace, hopeless for an open-loop "traffic keeps coming" study.
This example drives the scheduler from a *generator*: coflows are created
when their arrival is pulled off the scenario stream and garbage-collected
as soon as they finish (a ``sink`` keeps per-coflow statistics instead of
retaining the objects), so memory tracks the number of *active* coflows,
not the length of the experiment.

Also shown: pausing the live session mid-stream with ``run_until``, forking
it with ``snapshot()``/``restore()``, and running a what-if branch under a
different policy from the identical mid-run state — the workload prefix,
in-flight flows, and queue bookkeeping all carry over.
"""

import resource

from repro import Scenario, SimulationConfig, SimulationSession, make_scheduler
from repro.workloads.synthetic import fb_like_spec, stream_poisson_coflows

NUM_COFLOWS = 1200
RATE_PER_SEC = 8.0  # open-loop arrival rate (coflows/second)


def main() -> None:
    spec = fb_like_spec(num_machines=16, num_coflows=NUM_COFLOWS)
    fabric = spec.make_fabric()
    config = SimulationConfig()

    # A zero-argument factory makes the stream *replayable*: sessions over
    # it can be snapshotted, and every replay regenerates the identical
    # coflows from the seed.
    def arrivals():
        return stream_poisson_coflows(
            spec, rate_per_sec=RATE_PER_SEC, num_coflows=NUM_COFLOWS,
            seed=42, fabric=fabric,
        )

    scenario = Scenario.from_stream(arrivals, total_coflows=NUM_COFLOWS)

    # Online statistics via the sink: finished coflows are *not* retained.
    ccts: list[float] = []
    peak_active = 0

    session = SimulationSession(
        fabric, make_scheduler("saath", config), config,
        scenario=scenario, sink=lambda c: ccts.append(c.cct()),
    )

    # Drive the stream in slices, watching the active set stay small.
    horizon = NUM_COFLOWS / RATE_PER_SEC
    checkpoint = None
    t = 0.0
    while not session.done:
        t += horizon / 8
        session.run_until(t)
        active = len(session.state.active_coflows)
        peak_active = max(peak_active, active)
        if checkpoint is None and len(ccts) > NUM_COFLOWS // 2:
            checkpoint = session.snapshot()  # mid-stream fork point
        print(f"  t={session.now:8.2f}s  finished={len(ccts):5d}  "
              f"active={active:3d}")

    ccts.sort()
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"\nstreamed {len(ccts)} coflows, peak active {peak_active} "
          f"(peak RSS {rss_mb:.0f} MB)")
    print(f"CCT p50 {ccts[len(ccts) // 2]:.3f}s  "
          f"p90 {ccts[int(len(ccts) * 0.9)]:.3f}s")

    # What-if: replay the identical second half under another policy from
    # the checkpoint. Each branch shares the donor's entire past — flow
    # table, in-flight bytes, queue state — and diverges only in policy.
    print("\nwhat-if fork at the checkpoint (same half-done cluster):")
    for policy in ("saath", "uc-tcp"):
        branch_ccts: list[float] = []
        swap = None if policy == "saath" else make_scheduler(policy, config)
        branch = SimulationSession.restore(
            checkpoint, scheduler=swap,
            sink=lambda c: branch_ccts.append(c.cct()),
        )
        branch.run()
        branch_ccts.sort()
        print(f"  {policy:>8}: finishes the remaining "
              f"{len(branch_ccts):4d} coflows, tail CCT p50 "
              f"{branch_ccts[len(branch_ccts) // 2]:.3f}s")


if __name__ == "__main__":
    main()
