#!/usr/bin/env python
"""Telemetry: look inside a run — utilisation, queues, work conservation.

Attaches a :class:`~repro.analysis.telemetry.TelemetryRecorder` to two runs
of the same workload (Saath vs Aalo) and prints the signals the paper
reasons about:

* mean sender-port utilisation (work conservation keeps Saath's ports busy
  despite all-or-none — the Fig. 4 discussion),
* peak concurrent coflows (queue backlog),
* how often work conservation kicked in,
* the queue-population profile over time.
"""

import numpy as np

from repro import SimulationConfig, clone_coflows, make_scheduler, run_policy
from repro.analysis.telemetry import TelemetryRecorder
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


def main() -> None:
    spec = fb_like_spec(num_machines=20, num_coflows=60)
    fabric = spec.make_fabric()
    workload = WorkloadGenerator(spec, seed=5).generate_coflows(fabric)
    config = SimulationConfig()
    senders = [fabric.sender_port(m) for m in range(fabric.num_machines)]

    for policy in ("aalo", "saath"):
        recorder = TelemetryRecorder()
        result = run_policy(
            make_scheduler(policy, config), clone_coflows(workload),
            fabric, config, observer=recorder,
        )
        util = recorder.mean_utilisation(senders, fabric.port_rate)
        print(f"[{policy}]")
        print(f"  avg CCT                 : {result.average_cct():.3f} s")
        print(f"  mean sender utilisation : {util * 100:.1f}%")
        print(f"  peak concurrent coflows : {recorder.peak_active_coflows()}")
        print(f"  schedule rounds         : {len(recorder.samples)}")
        if policy == "saath":
            print(f"  rounds w/ work conserv. : "
                  f"{recorder.work_conservation_fraction() * 100:.1f}%")
        # Queue population profile: time-mean coflows resident per queue.
        for q in range(4):
            series = recorder.queue_population_series(q)
            if series.max() > 0:
                print(f"  queue {q}: mean {series.mean():.1f}, "
                      f"peak {series.max()} resident coflows")
        print()


if __name__ == "__main__":
    main()
