"""Cross-module integration scenarios.

Each test exercises several subsystems together the way a downstream user
would: trace files through the CLI-level pipeline, DAG jobs under sync-mode
coordination with dynamics, determinism of entire experiment runs, and the
policy-comparison workflow end to end.
"""

import pytest

from repro import (
    Fabric,
    SimulationConfig,
    clone_coflows,
    make_scheduler,
    run_policy,
)
from repro.analysis.metrics import per_coflow_speedups
from repro.analysis.outofsync import out_of_sync_profile
from repro.analysis.telemetry import TelemetryRecorder
from repro.config import PAPER_SYNC_INTERVAL
from repro.rng import make_rng
from repro.simulator.dynamics import inject_failures, inject_stragglers
from repro.workloads.dag import chain_stages, fan_in_stages
from repro.workloads.synthetic import (
    WorkloadGenerator,
    fb_like_spec,
    generate_fb_like,
)
from repro.workloads.traces import (
    dump_trace,
    load_trace,
    save_trace,
    trace_to_coflows,
)


class TestTracePipeline:
    """Generate -> save -> load -> simulate, as a user would."""

    def test_file_round_trip_preserves_simulation(self, tmp_path):
        spec = fb_like_spec(num_machines=15, num_coflows=25)
        gen = WorkloadGenerator(spec, seed=21)
        trace = gen.generate_trace()
        path = tmp_path / "workload.txt"
        save_trace(trace, path)

        fabric = spec.make_fabric()
        cfg = SimulationConfig()
        direct = run_policy(
            make_scheduler("saath", cfg),
            trace_to_coflows(trace, fabric), fabric, cfg,
        )
        reloaded = run_policy(
            make_scheduler("saath", cfg),
            trace_to_coflows(load_trace(path), fabric), fabric, cfg,
        )
        for cid, cct in direct.ccts().items():
            assert reloaded.cct(cid) == pytest.approx(cct)


class TestDeterminism:
    def test_full_run_is_bit_deterministic(self):
        fabric, coflows = generate_fb_like(seed=33, num_machines=15,
                                           num_coflows=30)
        cfg = SimulationConfig()
        first = run_policy(make_scheduler("saath", cfg),
                           clone_coflows(coflows), fabric, cfg)
        second = run_policy(make_scheduler("saath", cfg),
                            clone_coflows(coflows), fabric, cfg)
        assert first.ccts() == second.ccts()
        assert first.reschedules == second.reschedules

    def test_policies_do_not_mutate_source_workload(self):
        fabric, coflows = generate_fb_like(seed=34, num_machines=12,
                                           num_coflows=15)
        cfg = SimulationConfig()
        run_policy(make_scheduler("aalo", cfg), clone_coflows(coflows),
                   fabric, cfg)
        assert all(f.bytes_sent == 0.0 for c in coflows for f in c.flows)
        assert all(c.finish_time is None for c in coflows)


class TestDagUnderRealConditions:
    def test_dag_with_sync_mode_and_stragglers(self):
        """A fan-in query survives δ-staleness plus injected stragglers."""
        fabric = Fabric(num_machines=8, port_rate=1e8)
        cfg = SimulationConfig(
            port_rate=1e8,
            sync_interval=PAPER_SYNC_INTERVAL,
            enable_dynamics_promotion=True,
        )
        rcv = fabric.receiver_port
        stages = fan_in_stages(
            0, 0.0,
            [
                [(0, rcv(3), 5e7), (1, rcv(4), 5e7)],
                [(2, rcv(5), 8e7)],
            ],
            [(3, rcv(6), 4e7)],
        )
        stragglers = inject_stragglers(stages, make_rng(2), fraction=0.2,
                                       efficiency=0.5)
        res = run_policy(make_scheduler("saath", cfg), stages, fabric, cfg,
                         dynamics=stragglers)
        final = res.coflow(len(stages) - 1)
        # Final stage released only after both branches.
        for branch_id in (0, 1):
            assert final.arrival_time >= res.coflow(branch_id).finish_time - 1e-9

    def test_two_jobs_of_chained_waves_interleave(self):
        fabric = Fabric(num_machines=6, port_rate=1e8)
        cfg = SimulationConfig(port_rate=1e8)
        rcv = fabric.receiver_port
        job_a = chain_stages(0, 0.0, [[(0, rcv(3), 5e7)], [(1, rcv(4), 5e7)]],
                             flow_id_start=0, job_id=1)
        job_b = chain_stages(10, 0.0, [[(0, rcv(4), 5e7)], [(2, rcv(5), 5e7)]],
                             flow_id_start=100, job_id=2)
        res = run_policy(make_scheduler("saath", cfg), job_a + job_b,
                         fabric, cfg)
        assert len(res.coflows) == 4
        # Both jobs' second waves complete after their first waves.
        assert res.coflow(1).finish_time > res.coflow(0).finish_time
        assert res.coflow(11).finish_time > res.coflow(10).finish_time


class TestFullComparisonWorkflow:
    """The Fig. 9-style end-to-end workflow on one small workload."""

    @pytest.fixture(scope="class")
    def outcome(self):
        fabric, coflows = generate_fb_like(seed=55, num_machines=20,
                                           num_coflows=50)
        cfg = SimulationConfig()
        ccts = {}
        for policy in ("aalo", "saath", "varys-sebf"):
            ccts[policy] = run_policy(
                make_scheduler(policy, cfg), clone_coflows(coflows),
                fabric, cfg,
            ).ccts()
        return coflows, ccts

    def test_all_policies_complete_everything(self, outcome):
        coflows, ccts = outcome
        for policy, values in ccts.items():
            assert len(values) == len(coflows)

    def test_saath_beats_aalo_in_median(self, outcome):
        import numpy as np

        _, ccts = outcome
        sp = list(per_coflow_speedups(ccts["aalo"], ccts["saath"]).values())
        assert float(np.median(sp)) > 1.0

    def test_offline_sebf_at_least_matches_online(self, outcome):
        import numpy as np

        _, ccts = outcome
        assert (np.mean(list(ccts["varys-sebf"].values()))
                <= np.mean(list(ccts["saath"].values())) * 1.1)


class TestTelemetryAcrossPolicies:
    def test_out_of_sync_and_telemetry_agree_on_saath_effect(self):
        """Fig. 13's metric and telemetry computed from one pair of runs."""
        fabric, coflows = generate_fb_like(seed=77, num_machines=15,
                                           num_coflows=30)
        cfg = SimulationConfig()
        profiles = {}
        recorders = {}
        for policy in ("aalo", "saath"):
            recorders[policy] = TelemetryRecorder()
            result = run_policy(
                make_scheduler(policy, cfg), clone_coflows(coflows),
                fabric, cfg, observer=recorders[policy],
            )
            profiles[policy] = out_of_sync_profile(result.coflows)
        # Saath keeps equal-length coflows tighter...
        if profiles["aalo"].equal_length and profiles["saath"].equal_length:
            import numpy as np

            assert (np.median(profiles["saath"].equal_length)
                    <= np.median(profiles["aalo"].equal_length) + 1e-9)
        # ...and its backlog (peak active coflows) is no worse.
        assert (recorders["saath"].peak_active_coflows()
                <= recorders["aalo"].peak_active_coflows() + 3)

    def test_failure_injection_with_promotion_full_stack(self):
        fabric, coflows = generate_fb_like(seed=88, num_machines=12,
                                           num_coflows=20)
        failures = inject_failures(coflows, make_rng(88), fraction=0.05)
        cfg = SimulationConfig(enable_dynamics_promotion=True)
        res = run_policy(make_scheduler("saath", cfg), coflows, fabric, cfg,
                         dynamics=failures)
        assert len(res.coflows) == 20
