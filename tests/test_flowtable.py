"""FlowTable unit tests: the struct-of-arrays registry behind the engine.

Covers the index-lifetime rules the hot paths rely on:

* a live flow's row never moves (index stability across other evictions);
* free-list reuse cannot alias a live flow (epoch bump on eviction,
  detached views keep their final values);
* the Flow/CoFlow views and the table columns stay coherent through
  allocation application (``_apply_diff`` writes columns, views read them)
  and through detachment (eviction copies values back).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.schedulers.base import Allocation
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import Simulator
from repro.simulator.fabric import Fabric
from repro.simulator.flows import Flow, make_coflow
from repro.simulator.state import ClusterState, FlowTable


def _coflow(cid, n_flows, *, machines=4, fid_start=0, volume=100.0):
    fabric = Fabric(num_machines=machines, port_rate=1e3)
    rcv = fabric.receiver_port
    return make_coflow(
        cid, 0.0,
        [(i % machines, rcv((i + 1) % machines), volume)
         for i in range(n_flows)],
        flow_id_start=fid_start,
    )


class TestAdoptEvict:
    def test_adopt_copies_state_and_attaches(self):
        table = FlowTable()
        f = Flow(flow_id=5, coflow_id=1, src=0, dst=9, volume=42.0)
        f.bytes_sent = 7.0
        f.rate = 3.0
        row = table.adopt(f, pos=2)
        assert table.flow_id[row] == 5
        assert table.coflow_id[row] == 1
        assert table.src[row] == 0
        assert table.dst[row] == 9
        assert table.volume[row] == 42.0
        assert table.bytes_sent[row] == 7.0
        assert table.rate[row] == 3.0
        assert table.pos[row] == 2
        assert table.view[row] is f
        assert table.row_of[5] == row
        assert len(table) == 1
        # The view now reads/writes the table.
        f.bytes_sent = 11.0
        assert table.bytes_sent[row] == 11.0
        table.bytes_sent[row] = 13.0
        assert f.bytes_sent == 13.0

    def test_evict_detaches_and_preserves_values(self):
        table = FlowTable()
        f = Flow(flow_id=5, coflow_id=1, src=0, dst=9, volume=42.0)
        row = table.adopt(f, pos=0)
        f.bytes_sent = 42.0
        f.rate = 0.0
        f.finish_time = 3.25
        table.evict(row)
        assert table.view[row] is None
        assert 5 not in table.row_of
        assert len(table) == 0
        # Detached view keeps the final values.
        assert f.bytes_sent == 42.0
        assert f.finish_time == 3.25
        assert f.rate == 0.0

    def test_index_stability_across_evictions(self):
        """Evicting one coflow must not move any other coflow's rows."""
        table = FlowTable()
        a = _coflow(1, 3, fid_start=0)
        b = _coflow(2, 3, fid_start=10)
        c = _coflow(3, 3, fid_start=20)
        rows_a = table.adopt_coflow(a)
        rows_b = table.adopt_coflow(b)
        rows_c = table.adopt_coflow(c)
        before_b = list(rows_b)
        before_c = list(rows_c)
        table.evict_coflow(b)  # middle coflow leaves
        assert c._rows == before_c
        for f, row in zip(c.flows, before_c):
            assert table.view[row] is f
            assert f._row == row
        assert a._rows == rows_a
        assert b._rows is None and b._table is None

    def test_free_list_reuse_does_not_alias_live_flows(self):
        """A recycled row serves its new occupant only: the old view stays
        detached with its final state, and the bumped epoch means stale
        (epoch, row) references can never match the new occupant."""
        table = FlowTable()
        old = Flow(flow_id=1, coflow_id=1, src=0, dst=5, volume=10.0)
        row = table.adopt(old, pos=0)
        old.bytes_sent = 10.0
        old.finish_time = 1.0
        epoch_before = table.epoch[row]
        table.evict(row)
        assert table.epoch[row] == epoch_before + 1

        new = Flow(flow_id=2, coflow_id=2, src=1, dst=6, volume=99.0)
        row2 = table.adopt(new, pos=0)
        assert row2 == row  # LIFO reuse
        # New occupant's state, not the old flow's.
        assert table.volume[row] == 99.0
        assert table.bytes_sent[row] == 0.0
        assert table.finish_time[row] is None
        # Writes to the recycled row do not reach the detached old view.
        new.bytes_sent = 50.0
        assert old.bytes_sent == 10.0
        assert old.finish_time == 1.0
        # Epoch survives reuse (monotone per row): stale references from
        # the previous occupant's lifetime can never match.
        assert table.epoch[row] > epoch_before

    def test_adopt_coflow_rows_align_with_flow_order(self):
        table = FlowTable()
        c = _coflow(1, 4)
        rows = table.adopt_coflow(c)
        assert [table.pos[i] for i in rows] == [0, 1, 2, 3]
        assert [table.flow_id[i] for i in rows] == [f.flow_id for f in c.flows]
        # Adopting again is a no-op returning the same rows.
        assert table.adopt_coflow(c) == rows


class TestViewCoherence:
    def _sim(self):
        cfg = SimulationConfig(epochs=True)
        fabric = Fabric(num_machines=4, port_rate=1e3)
        sim = Simulator(fabric, make_scheduler("uc-tcp", cfg), cfg)
        return sim, fabric

    def test_views_coherent_after_apply_diff(self):
        """Rates applied through the diff path land in the table columns;
        the Flow views read the same values, and a second diffed
        application updates both in lockstep."""
        sim, fabric = self._sim()
        rcv = fabric.receiver_port
        coflow = make_coflow(
            1, 0.0, [(0, rcv(1), 100.0), (1, rcv(2), 100.0)],
            flow_id_start=0,
        )
        sim._activate(coflow)
        table = sim.state.table

        sim._apply_allocation(Allocation(rates={0: 10.0, 1: 4.0}))  # full
        sim._apply_allocation(Allocation(rates={0: 6.0, 1: 4.0}))   # diff
        f0, f1 = coflow.flows
        assert f0.rate == 6.0 and table.rate[f0._row] == 6.0
        assert f1.rate == 4.0 and table.rate[f1._row] == 4.0
        assert f0.start_time == 0.0 and table.start_time[f0._row] == 0.0

        # Dropping a flow from the allocation zeroes it everywhere.
        sim._apply_allocation(Allocation(rates={0: 6.0}))
        assert f1.rate == 0.0 and table.rate[f1._row] == 0.0
        assert f0.rate == 6.0

        # Byte movement through the running set is visible via the views.
        sim._advance_to(1.0)
        assert f0.bytes_sent == table.bytes_sent[f0._row] == 6.0
        assert f1.bytes_sent == 0.0

    def test_completion_evicts_and_views_stay_correct(self):
        """End-to-end through the engine loop: after a coflow finishes its
        flows are detached, rows are reusable, and the result objects
        carry the final state."""
        sim, fabric = self._sim()
        rcv = fabric.receiver_port
        coflows = [
            make_coflow(1, 0.0, [(0, rcv(1), 500.0)], flow_id_start=0),
            make_coflow(2, 0.0, [(1, rcv(2), 2000.0)], flow_id_start=10),
        ]
        result = sim.run(coflows)
        assert set(result.ccts()) == {1, 2}
        table = sim.state.table
        assert len(table) == 0  # everything evicted
        assert len(table._free) == table.capacity
        for c in result.coflows:
            assert c._rows is None
            for f in c.flows:
                assert f._tbl is None
                assert f.finish_time is not None
                assert f.bytes_sent == f.volume

    def test_cluster_state_note_activated_adopts(self):
        fabric = Fabric(num_machines=4, port_rate=1e3)
        state = ClusterState(fabric=fabric)
        c = _coflow(1, 3)
        state.active_coflows.append(c)
        state.note_activated(c)
        assert c._table is state.table
        assert state.pending_rows(c) == c._rows
        assert state.rows_tracked()
        # A flow completion shrinks the pending-row cache.
        victim = c.flows[1]
        victim.finish_time = 1.0
        state.note_flow_finished(victim)
        assert state.pending_rows(c) == [c._rows[0], c._rows[2]]
        # Coflow completion evicts and drops the cache.
        state.note_coflow_finished(1)
        assert c._rows is None
        assert state.pending_rows(c) is None

    def test_detached_flow_property_roundtrip(self):
        f = Flow(flow_id=1, coflow_id=1, src=0, dst=5, volume=10.0)
        f.rate = 2.5
        f.bytes_sent = 4.0
        f.dst = 6
        assert (f.rate, f.bytes_sent, f.dst) == (2.5, 4.0, 6)
        assert f.remaining == 6.0
        with pytest.raises(ValueError):
            f.fct(0.0)  # unfinished
