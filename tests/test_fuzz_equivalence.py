"""Randomized engine-path equivalence fuzz.

The fixed-workload equivalence suite (tests/test_incremental.py,
tests/test_epochs.py) pins the triple-path invariant on curated inputs;
this module hammers it with ~20 seeded random small workloads mixing
staggered arrivals, DAG dependencies, zero-byte flows and delayed data
availability. For every registered scheduler the engine paths —

* ``epochs`` (allocation-epoch engine, the default),
* ``--no-epochs`` (pre-epoch incremental engine),
* ``--no-incremental`` (full-recompute scheduling),
* ``stream`` (the same workload pulled lazily through a generator-backed
  :class:`~repro.simulator.scenario.Scenario`),
* ``resumed`` (every 5th seed: pause mid-run, ``snapshot()``,
  ``restore()`` and run the revived session to completion),
* ``leaf-spine`` (every 5th seed: the same workload on a *single-rack*
  :class:`~repro.simulator.topology.LeafSpineTopology` — core links exist,
  so every scheduler takes its path-aware branch and allocates through a
  :class:`~repro.simulator.topology.LinkLedger`, but no path crosses a
  core link, so the results must not move a bit),
* ``no-fastcore`` (the compiled :mod:`repro._fastcore` kernels forced
  off — when the extension is built the other paths run the C twins, so
  this leg pins compiled-vs-Python **bitwise**; when it is not built,
  every path is the Python rows path and the leg is a no-op)

must produce byte-identical CCTs, completion orders, reschedule counts and
makespans. Workloads are deterministic functions of their seed, so any
failure reproduces exactly.

A second fuzz pins the row-path rate allocators to their object-path twins
bit-for-bit (rates *and* resulting ledger state) — the schedulers pick the
row path whenever the cluster state is table-tracked, so the twins must
never drift. The path-aware allocator twins (``*_paths``) join the same
fuzz with a big-switch path map: on paths with no core links they must be
bit-identical to the port-only forms. The ``*-fastcore`` variants run the
same trials with ``table.fastcore`` set, routing the row forms through the
compiled kernels — they skip cleanly when the extension is not built.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import _fastcore
from repro.config import SimulationConfig
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.engine import run_policy, run_scenario
from repro.simulator.fabric import Fabric, PortLedger
from repro.simulator.scenario import Scenario
from repro.simulator.session import SimulationSession
from repro.simulator.flows import CoFlow, Flow, clone_coflows
from repro.simulator.ratealloc import (
    equal_rate_for_coflow,
    equal_rate_for_coflow_paths,
    equal_rate_for_coflow_rows,
    greedy_residual_rates,
    greedy_residual_rates_rows,
    madd_rates,
    madd_rates_paths,
    madd_rates_rows,
    max_min_fair,
    max_min_fair_paths,
    max_min_fair_rows,
)
from repro.simulator.state import FlowTable
from repro.simulator.topology import BigSwitchTopology, LeafSpineTopology, PathMap

NUM_WORKLOADS = 20


def random_workload(seed: int) -> tuple[Fabric, list[CoFlow]]:
    """A small random workload: 4–6 machines, 5–10 coflows.

    Mixes the edge cases the engine's bookkeeping must survive: zero-byte
    flows (born complete), DAG dependencies on earlier coflows (including
    multi-parent joins), delayed data availability, and same-instant
    arrivals.
    """
    rng = random.Random(0xF00D + seed)
    machines = rng.randrange(4, 7)
    fabric = Fabric(num_machines=machines, port_rate=1e6)
    coflows: list[CoFlow] = []
    next_fid = 0
    for cid in range(1, rng.randrange(5, 11)):
        # Duplicate arrival instants across coflows are deliberate.
        arrival = rng.choice([0.0, 0.0, 0.05, 0.1, round(rng.random(), 2)])
        flows = []
        for _ in range(rng.randrange(1, 5)):
            src = rng.randrange(machines)
            dst = rng.randrange(machines)
            if dst == src:
                dst = (dst + 1) % machines
            volume = rng.choice([0.0, 1e3, 5e4, 2e5, 1e6 * rng.random()])
            flow = Flow(
                flow_id=next_fid, coflow_id=cid, src=src,
                dst=dst + machines, volume=volume,
            )
            if rng.random() < 0.2:
                flow.available_time = arrival + rng.random() * 0.2
            flows.append(flow)
            next_fid += 1
        depends_on: tuple[int, ...] = ()
        if coflows and rng.random() < 0.35:
            parents = rng.sample(
                [c.coflow_id for c in coflows],
                k=min(len(coflows), rng.randrange(1, 3)),
            )
            depends_on = tuple(parents)
        coflows.append(
            CoFlow(coflow_id=cid, arrival_time=arrival, flows=flows,
                   depends_on=depends_on)
        )
    return fabric, coflows


def fingerprint(result) -> tuple:
    """Everything the equivalence contract pins, with exact float bits."""
    return (
        tuple(sorted((cid, cct.hex()) for cid, cct in result.ccts().items())),
        tuple(c.coflow_id for c in result.coflows),
        result.reschedules,
        result.makespan.hex(),
    )


ENGINE_PATHS = (
    ("epochs", dict(epochs=True, incremental=True)),
    ("no-epochs", dict(epochs=False, incremental=True)),
    ("no-incremental", dict(epochs=False, incremental=False)),
    # Seventh engine path: compiled kernels forced off. The other paths
    # run with the default ``fastcore=True``, so whenever the extension
    # is built this leg pins C-vs-Python bitwise on every seed/policy.
    ("no-fastcore", dict(epochs=True, incremental=True, fastcore=False)),
)


def assert_engine_paths_identical(policy, fabric, coflows, seed, *,
                                  deep_paths, pause_at=0.3, label=""):
    """Run ``coflows`` under every engine path and pin byte-identity.

    Always: epochs / no-epochs / no-incremental / no-fastcore / stream.
    With ``deep_paths`` (deep copies are not free, so callers sample):
    also snapshot-resume and the single-rack leaf-spine topology (which
    exercises the :class:`LinkLedger` fallback of the fastcore dispatch).
    """
    prints = {}
    for path_name, cfg_kw in ENGINE_PATHS:
        cfg = SimulationConfig(sync_interval=8e-3, **cfg_kw)
        result = run_policy(
            make_scheduler(policy, cfg), clone_coflows(coflows),
            fabric, cfg,
        )
        prints[path_name] = fingerprint(result)
    # Fourth path: the same workload fed lazily through a generator-
    # backed scenario stream (the session kernel's open-loop input).
    cfg = SimulationConfig(sync_interval=8e-3)
    ordered = sorted(coflows, key=lambda c: c.arrival_time)
    prints["stream"] = fingerprint(run_scenario(
        make_scheduler(policy, cfg),
        Scenario.from_stream(
            lambda: iter(clone_coflows(ordered)),
            total_coflows=len(ordered),
        ),
        fabric, cfg,
    ))
    # Fifth path: pause mid-run, checkpoint, resume from the snapshot.
    if deep_paths:
        session = SimulationSession(
            fabric, make_scheduler(policy, cfg), cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        session.run_until(pause_at)
        snap = session.snapshot()
        prints["resumed"] = fingerprint(
            SimulationSession.restore(snap).run()
        )
        # Sixth path: a single-rack leaf-spine topology. Core links
        # exist (path-aware machinery fully engaged: LinkLedger,
        # link counts, *_paths allocators) but every flow is
        # rack-local, so nothing may change byte-for-byte.
        prints["leaf-spine"] = fingerprint(run_policy(
            make_scheduler(policy, cfg), clone_coflows(coflows),
            fabric, cfg,
            topology=LeafSpineTopology(
                fabric, racks=1, spines=2, oversub=1.0
            ),
        ))
    reference = prints["epochs"]
    assert all(p == reference for p in prints.values()), (
        f"engine paths diverged: policy={policy} seed={seed} {label}"
        f"({[k for k, p in prints.items() if p != reference]})"
    )


@pytest.mark.parametrize("policy", available_policies())
def test_random_workloads_triple_path_identical(policy):
    for seed in range(NUM_WORKLOADS):
        fabric, coflows = random_workload(seed)
        assert_engine_paths_identical(
            policy, fabric, coflows, seed, deep_paths=seed % 5 == 0,
        )


NUM_COLLECTIVE_WORKLOADS = 6


def random_collective_workload(seed: int):
    """A small seeded-random training workload: 4–8 machines, 1–2 jobs of a
    random ``(pattern, workers, iterations, volume)`` recipe, random
    placement — the structured counterpart of :func:`random_workload`."""
    from repro.workloads.collectives import collective_jobs

    rng = random.Random(0xC0FFEE + seed)
    machines = rng.randrange(4, 9)
    fabric = Fabric(num_machines=machines, port_rate=1e6)
    pattern = rng.choice(["ring", "tree", "all-to-all", "ps"])
    servers = rng.randrange(1, 3) if pattern == "ps" else 0
    workers = rng.randrange(2, machines - servers + 1)
    jobs = collective_jobs(
        fabric,
        pattern=pattern,
        workers=workers,
        iterations=rng.randrange(1, 3),
        volume=rng.choice([1e3, 5e4, 1e6 * rng.random() + 1.0]),
        jobs=rng.randrange(1, 3),
        servers=servers,
        racks=rng.randrange(1, 3),
        placement=rng.choice(["packed", "spread"]),
        compute_gap=rng.choice([0.0, 0.0, 0.05]),
        arrival_gap=rng.choice([0.0, 0.3]),
    )
    return fabric, [c for job in jobs for c in job]


@pytest.mark.parametrize("policy", available_policies())
def test_random_collective_workloads_six_paths_identical(policy):
    """Seeded random training jobs (collective DAG chains) must be
    byte-identical across all six engine paths, like every other source."""
    for seed in range(NUM_COLLECTIVE_WORKLOADS):
        fabric, coflows = random_collective_workload(seed)
        assert_engine_paths_identical(
            policy, fabric, coflows, seed, deep_paths=seed % 3 == 0,
            pause_at=0.05, label="collective ",
        )


def _random_attached_flows(rng: random.Random, machines: int):
    """One coflow's worth of random flows, adopted into a fresh table."""
    flows = []
    for i in range(rng.randrange(1, 12)):
        src = rng.randrange(machines)
        dst = rng.randrange(machines)
        if dst == src:
            dst = (dst + 1) % machines
        f = Flow(flow_id=i, coflow_id=1, src=src, dst=dst + machines,
                 volume=rng.choice([0.0, 1e3, 7.5e5, 1e6 * rng.random()]))
        f.bytes_sent = f.volume * rng.random()
        if rng.random() < 0.2:
            f.finish_time = 1.0
        flows.append(f)
    table = FlowTable()
    rows = [table.adopt(f, pos) for pos, f in enumerate(flows)]
    return flows, table, rows


@pytest.mark.parametrize("allocator", [
    "mmf", "madd", "equal", "greedy",
    "mmf-paths", "madd-paths", "equal-paths",
    "mmf-fastcore", "madd-fastcore", "equal-fastcore", "greedy-fastcore",
])
def test_row_allocators_match_object_allocators(allocator):
    """Row-path and path-aware allocators are bit-identical to the object
    forms — same rates, same residual ledger — across random instances
    (the ``*_paths`` twins run with a big-switch path map: every path is
    ``(src, dst)``, so the port-only arithmetic must reproduce exactly).
    The ``*-fastcore`` variants set ``table.fastcore`` so the row forms
    dispatch to the compiled kernels, fuzzing C directly against the
    object allocators; they skip when the extension is not built."""
    fastcore = allocator.endswith("-fastcore")
    if fastcore:
        if not _fastcore.AVAILABLE:
            pytest.skip("repro._fastcore extension not built")
        allocator = allocator[: -len("-fastcore")]
    rng = random.Random(2024)
    machines = 8
    fabric = Fabric(num_machines=machines, port_rate=1e6)
    coflow_stub = CoFlow(coflow_id=1, arrival_time=0.0, flows=[])
    paths = PathMap(BigSwitchTopology(fabric))
    for trial in range(120):
        flows, table, rows = _random_attached_flows(rng, machines)
        table.fastcore = fastcore
        obj_ledger = PortLedger(fabric)
        row_ledger = PortLedger(fabric)
        # Pre-commit some random load so residuals differ across ports.
        for _ in range(rng.randrange(0, 4)):
            src = rng.randrange(machines)
            obj_ledger.commit(src, src + machines, 1e5)
            row_ledger.commit(src, src + machines, 1e5)

        if allocator == "mmf":
            cap = rng.choice([None, None, 0.0, 1e3, 2e9])
            expected = max_min_fair(flows, obj_ledger, rate_cap=cap)
            got = max_min_fair_rows(rows, table, row_ledger, rate_cap=cap)
        elif allocator == "madd":
            expected = madd_rates(coflow_stub, obj_ledger, flows=flows)
            got = madd_rates_rows(rows, table, row_ledger)
        elif allocator == "equal":
            expected = equal_rate_for_coflow(
                coflow_stub, obj_ledger, flows=flows
            )
            got = equal_rate_for_coflow_rows(rows, table, row_ledger)
        elif allocator == "mmf-paths":
            cap = rng.choice([None, None, 0.0, 1e3, 2e9])
            expected = max_min_fair(flows, obj_ledger, rate_cap=cap)
            got = max_min_fair_paths(
                flows, paths, row_ledger, rate_cap=cap
            )
        elif allocator == "madd-paths":
            expected = madd_rates(coflow_stub, obj_ledger, flows=flows)
            got = madd_rates_paths(
                coflow_stub, row_ledger, paths, flows=flows
            )
        elif allocator == "equal-paths":
            expected = equal_rate_for_coflow(
                coflow_stub, obj_ledger, flows=flows
            )
            got = equal_rate_for_coflow_paths(
                coflow_stub, row_ledger, paths, flows=flows
            )
        else:
            expected = greedy_residual_rates(flows, obj_ledger)
            got = greedy_residual_rates_rows(rows, table, row_ledger)

        assert got == expected, f"{allocator} diverged at trial {trial}"
        assert (row_ledger.snapshot_residuals()
                == obj_ledger.snapshot_residuals()), (
            f"{allocator} ledger state diverged at trial {trial}"
        )
        for fid, rate in got.items():
            assert math.isfinite(rate)
