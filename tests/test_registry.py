"""Scheduler and experiment registries."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ReproError, UnknownPolicyError
from repro.experiments.registry import (
    available_experiments,
    get_experiment,
)
from repro.schedulers.base import Allocation, Scheduler
from repro.schedulers.registry import (
    available_policies,
    make_scheduler,
    register_policy,
)


class TestSchedulerRegistry:
    def test_all_paper_policies_present(self):
        names = available_policies()
        for expected in ["saath", "aalo", "varys-sebf", "scf", "srtf",
                         "lwtf", "uc-tcp", "an-fifo", "an-pf-fifo"]:
            assert expected in names

    def test_make_scheduler_instantiates(self):
        cfg = SimulationConfig()
        for name in available_policies():
            scheduler = make_scheduler(name, cfg)
            assert scheduler.name == name
            assert scheduler.config is cfg

    def test_unknown_policy_raises_with_suggestions(self):
        with pytest.raises(UnknownPolicyError) as exc:
            make_scheduler("sjf", SimulationConfig())
        assert "saath" in str(exc.value)

    def test_register_custom_policy(self):
        class Custom(Scheduler):
            name = "custom-test-policy"

            def schedule(self, state, now):
                return Allocation()

        register_policy("custom-test-policy", Custom)
        try:
            s = make_scheduler("custom-test-policy", SimulationConfig())
            assert isinstance(s, Custom)
            with pytest.raises(ValueError):
                register_policy("custom-test-policy", Custom)
            register_policy("custom-test-policy", Custom, overwrite=True)
        finally:
            # Clean up so test order doesn't matter.
            from repro.schedulers import registry as reg

            reg._REGISTRY.pop("custom-test-policy", None)


class TestExperimentRegistry:
    def test_every_figure_registered(self):
        exp_ids = available_experiments()
        for expected in ["fig2", "fig3", "fig9", "fig10", "fig11", "fig13",
                         "fig14", "fig15", "fig16", "table2"]:
            assert expected in exp_ids

    def test_get_experiment(self):
        exp = get_experiment("fig9")
        assert callable(exp.run)
        assert callable(exp.render)
        assert "speedup" in exp.description.lower() or exp.description

    def test_unknown_experiment(self):
        with pytest.raises(ReproError):
            get_experiment("fig99")
