"""Out-of-sync metrics: normalised FCT deviation, equal-length detection."""

import pytest

from repro.analysis.outofsync import (
    flow_lengths_equal,
    normalized_fct_deviation,
    normalized_length_deviation,
    out_of_sync_profile,
    width_distribution,
)
from repro.errors import ConfigError
from repro.simulator.flows import make_coflow


def _finished_coflow(cid, fct_list, volumes=None, arrival=0.0):
    volumes = volumes or [100.0] * len(fct_list)
    transfers = [(i, 50 + i, v) for i, v in enumerate(volumes)]
    c = make_coflow(cid, arrival, transfers, flow_id_start=cid * 100)
    for f, fct in zip(c.flows, fct_list):
        f.bytes_sent = f.volume
        f.finish_time = arrival + fct
    c.finish_time = arrival + max(fct_list)
    return c


class TestEqualLengthDetection:
    def test_equal(self):
        c = _finished_coflow(1, [1.0, 1.0], volumes=[5.0, 5.0])
        assert flow_lengths_equal(c)

    def test_unequal(self):
        c = _finished_coflow(1, [1.0, 1.0], volumes=[5.0, 10.0])
        assert not flow_lengths_equal(c)

    def test_single_flow_counts_as_equal(self):
        c = _finished_coflow(1, [1.0], volumes=[5.0])
        assert flow_lengths_equal(c)

    def test_zero_volume_coflow(self):
        c = make_coflow(1, 0.0, [(0, 50, 0.0), (1, 51, 0.0)])
        assert flow_lengths_equal(c)

    def test_length_deviation_value(self):
        c = _finished_coflow(1, [1.0, 1.0], volumes=[10.0, 30.0])
        # std([10,30]) = 10, mean = 20 -> 0.5
        assert normalized_length_deviation(c) == pytest.approx(0.5)


class TestFctDeviation:
    def test_synchronised_flows_have_zero_deviation(self):
        c = _finished_coflow(1, [2.0, 2.0, 2.0])
        assert normalized_fct_deviation(c) == pytest.approx(0.0)

    def test_known_value(self):
        c = _finished_coflow(1, [1.0, 3.0])
        # std = 1, mean = 2 -> 0.5
        assert normalized_fct_deviation(c) == pytest.approx(0.5)

    def test_measured_from_coflow_arrival(self):
        c = _finished_coflow(1, [1.0, 3.0], arrival=10.0)
        assert normalized_fct_deviation(c) == pytest.approx(0.5)

    def test_unfinished_rejected(self):
        c = make_coflow(1, 0.0, [(0, 50, 10.0)])
        with pytest.raises(ConfigError):
            normalized_fct_deviation(c)


class TestProfile:
    def test_populations_split(self):
        coflows = [
            _finished_coflow(1, [1.0, 1.0], volumes=[5.0, 5.0]),  # equal
            _finished_coflow(2, [1.0, 2.0], volumes=[5.0, 9.0]),  # unequal
            _finished_coflow(3, [1.0], volumes=[5.0]),  # single
        ]
        profile = out_of_sync_profile(coflows)
        assert len(profile.equal_length) == 1
        assert len(profile.unequal_length) == 1
        assert profile.single_flow_fraction == pytest.approx(1 / 3)

    def test_fraction_over(self):
        coflows = [
            _finished_coflow(1, [1.0, 1.0], volumes=[5.0, 5.0]),
            _finished_coflow(2, [1.0, 3.0], volumes=[5.0, 5.0]),
        ]
        profile = out_of_sync_profile(coflows)
        assert profile.equal_fraction_over(0.1) == pytest.approx(0.5)
        assert profile.equal_fraction_at_zero() == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            out_of_sync_profile([])

    def test_width_distribution(self):
        coflows = [
            _finished_coflow(1, [1.0]),
            _finished_coflow(2, [1.0, 1.0, 1.0]),
        ]
        widths = width_distribution(coflows)
        assert sorted(widths.tolist()) == [1, 3]
