"""Analysis metrics: speedups, summaries, CDFs."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    DistributionSummary,
    cdf_points,
    fraction_at_least,
    fraction_below,
    overall_cct_speedup,
    per_coflow_speedups,
    speedup_summary,
)
from repro.errors import ConfigError


class TestDistributionSummary:
    def test_basic_percentiles(self):
        values = list(range(1, 101))
        s = DistributionSummary.of(values)
        assert s.count == 100
        assert s.p50 == pytest.approx(50.5)
        assert s.p10 == pytest.approx(10.9)
        assert s.p90 == pytest.approx(90.1)
        assert s.minimum == 1 and s.maximum == 100

    def test_single_value(self):
        s = DistributionSummary.of([3.0])
        assert s.p10 == s.p50 == s.p90 == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            DistributionSummary.of([])


class TestPerCoflowSpeedups:
    def test_ratio_direction(self):
        base = {1: 10.0, 2: 4.0}
        cand = {1: 5.0, 2: 8.0}
        s = per_coflow_speedups(base, cand)
        assert s[1] == pytest.approx(2.0)  # candidate 2x faster
        assert s[2] == pytest.approx(0.5)  # candidate 2x slower

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ConfigError):
            per_coflow_speedups({1: 1.0}, {2: 1.0})

    def test_zero_cct_on_both_sides_skipped(self):
        s = per_coflow_speedups({1: 0.0, 2: 2.0}, {1: 0.0, 2: 1.0})
        assert 1 not in s
        assert s[2] == pytest.approx(2.0)

    def test_zero_on_one_side_raises(self):
        with pytest.raises(ConfigError):
            per_coflow_speedups({1: 0.0}, {1: 1.0})

    def test_summary_wrapper(self):
        base = {i: 2.0 for i in range(10)}
        cand = {i: 1.0 for i in range(10)}
        s = speedup_summary(base, cand)
        assert s.p50 == pytest.approx(2.0)


class TestOverallSpeedup:
    def test_average_ratio(self):
        base = {1: 2.0, 2: 4.0}  # mean 3
        cand = {1: 1.0, 2: 2.0}  # mean 1.5
        assert overall_cct_speedup(base, cand) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            overall_cct_speedup({}, {})


class TestCdfHelpers:
    def test_cdf_points_monotone(self):
        xs, ys = cdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ys) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_fraction_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            cdf_points([])
        with pytest.raises(ConfigError):
            fraction_below([], 1.0)
