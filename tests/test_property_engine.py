"""Property-based end-to-end invariants of the simulator + schedulers.

For random small workloads and every registered policy:

* the simulation terminates and every coflow finishes;
* no flow finishes before the physics lower bound (volume / port rate);
* a coflow never finishes before its arrival;
* total delivered bytes equal the workload's bytes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import QueueConfig, SimulationConfig
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow

MACHINES = 5
RATE = 100.0


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    coflows = []
    fid = 0
    for cid in range(n):
        arrival = draw(st.floats(min_value=0.0, max_value=5.0,
                                 allow_nan=False))
        width = draw(st.integers(min_value=1, max_value=4))
        transfers = []
        for _ in range(width):
            src = draw(st.integers(min_value=0, max_value=MACHINES - 1))
            dst = draw(st.integers(min_value=0, max_value=MACHINES - 1))
            vol = draw(st.floats(min_value=1.0, max_value=500.0,
                                 allow_nan=False))
            transfers.append((src, dst + MACHINES, vol))
        coflows.append(
            make_coflow(cid, arrival, transfers, flow_id_start=fid)
        )
        fid += width
    return coflows


def _cfg():
    return SimulationConfig(
        port_rate=RATE,
        queues=QueueConfig(num_queues=4, start_threshold=200.0,
                           growth_factor=4.0),
        min_rate=1e-6,
    )


POLICIES = available_policies()


@pytest.mark.parametrize("policy", POLICIES)
@given(coflows=workloads())
@settings(max_examples=15, deadline=None)
def test_policy_invariants(policy, coflows):
    fab = Fabric(num_machines=MACHINES, port_rate=RATE)
    cfg = _cfg()
    work = clone_coflows(coflows)
    result = run_policy(make_scheduler(policy, cfg), work, fab, cfg)

    assert len(result.coflows) == len(coflows)
    for c in result.coflows:
        assert c.finish_time is not None
        assert c.finish_time >= c.arrival_time - 1e-9
        for f in c.flows:
            assert f.finished
            assert f.bytes_sent == pytest.approx(f.volume)
            # Physics: a flow can't beat dedicated line rate from arrival.
            min_time = f.volume / RATE
            assert f.finish_time >= c.arrival_time + min_time - 1e-6


@pytest.mark.parametrize("policy", ["saath", "aalo"])
@given(coflows=workloads())
@settings(max_examples=10, deadline=None)
def test_sync_mode_terminates_and_stays_physical(policy, coflows):
    """δ-staleness keeps the simulation terminating and physical.

    (Staleness can occasionally *shorten* the makespan of a non-optimal
    scheduler by perturbing its ordering, so no monotonicity is asserted —
    the statistical degradation is the Fig. 14(c) experiment.)
    """
    fab = Fabric(num_machines=MACHINES, port_rate=RATE)
    ideal_cfg = _cfg()
    sync_cfg = ideal_cfg.with_updates(sync_interval=0.25)
    ideal = run_policy(make_scheduler(policy, ideal_cfg),
                       clone_coflows(coflows), fab, ideal_cfg)
    stale = run_policy(make_scheduler(policy, sync_cfg),
                       clone_coflows(coflows), fab, sync_cfg)
    assert len(stale.coflows) == len(ideal.coflows)
    for c in stale.coflows:
        for f in c.flows:
            assert f.finished
            # A stale schedule may only start a flow at/after a δ boundary
            # following its coflow's arrival; it can never beat physics.
            assert f.finish_time >= c.arrival_time + f.volume / RATE - 1e-6
