"""JCT accounting with shuffle fractions (Fig. 16 machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.jobs import (
    SHUFFLE_BUCKETS,
    JobOutcome,
    bucket_speedups,
    job_outcomes,
    sample_shuffle_fractions,
)


class TestSampleFractions:
    def test_deterministic(self):
        a = sample_shuffle_fractions(100, seed=1)
        b = sample_shuffle_fractions(100, seed=1)
        assert np.array_equal(a, b)

    def test_range(self):
        fr = sample_shuffle_fractions(500, seed=2)
        assert fr.min() >= 0.01
        assert fr.max() <= 0.99

    def test_all_buckets_populated(self):
        fr = sample_shuffle_fractions(400, seed=3)
        for _, lo, hi in SHUFFLE_BUCKETS:
            assert ((fr >= lo) & (fr < hi)).any()


class TestJobOutcomes:
    def test_speedup_diluted_by_compute(self):
        base = {1: 10.0}
        cand = {1: 5.0}  # CCT speedup = 2x
        outcomes = job_outcomes(base, cand, [0.5])
        (o,) = outcomes
        # compute = 10 * (1-0.5)/0.5 = 10; JCTs 20 vs 15 -> 1.33x.
        assert o.compute_time == pytest.approx(10.0)
        assert o.speedup == pytest.approx(20.0 / 15.0)

    def test_shuffle_heavy_jobs_keep_more_speedup(self):
        base = {1: 10.0, 2: 10.0}
        cand = {1: 5.0, 2: 5.0}
        light, heavy = job_outcomes(base, cand, [0.1, 0.9])
        assert heavy.speedup > light.speedup

    def test_full_shuffle_equals_cct_speedup(self):
        base = {1: 8.0}
        cand = {1: 2.0}
        (o,) = job_outcomes(base, cand, [0.99])
        assert o.speedup == pytest.approx(4.0, rel=0.05)

    def test_zero_cct_jobs_skipped(self):
        outcomes = job_outcomes({1: 0.0, 2: 4.0}, {1: 0.0, 2: 2.0},
                                [0.5, 0.5])
        assert len(outcomes) == 1
        assert outcomes[0].job_id == 2

    def test_missing_candidate_raises(self):
        with pytest.raises(ConfigError):
            job_outcomes({1: 1.0}, {}, [0.5])

    def test_insufficient_fractions_raises(self):
        with pytest.raises(ConfigError):
            job_outcomes({1: 1.0, 2: 1.0}, {1: 1.0, 2: 1.0}, [0.5])

    def test_fraction_assignment_by_sorted_id(self):
        base = {5: 10.0, 3: 10.0}
        cand = {5: 5.0, 3: 5.0}
        outcomes = job_outcomes(base, cand, [0.2, 0.8])
        by_id = {o.job_id: o for o in outcomes}
        assert by_id[3].shuffle_fraction == pytest.approx(0.2)
        assert by_id[5].shuffle_fraction == pytest.approx(0.8)


class TestBuckets:
    def test_bucket_labels(self):
        o = JobOutcome(job_id=1, shuffle_fraction=0.3, compute_time=1.0,
                       jct_baseline=2.0, jct_candidate=1.0)
        assert o.bucket == "25-50%"
        o2 = JobOutcome(job_id=2, shuffle_fraction=0.8, compute_time=1.0,
                        jct_baseline=2.0, jct_candidate=1.0)
        assert o2.bucket == ">=75%"

    def test_bucket_speedups_includes_all(self):
        outcomes = [
            JobOutcome(job_id=i, shuffle_fraction=f, compute_time=1.0,
                       jct_baseline=2.0, jct_candidate=1.0)
            for i, f in enumerate([0.1, 0.3, 0.6, 0.9])
        ]
        grouped = bucket_speedups(outcomes)
        assert len(grouped["All"]) == 4
        for label, _, _ in SHUFFLE_BUCKETS:
            assert len(grouped[label]) == 1

    def test_non_positive_jct_rejected(self):
        o = JobOutcome(job_id=1, shuffle_fraction=0.5, compute_time=1.0,
                       jct_baseline=2.0, jct_candidate=0.0)
        with pytest.raises(ConfigError):
            _ = o.speedup
