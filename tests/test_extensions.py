"""Extension baselines (Baraat FIFO-LM, Sincronia BSSI), pluggable length
estimators, and the telemetry observer."""

import math

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.analysis.telemetry import TelemetryRecorder
from repro.core.estimators import (
    CedarLikeEstimator,
    MedianEstimator,
    QuantileEstimator,
    TrimmedMeanEstimator,
    get_estimator,
)
from repro.core.saath import SaathScheduler
from repro.errors import ConfigError
from repro.schedulers.baraat import BaraatFifoLmScheduler
from repro.schedulers.sincronia import SincroniaScheduler, bssi_order
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow
from repro.simulator.state import ClusterState


def _fabric(machines=8, rate=100.0):
    return Fabric(num_machines=machines, port_rate=rate)


def _cfg(**kw):
    defaults = dict(port_rate=100.0, min_rate=1e-3)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestBaraat:
    def test_multiplexes_up_to_level(self):
        fab = _fabric()
        baraat = BaraatFifoLmScheduler(_cfg(), multiplexing_level=2)
        coflows = [
            make_coflow(i, 0.01 * i, [(0, fab.receiver_port(1 + i), 100.0)],
                        flow_id_start=10 * i)
            for i in range(4)
        ]
        state = ClusterState(fabric=fab, active_coflows=coflows)
        for c in coflows:
            baraat.on_coflow_arrival(c, c.arrival_time)
        alloc = baraat.schedule(state, 0.1)
        # The first two arrivals share the sender; the rest get nothing.
        assert alloc.rates[0] == pytest.approx(50.0)
        assert alloc.rates[10] == pytest.approx(50.0)
        assert 20 not in alloc.rates
        assert 30 not in alloc.rates

    def test_level_one_is_pure_fifo(self):
        fab = _fabric()
        baraat = BaraatFifoLmScheduler(_cfg(), multiplexing_level=1)
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.1, [(0, fab.receiver_port(2), 100.0)],
                        flow_id_start=10)
        state = ClusterState(fabric=fab, active_coflows=[a, b])
        baraat.on_coflow_arrival(a, 0.0)
        baraat.on_coflow_arrival(b, 0.1)
        alloc = baraat.schedule(state, 0.1)
        assert alloc.rates[0] == pytest.approx(100.0)
        assert 10 not in alloc.rates

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigError):
            BaraatFifoLmScheduler(_cfg(), multiplexing_level=0)

    def test_end_to_end_and_out_of_sync(self):
        """Baraat inherits the out-of-sync problem: a two-port coflow can
        be served at one port while multiplexed out at the other."""
        fab = _fabric()
        cfg = _cfg()
        blockers = [
            make_coflow(i, 0.0, [(0, fab.receiver_port(2 + i), 100.0)],
                        flow_id_start=10 * i)
            for i in range(2)
        ]
        victim = make_coflow(5, 0.1, [(0, fab.receiver_port(6), 100.0),
                                      (1, fab.receiver_port(7), 100.0)],
                             flow_id_start=100)
        res = run_policy(
            BaraatFifoLmScheduler(cfg, multiplexing_level=2),
            [*blockers, victim], fab, cfg,
        )
        v = res.coflow(5)
        fcts = [f.finish_time for f in v.flows]
        assert fcts[0] != pytest.approx(fcts[1])  # desynchronised

    def test_completes_random_workload(self):
        from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

        spec = fb_like_spec(num_machines=12, num_coflows=20)
        coflows = WorkloadGenerator(spec, seed=2).generate_coflows()
        cfg = SimulationConfig()
        res = run_policy(BaraatFifoLmScheduler(cfg), coflows,
                         spec.make_fabric(), cfg)
        assert len(res.coflows) == 20


class TestSincronia:
    def test_bssi_orders_small_before_large(self):
        fab = _fabric()
        small = make_coflow(1, 0.0, [(0, fab.receiver_port(1), 50.0)],
                            flow_id_start=0)
        large = make_coflow(2, 0.0, [(0, fab.receiver_port(2), 500.0)],
                            flow_id_start=10)
        order = bssi_order([large, small])
        assert [c.coflow_id for c in order] == [1, 2]

    def test_bssi_accounts_for_spatial_load(self):
        """A coflow huge on the bottleneck goes last even if another coflow
        has larger total size spread thinly."""
        fab = _fabric()
        # 'wide' is big in total (3x60=180) but light per port.
        wide = make_coflow(1, 0.0, [
            (0, fab.receiver_port(3), 60.0),
            (1, fab.receiver_port(4), 60.0),
            (2, fab.receiver_port(5), 60.0),
        ], flow_id_start=0)
        # 'heavy' is 150 bytes all on port 0 — the bottleneck hog.
        heavy = make_coflow(2, 0.0, [(0, fab.receiver_port(6), 150.0)],
                            flow_id_start=10)
        order = bssi_order([wide, heavy])
        assert order[-1].coflow_id == 2

    def test_bssi_handles_finished_flows(self):
        fab = _fabric()
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(1), 50.0)],
                        flow_id_start=0)
        c.flows[0].bytes_sent = 50.0
        c.flows[0].finish_time = 1.0
        assert [x.coflow_id for x in bssi_order([c])] == [1]

    def test_end_to_end_beats_uctcp(self):
        from repro.schedulers.uctcp import UcTcpScheduler
        from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

        spec = fb_like_spec(num_machines=12, num_coflows=25)
        coflows = WorkloadGenerator(spec, seed=4).generate_coflows()
        cfg = SimulationConfig()
        fab = spec.make_fabric()
        sincronia = run_policy(SincroniaScheduler(cfg),
                               clone_coflows(coflows), fab, cfg)
        uctcp = run_policy(UcTcpScheduler(cfg),
                           clone_coflows(coflows), fab, cfg)
        assert sincronia.average_cct() < uctcp.average_cct()

    def test_is_clairvoyant(self):
        assert SincroniaScheduler.clairvoyant


class TestEstimators:
    SAMPLES = [10.0, 20.0, 30.0, 40.0, 1000.0]

    def test_median(self):
        assert MedianEstimator().estimate(self.SAMPLES) == 30.0

    def test_trimmed_mean_resists_outlier(self):
        plain_mean = sum(self.SAMPLES) / 5
        trimmed = TrimmedMeanEstimator(trim=0.2).estimate(self.SAMPLES)
        assert trimmed < plain_mean
        assert trimmed == pytest.approx(30.0)

    def test_trimmed_mean_validation(self):
        with pytest.raises(ConfigError):
            TrimmedMeanEstimator(trim=0.5)

    def test_quantile_interpolates(self):
        est = QuantileEstimator(0.5)
        assert est.estimate([10.0, 20.0]) == pytest.approx(15.0)

    def test_quantile_validation(self):
        with pytest.raises(ConfigError):
            QuantileEstimator(0.0)

    def test_cedar_bonus_shrinks_with_samples(self):
        est = CedarLikeEstimator(quantile=0.5, z=1.0)
        few = est.estimate([10.0, 30.0])
        many = est.estimate([10.0, 30.0] * 20)
        assert few > many  # same spread, more samples -> smaller bonus

    def test_cedar_single_sample_hedges_up(self):
        est = CedarLikeEstimator(z=1.0)
        assert est.estimate([100.0]) == pytest.approx(200.0)

    def test_registry(self):
        assert isinstance(get_estimator("median"), MedianEstimator)
        with pytest.raises(ConfigError):
            get_estimator("oracle")

    def test_estimated_remaining_bottleneck(self):
        c = make_coflow(1, 0.0, [(0, 10, 100.0), (1, 11, 100.0)])
        c.flows[0].bytes_sent = 100.0
        c.flows[0].finish_time = 1.0
        c.flows[1].bytes_sent = 60.0
        est = MedianEstimator()
        assert est.estimated_remaining_bottleneck(c) == pytest.approx(40.0)

    def test_saath_accepts_custom_estimator(self):
        fab = _fabric()
        cfg = _cfg(
            queues=QueueConfig(num_queues=5, start_threshold=1000.0,
                               growth_factor=10.0),
            enable_dynamics_promotion=True,
        )
        saath = SaathScheduler(cfg, length_estimator=QuantileEstimator(0.75))
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 5000.0),
                                 (1, fab.receiver_port(4), 5000.0)],
                        flow_id_start=0)
        state = ClusterState(fabric=fab, active_coflows=[c])
        saath.on_coflow_arrival(c, 0.0)
        saath.tracker.force_queue(c, 3, 0.0)
        c.flows[0].bytes_sent = 5000.0
        c.flows[0].finish_time = 1.0
        c.flows[1].bytes_sent = 4900.0
        saath.on_flow_completion(c.flows[0], c, 1.0)
        assert saath.tracker.queue_of(c) == 0


class TestTelemetry:
    def test_records_samples_and_utilisation(self):
        fab = _fabric()
        cfg = _cfg()
        recorder = TelemetryRecorder()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.0, [(0, fab.receiver_port(2), 100.0)],
                        flow_id_start=10)
        run_policy(SaathScheduler(cfg), [a, b], fab, cfg, observer=recorder)
        assert recorder.samples
        # Sender 0 is saturated from the start.
        series = recorder.utilisation_series(0, capacity=100.0)
        assert series[0] == pytest.approx(1.0)
        assert recorder.peak_active_coflows() == 2
        util = recorder.mean_utilisation([0], capacity=100.0)
        assert 0.9 <= util <= 1.0 + 1e-9

    def test_queue_population_series(self):
        fab = _fabric()
        cfg = _cfg(queues=QueueConfig(num_queues=4, start_threshold=30.0,
                                      growth_factor=10.0))
        recorder = TelemetryRecorder()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        run_policy(SaathScheduler(cfg), [c], fab, cfg, observer=recorder)
        q0 = recorder.queue_population_series(0)
        q1 = recorder.queue_population_series(1)
        assert q0[0] == 1  # starts in the top queue
        assert q1.max() == 1  # crosses the 30-byte threshold mid-flight

    def test_work_conservation_fraction(self):
        fab = _fabric()
        cfg = _cfg()
        recorder = TelemetryRecorder()
        # Guaranteed all-or-none miss: two coflows on one sender.
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0),
                                 (1, fab.receiver_port(2), 100.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.01, [(1, fab.receiver_port(3), 100.0),
                                  (2, fab.receiver_port(4), 100.0)],
                        flow_id_start=10)
        run_policy(SaathScheduler(cfg), [a, b], fab, cfg, observer=recorder)
        assert 0.0 < recorder.work_conservation_fraction() <= 1.0

    def test_empty_recorder_degrades_gracefully(self):
        recorder = TelemetryRecorder()
        assert recorder.mean_utilisation([0], 100.0) == 0.0
        assert recorder.peak_active_coflows() == 0
        assert recorder.work_conservation_fraction() == 0.0
