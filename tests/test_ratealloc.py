"""Rate allocation substrate: max-min fairness, MADD, greedy fill."""

import pytest

from repro.simulator.fabric import Fabric, PortLedger
from repro.simulator.flows import make_coflow
from repro.simulator.ratealloc import (
    equal_rate_for_coflow,
    greedy_residual_rates,
    madd_rates,
    max_min_fair,
)


def _fabric(machines=6, rate=100.0):
    return Fabric(num_machines=machines, port_rate=rate)


class TestMaxMinFair:
    def test_single_flow_gets_full_rate(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        rates = max_min_fair(c.flows, PortLedger(fab))
        assert rates[0] == pytest.approx(100.0)

    def test_two_flows_share_common_sender(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 100.0),
            (0, fab.receiver_port(2), 100.0),
        ])
        rates = max_min_fair(c.flows, PortLedger(fab))
        assert rates[0] == pytest.approx(50.0)
        assert rates[1] == pytest.approx(50.0)

    def test_unconstrained_flow_fills_up(self):
        fab = _fabric()
        # Flows 0,1 share sender 0; flow 2 is alone on sender 1.
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 1.0),
            (0, fab.receiver_port(2), 1.0),
            (1, fab.receiver_port(3), 1.0),
        ])
        rates = max_min_fair(c.flows, PortLedger(fab))
        assert rates[0] == pytest.approx(50.0)
        assert rates[2] == pytest.approx(100.0)

    def test_receiver_bottleneck(self):
        fab = _fabric()
        rcv = fab.receiver_port(5)
        c = make_coflow(0, 0.0, [(0, rcv, 1.0), (1, rcv, 1.0), (2, rcv, 1.0)])
        rates = max_min_fair(c.flows, PortLedger(fab))
        for fid in range(3):
            assert rates[fid] == pytest.approx(100.0 / 3)

    def test_rate_cap_applies(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)])
        rates = max_min_fair(c.flows, PortLedger(fab), rate_cap=10.0)
        assert rates[0] == pytest.approx(10.0)

    def test_zero_cap_means_no_allocation(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)])
        rates = max_min_fair(c.flows, PortLedger(fab), rate_cap=0.0)
        assert rates[0] == 0.0

    def test_respects_prior_commitments(self):
        fab = _fabric()
        ledger = PortLedger(fab)
        ledger.commit(0, fab.receiver_port(3), 80.0)
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)])
        rates = max_min_fair(c.flows, ledger)
        assert rates[0] == pytest.approx(20.0)

    def test_finished_flows_skipped(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 1.0), (0, fab.receiver_port(2), 1.0),
        ])
        c.flows[0].finish_time = 1.0
        rates = max_min_fair(c.flows, ledger := PortLedger(fab))
        assert 0 not in rates
        assert rates[1] == pytest.approx(100.0)
        assert ledger.residual(0) == pytest.approx(0.0)

    def test_total_never_exceeds_capacity(self):
        fab = _fabric(machines=4, rate=100.0)
        transfers = [
            (s, fab.receiver_port(d), 1.0)
            for s in range(4) for d in range(4) if s != d
        ]
        c = make_coflow(0, 0.0, transfers)
        ledger = PortLedger(fab)
        rates = max_min_fair(c.flows, ledger)
        per_port: dict[int, float] = {}
        for f in c.flows:
            per_port[f.src] = per_port.get(f.src, 0) + rates[f.flow_id]
            per_port[f.dst] = per_port.get(f.dst, 0) + rates[f.flow_id]
        for port, used in per_port.items():
            assert used <= 100.0 + 1e-6


class TestMadd:
    def test_single_flow_full_rate(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 200.0)])
        rates = madd_rates(c, PortLedger(fab))
        assert rates[0] == pytest.approx(100.0)

    def test_flows_finish_together(self):
        fab = _fabric()
        # Bottleneck: sender 0 carries 100 + 50 = 150 bytes -> gamma = 1.5s.
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 100.0),
            (0, fab.receiver_port(2), 50.0),
        ])
        rates = madd_rates(c, PortLedger(fab))
        gamma = 150.0 / 100.0
        assert rates[0] == pytest.approx(100.0 / gamma)
        assert rates[1] == pytest.approx(50.0 / gamma)
        # Completion times equal:
        assert 100.0 / rates[0] == pytest.approx(50.0 / rates[1])

    def test_blocked_port_returns_empty(self):
        fab = _fabric()
        ledger = PortLedger(fab)
        ledger.commit(0, fab.receiver_port(5), 100.0)  # sender 0 saturated
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 10.0)])
        assert madd_rates(c, ledger) == {}

    def test_partial_residual_scales_down(self):
        fab = _fabric()
        ledger = PortLedger(fab)
        ledger.commit(0, fab.receiver_port(5), 60.0)
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        rates = madd_rates(c, ledger)
        assert rates[0] == pytest.approx(40.0)

    def test_finished_flows_ignored(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 100.0), (1, fab.receiver_port(2), 60.0),
        ])
        c.flows[0].bytes_sent = 100.0
        c.flows[0].finish_time = 1.0
        rates = madd_rates(c, PortLedger(fab))
        assert list(rates) == [1]


class TestEqualRate:
    def test_all_flows_same_rate(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 100.0),
            (1, fab.receiver_port(2), 10.0),
        ])
        rates = equal_rate_for_coflow(c, PortLedger(fab))
        assert rates[0] == rates[1] == pytest.approx(100.0)

    def test_rate_limited_by_shared_sender(self):
        fab = _fabric()
        # Two flows on sender 0: each capped at 50; all get 50.
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 1.0),
            (0, fab.receiver_port(2), 1.0),
            (1, fab.receiver_port(3), 1.0),
        ])
        rates = equal_rate_for_coflow(c, PortLedger(fab))
        assert all(r == pytest.approx(50.0) for r in rates.values())
        assert len(rates) == 3

    def test_zero_residual_gives_empty(self):
        fab = _fabric()
        ledger = PortLedger(fab)
        ledger.commit(0, fab.receiver_port(5), 100.0)
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)])
        assert equal_rate_for_coflow(c, ledger) == {}

    def test_commits_to_ledger(self):
        fab = _fabric()
        ledger = PortLedger(fab)
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)])
        equal_rate_for_coflow(c, ledger)
        assert ledger.residual(0) == pytest.approx(0.0)


class TestGreedyResidual:
    def test_order_matters(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [
            (0, fab.receiver_port(1), 1.0),
            (0, fab.receiver_port(2), 1.0),
        ])
        rates = greedy_residual_rates(c.flows, PortLedger(fab))
        assert rates[0] == pytest.approx(100.0)
        assert 1 not in rates  # sender already exhausted

    def test_min_of_sender_receiver(self):
        fab = _fabric()
        ledger = PortLedger(fab)
        ledger.commit(1, fab.receiver_port(2), 70.0)  # receiver 2 has 30 left
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(2), 1.0)])
        rates = greedy_residual_rates(c.flows, ledger)
        assert rates[0] == pytest.approx(30.0)

    def test_skips_finished(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)])
        c.flows[0].finish_time = 1.0
        assert greedy_residual_rates(c.flows, PortLedger(fab)) == {}
