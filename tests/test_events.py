"""Event queue ordering semantics."""

import pytest

from repro.simulator.events import Event, EventKind, EventQueue


def _arrival(t, payload=None):
    return Event(t, EventKind.COFLOW_ARRIVAL, payload)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        q.push(_arrival(3.0, "c"))
        q.push(_arrival(1.0, "a"))
        q.push(_arrival(2.0, "b"))
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_stable_for_equal_times(self):
        q = EventQueue()
        for name in ["first", "second", "third"]:
            q.push(_arrival(5.0, name))
        assert [q.pop().payload for _ in range(3)] == [
            "first", "second", "third"
        ]

    def test_kind_breaks_time_ties(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.SYNC))
        q.push(Event(1.0, EventKind.COFLOW_ARRIVAL, "c"))
        q.push(Event(1.0, EventKind.DYNAMICS, "d"))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.COFLOW_ARRIVAL, EventKind.DYNAMICS, EventKind.SYNC
        ]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(_arrival(7.0))
        q.push(_arrival(2.0))
        assert q.peek_time() == 2.0
        q.pop()
        assert q.peek_time() == 7.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push_all([_arrival(1.0), _arrival(2.0)])
        assert len(q) == 2
        assert q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(_arrival(-0.5))

    def test_interleaved_push_pop(self):
        q = EventQueue()
        q.push(_arrival(5.0, "late"))
        q.push(_arrival(1.0, "early"))
        assert q.pop().payload == "early"
        q.push(_arrival(3.0, "middle"))
        assert q.pop().payload == "middle"
        assert q.pop().payload == "late"
