"""End-to-end starvation-freedom scenarios (§4.2 D5, Fig. 14e)."""

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.core.saath import SaathScheduler
from repro.simulator.engine import Simulator, run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow


def _fabric():
    return Fabric(num_machines=10, port_rate=100.0)


def _cfg(deadline_factor=2.0):
    return SimulationConfig(
        port_rate=100.0,
        queues=QueueConfig(num_queues=5, start_threshold=1000.0,
                           growth_factor=10.0),
        deadline_factor=deadline_factor,
        min_rate=1e-3,
    )


def hub_and_spoke_stream(fabric, spokes=14, spoke_bytes=400.0):
    """One wide hub coflow vs an endless stream of low-contention spokes.

    LCoF alone starves the hub: each arriving spoke has contention 1 vs the
    hub's 2, and the spokes keep the hub's two senders alternately busy.
    """
    rcv = fabric.receiver_port
    hub = make_coflow(0, 0.0, [(0, rcv(3), 500.0), (1, rcv(4), 500.0)],
                      flow_id_start=0)
    stream = []
    for i in range(spokes):
        sender = i % 2  # alternate over the hub's senders
        stream.append(
            make_coflow(1 + i, 0.5 + 2.0 * i,
                        [(sender, rcv(5 + i % 4), spoke_bytes)],
                        flow_id_start=100 + 10 * i)
        )
    return [hub, *stream]


class TestStarvationFreedom:
    def test_hub_eventually_completes_with_deadlines(self):
        fab = _fabric()
        cfg = _cfg(deadline_factor=1.0)
        workload = hub_and_spoke_stream(fab)
        scheduler = SaathScheduler(cfg)
        res = run_policy(scheduler, workload, fab, cfg)
        assert len(res.coflows) == len(workload)
        # The starvation path actually triggered for the hub.
        assert scheduler.starvation_admissions > 0

    def test_deadline_bounds_hub_delay(self):
        """With d=1 the hub finishes no later than with d=16 by more than
        the queueing slack — i.e. tighter deadlines mean earlier rescue."""
        fab = _fabric()
        workload = hub_and_spoke_stream(fab)
        tight_cfg = _cfg(deadline_factor=1.0)
        tight = run_policy(SaathScheduler(tight_cfg),
                           clone_coflows(workload), fab, tight_cfg)
        loose_cfg = _cfg(deadline_factor=16.0)
        loose = run_policy(SaathScheduler(loose_cfg),
                           clone_coflows(workload), fab, loose_cfg)
        assert tight.cct(0) <= loose.cct(0) + 1e-9

    def test_without_deadlines_hub_finishes_last(self):
        fab = _fabric()
        cfg = _cfg(deadline_factor=None)
        workload = hub_and_spoke_stream(fab)
        res = run_policy(SaathScheduler(cfg), workload, fab, cfg)
        assert len(res.coflows) == len(workload)
        hub_finish = res.coflow(0).finish_time
        # LCoF pushes the hub behind essentially every spoke.
        later = [c for c in res.coflows
                 if c.coflow_id != 0 and c.finish_time > hub_finish]
        assert len(later) <= 2

    def test_deadline_respected_within_factor(self):
        """The admitted-by-deadline hub finishes within a small multiple of
        its FIFO-derived deadline (the paper's 'same deadline guarantee
        within a factor of d' claim, loosely checked)."""
        fab = _fabric()
        cfg = _cfg(deadline_factor=2.0)
        workload = hub_and_spoke_stream(fab, spokes=8)
        scheduler = SaathScheduler(cfg)
        sim = Simulator(fab, scheduler, cfg)
        res = sim.run(workload)
        hub = res.coflow(0)
        # Deadline bookkeeping was maintained on the coflow object.
        assert hub.deadline < float("inf")

    def test_starvation_disabled_config_runs_clean(self):
        fab = _fabric()
        cfg = _cfg(deadline_factor=None)
        workload = hub_and_spoke_stream(fab, spokes=4)
        scheduler = SaathScheduler(cfg)
        res = run_policy(scheduler, workload, fab, cfg)
        assert scheduler.starvation_admissions == 0
        assert len(res.coflows) == 5
