"""Smoke + structure tests for every experiment module (TINY scale).

These verify that each experiment runs end-to-end, returns the documented
structure, and renders non-empty text. The quantitative paper-shape
assertions live in the benchmark harness (benchmarks/), which runs at the
larger SMALL/PAPER scales.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    fb_workload,
    osp_workload,
    run_policy_on,
)
from repro.experiments import (
    fig2_outofsync,
    fig3_offline,
    fig9_speedup,
    fig10_breakdown,
    fig11_bins,
    fig13_deviation,
    fig14_sensitivity,
    fig15_testbed,
    fig16_jct,
    table2_overhead,
)
from repro.experiments.registry import run_and_render

TINY = ExperimentScale.TINY


@pytest.fixture(scope="module")
def tiny_fb():
    return fb_workload(TINY)


class TestCommon:
    def test_fb_workload_dimensions(self, tiny_fb):
        assert len(tiny_fb.coflows) == 40
        assert tiny_fb.fabric.num_machines == 20

    def test_fresh_coflows_are_clean_copies(self, tiny_fb):
        first = tiny_fb.fresh_coflows()
        first[0].flows[0].bytes_sent = 123.0
        second = tiny_fb.fresh_coflows()
        assert second[0].flows[0].bytes_sent == 0.0

    def test_osp_workload_builds(self):
        w = osp_workload(TINY)
        assert len(w.coflows) == 60

    def test_run_policy_on_uses_paper_delta(self, tiny_fb):
        result = run_policy_on(tiny_fb, "saath")
        assert len(result.coflows) == len(tiny_fb.coflows)


class TestFig2:
    def test_structure(self, tiny_fb):
        r = fig2_outofsync.run(workload=tiny_fb)
        total = (r.single_flow_fraction + r.equal_multiflow_fraction
                 + r.unequal_multiflow_fraction)
        assert total == pytest.approx(1.0)
        assert len(r.widths) == len(tiny_fb.coflows)
        assert fig2_outofsync.render(r)


class TestFig3:
    def test_structure(self, tiny_fb):
        r = fig3_offline.run(workload=tiny_fb)
        assert set(r.speedups) == set(fig3_offline.POLICIES)
        assert set(r.overall) == set(fig3_offline.POLICIES)
        assert all(v > 0 for v in r.overall.values())
        assert "overall" in fig3_offline.render(r).lower()


class TestFig9:
    def test_structure(self):
        r = fig9_speedup.run(TINY, include_osp=False,
                             baselines=("aalo",))
        assert set(r.summaries) == {"fb-like"}
        assert "aalo" in r.summaries["fb-like"]
        assert fig9_speedup.render(r)


class TestFig10:
    def test_structure(self):
        r = fig10_breakdown.run(TINY, include_osp=False)
        assert set(r.summaries["fb-like"]) == set(fig10_breakdown.VARIANTS)
        assert fig10_breakdown.render(r)


class TestFig11:
    def test_structure(self):
        r = fig11_bins.run(TINY, include_osp=False)
        fb = r.per_trace["fb-like"]
        assert sum(fb.fractions.values()) == pytest.approx(1.0)
        assert set(fb.medians) == set(fig10_breakdown.VARIANTS)
        assert fig11_bins.render(r)


class TestFig13:
    def test_structure(self, tiny_fb):
        r = fig13_deviation.run(workload=tiny_fb)
        assert set(r.profiles) == {"aalo", "saath"}
        assert 0.0 <= r.in_sync_fraction("saath") <= 1.0
        assert fig13_deviation.render(r)


class TestFig14:
    def test_single_sweep_structure(self, tiny_fb):
        r = fig14_sensitivity.run(workload=tiny_fb, sweeps=("E",))
        assert set(r.sweeps) == {"E"}
        medians = r.sweeps["E"].medians
        assert set(medians) == set(fig14_sensitivity.EXPONENTS)
        for vals in medians.values():
            assert vals["saath"] > 0
        assert fig14_sensitivity.render(r)

    def test_deadline_sweep(self, tiny_fb):
        r = fig14_sensitivity.run(workload=tiny_fb, sweeps=("d",))
        assert set(r.sweeps["d"].medians) == set(
            fig14_sensitivity.DEADLINE_FACTORS
        )


class TestFig15:
    def test_structure(self, tiny_fb):
        r = fig15_testbed.run(workload=tiny_fb)
        assert 0.0 <= r.improved_fraction <= 1.0
        assert r.summary.count == len(r.speedups)
        assert fig15_testbed.render(r)


class TestFig16:
    def test_structure(self, tiny_fb):
        r = fig16_jct.run(workload=tiny_fb)
        assert "All" in r.buckets
        assert r.all_jobs_mean > 0
        assert fig16_jct.render(r)


class TestTable2:
    def test_structure(self, tiny_fb):
        r = table2_overhead.run(workload=tiny_fb, rounds=3)
        assert r.total_ms_avg > 0
        assert r.ordering_ms_avg >= 0
        assert 0 <= r.ordering_fraction <= 1
        assert r.rounds == 3
        assert table2_overhead.render(r)


class TestRegistryIntegration:
    @pytest.mark.parametrize("exp_id", ["fig13", "table2"])
    def test_run_and_render(self, exp_id):
        text = run_and_render(exp_id, TINY)
        assert len(text.splitlines()) > 3
