"""The paper's worked examples (Fig. 1, 4, 5, 8, 17) as executable checks."""

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.core.saath import SaathScheduler
from repro.experiments.toy import (
    ALL_SCENARIOS,
    PORT_RATE,
    UNIT_BYTES,
    fig1_out_of_sync,
    fig4_work_conservation,
    fig5_fast_transition,
    fig17_sjf_suboptimal,
)
from repro.schedulers.aalo import AaloScheduler
from repro.schedulers.queues import QueueTracker
from repro.simulator.engine import run_policy
from repro.simulator.flows import clone_coflows


def _cfg(**kw):
    defaults = dict(
        port_rate=PORT_RATE,
        queues=QueueConfig(num_queues=6, start_threshold=100 * UNIT_BYTES,
                           growth_factor=10.0),
        min_rate=1e-3,
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestScenarioRegistry:
    def test_all_scenarios_build(self):
        for name, builder in ALL_SCENARIOS.items():
            scenario = builder()
            assert scenario.name == name
            assert scenario.coflows

    def test_scenarios_run_under_saath_and_aalo(self):
        cfg = _cfg()
        for builder in ALL_SCENARIOS.values():
            scenario = builder()
            for scheduler in (SaathScheduler(cfg), AaloScheduler(cfg)):
                res = run_policy(scheduler,
                                 clone_coflows(scenario.coflows),
                                 scenario.fabric, cfg)
                assert len(res.coflows) == len(scenario.coflows)


class TestFig1OutOfSync:
    """Aalo's FIFO de-synchronises C1; Saath's all-or-none does not."""

    def test_aalo_desynchronises_c1(self):
        scenario = fig1_out_of_sync()
        cfg = _cfg()
        res = run_policy(AaloScheduler(cfg), clone_coflows(scenario.coflows),
                         scenario.fabric, cfg)
        c1 = res.coflow(1)
        fcts = sorted(f.finish_time for f in c1.flows)
        # Under per-port FIFO, C1 wins P1 immediately but loses P3... in
        # this layout C1 arrives first everywhere, so instead assert the
        # paper's average: Aalo ~1.75t vs optimal 1.25t.
        assert res.average_cct() >= 1.45  # in units of t (seconds)

    def test_saath_average_beats_aalo(self):
        scenario = fig1_out_of_sync()
        cfg = _cfg()
        aalo = run_policy(AaloScheduler(cfg), clone_coflows(scenario.coflows),
                          scenario.fabric, cfg)
        saath = run_policy(SaathScheduler(cfg),
                           clone_coflows(scenario.coflows),
                           scenario.fabric, cfg)
        assert saath.average_cct() <= aalo.average_cct() + 1e-9

    def test_saath_keeps_c1_in_sync(self):
        scenario = fig1_out_of_sync()
        cfg = _cfg()
        res = run_policy(SaathScheduler(cfg, work_conservation=False),
                         clone_coflows(scenario.coflows),
                         scenario.fabric, cfg)
        c1 = res.coflow(1)
        fcts = [f.finish_time for f in c1.flows]
        assert fcts[0] == pytest.approx(fcts[1])


class TestFig4WorkConservation:
    def test_pure_all_or_none_serialises(self):
        scenario = fig4_work_conservation()
        cfg = _cfg()
        res = run_policy(SaathScheduler(cfg, work_conservation=False),
                         clone_coflows(scenario.coflows),
                         scenario.fabric, cfg)
        # Paper Fig. 4(b): CCTs t, 2t, 3t -> average 2t.
        assert res.average_cct() == pytest.approx(2.0, abs=0.05)

    def test_work_conservation_improves_average(self):
        scenario = fig4_work_conservation()
        cfg = _cfg()
        plain = run_policy(SaathScheduler(cfg, work_conservation=False),
                           clone_coflows(scenario.coflows),
                           scenario.fabric, cfg)
        wc = run_policy(SaathScheduler(cfg),
                        clone_coflows(scenario.coflows),
                        scenario.fabric, cfg)
        # Paper Fig. 4(c): average drops from 2t to 1.67t.
        assert wc.average_cct() < plain.average_cct()
        assert wc.average_cct() == pytest.approx(5.0 / 3.0, rel=1e-2)


class TestFig5FastTransition:
    def test_per_flow_threshold_transitions_earlier(self):
        """C2 (width 4) crosses its queue threshold 4x sooner with the
        per-flow rule than with Aalo's total-bytes rule."""
        scenario = fig5_fast_transition()
        cfg = _cfg(queues=QueueConfig(num_queues=4,
                                      start_threshold=4 * UNIT_BYTES,
                                      growth_factor=10.0))
        c2 = next(c for c in scenario.coflows if c.coflow_id == 2)
        total = QueueTracker(cfg, metric="total")
        perflow = QueueTracker(cfg, metric="perflow")
        total.admit(c2, 0.0)
        perflow.admit(c2, 0.0)
        rates = {f.flow_id: PORT_RATE for f in c2.flows}
        t_total = total.next_transition_time(c2, rates)
        t_perflow = perflow.next_transition_time(c2, rates)
        # Total: 4t of bytes at 4 ports -> 1t. Per-flow share 1t at one
        # port -> 1t... with all 4 ports sending, total crosses at 1t and
        # per-flow at 1t too; the paper's Fig. 5 has only 2 of C2's 4 ports
        # active under Aalo. Reproduce that:
        two_port_rates = {c2.flows[0].flow_id: PORT_RATE,
                          c2.flows[1].flow_id: PORT_RATE}
        t_total_2 = total.next_transition_time(c2, two_port_rates)
        t_perflow_2 = perflow.next_transition_time(c2, two_port_rates)
        assert t_total_2 == pytest.approx(2.0)  # paper: 2t
        assert t_perflow_2 == pytest.approx(1.0)  # paper: t
        assert t_perflow <= t_total


class TestFig17SjfSuboptimal:
    def test_lwtf_matches_optimal_ordering(self):
        """The appendix's optimal schedule defers the high-contention C1;
        LWTF (clairvoyant t·k ordering) reproduces it exactly: C2 and C3
        run in parallel, C1 last, average CCT 8.33t."""
        from repro.schedulers.offline import LwtfScheduler

        scenario = fig17_sjf_suboptimal()
        cfg = _cfg()
        res = run_policy(LwtfScheduler(cfg),
                         clone_coflows(scenario.coflows),
                         scenario.fabric, cfg)
        assert res.cct(2) == pytest.approx(6.0, abs=0.05)
        assert res.cct(3) == pytest.approx(7.0, abs=0.05)
        assert res.cct(1) == pytest.approx(12.0, abs=0.05)
        optimal = scenario.paper_ccts["optimal"]
        assert res.average_cct() == pytest.approx(
            sum(optimal.values()) / 3, abs=0.05
        )

    def test_saath_defers_high_contention_coflow_initially(self):
        """Online Saath also starts C2/C3 ahead of the hub C1 (LCoF), even
        though without clairvoyance its later tie-breaks differ from the
        optimal (the Fig. 8 limitation)."""
        scenario = fig17_sjf_suboptimal()
        cfg = _cfg()
        res = run_policy(SaathScheduler(cfg),
                         clone_coflows(scenario.coflows),
                         scenario.fabric, cfg)
        # C2 runs unobstructed from the start.
        assert res.cct(2) == pytest.approx(6.0, abs=0.05)
        # C1 (contention 2) yields to the spokes and finishes deep in the
        # schedule (the spokes' combined span is ~6-7t; C1 adds its 5t).
        assert res.cct(1) >= 10.5
