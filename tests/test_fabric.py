"""Fabric geometry and the port-capacity ledger."""

import pytest

from repro.errors import CapacityViolationError, ConfigError
from repro.simulator.fabric import Fabric, PortLedger


class TestFabricGeometry:
    def test_port_id_scheme(self):
        fab = Fabric(num_machines=4, port_rate=100.0)
        assert fab.sender_port(0) == 0
        assert fab.sender_port(3) == 3
        assert fab.receiver_port(0) == 4
        assert fab.receiver_port(3) == 7
        assert fab.num_ports == 8

    def test_port_direction_predicates(self):
        fab = Fabric(num_machines=3, port_rate=1.0)
        assert fab.is_sender_port(2)
        assert not fab.is_sender_port(3)
        assert fab.is_receiver_port(5)
        assert not fab.is_receiver_port(2)

    def test_machine_of_round_trip(self):
        fab = Fabric(num_machines=5, port_rate=1.0)
        for m in range(5):
            assert fab.machine_of(fab.sender_port(m)) == m
            assert fab.machine_of(fab.receiver_port(m)) == m

    def test_machine_of_out_of_range(self):
        fab = Fabric(num_machines=2, port_rate=1.0)
        with pytest.raises(ConfigError):
            fab.machine_of(4)

    def test_capacity_uniform(self):
        fab = Fabric(num_machines=3, port_rate=42.0)
        assert all(fab.capacity(p) == 42.0 for p in fab.all_ports())

    def test_too_few_machines(self):
        with pytest.raises(ConfigError):
            Fabric(num_machines=1, port_rate=1.0)

    def test_bad_port_rate(self):
        with pytest.raises(ConfigError):
            Fabric(num_machines=2, port_rate=0.0)


class TestPortLedger:
    def test_residual_starts_at_capacity(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        assert ledger.residual(0) == 100.0

    def test_commit_reserves_both_ends(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        ledger.commit(src=0, dst=3, rate=30.0)
        assert ledger.residual(0) == pytest.approx(70.0)
        assert ledger.residual(3) == pytest.approx(70.0)
        assert ledger.residual(1) == 100.0

    def test_overcommit_raises(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        ledger.commit(0, 3, 80.0)
        with pytest.raises(CapacityViolationError):
            ledger.commit(0, 2, 30.0)

    def test_tiny_float_overshoot_tolerated(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        for _ in range(10):
            ledger.commit(0, 3, 10.0 + 1e-13)
        assert ledger.residual(0) == pytest.approx(0.0, abs=1e-9)

    def test_has_capacity(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        assert ledger.has_capacity(0, 100.0)
        ledger.commit(0, 3, 99.5)
        assert ledger.has_capacity(0, 0.5)
        assert not ledger.has_capacity(0, 1.0)

    def test_zero_rate_commit_is_noop(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        ledger.commit(0, 3, 0.0)
        assert ledger.used(0) == 0.0

    def test_negative_rate_rejected(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        with pytest.raises(ConfigError):
            PortLedger(fab).commit(0, 3, -1.0)

    def test_capacity_override(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab, capacity_override={0: 10.0})
        assert ledger.residual(0) == 10.0
        assert ledger.residual(1) == 100.0

    def test_negative_override_rejected(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        with pytest.raises(ConfigError):
            PortLedger(fab, capacity_override={0: -5.0})

    def test_snapshot_residuals(self):
        fab = Fabric(num_machines=2, port_rate=100.0)
        ledger = PortLedger(fab)
        ledger.commit(1, 2, 25.0)
        snap = ledger.snapshot_residuals()
        assert snap[1] == pytest.approx(75.0)
        assert snap[0] == 100.0
        assert len(snap) == fab.num_ports
