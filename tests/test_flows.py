"""Flow/CoFlow data model."""

import math

import pytest

from repro.errors import ConfigError
from repro.simulator.flows import CoFlow, Flow, clone_coflows, make_coflow


def _flow(fid=0, cid=0, src=0, dst=10, volume=100.0, **kw):
    return Flow(flow_id=fid, coflow_id=cid, src=src, dst=dst,
                volume=volume, **kw)


class TestFlow:
    def test_initial_state(self):
        f = _flow()
        assert f.remaining == 100.0
        assert not f.finished
        assert f.rate == 0.0

    def test_advance_progresses_at_rate(self):
        f = _flow(volume=100.0)
        f.rate = 10.0
        f.advance(3.0)
        assert f.bytes_sent == pytest.approx(30.0)
        assert f.remaining == pytest.approx(70.0)

    def test_advance_caps_at_volume(self):
        f = _flow(volume=10.0)
        f.rate = 100.0
        f.advance(1.0)
        assert f.bytes_sent == 10.0

    def test_advance_zero_rate_is_noop(self):
        f = _flow()
        f.advance(5.0)
        assert f.bytes_sent == 0.0

    def test_advance_negative_duration_raises(self):
        with pytest.raises(ValueError):
            _flow().advance(-1.0)

    def test_time_to_completion(self):
        f = _flow(volume=100.0)
        f.rate = 25.0
        assert f.time_to_completion() == pytest.approx(4.0)

    def test_time_to_completion_idle_is_inf(self):
        assert math.isinf(_flow().time_to_completion())

    def test_fct_requires_finish(self):
        f = _flow()
        with pytest.raises(ValueError):
            f.fct(0.0)
        f.finish_time = 7.5
        assert f.fct(2.5) == pytest.approx(5.0)

    def test_same_src_dst_rejected(self):
        with pytest.raises(ConfigError):
            Flow(flow_id=0, coflow_id=0, src=3, dst=3, volume=1.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigError):
            _flow(volume=-1.0)


class TestCoFlow:
    def _coflow(self):
        return make_coflow(5, 1.0, [(0, 10, 100.0), (1, 11, 50.0),
                                    (0, 12, 25.0)])

    def test_width_and_volumes(self):
        c = self._coflow()
        assert c.width == 3
        assert c.total_volume == pytest.approx(175.0)
        assert c.max_flow_volume == pytest.approx(100.0)

    def test_ports_are_union_of_senders_and_receivers(self):
        c = self._coflow()
        assert c.sender_ports() == {0, 1}
        assert c.receiver_ports() == {10, 11, 12}
        assert c.ports() == {0, 1, 10, 11, 12}

    def test_flows_at_sender(self):
        c = self._coflow()
        assert len(c.flows_at_sender(0)) == 2
        assert len(c.flows_at_sender(1)) == 1
        assert c.flows_at_sender(9) == []

    def test_progress_metrics(self):
        c = self._coflow()
        c.flows[0].bytes_sent = 40.0
        c.flows[1].bytes_sent = 10.0
        assert c.bytes_sent == pytest.approx(50.0)
        assert c.max_flow_bytes_sent == pytest.approx(40.0)
        assert c.remaining == pytest.approx(125.0)

    def test_cct_requires_finish(self):
        c = self._coflow()
        with pytest.raises(ValueError):
            c.cct()
        c.finish_time = 4.0
        assert c.cct() == pytest.approx(3.0)

    def test_bottleneck_remaining_aggregates_per_port(self):
        c = self._coflow()
        # Sender 0 carries flows of 100 + 25 = 125 remaining bytes.
        assert c.bottleneck_remaining_bytes() == pytest.approx(125.0)

    def test_bottleneck_ignores_finished_flows(self):
        c = self._coflow()
        c.flows[0].bytes_sent = 100.0
        c.flows[0].finish_time = 2.0
        assert c.bottleneck_remaining_bytes() == pytest.approx(50.0)

    def test_mismatched_flow_coflow_id_rejected(self):
        flow = Flow(flow_id=0, coflow_id=99, src=0, dst=10, volume=1.0)
        with pytest.raises(ConfigError):
            CoFlow(coflow_id=5, arrival_time=0.0, flows=[flow])

    def test_iteration_and_len(self):
        c = self._coflow()
        assert len(c) == 3
        assert [f.flow_id for f in c] == [0, 1, 2]

    def test_empty_coflow_rejected_by_make(self):
        with pytest.raises(ConfigError):
            make_coflow(0, 0.0, [])


class TestCloneCoflows:
    def test_clone_resets_dynamic_state(self):
        c = make_coflow(1, 0.5, [(0, 10, 100.0)])
        c.flows[0].bytes_sent = 60.0
        c.flows[0].rate = 5.0
        c.flows[0].finish_time = 9.0
        c.finish_time = 9.0
        (fresh,) = clone_coflows([c])
        assert fresh.flows[0].bytes_sent == 0.0
        assert fresh.flows[0].rate == 0.0
        assert fresh.flows[0].finish_time is None
        assert fresh.finish_time is None

    def test_clone_preserves_static_description(self):
        c = make_coflow(1, 0.5, [(0, 10, 100.0), (2, 11, 7.0)],
                        depends_on=(), job_id=3)
        (fresh,) = clone_coflows([c])
        assert fresh.coflow_id == c.coflow_id
        assert fresh.arrival_time == c.arrival_time
        assert fresh.job_id == 3
        assert [f.volume for f in fresh.flows] == [100.0, 7.0]
        assert [f.flow_id for f in fresh.flows] == [0, 1]

    def test_clone_is_independent(self):
        c = make_coflow(1, 0.0, [(0, 10, 100.0)])
        (fresh,) = clone_coflows([c])
        fresh.flows[0].bytes_sent = 50.0
        assert c.flows[0].bytes_sent == 0.0
