"""Queue geometry and simulation configuration."""

import math

import pytest

from repro.config import (
    PAPER_DEFAULTS,
    PAPER_SYNC_INTERVAL,
    QueueConfig,
    SimulationConfig,
)
from repro.errors import ConfigError
from repro.units import MB


class TestQueueThresholds:
    def test_first_queue_spans_zero_to_start(self):
        q = QueueConfig(num_queues=10, start_threshold=10 * MB,
                        growth_factor=10)
        assert q.lo_threshold(0) == 0.0
        assert q.hi_threshold(0) == 10 * MB

    def test_exponential_growth(self):
        q = QueueConfig(start_threshold=10 * MB, growth_factor=10)
        assert q.hi_threshold(1) == pytest.approx(100 * MB)
        assert q.hi_threshold(2) == pytest.approx(1000 * MB)

    def test_last_queue_unbounded(self):
        q = QueueConfig(num_queues=4)
        assert math.isinf(q.hi_threshold(3))

    def test_lo_equals_previous_hi(self):
        q = QueueConfig(num_queues=6)
        for i in range(1, 5):
            assert q.lo_threshold(i) == pytest.approx(q.hi_threshold(i - 1))

    def test_queue_index_out_of_range(self):
        q = QueueConfig(num_queues=3)
        with pytest.raises(ConfigError):
            q.hi_threshold(3)
        with pytest.raises(ConfigError):
            q.lo_threshold(-1)


class TestQueueForBytes:
    def test_zero_bytes_in_queue_zero(self):
        q = QueueConfig()
        assert q.queue_for_bytes(0.0) == 0

    def test_below_start_threshold(self):
        q = QueueConfig(start_threshold=10 * MB)
        assert q.queue_for_bytes(9.99 * MB) == 0

    def test_exactly_at_threshold_moves_down(self):
        q = QueueConfig(start_threshold=10 * MB, growth_factor=10)
        assert q.queue_for_bytes(10 * MB) == 1

    def test_middle_queue(self):
        q = QueueConfig(start_threshold=10 * MB, growth_factor=10)
        assert q.queue_for_bytes(500 * MB) == 2  # [100MB, 1000MB)

    def test_huge_bytes_land_in_last_queue(self):
        q = QueueConfig(num_queues=5, start_threshold=10 * MB)
        assert q.queue_for_bytes(1e18) == 4

    def test_negative_bytes_raise(self):
        with pytest.raises(ConfigError):
            QueueConfig().queue_for_bytes(-1.0)

    def test_consistency_with_thresholds(self):
        q = QueueConfig(num_queues=8, start_threshold=5 * MB, growth_factor=4)
        for b in [0, 1 * MB, 5 * MB, 19 * MB, 20 * MB, 333 * MB, 1e15]:
            idx = q.queue_for_bytes(b)
            assert q.lo_threshold(idx) <= b
            assert b < q.hi_threshold(idx)


class TestPerFlowQueueRule:
    """Saath's Eq. 1: thresholds divided by coflow width."""

    def test_wide_coflow_demotes_earlier(self):
        q = QueueConfig(start_threshold=200 * MB, growth_factor=10)
        # Paper example: 200MB threshold, 100 flows -> 2MB per-flow share.
        assert q.queue_for_per_flow_bytes(1.9 * MB, width=100) == 0
        assert q.queue_for_per_flow_bytes(2.1 * MB, width=100) == 1

    def test_single_flow_matches_total_rule(self):
        q = QueueConfig()
        for b in [0, 3 * MB, 50 * MB, 5000 * MB]:
            assert q.queue_for_per_flow_bytes(b, width=1) == q.queue_for_bytes(b)

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            QueueConfig().queue_for_per_flow_bytes(1.0, width=0)


class TestMinResidencyTime:
    def test_first_queue_residency(self):
        q = QueueConfig(start_threshold=10 * MB, growth_factor=10)
        t = q.min_residency_time(0, port_rate=10 * MB)
        assert t == pytest.approx(1.0)

    def test_last_queue_residency_is_finite(self):
        q = QueueConfig(num_queues=3)
        assert math.isfinite(q.min_residency_time(2, port_rate=1e8))


class TestQueueConfigValidation:
    def test_bad_num_queues(self):
        with pytest.raises(ConfigError):
            QueueConfig(num_queues=0)

    def test_bad_start_threshold(self):
        with pytest.raises(ConfigError):
            QueueConfig(start_threshold=0.0)

    def test_bad_growth_factor(self):
        with pytest.raises(ConfigError):
            QueueConfig(growth_factor=1.0)


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        cfg = PAPER_DEFAULTS
        assert cfg.queues.num_queues == 10
        assert cfg.queues.start_threshold == 10 * MB
        assert cfg.queues.growth_factor == 10
        assert cfg.deadline_factor == 2.0
        assert PAPER_SYNC_INTERVAL == pytest.approx(0.008)

    def test_with_updates_returns_new_config(self):
        cfg = SimulationConfig()
        cfg2 = cfg.with_updates(sync_interval=0.008)
        assert cfg.sync_interval == 0.0
        assert cfg2.sync_interval == 0.008

    def test_negative_sync_interval_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(sync_interval=-1.0)

    def test_bad_deadline_factor_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(deadline_factor=0.0)

    def test_none_deadline_factor_allowed(self):
        assert SimulationConfig(deadline_factor=None).deadline_factor is None

    def test_bad_contention_scope_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(contention_scope="port")

    def test_bad_port_rate_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(port_rate=0.0)
