"""Unit tests for the fault-tolerance primitives (repro.resilience)."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    EXCEPTION,
    OK,
    TIMEOUT,
    WORKER_LOST,
    Attempt,
    RetryPolicy,
    RunFailure,
    SweepLog,
    Watchdog,
    format_exception_chain,
)


# ---- RetryPolicy -----------------------------------------------------------


def test_retry_policy_defaults_are_valid():
    p = RetryPolicy()
    assert p.max_attempts == 3
    assert p.timeout is None


@pytest.mark.parametrize("kwargs, fragment", [
    (dict(max_attempts=0), "max_attempts must be >= 1"),
    (dict(base_delay=-0.1), "base_delay must be >= 0"),
    (dict(backoff=0.5), "backoff must be >= 1"),
    (dict(jitter=1.5), "jitter must be in [0, 1]"),
    (dict(timeout=0), "timeout must be positive"),
    (dict(timeout=-3), "timeout must be positive"),
])
def test_retry_policy_validation(kwargs, fragment):
    with pytest.raises(ConfigError) as err:
        RetryPolicy(**kwargs)
    assert fragment in str(err.value)


def test_first_attempt_is_free():
    p = RetryPolicy(base_delay=1.0)
    assert p.delay_before(1, "k") == 0.0


def test_zero_base_delay_disables_backoff():
    p = RetryPolicy(base_delay=0.0)
    assert p.delay_before(5, "k") == 0.0


def test_backoff_grows_exponentially_and_caps():
    p = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.3, jitter=0.0)
    assert p.delay_before(2) == pytest.approx(0.1)
    assert p.delay_before(3) == pytest.approx(0.2)
    assert p.delay_before(4) == pytest.approx(0.3)  # capped
    assert p.delay_before(10) == pytest.approx(0.3)


def test_jitter_is_deterministic_and_bounded():
    p = RetryPolicy(base_delay=0.1, jitter=0.25, jitter_seed=42)
    a = p.delay_before(3, "key-a")
    assert a == p.delay_before(3, "key-a")  # pure function
    # different key / attempt / seed give different (still bounded) jitter
    b = p.delay_before(3, "key-b")
    c = RetryPolicy(base_delay=0.1, jitter=0.25, jitter_seed=7).delay_before(
        3, "key-a")
    assert a != b or a != c
    base = 0.2
    for d in (a, b, c):
        assert base * 0.75 <= d <= base * 1.25


# ---- failure taxonomy ------------------------------------------------------


def test_format_exception_chain_walks_causes():
    try:
        try:
            raise ValueError("inner")
        except ValueError as inner:
            raise RuntimeError("outer") from inner
    except RuntimeError as exc:
        chain = format_exception_chain(exc)
    assert chain == "RuntimeError: outer <- ValueError: inner"


def test_format_exception_chain_handles_cycles():
    a = ValueError("a")
    b = ValueError("b")
    a.__cause__ = b
    b.__cause__ = a
    chain = format_exception_chain(a)
    assert chain.count("ValueError") == 2  # cycle guard stops the walk


def test_attempt_record_shapes():
    ok = Attempt(1, OK, 0.5)
    bad = Attempt(2, EXCEPTION, 0.25, "ValueError: boom")
    assert ok.as_record() == {"n": 1, "kind": "ok", "elapsed": 0.5}
    assert bad.as_record()["error"] == "ValueError: boom"


def test_run_failure_is_marked_failed():
    f = RunFailure(spec="spec", kind=WORKER_LOST,
                   attempts=[Attempt(1, WORKER_LOST, 0.1, "x")],
                   error="x", elapsed=0.1)
    assert f.failed
    assert not f.from_cache


# ---- Watchdog --------------------------------------------------------------


def test_watchdog_without_timeout_never_expires():
    w = Watchdog(None)
    w.started("a")
    assert w.expired() == []
    assert w.wait_budget() is None
    assert w.finished("a") >= 0.0


def test_watchdog_expires_overdue_tasks():
    w = Watchdog(0.01)
    w.started("slow")
    time.sleep(0.03)
    w.started("fresh")
    assert w.expired() == ["slow"]
    budget = w.wait_budget()
    assert budget == 0.0  # the earliest deadline has already passed


def test_watchdog_finished_returns_elapsed_and_stops_tracking():
    w = Watchdog(10.0)
    w.started("a")
    time.sleep(0.01)
    elapsed = w.finished("a")
    assert elapsed >= 0.01
    assert w.expired() == []
    assert w.finished("a") == 0.0  # unknown key after removal


# ---- SweepLog --------------------------------------------------------------


def test_sweep_log_appends_json_lines(tmp_path):
    path = tmp_path / "logs" / "sweep.jsonl"
    with SweepLog(path) as log:
        log.write({"event": "sweep-start", "n": 2})
        log.write({"event": "run", "policy": "saath"})
    with SweepLog(path) as log:  # append mode: a second sweep adds lines
        log.write({"event": "sweep-end"})
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["event"] for r in records] == [
        "sweep-start", "run", "sweep-end"]
    assert records[0]["n"] == 2
