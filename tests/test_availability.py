"""Data (un)availability — §4.3 pipelined compute/communication."""

import pytest

from repro.config import SimulationConfig
from repro.core.saath import SaathScheduler
from repro.rng import make_rng
from repro.simulator.engine import Simulator, run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow
from repro.simulator.state import ClusterState
from repro.workloads.synthetic import add_pipelined_availability
from repro.errors import ConfigError


def _fabric():
    return Fabric(num_machines=6, port_rate=100.0)


def _cfg(**kw):
    defaults = dict(port_rate=100.0, min_rate=1e-3)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestSchedulableFlows:
    def test_unavailable_flows_hidden(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0),
                                 (1, fab.receiver_port(2), 100.0)])
        c.flows[1].available_time = 5.0
        state = ClusterState(fabric=fab, active_coflows=[c])
        visible = state.schedulable_flows(c, now=1.0)
        assert [f.flow_id for f in visible] == [0]
        visible_later = state.schedulable_flows(c, now=5.0)
        assert len(visible_later) == 2

    def test_oblivious_mode_shows_everything(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        c.flows[0].available_time = 5.0
        state = ClusterState(fabric=fab, active_coflows=[c],
                             respect_availability=False)
        assert len(state.schedulable_flows(c, now=0.0)) == 1


class TestEngineGuard:
    def test_unavailable_flow_never_progresses_early(self):
        """Even an availability-oblivious scheduler cannot move absent
        bytes: the engine zeroes the rate."""
        fab = _fabric()
        cfg = _cfg()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        c.flows[0].available_time = 2.0
        sim = Simulator(fab, SaathScheduler(cfg), cfg)
        sim.state.respect_availability = False
        res = sim.run([c])
        # Data exists only at t=2; transfer takes 1s.
        assert res.cct(0) == pytest.approx(3.0)

    def test_aware_coordinator_reuses_slot(self):
        """Availability-aware scheduling gives the blocked coflow's slot to
        another coflow instead of wasting it (§4.3's point)."""
        fab = _fabric()
        cfg = _cfg()

        def build():
            blocked = make_coflow(
                0, 0.0, [(0, fab.receiver_port(1), 100.0)], flow_id_start=0,
            )
            blocked.flows[0].available_time = 1.0  # data late by 1s
            ready = make_coflow(
                1, 0.0, [(0, fab.receiver_port(2), 100.0)], flow_id_start=10,
            )
            return [blocked, ready]

        aware = run_policy(SaathScheduler(cfg), build(), fab, cfg)
        # Aware: 'ready' uses the sender immediately (CCT 1s); 'blocked'
        # starts when both its data exists and the port frees (t=1) -> 2s.
        assert aware.cct(1) == pytest.approx(1.0)
        assert aware.cct(0) == pytest.approx(2.0)

        sim = Simulator(fab, SaathScheduler(cfg), cfg)
        sim.state.respect_availability = False
        oblivious = sim.run(build())
        # Oblivious: the blocked coflow (earlier arrival, lower id) keeps
        # winning the sender and wasting it until t=1.
        assert oblivious.cct(1) >= 1.9
        assert oblivious.average_cct() > aware.average_cct()


class TestPipelinedWorkloadHelper:
    def test_fraction_of_flows_delayed(self):
        fab = _fabric()
        coflows = [
            make_coflow(i, 0.5, [(0, fab.receiver_port(1), 10.0),
                                 (1, fab.receiver_port(2), 10.0)],
                        flow_id_start=10 * i)
            for i in range(10)
        ]
        add_pipelined_availability(coflows, make_rng(1), fraction=0.5,
                                   max_delay=1.0)
        delayed = [
            f for c in coflows for f in c.flows if f.available_time > 0
        ]
        assert len(delayed) == 10  # 50% of 20 flows
        for c in coflows:
            for f in c.flows:
                if f.available_time:
                    assert c.arrival_time <= f.available_time \
                        <= c.arrival_time + 1.0

    def test_zero_fraction_noop(self):
        fab = _fabric()
        coflows = [make_coflow(0, 0.0, [(0, fab.receiver_port(1), 10.0)])]
        add_pipelined_availability(coflows, make_rng(1), fraction=0.0)
        assert coflows[0].flows[0].available_time == 0.0

    def test_bad_arguments(self):
        with pytest.raises(ConfigError):
            add_pipelined_availability([], make_rng(1), fraction=2.0)
        with pytest.raises(ConfigError):
            add_pipelined_availability([], make_rng(1), max_delay=-1.0)

    def test_end_to_end_with_pipelining(self):
        from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

        spec = fb_like_spec(num_machines=12, num_coflows=20)
        coflows = WorkloadGenerator(spec, seed=6).generate_coflows()
        add_pipelined_availability(coflows, make_rng(6), fraction=0.3,
                                   max_delay=0.2)
        cfg = SimulationConfig()
        res = run_policy(SaathScheduler(cfg), coflows, spec.make_fabric(), cfg)
        assert len(res.coflows) == 20
        # No flow may finish before its data plus transfer time allows.
        for c in res.coflows:
            for f in c.flows:
                lower = f.available_time + f.volume / spec.port_rate
                assert f.finish_time >= lower - 1e-6
