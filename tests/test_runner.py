"""Sweep-runner tests: determinism under process fan-out, caching, dedup.

The runner's contract is that a :class:`RunSpec` fully determines its
outcome: inline execution, process-pool execution and cache replay must all
yield bit-identical CCT maps. These tests pin that contract, plus the cache
round-trip and the CLI-facing helpers.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.experiments import runner as runner_mod
from repro.experiments.common import (
    ExperimentScale,
    ccts_under,
    fb_workload,
    run_policy_on,
)
from repro.experiments.runner import (
    ResultCache,
    RunSpec,
    SweepRunner,
    WorkloadSpec,
    execute_spec,
    fan_out_seeds,
)
from repro.errors import ReproError, RunFailedError, SweepInterrupted
from repro.resilience import RetryPolicy
from repro.testing import chaos

SMALL_WORKLOAD = WorkloadSpec(family="fb-like", machines=10, coflows=20,
                              seed=3)


def _spec(policy="saath", **kw) -> RunSpec:
    return RunSpec(policy=policy, workload=SMALL_WORKLOAD, **kw)


def test_execute_spec_is_deterministic():
    a = execute_spec(_spec())
    b = execute_spec(_spec())
    assert a.ccts == b.ccts
    assert a.makespan == b.makespan
    assert a.reschedules == b.reschedules


def test_process_fanout_matches_inline():
    specs = [_spec("saath"), _spec("aalo"), _spec("uc-tcp")]
    inline = SweepRunner(jobs=1).run(specs)
    fanned = SweepRunner(jobs=2).run(specs)
    for i, f in zip(inline, fanned):
        assert i.spec == f.spec
        assert i.ccts == f.ccts
        assert i.makespan == f.makespan
        assert i.reschedules == f.reschedules


def test_results_return_in_input_order():
    specs = [_spec("aalo"), _spec("saath"), _spec("aalo")]
    outcomes = SweepRunner(jobs=2).run(specs)
    assert [o.spec.policy for o in outcomes] == ["aalo", "saath", "aalo"]


def test_duplicate_specs_computed_once(tmp_path):
    runner = SweepRunner(jobs=1, cache_dir=tmp_path)
    outcomes = runner.run([_spec(), _spec(), _spec()])
    assert len({id(o) for o in outcomes}) == 1  # one shared outcome
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_cache_round_trip(tmp_path):
    first = SweepRunner(jobs=1, cache_dir=tmp_path).run([_spec()])[0]
    assert not first.from_cache
    replay_runner = SweepRunner(jobs=1, cache_dir=tmp_path)
    replay = replay_runner.run([_spec()])[0]
    assert replay.from_cache
    assert replay_runner.cache.hits == 1
    assert replay.ccts == first.ccts  # bit-identical through JSON
    assert replay.makespan == first.makespan
    assert replay.reschedules == first.reschedules


def test_cache_key_distinguishes_runs():
    base = _spec()
    assert base.cache_key() == _spec().cache_key()
    assert base.cache_key() != _spec("aalo").cache_key()
    assert base.cache_key() != _spec(
        config=SimulationConfig(sync_interval=0.008)
    ).cache_key()
    assert base.cache_key() != _spec(arrival_scale=2.0).cache_key()
    reseeded = fan_out_seeds(base, [99])[0]
    assert base.cache_key() != reseeded.cache_key()


def test_corrupt_cache_entry_recomputes(tmp_path):
    runner = SweepRunner(jobs=1, cache_dir=tmp_path)
    good = runner.run([_spec()])[0]
    path = tmp_path / f"{_spec().cache_key()}.json"
    path.write_text("{not json")
    again = SweepRunner(jobs=1, cache_dir=tmp_path).run([_spec()])[0]
    assert not again.from_cache
    assert again.ccts == good.ccts
    # The recompute repaired the cache entry.
    assert json.loads(path.read_text())["reschedules"] == good.reschedules


def test_fan_out_seeds():
    specs = fan_out_seeds(_spec(), range(5, 8))
    assert [s.workload.seed for s in specs] == [5, 6, 7]
    assert all(s.policy == "saath" for s in specs)
    outcomes = SweepRunner(jobs=1).run(specs)
    # Different seeds generate different workloads.
    assert outcomes[0].ccts != outcomes[1].ccts


def test_ccts_under_uses_runner_and_matches_inline():
    workload = fb_workload(ExperimentScale.TINY, seed=3)
    assert workload.spec is not None
    via_runner = ccts_under(workload, ["saath", "aalo"])
    inline = {
        p: run_policy_on(workload, p).ccts() for p in ["saath", "aalo"]
    }
    assert via_runner == inline


def test_customised_spec_gets_no_provenance():
    """A workload with non-default knobs must NOT be rebuilt from the
    compact (family, machines, coflows, seed) recipe — the runner would
    silently substitute default knobs."""
    from repro.experiments.common import build_workload
    from repro.workloads.synthetic import fb_like_spec

    canonical = build_workload(fb_like_spec(num_machines=10, num_coflows=20))
    assert canonical.spec is not None
    customised = build_workload(
        fb_like_spec(num_machines=10, num_coflows=20, load=0.9)
    )
    assert customised.spec is None  # stays on the inline path


def test_default_jobs_is_sequential(monkeypatch):
    monkeypatch.delenv("REPRO_RUNNER_JOBS", raising=False)
    assert runner_mod.default_jobs() == 1
    monkeypatch.setenv("REPRO_RUNNER_JOBS", "3")
    assert runner_mod.default_jobs() == 3


def test_workload_spec_validation():
    with pytest.raises(ReproError):
        WorkloadSpec(family="nope", machines=4, coflows=4)
    with pytest.raises(ReproError):
        SweepRunner(jobs=0)


def test_result_cache_survives_missing_dir(tmp_path):
    cache = ResultCache(tmp_path / "deep" / "nested")
    assert cache.get(_spec()) is None
    outcome = execute_spec(_spec())
    cache.put(outcome)
    assert cache.get(_spec()).ccts == outcome.ccts


# ---- resilience regressions -------------------------------------------------


def test_schema_drift_cache_entry_is_quarantined(tmp_path):
    """A cache file that *parses* but lacks the expected keys must count
    as a miss (quarantined aside), never crash the sweep."""
    cache = ResultCache(tmp_path)
    outcome = execute_spec(_spec())
    cache.put(outcome)
    path = tmp_path / f"{_spec().cache_key()}.json"
    path.write_text(json.dumps({"schema": "from-the-future", "v": 2}))
    assert cache.get(_spec()) is None
    assert cache.quarantined == 1
    assert not path.exists()
    assert path.with_suffix(".corrupt").exists()
    # a recompute repairs the entry in place
    cache.put(outcome)
    assert cache.get(_spec()).ccts == outcome.ccts


def test_interrupted_sweep_keeps_finished_results(tmp_path, monkeypatch):
    """Regression for the result-loss bug: kill the sweep mid-batch and
    every already-finished spec must be a cache hit on the rerun."""
    specs = [_spec("saath"), _spec("aalo"), _spec("uc-tcp")]
    real = runner_mod.execute_spec

    def interrupt_last(spec):
        if spec.policy == "uc-tcp":
            raise KeyboardInterrupt
        return real(spec)

    monkeypatch.setattr(runner_mod, "execute_spec", interrupt_last)
    with pytest.raises(SweepInterrupted) as err:
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs)
    assert err.value.completed == 2
    assert err.value.total == 3
    assert "persisted to the cache" in str(err.value)

    monkeypatch.setattr(runner_mod, "execute_spec", real)
    replay = SweepRunner(jobs=1, cache_dir=tmp_path)
    outcomes = replay.run(specs)
    assert replay.cache.hits == 2  # the finished prefix survived the kill
    assert [o.from_cache for o in outcomes] == [True, True, False]


def test_failed_sweep_keeps_finished_results(tmp_path, monkeypatch):
    """Same guarantee when the sweep *fails* (strict mode) rather than
    being interrupted: completed runs are already on disk."""
    specs = [_spec("saath"), _spec("aalo"), _spec("uc-tcp")]
    directory = chaos.arm(
        [{"site": "worker", "action": "exception", "times": 5,
          "policy": "uc-tcp"}],
        tmp_path / "chaos")
    monkeypatch.setenv(chaos.ENV_VAR, str(directory))
    runner = SweepRunner(
        jobs=1, cache_dir=tmp_path / "cache",
        retry=RetryPolicy(max_attempts=2, base_delay=0.0), strict=True)
    with pytest.raises(RunFailedError):
        runner.run(specs)

    monkeypatch.delenv(chaos.ENV_VAR)
    replay = SweepRunner(jobs=1, cache_dir=tmp_path / "cache")
    outcomes = replay.run(specs)
    assert replay.cache.hits == 2
    assert all(not o.failed for o in outcomes)


def test_each_completion_is_persisted_immediately(tmp_path, monkeypatch):
    """Outcomes stream into the cache the moment they finish — not in a
    single batch at sweep end."""
    specs = [_spec("saath"), _spec("aalo")]
    real = runner_mod.execute_spec
    on_disk_at_second_run = []

    def spying(spec):
        if spec.policy == "aalo":
            on_disk_at_second_run.append(
                sorted(p.name for p in tmp_path.glob("*.json")))
        return real(spec)

    monkeypatch.setattr(runner_mod, "execute_spec", spying)
    SweepRunner(jobs=1, cache_dir=tmp_path).run(specs)
    assert on_disk_at_second_run == [
        [f"{specs[0].cache_key()}.json"]]
