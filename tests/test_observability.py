"""Observability layer: tracing, metrics, profiling — and non-perturbation.

The layer's core promise is that instrumentation only *reads* simulation
state: attaching a :class:`~repro.observability.Tracer`, a
:class:`~repro.observability.MetricsRegistry` and
:class:`~repro.observability.PhaseTimers` must leave every run
byte-identical to its uninstrumented twin — including the hazardous cases
(a ``port``-category tracer forcing the Python kernel twins while fastcore
is built, streaming scenarios, snapshot/restore). This module pins that
promise with the same fingerprint fuzz the engine-path firewall uses, plus
unit coverage for the three pillars, the trace-file schemas (validated
with the actual CI gate, ``tools/check_trace.py``), the ``observer=``
telemetry hook, sweep metrics plumbing, the fastcore warn-once latch and
pre-observability checkpoint compatibility.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import warnings
from pathlib import Path

import pytest

from repro import _fastcore
from repro.analysis.telemetry import TelemetryRecorder
from repro.config import SimulationConfig
from repro.experiments.runner import (
    METRICS_ENV,
    ResultCache,
    RunSpec,
    SweepRunner,
    WorkloadSpec,
    execute_spec,
)
from repro.observability import (
    CATEGORIES,
    MetricsRegistry,
    PhaseTimers,
    Tracer,
    aggregate_metrics,
)
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.engine import run_policy, run_scenario
from repro.simulator.flows import clone_coflows
from repro.simulator.scenario import Scenario
from repro.simulator.session import SimulationSession

from test_fuzz_equivalence import fingerprint, random_workload

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_tool(name: str):
    """Import a tools/ script as a module (they self-insert src on sys.path)."""
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cfg(**kw) -> SimulationConfig:
    kw.setdefault("sync_interval", 8e-3)
    return SimulationConfig(**kw)


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_summaries(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.set_gauge("g", 0.5)
        for v in (1.0, 3.0, 2.0):
            reg.observe("s", v)
        assert reg.counter("a") == 3.0
        assert reg.counter("missing") == 0.0
        assert reg.gauge("g") == 0.5
        cell = reg.summary("s")
        assert cell["count"] == 3
        assert cell["mean"] == 2.0
        assert cell["min"] == 1.0
        assert cell["max"] == 3.0

    def test_empty_registry_is_truthy(self):
        # `if metrics:` at a hook site must not silently disable an
        # attached-but-still-empty registry; hooks gate on `is not None`.
        assert bool(MetricsRegistry())

    def test_roundtrip_and_merge(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        reg.set_gauge("g", 7.0)
        reg.observe("s", 2.0)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()
        clone.merge(reg)
        assert clone.counter("c") == 8.0
        assert clone.summary("s")["count"] == 2
        path = tmp_path / "m.json"
        reg.save(str(path))
        assert MetricsRegistry.load(str(path)).to_dict() == reg.to_dict()

    def test_aggregate_skips_none(self):
        a = MetricsRegistry()
        a.inc("x")
        b = MetricsRegistry()
        b.inc("x", 2)
        rollup = aggregate_metrics([a, None, b])
        assert rollup.counter("x") == 3.0

    def test_deepcopy_and_pickle_survive(self):
        # Unlike tracers/timers, the registry is plain data: snapshots and
        # pool workers carry it along.
        reg = MetricsRegistry()
        reg.inc("c")
        dup = copy.deepcopy(reg)
        dup.inc("c")
        assert reg.counter("c") == 1.0
        assert dup.counter("c") == 2.0


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_jsonl_trace_validates_with_ci_gate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path), metadata={"policy": "saath"}) as tr:
            tr.instant("coflow_arrival", 0.0, "session", {"coflow": 1})
            tr.complete("round", 0.0, 0.008, "schedule")
            tr.counter("port_utilisation", 0.1, "port", {"p0": 0.5})
        check_trace = _load_tool("check_trace")
        assert check_trace.check_jsonl(path) == 3
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["metadata"] == {"policy": "saath"}
        assert lines[0]["categories"] == list(CATEGORIES)
        assert [e["kind"] for e in lines[1:]] == [
            "instant", "complete", "counter"
        ]

    def test_chrome_trace_validates_with_ci_gate(self, tmp_path):
        path = tmp_path / "t.json"
        with Tracer(str(path), format="chrome") as tr:
            tr.instant("snapshot", 0.5, "session")
            tr.complete("round", 1.0, 0.008, "schedule")
            tr.counter("port_utilisation", 2.0, "port", {"p0": 0.25})
        check_trace = _load_tool("check_trace")
        assert check_trace.check_chrome(path) == 3
        doc = json.loads(path.read_text())
        # Timestamps are microseconds (sim-seconds x 1e6).
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["ts"] == pytest.approx(0.5e6)

    def test_category_filter_and_kernel_forcing(self, tmp_path):
        tr = Tracer(str(tmp_path / "t.jsonl"), categories=["session"])
        assert tr.wants("session") and not tr.wants("port")
        tr.instant("queue_transition", 0.0, "queues")
        assert tr.events == 0
        assert not tr.forces_python_kernels
        tr.close()
        port = Tracer(str(tmp_path / "p.jsonl"), categories=["port"])
        assert port.forces_python_kernels
        port.close()
        full = Tracer(str(tmp_path / "f.jsonl"))
        assert full.forces_python_kernels  # no filter records "port" too
        full.close()

    def test_bad_format_and_category_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            Tracer(str(tmp_path / "x"), format="speedscope")
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(str(tmp_path / "x"), categories=["portz"])

    def test_close_is_idempotent_and_deepcopy_drops(self, tmp_path):
        tr = Tracer(str(tmp_path / "t.jsonl"))
        tr.instant("schedule", 0.0, "schedule")
        assert copy.deepcopy(tr) is None  # snapshots never carry live handles
        tr.close()
        tr.close()
        tr.instant("schedule", 1.0, "schedule")  # silently dropped
        assert tr.events == 1


class TestPhaseTimers:
    def test_accounting_merge_and_report(self):
        t = PhaseTimers()
        t.start()
        t.add("schedule", 1_000_000)
        t.add("schedule", 3_000_000)
        t.add("advance", 500_000)
        t.stop()
        assert t.elapsed_s > 0.0
        other = PhaseTimers()
        other.add("schedule", 1_000_000)
        t.merge(other)
        snap = t.to_dict()["phases"]["schedule"]
        assert snap["calls"] == 3
        report = t.report()
        assert "schedule" in report and "run envelope" in report
        assert copy.deepcopy(t) is None


# ---------------------------------------------------------------------------
# Non-perturbation: instrumented runs are byte-identical to bare runs
# ---------------------------------------------------------------------------


def _instrumented_fingerprint(policy, fabric, coflows, cfg, tmp_path,
                              categories=None, fmt="jsonl"):
    tracer = Tracer(str(tmp_path / f"{policy}.{fmt}"), format=fmt,
                    categories=categories)
    metrics = MetricsRegistry()
    timers = PhaseTimers()
    result = run_policy(
        make_scheduler(policy, cfg), clone_coflows(coflows), fabric, cfg,
        tracer=tracer, metrics=metrics, timers=timers,
    )
    tracer.close()
    return fingerprint(result), tracer, metrics, timers


class TestNonPerturbation:
    @pytest.mark.parametrize("policy", available_policies())
    def test_full_instrumentation_does_not_move_a_bit(self, policy, tmp_path):
        for seed in (3, 11):
            fabric, coflows = random_workload(seed)
            cfg = _cfg()
            bare = fingerprint(run_policy(
                make_scheduler(policy, cfg), clone_coflows(coflows), fabric,
                cfg,
            ))
            traced, tracer, metrics, timers = _instrumented_fingerprint(
                policy, fabric, coflows, cfg, tmp_path
            )
            assert traced == bare, f"instrumentation perturbed {policy}"
            assert tracer.events > 0
            assert metrics.counter("flows.completed") > 0
            assert timers.to_dict()["phases"]

    def test_port_category_forces_python_twin_bit_identically(self, tmp_path):
        # The hazardous path: tracing "port" utilisation needs the Python
        # kernels even when fastcore is built. aalo + uc-tcp exercise the
        # aalo_ports / positive_rows compiled twins.
        for policy in ("aalo", "uc-tcp", "saath"):
            fabric, coflows = random_workload(7)
            cfg = _cfg()
            bare = fingerprint(run_policy(
                make_scheduler(policy, cfg), clone_coflows(coflows), fabric,
                cfg,
            ))
            traced, tracer, _, _ = _instrumented_fingerprint(
                policy, fabric, coflows, cfg, tmp_path, categories=["port"]
            )
            assert traced == bare, f"port tracing perturbed {policy}"
            assert tracer.forces_python_kernels

    def test_chrome_format_is_equally_inert(self, tmp_path):
        fabric, coflows = random_workload(4)
        cfg = _cfg()
        bare = fingerprint(run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg,
        ))
        traced, tracer, _, _ = _instrumented_fingerprint(
            "saath", fabric, coflows, cfg, tmp_path, fmt="chrome"
        )
        assert traced == bare
        check_trace = _load_tool("check_trace")
        assert check_trace.check_chrome(Path(tracer.path)) == tracer.events

    def test_streaming_with_instrumentation(self, tmp_path):
        fabric, coflows = random_workload(9)
        cfg = _cfg()
        bare = fingerprint(run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg,
        ))
        ordered = sorted(coflows, key=lambda c: c.arrival_time)
        scenario = Scenario.from_stream(
            lambda: iter(clone_coflows(ordered)), total_coflows=len(coflows)
        )
        with Tracer(str(tmp_path / "s.jsonl")) as tracer:
            result = run_scenario(
                make_scheduler("saath", cfg), scenario, fabric, cfg,
                tracer=tracer, metrics=MetricsRegistry(),
            )
        assert fingerprint(result) == bare

    def test_snapshot_restore_drops_tracer_keeps_metrics(self, tmp_path):
        fabric, coflows = random_workload(5)
        cfg = _cfg()
        bare_result = run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg,
        )
        bare = fingerprint(bare_result)

        session = SimulationSession(
            fabric, make_scheduler("saath", cfg), cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        tracer = Tracer(str(tmp_path / "snap.jsonl"))
        metrics = MetricsRegistry()
        session.attach_instrumentation(
            tracer=tracer, metrics=metrics, timers=PhaseTimers()
        )
        session.run_until(bare_result.makespan / 2)
        snap = session.snapshot()
        donor = fingerprint(session.run())
        tracer.close()
        assert donor == bare

        restored = SimulationSession.restore(snap)
        # Live handles dropped; plain-data registry revived independently.
        assert restored.tracer is None
        assert restored.timers is None
        assert restored.metrics is not None
        assert restored.metrics is not metrics
        assert fingerprint(restored.run()) == bare
        assert restored.metrics.counter("session.restores") == 1.0
        assert metrics.counter("session.restores") == 0.0
        assert metrics.counter("session.snapshots") == 1.0


# ---------------------------------------------------------------------------
# observer= regression (satellite: keep the telemetry hook wired)
# ---------------------------------------------------------------------------


class TestObserverRegression:
    def test_observer_fires_and_does_not_perturb(self):
        fabric, coflows = random_workload(6)
        cfg = _cfg()
        bare = fingerprint(run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg,
        ))
        recorder = TelemetryRecorder()
        observed = fingerprint(run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg,
            observer=recorder,
        ))
        assert observed == bare
        assert recorder.samples, "observer= was never invoked"
        # The recorder now rides the shared registry abstraction.
        reg = recorder.registry
        assert reg.counter("telemetry.samples") == len(recorder.samples)
        assert recorder.peak_active_coflows() >= 1
        assert 0.0 <= recorder.work_conservation_fraction() <= 1.0

    def test_observer_wired_through_scenario_and_session(self):
        fabric, coflows = random_workload(6)
        cfg = _cfg()
        recorder = TelemetryRecorder()
        scenario = Scenario.from_coflows(clone_coflows(coflows))
        run_scenario(make_scheduler("saath", cfg), scenario, fabric, cfg,
                     observer=recorder)
        assert recorder.samples


# ---------------------------------------------------------------------------
# fastcore warn-once latch (satellite: no duplicate RuntimeWarning)
# ---------------------------------------------------------------------------


@pytest.fixture
def _fresh_warn_latch(monkeypatch):
    monkeypatch.setattr(_fastcore, "_warned", False)
    monkeypatch.delenv(_fastcore._WARNED_ENV, raising=False)
    yield
    # monkeypatch restores _warned; the env latch set during the test is
    # popped so later tests (and real sessions) are unaffected.
    monkeypatch.delenv(_fastcore._WARNED_ENV, raising=False)


class TestWarnOnce:
    def test_warns_exactly_once_per_process(self, _fresh_warn_latch):
        with pytest.warns(RuntimeWarning, match="fastcore requested"):
            _fastcore.warn_fallback_once()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _fastcore.warn_fallback_once()  # second call: silence

    def test_env_latch_spans_child_processes(self, _fresh_warn_latch,
                                             monkeypatch):
        # A pool worker inherits the env but not the module global: the
        # parent's warning must still suppress the child's.
        monkeypatch.setenv(_fastcore._WARNED_ENV, "1")
        monkeypatch.setattr(_fastcore, "_warned", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _fastcore.warn_fallback_once()

    def test_snapshot_restore_does_not_rewarn(self, _fresh_warn_latch,
                                              monkeypatch):
        monkeypatch.setattr(_fastcore, "AVAILABLE", False)
        fabric, coflows = random_workload(2)
        cfg = _cfg(fastcore=True)
        with pytest.warns(RuntimeWarning, match="fastcore requested"):
            session = SimulationSession(
                fabric, make_scheduler("saath", cfg), cfg,
                scenario=Scenario.from_coflows(clone_coflows(coflows)),
            )
        session.run_until(0.05)
        snap = session.snapshot()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SimulationSession.restore(snap).run()  # restore + run: silence


# ---------------------------------------------------------------------------
# Sweep metrics plumbing
# ---------------------------------------------------------------------------

_SWEEP_WORKLOAD = WorkloadSpec(family="fb-like", machines=8, coflows=12,
                               seed=3)


class TestSweepMetrics:
    def test_execute_spec_gated_by_env(self, monkeypatch):
        spec = RunSpec(policy="saath", workload=_SWEEP_WORKLOAD)
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert execute_spec(spec).metrics is None
        monkeypatch.setenv(METRICS_ENV, "1")
        out = execute_spec(spec)
        assert out.metrics is not None
        assert out.metrics["counters"]["flows.completed"] > 0

    def test_metrics_survive_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(METRICS_ENV, "1")
        spec = RunSpec(policy="saath", workload=_SWEEP_WORKLOAD)
        cache = ResultCache(tmp_path)
        out = execute_spec(spec)
        cache.put(out)
        replay = cache.get(spec)
        assert replay is not None
        assert replay.metrics == out.metrics
        assert replay.ccts == out.ccts

    def test_uninstrumented_cache_layout_is_unchanged(self, tmp_path,
                                                      monkeypatch):
        # Without the env gate the v3 payload must not grow a metrics key
        # (byte-compatibility with pre-observability caches).
        monkeypatch.delenv(METRICS_ENV, raising=False)
        cache = ResultCache(tmp_path)
        out = execute_spec(RunSpec(policy="saath", workload=_SWEEP_WORKLOAD))
        cache.put(out)
        payload_file = next(tmp_path.rglob("*.json"))
        assert "metrics" not in json.loads(payload_file.read_text())

    def test_runner_counts_specs_and_cache_traffic(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        specs = [RunSpec(policy=p, workload=_SWEEP_WORKLOAD)
                 for p in ("saath", "aalo")]
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        runner.run(specs)
        assert runner.metrics.counter("sweep.specs") == 2
        assert runner.metrics.counter("sweep.cache_misses") == 2
        assert runner.metrics.counter("sweep.runs") == 2
        replay = SweepRunner(jobs=1, cache_dir=tmp_path)
        replay.run(specs)
        assert replay.metrics.counter("sweep.cache_hits") == 2
        assert replay.metrics.counter("sweep.runs") == 0


# ---------------------------------------------------------------------------
# Pre-observability checkpoint compatibility
# ---------------------------------------------------------------------------


def test_pre_observability_checkpoint_restores_clean():
    fabric, coflows = random_workload(8)
    cfg = _cfg()
    bare = fingerprint(run_policy(
        make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg,
    ))
    session = SimulationSession(
        fabric, make_scheduler("saath", cfg), cfg,
        scenario=Scenario.from_coflows(clone_coflows(coflows)),
    )
    session.run_until(0.1)
    snap = session.snapshot()
    # Simulate a checkpoint written before the observability layer existed:
    # the payload carries none of the instrumentation attributes.
    for attr in ("_tracer", "_metrics", "_timers"):
        snap.payload.pop(attr, None)
    restored = SimulationSession.restore(snap)
    assert restored.tracer is None
    assert restored.metrics is None
    assert restored.timers is None
    assert fingerprint(restored.run()) == bare
