"""CLI entry points."""

import pytest

from repro.cli import main


class TestListing:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "saath" in out and "aalo" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out


class TestSimulate:
    def test_synthetic_run(self, capsys):
        rc = main([
            "simulate", "--policy", "saath",
            "--machines", "10", "--coflows", "12", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "coflows finished: 12" in out
        assert "CCT mean" in out

    def test_sync_interval_flag(self, capsys):
        rc = main([
            "simulate", "--policy", "aalo",
            "--machines", "10", "--coflows", "8",
            "--sync-interval-ms", "8",
        ])
        assert rc == 0
        assert "coflows finished: 8" in capsys.readouterr().out

    def test_trace_file_input(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("4 1\n1 0 2 0 1 2 2:10 3:20\n")
        rc = main(["simulate", "--trace", str(trace), "--policy", "saath"])
        assert rc == 0
        assert "coflows finished: 1" in capsys.readouterr().out


class TestGenTrace:
    def test_stdout_emission(self, capsys):
        rc = main([
            "gen-trace", "--machines", "10", "--coflows", "5", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("10 5")

    def test_file_emission_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "gen.txt"
        rc = main([
            "gen-trace", "--machines", "10", "--coflows", "5",
            "--output", str(out_file),
        ])
        assert rc == 0
        from repro.workloads.traces import load_trace

        trace = load_trace(out_file)
        assert trace.num_ports == 10
        assert len(trace) == 5


class TestRunExperiment:
    def test_tiny_table2(self, capsys):
        rc = main(["run-experiment", "table2", "--scale", "tiny"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-experiment", "fig99"])


class TestSweepCommand:
    GRID = ["sweep", "--policy", "saath", "aalo", "--machines", "10",
            "--coflows", "12", "--seed", "3", "--seeds", "2"]

    def test_grid_runs_and_reports_cache_stats(self, tmp_path, capsys):
        argv = self.GRID + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("saath") == 2  # seeds 3 and 4
        assert "cache: 0 hits, 4 misses" in out
        assert main(argv) == 0  # second invocation replays from the cache
        assert "cache: 4 hits, 0 misses" in capsys.readouterr().out

    def test_failed_run_is_reported_not_raised(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.testing import chaos
        directory = chaos.arm(
            [{"site": "worker", "action": "exception", "times": 5}],
            tmp_path / "chaos")
        monkeypatch.setenv(chaos.ENV_VAR, str(directory))
        log = tmp_path / "sweep.jsonl"
        rc = main(["sweep", "--policy", "saath", "--machines", "10",
                   "--coflows", "12", "--seed", "3", "--retries", "2",
                   "--sweep-log", str(log)])
        assert rc == 0  # non-strict: the failure is a row, not a crash
        out = capsys.readouterr().out
        assert "FAILED (exception) after 2 attempt(s)" in out
        assert "1 of 1 runs failed" in out
        import json as _json
        events = [_json.loads(line)["event"]
                  for line in log.read_text().splitlines()]
        assert events[0] == "sweep-start"
        assert events[-1] == "sweep-end"

    def test_strict_sweep_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        from repro.testing import chaos
        directory = chaos.arm(
            [{"site": "worker", "action": "exception", "times": 5}],
            tmp_path / "chaos")
        monkeypatch.setenv(chaos.ENV_VAR, str(directory))
        rc = main(["sweep", "--policy", "saath", "--machines", "10",
                   "--coflows", "12", "--seed", "3", "--retries", "2",
                   "--strict"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error: run 'saath' failed (exception)" in err


class TestCheckpointCommand:
    ARGS = ["simulate", "--policy", "saath", "--machines", "10",
            "--coflows", "12", "--seed", "3"]

    def test_checkpointed_run_output_matches_plain(self, tmp_path, capsys):
        assert main(self.ARGS) == 0
        plain = capsys.readouterr().out
        ckpt = tmp_path / "run.ckpt"
        assert main(self.ARGS + ["--checkpoint", str(ckpt),
                                 "--checkpoint-every", "0.5"]) == 0
        assert capsys.readouterr().out == plain
        assert ckpt.exists()

    def test_resume_from_checkpoint_matches_plain(self, tmp_path, capsys):
        assert main(self.ARGS) == 0
        plain = capsys.readouterr().out
        ckpt = tmp_path / "rolling.ckpt"
        assert main(self.ARGS + ["--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        # workload flags are ignored on resume: the checkpoint carries all
        assert main(["simulate", "--resume-from", str(ckpt)]) == 0
        assert capsys.readouterr().out == plain

    def test_checkpoint_every_requires_a_path(self, capsys):
        rc = main(self.ARGS + ["--checkpoint-every", "0.5"])
        assert rc == 1
        assert ("--checkpoint-every requires --checkpoint"
                in capsys.readouterr().err)

    def test_streaming_run_cannot_checkpoint(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--streaming",
                               "--checkpoint", str(tmp_path / "x.ckpt")])
        assert rc == 1
        assert "replayable scenario" in capsys.readouterr().err


class TestInterrupt:
    def test_sigint_exits_130_with_partial_results_summary(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys as _sys
        import textwrap
        import time
        from pathlib import Path

        import repro

        script = textwrap.dedent("""\
            import sys
            from repro.cli import main
            print("GO", flush=True)
            sys.exit(main([
                "sweep", "--policy", "saath", "--machines", "50",
                "--coflows", "300", "--seeds", "4",
                "--cache-dir", sys.argv[1],
            ]))
        """)
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(src))
        proc = subprocess.Popen(
            [_sys.executable, "-c", script, str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "GO"
            time.sleep(1.0)  # let the sweep get into its first run
            proc.send_signal(signal.SIGINT)
            _, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 130
        assert "interrupted" in err
        assert "runs finished" in err  # the partial-results summary
