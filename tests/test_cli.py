"""CLI entry points."""

import pytest

from repro.cli import main


class TestListing:
    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "saath" in out and "aalo" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out


class TestSimulate:
    def test_synthetic_run(self, capsys):
        rc = main([
            "simulate", "--policy", "saath",
            "--machines", "10", "--coflows", "12", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "coflows finished: 12" in out
        assert "CCT mean" in out

    def test_sync_interval_flag(self, capsys):
        rc = main([
            "simulate", "--policy", "aalo",
            "--machines", "10", "--coflows", "8",
            "--sync-interval-ms", "8",
        ])
        assert rc == 0
        assert "coflows finished: 8" in capsys.readouterr().out

    def test_trace_file_input(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("4 1\n1 0 2 0 1 2 2:10 3:20\n")
        rc = main(["simulate", "--trace", str(trace), "--policy", "saath"])
        assert rc == 0
        assert "coflows finished: 1" in capsys.readouterr().out


class TestGenTrace:
    def test_stdout_emission(self, capsys):
        rc = main([
            "gen-trace", "--machines", "10", "--coflows", "5", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("10 5")

    def test_file_emission_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "gen.txt"
        rc = main([
            "gen-trace", "--machines", "10", "--coflows", "5",
            "--output", str(out_file),
        ])
        assert rc == 0
        from repro.workloads.traces import load_trace

        trace = load_trace(out_file)
        assert trace.num_ports == 10
        assert len(trace) == 5


class TestRunExperiment:
    def test_tiny_table2(self, capsys):
        rc = main(["run-experiment", "table2", "--scale", "tiny"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-experiment", "fig99"])
