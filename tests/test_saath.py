"""The Saath scheduler: all-or-none, LCoF, work conservation, starvation,
per-flow thresholds, dynamics promotion."""

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.core.saath import SaathScheduler
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import make_coflow
from repro.simulator.state import ClusterState


def _fabric(machines=8, rate=100.0):
    return Fabric(num_machines=machines, port_rate=rate)


def _cfg(**kw):
    defaults = dict(
        port_rate=100.0,
        queues=QueueConfig(num_queues=5, start_threshold=1000.0,
                           growth_factor=10.0),
        min_rate=1e-3,
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


def _state(fabric, coflows, scheduler, now=0.0):
    state = ClusterState(fabric=fabric, active_coflows=list(coflows))
    for c in coflows:
        scheduler.on_coflow_arrival(c, now)
    return state


class TestAllOrNone:
    def test_whole_coflow_scheduled_or_none(self):
        fab = _fabric()
        cfg = _cfg()
        saath = SaathScheduler(cfg)
        # c1 takes senders 0 and 1 fully; c2 needs sender 1 and 2.
        c1 = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0),
                                  (1, fab.receiver_port(4), 100.0)],
                         flow_id_start=0)
        c2 = make_coflow(2, 0.1, [(1, fab.receiver_port(5), 100.0),
                                  (2, fab.receiver_port(6), 100.0)],
                         flow_id_start=10)
        state = _state(fab, [c1, c2], saath)
        alloc = saath.schedule(state, now=0.1)
        assert 1 in alloc.scheduled_coflows
        assert 2 not in alloc.scheduled_coflows
        # Work conservation may still give c2's free-port flow a rate.
        assert alloc.rates.get(10, 0.0) == 0.0  # sender 1 is saturated
        assert alloc.rates.get(11, 0.0) == pytest.approx(100.0)  # sender 2 free

    def test_equal_rates_across_flows(self):
        fab = _fabric()
        saath = SaathScheduler(_cfg())
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 500.0),
                                 (1, fab.receiver_port(4), 100.0)],
                        flow_id_start=0)
        state = _state(fab, [c], saath)
        alloc = saath.schedule(state, 0.0)
        assert alloc.rates[0] == alloc.rates[1] == pytest.approx(100.0)

    def test_no_work_conservation_leaves_ports_idle(self):
        fab = _fabric()
        saath = SaathScheduler(_cfg(), work_conservation=False)
        c1 = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0)],
                         flow_id_start=0)
        c2 = make_coflow(2, 0.1, [(0, fab.receiver_port(4), 100.0),
                                  (1, fab.receiver_port(5), 100.0)],
                         flow_id_start=10)
        state = _state(fab, [c1, c2], saath)
        alloc = saath.schedule(state, 0.1)
        assert 2 not in alloc.scheduled_coflows
        assert alloc.rates.get(11, 0.0) == 0.0  # idle despite free sender 1


class TestLcofOrdering:
    def test_low_contention_coflow_goes_first(self):
        fab = _fabric()
        saath = SaathScheduler(_cfg())
        # hub contends with both spokes; spokes contend only with hub.
        hub = make_coflow(1, 0.0, [(0, fab.receiver_port(4), 100.0),
                                   (1, fab.receiver_port(5), 100.0)],
                          flow_id_start=0)
        spoke_a = make_coflow(2, 0.1, [(0, fab.receiver_port(6), 100.0)],
                              flow_id_start=10)
        spoke_b = make_coflow(3, 0.2, [(1, fab.receiver_port(7), 100.0)],
                              flow_id_start=20)
        state = _state(fab, [hub, spoke_a, spoke_b], saath)
        alloc = saath.schedule(state, 0.2)
        # Spokes (k=1) beat the hub (k=2) despite arriving later.
        assert {2, 3} <= alloc.scheduled_coflows
        assert 1 not in alloc.scheduled_coflows

    def test_fifo_variant_respects_arrival(self):
        fab = _fabric()
        saath = SaathScheduler(_cfg(), use_lcof=False)
        hub = make_coflow(1, 0.0, [(0, fab.receiver_port(4), 100.0),
                                   (1, fab.receiver_port(5), 100.0)],
                          flow_id_start=0)
        spoke = make_coflow(2, 0.1, [(0, fab.receiver_port(6), 100.0)],
                            flow_id_start=10)
        state = _state(fab, [hub, spoke], saath)
        alloc = saath.schedule(state, 0.2)
        assert 1 in alloc.scheduled_coflows
        assert 2 not in alloc.scheduled_coflows


class TestQueuePriority:
    def test_higher_queue_beats_lower_contention(self):
        fab = _fabric()
        cfg = _cfg()
        saath = SaathScheduler(cfg)
        old = make_coflow(1, 0.0, [(0, fab.receiver_port(4), 1e6),
                                   (1, fab.receiver_port(6), 1e6)],
                          flow_id_start=0)
        young = make_coflow(2, 0.1, [(0, fab.receiver_port(5), 10.0)],
                            flow_id_start=10)
        state = _state(fab, [old, young], saath)
        # Simulate old coflow having sent enough to be demoted.
        old.flows[0].bytes_sent = 2000.0
        alloc = saath.schedule(state, 0.2)
        # The demoted coflow loses its contended sender to the young one,
        # but work conservation still fills its free sender-1 flow.
        assert 2 in alloc.scheduled_coflows
        assert 1 not in alloc.scheduled_coflows
        assert 1 in alloc.work_conserved_coflows
        assert alloc.rates.get(1, 0.0) == pytest.approx(100.0)


class TestStarvation:
    def test_starving_coflow_preempts(self):
        fab = _fabric()
        cfg = _cfg(deadline_factor=1.0)
        saath = SaathScheduler(cfg)
        hub = make_coflow(1, 0.0, [(0, fab.receiver_port(4), 1e5),
                                   (1, fab.receiver_port(5), 1e5)],
                          flow_id_start=0)
        spoke = make_coflow(2, 0.0, [(0, fab.receiver_port(6), 1e5)],
                            flow_id_start=10)
        state = _state(fab, [hub, spoke], saath)
        # Far past every deadline: the hub (higher contention, would lose
        # LCoF) must now be admitted first by deadline order.
        alloc = saath.schedule(state, now=1e6)
        assert saath.starvation_admissions > 0
        assert 1 in alloc.scheduled_coflows

    def test_no_starvation_handling_when_disabled(self):
        fab = _fabric()
        saath = SaathScheduler(_cfg(deadline_factor=None))
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(4), 1e5)],
                        flow_id_start=0)
        state = _state(fab, [c], saath)
        saath.schedule(state, now=1e9)
        assert saath.starvation_admissions == 0


class TestEndToEnd:
    def test_out_of_sync_eliminated_for_equal_flows(self):
        """All-or-none makes both flows of an equal-length coflow finish
        simultaneously even under contention (the Fig. 1 fix).

        Work conservation is disabled here: the paper itself notes that
        work conservation deliberately re-introduces some out-of-sync
        (Fig. 13 discussion) — pure all-or-none is what guarantees sync.
        """
        fab = _fabric()
        cfg = _cfg()
        c1 = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0),
                                  (2, fab.receiver_port(4), 100.0)],
                         flow_id_start=0)
        c2 = make_coflow(2, 0.0, [(0, fab.receiver_port(5), 100.0)],
                         flow_id_start=10)
        c3 = make_coflow(3, 0.0, [(1, fab.receiver_port(3), 100.0)],
                         flow_id_start=20)
        c4 = make_coflow(4, 0.0, [(2, fab.receiver_port(5), 100.0)],
                         flow_id_start=30)
        res = run_policy(
            SaathScheduler(cfg, work_conservation=False),
            [c1, c2, c3, c4], fab, cfg,
        )
        finished = res.coflow(1)
        fcts = [f.finish_time for f in finished.flows]
        assert fcts[0] == pytest.approx(fcts[1])

    def test_work_conservation_can_desync_but_speeds_up(self):
        """With work conservation on, the same scenario finishes no later
        overall even though c1's flows may desynchronise."""
        fab = _fabric()
        cfg = _cfg()
        def build():
            return [
                make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0),
                                     (2, fab.receiver_port(4), 100.0)],
                            flow_id_start=0),
                make_coflow(2, 0.0, [(0, fab.receiver_port(5), 100.0)],
                            flow_id_start=10),
                make_coflow(3, 0.0, [(1, fab.receiver_port(3), 100.0)],
                            flow_id_start=20),
                make_coflow(4, 0.0, [(2, fab.receiver_port(5), 100.0)],
                            flow_id_start=30),
            ]
        with_wc = run_policy(SaathScheduler(cfg), build(), fab, cfg)
        without = run_policy(
            SaathScheduler(cfg, work_conservation=False), build(), fab, cfg
        )
        assert with_wc.average_cct() <= without.average_cct() + 1e-9

    def test_saath_completes_random_workload(self):
        from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

        spec = fb_like_spec(num_machines=12, num_coflows=25)
        coflows = WorkloadGenerator(spec, seed=3).generate_coflows()
        cfg = SimulationConfig()
        res = run_policy(SaathScheduler(cfg), coflows, spec.make_fabric(), cfg)
        assert len(res.coflows) == 25

    def test_next_wakeup_is_future(self):
        fab = _fabric()
        cfg = _cfg()
        saath = SaathScheduler(cfg)
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 1e5)],
                        flow_id_start=0)
        state = _state(fab, [c], saath)
        alloc = saath.schedule(state, 0.0)
        wakeup = saath.next_wakeup(state, alloc, now=0.0)
        assert wakeup is not None and wakeup > 0.0


class TestDynamicsPromotion:
    def test_promotion_after_flow_finishes(self):
        fab = _fabric()
        cfg = _cfg(enable_dynamics_promotion=True)
        saath = SaathScheduler(cfg)
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 5000.0),
                                 (1, fab.receiver_port(4), 5000.0)],
                        flow_id_start=0)
        state = _state(fab, [c], saath)
        # Demote it deep by faking progress.
        saath.tracker.force_queue(c, 3, 0.0)
        # First flow completes; second has nearly caught up.
        c.flows[0].bytes_sent = 5000.0
        c.flows[0].finish_time = 1.0
        c.flows[1].bytes_sent = 4900.0
        saath.on_flow_completion(c.flows[0], c, 1.0)
        # Remaining estimate: median finished = 5000; rem = 100 bytes;
        # m_c * width = 200 < 1000 -> queue 0.
        assert saath.tracker.queue_of(c) == 0

    def test_no_promotion_when_disabled(self):
        fab = _fabric()
        saath = SaathScheduler(_cfg(enable_dynamics_promotion=False))
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 5000.0),
                                 (1, fab.receiver_port(4), 5000.0)],
                        flow_id_start=0)
        _state(fab, [c], saath)
        saath.tracker.force_queue(c, 3, 0.0)
        c.flows[0].bytes_sent = 5000.0
        c.flows[0].finish_time = 1.0
        saath.on_flow_completion(c.flows[0], c, 1.0)
        assert saath.tracker.queue_of(c) == 3
