"""Contention computation (the k_c of LCoF / LWTF)."""

import pytest

from repro.core.contention import (
    contention_counts,
    ports_in_use,
    waiting_time_increase,
)
from repro.simulator.flows import make_coflow


def _c(cid, transfers, fid_base=None):
    return make_coflow(cid, 0.0, transfers,
                       flow_id_start=(fid_base or cid) * 100)


class TestPortsInUse:
    def test_includes_senders_and_receivers(self):
        c = _c(0, [(0, 10, 1.0), (1, 11, 1.0)])
        assert ports_in_use(c) == {0, 1, 10, 11}

    def test_finished_flows_release_ports(self):
        c = _c(0, [(0, 10, 1.0), (1, 11, 1.0)])
        c.flows[0].finish_time = 1.0
        assert ports_in_use(c) == {1, 11}


class TestContentionCounts:
    def test_disjoint_coflows_have_zero_contention(self):
        a = _c(1, [(0, 10, 1.0)])
        b = _c(2, [(1, 11, 1.0)])
        counts = contention_counts([a, b])
        assert counts == {1: 0, 2: 0}

    def test_shared_sender_counts_once(self):
        a = _c(1, [(0, 10, 1.0), (0, 11, 1.0)])
        b = _c(2, [(0, 12, 1.0)])
        counts = contention_counts([a, b])
        assert counts[1] == 1
        assert counts[2] == 1

    def test_fig1_contention_values(self):
        """Fig. 1 of the paper: k1=1 per single-port coflow... the text
        gives k1=1, k2=3 in the narrative example of §1; here we check the
        structural property: a coflow overlapping N others reports N."""
        hub = _c(1, [(0, 10, 1.0), (1, 11, 1.0), (2, 12, 1.0)])
        spokes = [
            _c(2, [(0, 13, 1.0)]),
            _c(3, [(1, 14, 1.0)]),
            _c(4, [(2, 15, 1.0)]),
        ]
        counts = contention_counts([hub, *spokes])
        assert counts[1] == 3
        for s in (2, 3, 4):
            assert counts[s] == 1

    def test_receiver_sharing_counts(self):
        a = _c(1, [(0, 10, 1.0)])
        b = _c(2, [(1, 10, 1.0)])
        counts = contention_counts([a, b])
        assert counts == {1: 1, 2: 1}

    def test_multiple_shared_ports_still_one_count(self):
        a = _c(1, [(0, 10, 1.0), (1, 11, 1.0)])
        b = _c(2, [(0, 12, 1.0), (1, 13, 1.0)])
        counts = contention_counts([a, b])
        assert counts == {1: 1, 2: 1}

    def test_finished_flows_do_not_contend(self):
        a = _c(1, [(0, 10, 1.0), (1, 11, 1.0)])
        b = _c(2, [(0, 12, 1.0)])
        a.flows[0].finish_time = 1.0  # releases port 0
        counts = contention_counts([a, b])
        assert counts == {1: 0, 2: 0}

    def test_queue_scope_filters(self):
        a = _c(1, [(0, 10, 1.0)])
        b = _c(2, [(0, 11, 1.0)])
        c = _c(3, [(0, 12, 1.0)])
        queue_of = {1: 0, 2: 0, 3: 1}
        counts = contention_counts([a, b, c], scope="queue",
                                   queue_of=queue_of)
        assert counts[1] == 1  # only b shares a queue
        assert counts[3] == 0

    def test_queue_scope_requires_mapping(self):
        with pytest.raises(ValueError):
            contention_counts([_c(1, [(0, 10, 1.0)])], scope="queue")

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            contention_counts([], scope="global")

    def test_empty_input(self):
        assert contention_counts([]) == {}


class TestWaitingTimeIncrease:
    def test_t_times_k(self):
        c = _c(1, [(0, 10, 100.0)])
        key = waiting_time_increase(c, {1: 3}, port_rate=100.0)
        assert key == pytest.approx(3.0)  # 1 second duration * 3 blocked

    def test_zero_contention_is_free(self):
        c = _c(1, [(0, 10, 100.0)])
        assert waiting_time_increase(c, {1: 0}, port_rate=100.0) == 0.0

    def test_progress_reduces_key(self):
        c = _c(1, [(0, 10, 100.0)])
        before = waiting_time_increase(c, {1: 2}, 100.0)
        c.flows[0].bytes_sent = 50.0
        after = waiting_time_increase(c, {1: 2}, 100.0)
        assert after == pytest.approx(before / 2)
