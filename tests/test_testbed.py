"""Testbed mode: rate jitter and the δ-enabled config."""

import pytest

from repro.config import PAPER_SYNC_INTERVAL, SimulationConfig
from repro.core.saath import SaathScheduler
from repro.errors import ConfigError
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import Flow, make_coflow
from repro.simulator.testbed import RateJitter
from repro.simulator.testbed import testbed_config as make_testbed_config


class TestRateJitter:
    def _flow(self):
        return Flow(flow_id=0, coflow_id=0, src=0, dst=5, volume=100.0)

    def test_never_exceeds_allocation(self):
        jitter = RateJitter(seed=1)
        f = self._flow()
        for _ in range(500):
            assert jitter(f, 100.0) <= 100.0 + 1e-9

    def test_never_below_floor(self):
        jitter = RateJitter(mean_efficiency=0.9, sigma=0.3, floor=0.6, seed=2)
        f = self._flow()
        for _ in range(500):
            assert jitter(f, 100.0) >= 60.0 - 1e-9

    def test_mean_near_target(self):
        jitter = RateJitter(mean_efficiency=0.9, sigma=0.05, seed=3)
        f = self._flow()
        samples = [jitter(f, 100.0) for _ in range(2000)]
        assert 85.0 <= sum(samples) / len(samples) <= 92.0

    def test_deterministic_under_seed(self):
        a = RateJitter(seed=9)
        b = RateJitter(seed=9)
        f = self._flow()
        assert [a(f, 10.0) for _ in range(10)] == [b(f, 10.0) for _ in range(10)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            RateJitter(mean_efficiency=0.0)
        with pytest.raises(ConfigError):
            RateJitter(mean_efficiency=0.9, floor=0.95)


class TestTestbedConfig:
    def test_enables_paper_delta(self):
        cfg = make_testbed_config()
        assert cfg.sync_interval == PAPER_SYNC_INTERVAL

    def test_preserves_base_settings(self):
        base = SimulationConfig(deadline_factor=None)
        cfg = make_testbed_config(base)
        assert cfg.deadline_factor is None
        assert cfg.sync_interval == PAPER_SYNC_INTERVAL


class TestTestbedEndToEnd:
    def test_jitter_slows_but_completes(self):
        fab = Fabric(num_machines=4, port_rate=100.0)
        cfg = SimulationConfig(port_rate=100.0, min_rate=1e-3)
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        ideal = run_policy(SaathScheduler(cfg), [c], fab, cfg)

        c2 = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        noisy = run_policy(
            SaathScheduler(cfg), [c2], fab, cfg,
            rate_perturbation=RateJitter(seed=4),
        )
        assert noisy.cct(0) >= ideal.cct(0)
        assert len(noisy.coflows) == 1
