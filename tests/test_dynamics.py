"""Cluster-dynamics injection and the §4.3 SRTF approximation."""

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.core.dynamics import (
    estimated_finished_length,
    estimated_remaining_bottleneck,
    promotion_queue,
)
from repro.core.saath import SaathScheduler
from repro.rng import make_rng
from repro.simulator.dynamics import (
    FlowRestart,
    FlowSlowdown,
    PortDegradation,
    PortRecovery,
    StragglerEvent,
    StragglerRecovery,
    inject_failures,
    inject_stragglers,
)
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow
from repro.errors import ConfigError


def _fabric():
    return Fabric(num_machines=6, port_rate=100.0)


def _cfg(**kw):
    defaults = dict(
        port_rate=100.0,
        queues=QueueConfig(num_queues=5, start_threshold=1000.0,
                           growth_factor=10.0),
        min_rate=1e-3,
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestEstimators:
    def _coflow(self):
        return make_coflow(1, 0.0, [(0, 10, 100.0), (1, 11, 100.0),
                                    (2, 12, 100.0)])

    def test_no_estimate_without_finished_flows(self):
        c = self._coflow()
        assert estimated_finished_length(c) is None
        assert estimated_remaining_bottleneck(c) is None
        assert promotion_queue(c, QueueConfig()) is None

    def test_median_of_finished(self):
        c = self._coflow()
        c.flows[0].bytes_sent = 100.0
        c.flows[0].finish_time = 1.0
        assert estimated_finished_length(c) == pytest.approx(100.0)

    def test_remaining_bottleneck(self):
        c = self._coflow()
        c.flows[0].bytes_sent = 100.0
        c.flows[0].finish_time = 1.0
        c.flows[1].bytes_sent = 70.0
        c.flows[2].bytes_sent = 40.0
        # f_e = 100; remaining = max(30, 60) = 60.
        assert estimated_remaining_bottleneck(c) == pytest.approx(60.0)

    def test_remaining_clamped_at_zero(self):
        c = self._coflow()
        c.flows[0].bytes_sent = 50.0
        c.flows[0].finish_time = 1.0  # finished short (restart artefact)
        c.flows[1].bytes_sent = 90.0  # beyond the estimate
        c.flows[2].bytes_sent = 90.0
        assert estimated_remaining_bottleneck(c) == pytest.approx(0.0)

    def test_promotion_queue_uses_eq1(self):
        qcfg = QueueConfig(num_queues=5, start_threshold=1000.0,
                           growth_factor=10.0)
        c = self._coflow()
        c.flows[0].bytes_sent = 100.0
        c.flows[0].finish_time = 1.0
        c.flows[1].bytes_sent = 99.0
        c.flows[2].bytes_sent = 99.0
        # remaining ~1 byte; 1 * width(3) << 1000 -> queue 0.
        assert promotion_queue(c, qcfg) == 0


class TestInjectors:
    def _coflows(self):
        fab = _fabric()
        return [
            make_coflow(i, 0.1 * i,
                        [(i % 3, fab.receiver_port(3 + i % 3), 500.0)],
                        flow_id_start=10 * i)
            for i in range(10)
        ]

    def test_straggler_count(self):
        actions = inject_stragglers(self._coflows(), make_rng(1),
                                    fraction=0.3, efficiency=0.5)
        assert len(actions) == 3
        assert all(isinstance(a, FlowSlowdown) for a in actions)

    def test_straggler_zero_fraction(self):
        assert inject_stragglers(self._coflows(), make_rng(1),
                                 fraction=0.0) == []

    def test_straggler_bad_fraction(self):
        with pytest.raises(ConfigError):
            inject_stragglers(self._coflows(), make_rng(1), fraction=1.5)

    def test_failures_scheduled_after_arrival(self):
        coflows = self._coflows()
        actions = inject_failures(coflows, make_rng(2), fraction=0.5,
                                  delay_range=(0.1, 0.2))
        by_flow = {a.flow_id: a for a in actions}
        for c in coflows:
            for f in c.flows:
                if f.flow_id in by_flow:
                    assert by_flow[f.flow_id].time >= c.arrival_time + 0.1

    def test_deterministic_under_seed(self):
        a = inject_stragglers(self._coflows(), make_rng(7), fraction=0.3)
        b = inject_stragglers(self._coflows(), make_rng(7), fraction=0.3)
        assert [x.flow_id for x in a] == [x.flow_id for x in b]


class TestDynamicsEndToEnd:
    def test_straggler_recovery_restores_speed(self):
        fab = _fabric()
        cfg = _cfg()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 200.0)])
        actions = [
            FlowSlowdown(time=0.0, flow_id=0, efficiency=0.5),
            StragglerRecovery(time=1.0, flow_id=0),
        ]
        res = run_policy(SaathScheduler(cfg), [c], fab, cfg, dynamics=actions)
        # 1s at 50 B/s (50 bytes), then 150 bytes at 100 B/s -> 2.5s total.
        assert res.cct(0) == pytest.approx(2.5)

    def test_port_recovery(self):
        fab = _fabric()
        cfg = _cfg()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 200.0)])
        actions = [
            PortDegradation(time=0.0, port=0, factor=0.5),
            PortRecovery(time=2.0, port=0),
        ]
        res = run_policy(SaathScheduler(cfg), [c], fab, cfg, dynamics=actions)
        # 2s at 50 B/s (100 bytes), then 100 bytes at 100 B/s -> 3s.
        assert res.cct(0) == pytest.approx(3.0)

    def test_promotion_rescues_straggling_coflow(self):
        """§4.3: with promotion on, a coflow whose last flow straggles is
        moved back up and finishes sooner than without promotion."""
        fab = _fabric()
        base = _cfg(queues=QueueConfig(num_queues=5, start_threshold=100.0,
                                       growth_factor=4.0))
        # Wide-ish coflow whose flows mostly finish, one straggles; plus a
        # stream of competitors that would otherwise outrank it.
        def build():
            victim = make_coflow(
                0, 0.0,
                [(0, fab.receiver_port(3), 400.0),
                 (1, fab.receiver_port(4), 400.0)],
                flow_id_start=0,
            )
            rivals = [
                make_coflow(1 + i, 3.5 + 0.5 * i,
                            [(1, fab.receiver_port(5), 80.0)],
                            flow_id_start=100 + 10 * i)
                for i in range(6)
            ]
            return [victim, *rivals]

        straggle = [FlowSlowdown(time=0.0, flow_id=1, efficiency=0.25)]

        plain_cfg = base.with_updates(enable_dynamics_promotion=False)
        promo_cfg = base.with_updates(enable_dynamics_promotion=True)
        plain = run_policy(SaathScheduler(plain_cfg), build(), fab,
                           plain_cfg, dynamics=list(straggle))
        promo = run_policy(SaathScheduler(promo_cfg), build(), fab,
                           promo_cfg, dynamics=list(straggle))
        assert promo.cct(0) <= plain.cct(0) + 1e-9

    def test_failure_injection_completes(self):
        from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

        spec = fb_like_spec(num_machines=10, num_coflows=15)
        coflows = WorkloadGenerator(spec, seed=5).generate_coflows()
        actions = inject_failures(coflows, make_rng(5), fraction=0.1)
        cfg = SimulationConfig(enable_dynamics_promotion=True)
        res = run_policy(SaathScheduler(cfg), coflows, spec.make_fabric(),
                         cfg, dynamics=actions)
        assert len(res.coflows) == 15


class TestWorkerStragglers:
    """StragglerEvent: machine-level slowdowns on collective workloads."""

    def _workload(self, fab):
        from repro.workloads.collectives import collective_jobs

        return collective_jobs(fab, pattern="ring", workers=4, iterations=2,
                               volume=400.0)

    def _run(self, policy, dynamics=()):
        from repro.schedulers.registry import make_scheduler

        fab = _fabric()
        cfg = SimulationConfig(port_rate=100.0)
        jobs = self._workload(fab)
        coflows = clone_coflows([c for j in jobs for c in j])
        res = run_policy(make_scheduler(policy, cfg), coflows, fab, cfg,
                         dynamics=list(dynamics))
        return jobs, res

    def test_slowed_worker_lengthens_iterations_under_every_policy(self):
        from repro.schedulers.registry import available_policies
        from repro.workloads.collectives import iteration_times

        for policy in available_policies():
            jobs, base = self._run(policy)
            _, slow = self._run(policy, [
                StragglerEvent(time=0.0, worker=1, efficiency=0.25)
            ])
            base_iters = iteration_times(jobs[0], base.ccts())
            slow_iters = iteration_times(jobs[0], slow.ccts())
            for k, (b, s) in enumerate(zip(base_iters, slow_iters)):
                assert s > b, (
                    f"policy {policy}: straggler did not lengthen "
                    f"iteration {k} ({s} <= {b})"
                )

    def test_recovery_restores_baseline(self):
        _, base = self._run("saath")
        # Slowdown + same-instant recovery: no byte moves while slow,
        # so the run must be bit-identical to the baseline.
        _, recovered = self._run("saath", [
            StragglerEvent(time=0.0, worker=1, efficiency=0.25),
            StragglerEvent(time=0.0, worker=1, efficiency=1.0),
        ])
        assert recovered.ccts() == base.ccts()
        assert recovered.makespan == base.makespan
        # Mid-run recovery lands between the baseline and a full episode.
        _, slow = self._run("saath", [
            StragglerEvent(time=0.0, worker=1, efficiency=0.25),
        ])
        _, partial = self._run("saath", [
            StragglerEvent(time=0.0, worker=1, efficiency=0.25),
            StragglerEvent(time=base.makespan / 2, worker=1, efficiency=1.0),
        ])
        assert base.makespan < partial.makespan < slow.makespan

    def test_unknown_worker_named_in_error(self):
        with pytest.raises(ConfigError, match="machine 99"):
            self._run("saath", [
                StragglerEvent(time=0.0, worker=99, efficiency=0.5)
            ])

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigError, match="efficiency"):
            StragglerEvent(time=0.0, worker=1, efficiency=0.0)
        with pytest.raises(ConfigError, match="efficiency"):
            StragglerEvent(time=0.0, worker=1, efficiency=1.5)

    def test_late_arrivals_inherit_machine_efficiency(self):
        """A coflow arriving mid-episode is slowed too (the session tags
        flows from straggling machines at activation)."""
        fab = _fabric()
        cfg = SimulationConfig(port_rate=100.0)

        def build():
            return [
                make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                            flow_id_start=0),
                make_coflow(1, 2.0, [(1, fab.receiver_port(2), 100.0)],
                            flow_id_start=10),
            ]

        res = run_policy(
            SaathScheduler(cfg), build(), fab, cfg,
            dynamics=[StragglerEvent(time=0.0, worker=1, efficiency=0.5)],
        )
        # Machine 0 is unaffected; machine 1's flow (arriving at t=2,
        # well after the event) runs at half speed: 100 B at 50 B/s.
        assert res.cct(0) == pytest.approx(1.0)
        assert res.cct(1) == pytest.approx(2.0)

    def test_encode_decode_roundtrip(self):
        from repro.simulator.dynamics import decode_actions, encode_actions

        actions = [StragglerEvent(time=1.5, worker=3, efficiency=0.3)]
        assert decode_actions(encode_actions(actions)) == actions
