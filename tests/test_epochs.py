"""Allocation-epoch engine tests: rate diffing, the lazy completion heap,
flow-group compaction, and the satellite fixes that ride along.

The epoch engine (``SimulationConfig.epochs``) must be *exactly* equivalent
to the pre-epoch engine: identical ``SimulationResult``s and an identical
running set after every allocation application. These tests assert that
white-box invariant directly, exercise the edge cases the diffing logic must
preserve (rate perturbation, dynamics rebuilds, δ > 0 sync, zero-volume
arrivals, DAG releases), and unit-test heap staleness handling and the
``max_min_fair`` rewrite against a reference implementation.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.schedulers.base import Allocation
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.dynamics import (
    FlowRestart,
    FlowSlowdown,
    PortDegradation,
    PortRecovery,
)
from repro.simulator.engine import SimulationResult, Simulator, run_policy
from repro.simulator.fabric import Fabric, PortLedger
from repro.simulator.flows import CoFlow, Flow, clone_coflows, make_coflow
from repro.simulator.ratealloc import max_min_fair
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


class _RecordingSimulator(Simulator):
    """Records the (time, running set) sequence after every application."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.applied: list[tuple[float, tuple[tuple[int, float], ...]]] = []

    def _apply_allocation(self, allocation):
        super()._apply_allocation(allocation)
        tbl = self._table
        running = tuple(sorted(
            (tbl.flow_id[i], tbl.rate[i]) for i in self._running
        ))
        self.applied.append((self._now, running))


def _run_recorded(policy, coflows, fabric, *, epochs, dynamics=(), **cfg_kw):
    cfg = SimulationConfig(epochs=epochs, **cfg_kw)
    sim = _RecordingSimulator(
        fabric, make_scheduler(policy, cfg), cfg, dynamics=list(dynamics)
    )
    result = sim.run(clone_coflows(coflows))
    return result, sim.applied


def _assert_same_result(a: SimulationResult, b: SimulationResult, ctx=""):
    assert a.ccts() == b.ccts(), f"CCTs diverged {ctx}"
    assert a.reschedules == b.reschedules, f"reschedules diverged {ctx}"
    assert a.makespan == b.makespan, f"makespan diverged {ctx}"
    assert [c.coflow_id for c in a.coflows] == [
        c.coflow_id for c in b.coflows
    ], f"completion order diverged {ctx}"


@pytest.mark.parametrize("policy", ["saath", "aalo", "varys-sebf", "uc-tcp"])
@pytest.mark.parametrize("sync_ms", [0.0, 8.0])
def test_diffed_apply_matches_full_running_sets(policy, sync_ms):
    """After every application the diffed engine holds the exact running
    set (flow ids *and* rates) the full rebuild would have produced."""
    spec = fb_like_spec(num_machines=16, num_coflows=40)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=23).generate_coflows(fabric)
    res_e, applied_e = _run_recorded(
        policy, coflows, fabric, epochs=True, sync_interval=sync_ms * 1e-3
    )
    res_f, applied_f = _run_recorded(
        policy, coflows, fabric, epochs=False, sync_interval=sync_ms * 1e-3
    )
    _assert_same_result(res_e, res_f, f"({policy}, delta={sync_ms}ms)")
    assert applied_e == applied_f, (
        f"running sets diverged ({policy}, delta={sync_ms}ms)"
    )


@pytest.mark.parametrize("policy", ["saath", "aalo", "uc-tcp"])
def test_rate_perturbation_equivalent(policy):
    """A rate-perturbation hook rewrites every rate per application, so the
    engine must fall back to full applications — and still agree with the
    pre-epoch engine exactly."""
    spec = fb_like_spec(num_machines=12, num_coflows=30)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=29).generate_coflows(fabric)

    def perturb(flow, rate):
        # Deterministic, flow-dependent enforcement error (§7 setup).
        return rate * (0.9 + 0.05 * (flow.flow_id % 3))

    results = []
    for epochs in (True, False):
        cfg = SimulationConfig(epochs=epochs)
        results.append(run_policy(
            make_scheduler(policy, cfg), clone_coflows(coflows), fabric, cfg,
            rate_perturbation=perturb,
        ))
    _assert_same_result(*results, ctx=f"({policy}, perturbation)")


@pytest.mark.parametrize("policy", ["saath", "aalo", "uc-tcp"])
def test_dynamics_rebuild_equivalent(policy):
    """Dynamics mutate rates/ports under the epoch engine's feet; the forced
    full rebuild must restore exact agreement, running sets included."""
    spec = fb_like_spec(num_machines=12, num_coflows=30)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=31).generate_coflows(fabric)
    dynamics = [
        FlowSlowdown(time=0.04, flow_id=coflows[1].flows[0].flow_id,
                     efficiency=0.5),
        FlowRestart(time=0.15, flow_id=coflows[3].flows[0].flow_id),
        PortDegradation(time=0.25, port=2, factor=0.3),
        PortRecovery(time=0.6, port=2),
    ]
    res_e, applied_e = _run_recorded(
        policy, coflows, fabric, epochs=True, dynamics=dynamics,
        sync_interval=8e-3,
    )
    res_f, applied_f = _run_recorded(
        policy, coflows, fabric, epochs=False, dynamics=dynamics,
        sync_interval=8e-3,
    )
    _assert_same_result(res_e, res_f, f"({policy}, dynamics)")
    assert applied_e == applied_f


def test_zero_volume_arrivals_equivalent():
    """Flows born complete ride the _maybe_done path, not the diff."""
    fabric = Fabric(num_machines=4, port_rate=1e6)
    rcv = fabric.receiver_port
    coflows = [
        make_coflow(1, 0.0, [(0, rcv(1), 0.0), (1, rcv(2), 5e5)],
                    flow_id_start=0),
        make_coflow(2, 0.1, [(2, rcv(3), 0.0)], flow_id_start=10),
        make_coflow(3, 0.1, [(0, rcv(3), 3e5), (3, rcv(0), 0.0)],
                    flow_id_start=20),
    ]
    for policy in ("saath", "aalo", "uc-tcp"):
        results = []
        for epochs in (True, False):
            cfg = SimulationConfig(epochs=epochs)
            results.append(run_policy(
                make_scheduler(policy, cfg), clone_coflows(coflows), fabric,
                cfg,
            ))
        _assert_same_result(*results, ctx=f"({policy}, zero-volume)")
        assert set(results[0].ccts()) == {1, 2, 3}


def test_dag_multi_dependency_release_order():
    """The dependency index must release same-instant dependents in the
    arrival order the linear scan used, and only once all deps are met."""
    fabric = Fabric(num_machines=4, port_rate=1e6)
    rcv = fabric.receiver_port
    v = 1e5
    root_a = make_coflow(1, 0.0, [(0, rcv(1), v)], flow_id_start=0)
    root_b = make_coflow(2, 0.0, [(1, rcv(2), v)], flow_id_start=10)
    # Arrives before joint, depends on one root.
    early = make_coflow(3, 0.0, [(2, rcv(3), v)], flow_id_start=20,
                        depends_on=(1,))
    # Depends on both roots: must wait for the later one.
    joint = make_coflow(4, 0.0, [(3, rcv(0), v)], flow_id_start=30,
                        depends_on=(1, 2))
    coflows = [root_a, root_b, early, joint]
    for policy in ("saath", "aalo"):
        results = []
        for epochs in (True, False):
            cfg = SimulationConfig(epochs=epochs)
            results.append(run_policy(
                make_scheduler(policy, cfg), clone_coflows(coflows), fabric,
                cfg,
            ))
        _assert_same_result(*results, ctx=f"({policy}, multi-dep DAG)")
        ccts = results[0].ccts()
        assert set(ccts) == {1, 2, 3, 4}


def _hand_simulator(num_machines=2, **cfg_kw):
    cfg = SimulationConfig(epochs=True, **cfg_kw)
    fabric = Fabric(num_machines=num_machines, port_rate=1e3)
    sim = Simulator(fabric, make_scheduler("uc-tcp", cfg), cfg)
    return sim, fabric


def test_completion_heap_discards_stale_epochs():
    """Rate changes bump the flow's epoch; superseded heap entries must be
    popped and discarded, and the returned instant must match the exact
    per-event arithmetic for the *new* rate."""
    sim, fabric = _hand_simulator()
    rcv = fabric.receiver_port
    coflow = make_coflow(1, 0.0, [(0, rcv(1), 100.0), (1, rcv(0), 100.0)],
                         flow_id_start=0)
    sim._activate(coflow)

    # First application is a full rebuild (cold heap)...
    sim._apply_allocation(Allocation(rates={0: 10.0, 1: 1.0}))
    assert not sim._heap_live
    # ... an unchanged re-application requests a seed ...
    sim._apply_allocation(Allocation(rates={0: 10.0, 1: 1.0}))
    assert sim._seed_pending
    # ... and the next completion lookout seeds and goes warm.
    assert sim._earliest_completion() == 100.0 / 10.0
    assert sim._heap_live and len(sim._heap) == 2

    # Halve flow 0's rate: its heap entry is now a stale epoch.
    sim._apply_allocation(Allocation(rates={0: 5.0, 1: 1.0}))
    assert sim._heap_live  # small churn keeps the heap warm
    assert sim._table.row_of[0] in sim._unheaped
    assert len(sim._heap) == 2  # stale entry still parked in the heap

    # The lookout re-heaps the changed row, pops the stale entry (its old
    # bound beats the provisional best) and discards it on epoch mismatch.
    assert sim._earliest_completion() == 100.0 / 5.0
    assert not sim._unheaped
    epochs = sim._table.epoch
    assert all(entry[1] == epochs[entry[2]] for entry in sim._heap)


def test_completion_heap_matches_scan_after_progress():
    """Warm-heap answers must equal the exact scan at later instants too."""
    sim, fabric = _hand_simulator()
    rcv = fabric.receiver_port
    coflow = make_coflow(1, 0.0, [(0, rcv(1), 100.0), (1, rcv(0), 400.0)],
                         flow_id_start=0)
    sim._activate(coflow)
    sim._apply_allocation(Allocation(rates={0: 10.0, 1: 10.0}))
    sim._apply_allocation(Allocation(rates={0: 10.0, 1: 10.0}))
    assert sim._earliest_completion() == 10.0  # seeds the heap
    sim._advance_to(4.0)
    # Exact scan value at t=4: 4 + (100 - 40)/10 and 4 + (400 - 40)/10.
    expected = 4.0 + (100.0 - 40.0) / 10.0
    assert sim._earliest_completion() == expected


def test_high_churn_goes_cold_and_recovers():
    """A round that rewrites most rates must drop the heap (scan mode) and
    reseed once churn subsides."""
    sim, fabric = _hand_simulator(num_machines=4)
    rcv = fabric.receiver_port
    coflow = make_coflow(
        1, 0.0,
        [(0, rcv(1), 1e3), (1, rcv(2), 1e3), (2, rcv(3), 1e3),
         (3, rcv(0), 1e3)],
        flow_id_start=0,
    )
    sim._activate(coflow)
    sim._apply_allocation(Allocation(rates={0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}))
    sim._apply_allocation(Allocation(rates={0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}))
    sim._earliest_completion()
    assert sim._heap_live
    # Rewrite every rate: cold, heap dropped.
    sim._apply_allocation(Allocation(rates={0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0}))
    assert not sim._heap_live and not sim._heap
    # Scan mode still answers exactly.
    assert sim._earliest_completion() == 1e3 / 2.0
    # A quiet round requests the reseed.
    sim._apply_allocation(Allocation(rates={0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0}))
    assert sim._seed_pending
    assert sim._earliest_completion() == 1e3 / 2.0
    assert sim._heap_live and len(sim._heap) == 4


def test_simulation_result_lookup_index():
    """cct()/coflow() are dict-backed (they used to be linear scans called
    in loops by analysis code) and still raise KeyError on misses."""
    flows = [Flow(flow_id=1, coflow_id=7, src=0, dst=2, volume=10.0)]
    done = CoFlow(coflow_id=7, arrival_time=1.0, flows=flows)
    done.finish_time = 3.5
    result = SimulationResult(coflows=[done])
    assert result.cct(7) == 2.5
    assert result.coflow(7) is done
    with pytest.raises(KeyError):
        result.cct(99)
    with pytest.raises(KeyError):
        result.coflow(99)
    # The index follows later appends (coflows finish during the run).
    flows2 = [Flow(flow_id=2, coflow_id=8, src=1, dst=3, volume=10.0)]
    late = CoFlow(coflow_id=8, arrival_time=2.0, flows=flows2)
    late.finish_time = 6.0
    result.coflows.append(late)
    assert result.cct(8) == 4.0


# ---- max_min_fair: rewrite vs the original reference ----------------------


def _reference_max_min_fair(flows, ledger, *, rate_cap=None, commit=True):
    """The pre-optimisation implementation (quadratic clamp included),
    kept verbatim as the behavioural reference."""
    active = {f.flow_id: f for f in flows if not f.finished}
    rates = {fid: 0.0 for fid in active}
    if not active:
        return rates
    residual: dict[int, float] = {}
    port_flows: dict[int, set[int]] = {}
    live_count: dict[int, int] = {}
    for f in active.values():
        for port in (f.src, f.dst):
            if port not in residual:
                residual[port] = ledger.residual(port)
                live_count[port] = 0
                port_flows[port] = set()
            port_flows[port].add(f.flow_id)
            live_count[port] += 1
    frozen: set[int] = set()
    if rate_cap is not None and rate_cap <= 0:
        return rates
    while len(frozen) < len(active):
        best_port = None
        best_share = math.inf
        for port, count in live_count.items():
            if count == 0:
                continue
            share = residual[port] / count
            if share < best_share:
                best_share = share
                best_port = port
        if best_port is None:
            break
        if rate_cap is not None and rate_cap < best_share:
            for fid in [f for f in active if f not in frozen]:
                rates[fid] = rate_cap
                flow = active[fid]
                residual[flow.src] -= rate_cap
                residual[flow.dst] -= rate_cap
                live_count[flow.src] -= 1
                live_count[flow.dst] -= 1
                frozen.add(fid)
            break
        newly = [fid for fid in port_flows[best_port] if fid not in frozen]
        drained = {best_port}
        for fid in newly:
            rates[fid] = best_share
            flow = active[fid]
            residual[flow.src] -= best_share
            residual[flow.dst] -= best_share
            live_count[flow.src] -= 1
            live_count[flow.dst] -= 1
            drained.add(flow.src)
            drained.add(flow.dst)
            frozen.add(fid)
        for port in drained:
            if live_count.get(port) == 0:
                del live_count[port]
        for port in residual:
            if residual[port] < 0:
                residual[port] = 0.0
    if commit:
        for fid, rate in rates.items():
            if rate > 0:
                flow = active[fid]
                ledger.commit(flow.src, flow.dst, rate)
    return rates


def test_max_min_fair_matches_reference():
    """Rates *and* resulting ledger state are bit-identical to the original
    implementation across random instances, caps, and finished flows."""
    rng = random.Random(17)
    machines = 12
    fabric = Fabric(num_machines=machines, port_rate=1e9)
    for trial in range(200):
        flows = []
        for i in range(rng.randrange(1, 50)):
            src = rng.randrange(machines)
            dst = rng.randrange(machines) + machines
            f = Flow(flow_id=i, coflow_id=i % 5, src=src, dst=dst,
                     volume=1e6)
            if rng.random() < 0.15:
                f.finish_time = 1.0
            flows.append(f)
        cap = rng.choice([None, None, 0.0, 1e3, 5e7, 2e9])
        commit = rng.random() < 0.5
        ref_ledger = PortLedger(fabric)
        new_ledger = PortLedger(fabric)
        expected = _reference_max_min_fair(
            flows, ref_ledger, rate_cap=cap, commit=commit
        )
        got = max_min_fair(flows, new_ledger, rate_cap=cap, commit=commit)
        assert got == expected, f"trial {trial} (cap={cap})"
        assert (new_ledger.snapshot_residuals()
                == ref_ledger.snapshot_residuals()), f"trial {trial}"


def test_max_min_fair_rate_cap_semantics():
    """Cap below every fair share caps all flows; cap of zero zeroes all."""
    fabric = Fabric(num_machines=2, port_rate=1e3)
    flows = [
        Flow(flow_id=0, coflow_id=0, src=0, dst=2, volume=10.0),
        Flow(flow_id=1, coflow_id=0, src=1, dst=3, volume=10.0),
    ]
    rates = max_min_fair(flows, PortLedger(fabric), rate_cap=10.0)
    assert rates == {0: 10.0, 1: 10.0}
    rates = max_min_fair(flows, PortLedger(fabric), rate_cap=0.0)
    assert rates == {0: 0.0, 1: 0.0}


def test_flow_group_compaction_cache_consistency():
    """ClusterState's groups/counts stay exact across completion
    notifications, and the availability gate withholds the cache until the
    last pending flow's data exists."""
    from repro.simulator.state import ClusterState

    fabric = Fabric(num_machines=4, port_rate=1e6)
    rcv = fabric.receiver_port
    coflow = make_coflow(
        1, 0.0,
        [(0, rcv(1), 10.0), (0, rcv(1), 10.0), (1, rcv(2), 10.0)],
        flow_id_start=0,
    )
    coflow.flows[2].available_time = 5.0
    state = ClusterState(fabric=fabric)
    state.active_coflows.append(coflow)
    state.note_activated(coflow)

    # Gated while a pending flow's data is still in the future...
    assert state.port_counts(coflow, now=0.0) is None
    # ... exact once every flow is available.
    counts = state.port_counts(coflow, now=5.0)
    assert counts == {0: 2, rcv(1): 2, 1: 1, rcv(2): 1}
    groups = state.flow_groups(coflow)
    assert sorted(len(b) for b in groups.values()) == [1, 2]

    # A completion shrinks the bucket and the counts in lockstep.
    victim = coflow.flows[0]
    victim.finish_time = 1.0
    state.note_flow_finished(victim)
    assert state.port_counts(coflow, now=5.0) == {
        0: 1, rcv(1): 1, 1: 1, rcv(2): 1
    }
    assert sorted(len(b) for b in state.flow_groups(coflow).values()) == [1, 1]
    # Counts always mirror a fresh recount of the pending set.
    recount: dict[int, int] = {}
    for f in state.pending_flows(coflow):
        recount[f.src] = recount.get(f.src, 0) + 1
        recount[f.dst] = recount.get(f.dst, 0) + 1
    assert recount == state.pending_port_counts(coflow)
