"""coflow-benchmark trace format I/O."""

import pytest

from repro.errors import TraceFormatError
from repro.simulator.fabric import Fabric
from repro.units import MB
from repro.workloads.traces import (
    Trace,
    TraceCoflow,
    coflows_to_trace,
    dump_trace,
    load_trace,
    parse_trace,
    save_trace,
    trace_to_coflows,
)

SAMPLE = """\
4 2
1 0 2 0 1 2 2:10 3:20
2 100 1 3 1 0:5
"""


class TestParsing:
    def test_parse_header(self):
        trace = parse_trace(SAMPLE)
        assert trace.num_ports == 4
        assert len(trace) == 2

    def test_parse_mappers_and_reducers(self):
        trace = parse_trace(SAMPLE)
        c = trace.coflows[0]
        assert c.coflow_id == 1
        assert c.arrival_ms == 0
        assert c.mappers == (0, 1)
        assert c.reducers == ((2, 10 * MB), (3, 20 * MB))

    def test_width_is_mappers_times_reducers(self):
        trace = parse_trace(SAMPLE)
        assert trace.coflows[0].width == 4
        assert trace.coflows[1].width == 1

    def test_total_bytes(self):
        trace = parse_trace(SAMPLE)
        assert trace.coflows[0].total_bytes == pytest.approx(30 * MB)

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("")

    def test_bad_header_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("4\n")

    def test_wrong_count_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("4 3\n1 0 1 0 1 1:5\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("4 1\n1 0 2 0 1 1 2:x\n")

    def test_mapper_out_of_range_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("2 1\n1 0 1 5 1 0:5\n")

    def test_reducer_out_of_range_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("2 1\n1 0 1 0 1 9:5\n")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("4 1\n1 0 1 0 1 2:5 junk\n")

    def test_negative_arrival_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("4 1\n1 -5 1 0 1 2:5\n")


class TestRoundTrip:
    def test_dump_then_parse_identical(self):
        trace = parse_trace(SAMPLE)
        assert parse_trace(dump_trace(trace)) == trace

    def test_save_and_load(self, tmp_path):
        trace = parse_trace(SAMPLE)
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        assert load_trace(path) == trace


class TestFlowExpansion:
    def test_reducer_bytes_split_over_mappers(self):
        trace = parse_trace(SAMPLE)
        fabric = Fabric(num_machines=4, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        c = coflows[0]
        assert c.width == 4
        to_r2 = [f for f in c.flows if f.dst == fabric.receiver_port(2)]
        assert len(to_r2) == 2
        assert sum(f.volume for f in to_r2) == pytest.approx(10 * MB)
        assert to_r2[0].volume == pytest.approx(5 * MB)

    def test_arrival_converted_to_seconds(self):
        trace = parse_trace(SAMPLE)
        fabric = Fabric(num_machines=4, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        assert coflows[1].arrival_time == pytest.approx(0.1)

    def test_fabric_too_small_rejected(self):
        trace = parse_trace(SAMPLE)
        with pytest.raises(TraceFormatError):
            trace_to_coflows(trace, Fabric(num_machines=2, port_rate=1e8))

    def test_flow_ids_globally_unique(self):
        trace = parse_trace(SAMPLE)
        fabric = Fabric(num_machines=4, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        ids = [f.flow_id for c in coflows for f in c.flows]
        assert len(ids) == len(set(ids))

    def test_zero_size_coflow_still_materialises(self):
        trace = parse_trace("4 1\n1 0 1 0 1 2:0\n")
        fabric = Fabric(num_machines=4, port_rate=1e8)
        (c,) = trace_to_coflows(trace, fabric)
        assert c.width == 1
        assert c.total_volume == 0.0


class TestInverse:
    def test_coflows_to_trace_round_trip_structure(self):
        trace = parse_trace(SAMPLE)
        fabric = Fabric(num_machines=4, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        back = coflows_to_trace(coflows, fabric)
        assert back.num_ports == 4
        assert back.coflows[0].mappers == (0, 1)
        assert dict(back.coflows[0].reducers)[2] == pytest.approx(10 * MB)
