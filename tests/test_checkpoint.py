"""Durable-checkpoint tests: save/load round-trips, integrity, resume.

The contract under test: a session checkpointed to disk mid-run and
resumed finishes byte-identical to an uninterrupted run — for every
registered policy — and every way a checkpoint file can be damaged is
detected before the body is unpickled.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import CheckpointError, ConfigError
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.scenario import Scenario
from repro.simulator.session import (
    CHECKPOINT_FORMAT,
    SessionSnapshot,
    SimulationSession,
)
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec

CONFIG = SimulationConfig()


def _workload(seed=3, machines=10, coflows=12):
    spec = fb_like_spec(num_machines=machines, num_coflows=coflows)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=seed).generate_coflows(fabric)
    return fabric, coflows


def _session(policy, fabric, coflows):
    return SimulationSession(
        fabric, make_scheduler(policy, CONFIG), CONFIG,
        scenario=Scenario.from_coflows(coflows),
    )


def _fingerprint(result):
    return (result.ccts(), result.makespan, result.reschedules)


def _mid_checkpoint(policy, tmp_path, fabric, coflows):
    """Run to roughly mid-workload, save a checkpoint, return its path."""
    session = _session(policy, fabric, coflows)
    arrivals = sorted(c.arrival_time for c in coflows)
    session.run_until(arrivals[len(arrivals) // 2])
    return session.snapshot().save(tmp_path / f"{policy}.ckpt")


# ---- the headline guarantee ------------------------------------------------


@pytest.mark.parametrize("policy", available_policies())
def test_save_load_resume_is_byte_identical(policy, tmp_path):
    fabric, coflows = _workload()
    full = _fingerprint(_session(policy, fabric, coflows).run())

    fabric2, coflows2 = _workload()
    path = _mid_checkpoint(policy, tmp_path, fabric2, coflows2)
    snap = SessionSnapshot.load(path)
    assert snap.policy == policy
    resumed = _fingerprint(SimulationSession.restore(snap).run())
    assert resumed == full


def test_one_checkpoint_supports_many_restores(tmp_path):
    fabric, coflows = _workload()
    full = _fingerprint(_session("saath", fabric, coflows).run())
    path = _mid_checkpoint("saath", tmp_path, *_workload())
    snap = SessionSnapshot.load(path)
    a = _fingerprint(SimulationSession.restore(snap).run())
    b = _fingerprint(SimulationSession.restore(snap).run())
    assert a == full
    assert b == full


# ---- checkpoint_every on run() ---------------------------------------------


def test_checkpoint_every_does_not_perturb_the_run(tmp_path):
    fabric, coflows = _workload()
    plain = _fingerprint(_session("saath", fabric, coflows).run())

    path = tmp_path / "rolling.ckpt"
    seen = []
    fabric2, coflows2 = _workload()
    checkpointed = _fingerprint(_session("saath", fabric2, coflows2).run(
        checkpoint_every=0.5, checkpoint_path=path,
        on_checkpoint=seen.append,
    ))
    assert checkpointed == plain
    assert path.exists()
    assert seen, "expected at least one checkpoint during the run"
    assert all(isinstance(s, SessionSnapshot) for s in seen)
    # cadence: snapshots fire at the first instant past each crossed
    # boundary, so their times are strictly increasing and each lands in
    # a distinct 0.5 s window
    times = [s.time for s in seen]
    assert times == sorted(times)
    windows = [int(t / 0.5) for t in times]
    assert len(set(windows)) == len(windows)


def test_resume_from_rolling_checkpoint_matches_full_run(tmp_path):
    fabric, coflows = _workload()
    full = _fingerprint(_session("saath", fabric, coflows).run())

    snaps = []
    fabric2, coflows2 = _workload()
    _session("saath", fabric2, coflows2).run(
        checkpoint_every=0.5, on_checkpoint=snaps.append)
    assert snaps
    # resume from an intermediate (not final) checkpoint
    snap = snaps[0]
    resumed = _fingerprint(SimulationSession.restore(snap).run())
    assert resumed == full


def test_checkpoint_every_validation():
    fabric, coflows = _workload()
    session = _session("saath", fabric, coflows)
    with pytest.raises(ConfigError, match="checkpoint_every must be "
                                          "positive"):
        session.run(checkpoint_every=0.0, checkpoint_path="x.ckpt")
    with pytest.raises(ConfigError, match="needs a destination"):
        session.run(checkpoint_every=1.0)


# ---- file-format integrity -------------------------------------------------


def _saved(tmp_path):
    return _mid_checkpoint("saath", tmp_path, *_workload())


def test_load_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read checkpoint"):
        SessionSnapshot.load(tmp_path / "nope.ckpt")


def test_load_rejects_foreign_file(tmp_path):
    path = tmp_path / "foreign.ckpt"
    path.write_bytes(b'{"magic": "something-else"}\nbody')
    with pytest.raises(CheckpointError, match="bad magic"):
        SessionSnapshot.load(path)


def test_load_rejects_garbled_header(tmp_path):
    path = tmp_path / "garbled.ckpt"
    path.write_bytes(b"\xff\xfe not json\nbody")
    with pytest.raises(CheckpointError, match="unreadable header"):
        SessionSnapshot.load(path)


def test_load_rejects_headerless_file(tmp_path):
    path = tmp_path / "flat.ckpt"
    path.write_bytes(b"no newline anywhere")
    with pytest.raises(CheckpointError, match="missing header/body"):
        SessionSnapshot.load(path)


def test_load_rejects_future_format_version(tmp_path):
    path = _saved(tmp_path)
    head, _, body = path.read_bytes().partition(b"\n")
    header = json.loads(head)
    header["format"] = CHECKPOINT_FORMAT + 1
    path.write_bytes(json.dumps(header).encode() + b"\n" + body)
    with pytest.raises(CheckpointError, match="format version"):
        SessionSnapshot.load(path)


def test_load_detects_truncation(tmp_path):
    path = _saved(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 100])
    with pytest.raises(CheckpointError, match="truncated"):
        SessionSnapshot.load(path)


def test_load_detects_corruption(tmp_path):
    path = _saved(tmp_path)
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0xFF  # flip a body byte; length stays right
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="checksum"):
        SessionSnapshot.load(path)


def test_save_is_atomic_over_a_previous_checkpoint(tmp_path):
    path = _saved(tmp_path)
    first = path.read_bytes()
    session = SimulationSession.restore(SessionSnapshot.load(path))
    session.run()
    session2 = _session("saath", *_workload())
    session2.run_until(1.0)
    session2.snapshot().save(path)
    assert path.read_bytes() != first  # replaced…
    SessionSnapshot.load(path)         # …and still loadable
    assert not list(tmp_path.glob("*.tmp"))  # no temp debris


def test_unpicklable_session_raises_checkpoint_error(tmp_path):
    fabric, coflows = _workload()
    sink = lambda c: None  # noqa: E731 - deliberately unpicklable closure
    session = SimulationSession(
        fabric, make_scheduler("saath", CONFIG), CONFIG,
        scenario=Scenario.from_coflows(coflows), sink=sink,
    )
    session.run_until(1.0)
    snap = session.snapshot()  # in-memory snapshot is fine
    with pytest.raises(CheckpointError, match="cannot be pickled"):
        snap.save(tmp_path / "bad.ckpt")
