"""Varys SEBF, SCF, SRTF, LWTF and UC-TCP baselines."""

import pytest

from repro.config import SimulationConfig
from repro.schedulers.offline import (
    LwtfScheduler,
    ScfScheduler,
    SrtfScheduler,
)
from repro.schedulers.uctcp import UcTcpScheduler
from repro.schedulers.varys import VarysSebfScheduler
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow
from repro.simulator.state import ClusterState


def _fabric(machines=8, rate=100.0):
    return Fabric(num_machines=machines, port_rate=rate)


def _cfg(**kw):
    defaults = dict(port_rate=100.0, min_rate=1e-3)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestVarysSebf:
    def test_smallest_bottleneck_first(self):
        fab = _fabric()
        cfg = _cfg()
        big = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 300.0)],
                          flow_id_start=0)
        small = make_coflow(2, 0.0, [(0, fab.receiver_port(4), 100.0)],
                            flow_id_start=10)
        res = run_policy(VarysSebfScheduler(cfg), [big, small], fab, cfg)
        assert res.cct(2) == pytest.approx(1.0)
        assert res.cct(1) == pytest.approx(4.0)

    def test_madd_synchronises_flows(self):
        fab = _fabric()
        cfg = _cfg()
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 200.0),
                                 (0, fab.receiver_port(4), 100.0)],
                        flow_id_start=0)
        res = run_policy(VarysSebfScheduler(cfg), [c], fab, cfg)
        fcts = [f.finish_time for f in res.coflow(1).flows]
        assert fcts[0] == pytest.approx(fcts[1])
        assert res.cct(1) == pytest.approx(3.0)  # 300 bytes on sender 0

    def test_backfill_uses_leftovers(self):
        fab = _fabric()
        cfg = _cfg()
        sebf = VarysSebfScheduler(cfg)
        # Coflow 1 bottlenecked at receiver 3 it shares with nothing else;
        # its sender 0 has slack that coflow 2 (also on sender 0) can use
        # only via its own MADD on residuals.
        a = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0)],
                        flow_id_start=0)
        b = make_coflow(2, 0.0, [(0, fab.receiver_port(4), 100.0)],
                        flow_id_start=10)
        state = ClusterState(fabric=fab, active_coflows=[a, b])
        alloc = sebf.schedule(state, 0.0)
        # a gets full rate (gamma 1s); b squeezed out entirely at sender 0.
        assert alloc.rates[0] == pytest.approx(100.0)
        assert alloc.rates.get(10, 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_is_clairvoyant(self):
        assert VarysSebfScheduler.clairvoyant


class TestOrderingPolicies:
    def _race(self, scheduler_cls):
        """Two coflows compete on one sender; return (cct_small, cct_big)."""
        fab = _fabric()
        cfg = _cfg()
        big = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 300.0)],
                          flow_id_start=0)
        small = make_coflow(2, 0.0, [(0, fab.receiver_port(4), 100.0)],
                            flow_id_start=10)
        res = run_policy(scheduler_cls(cfg), [big, small], fab, cfg)
        return res.cct(2), res.cct(1)

    def test_scf_prefers_small_total(self):
        small, big = self._race(ScfScheduler)
        assert small == pytest.approx(1.0)
        assert big == pytest.approx(4.0)

    def test_srtf_prefers_small_remaining(self):
        small, big = self._race(SrtfScheduler)
        assert small == pytest.approx(1.0)

    def test_srtf_preempts_on_remaining(self):
        """SRTF switches to a newly-arrived shorter coflow mid-flight."""
        fab = _fabric()
        cfg = _cfg()
        long = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 300.0)],
                           flow_id_start=0)
        newcomer = make_coflow(2, 1.0, [(0, fab.receiver_port(4), 100.0)],
                               flow_id_start=10)
        res = run_policy(SrtfScheduler(cfg), [long, newcomer], fab, cfg)
        # At t=1 long has 200 left; newcomer has 100 -> newcomer preempts.
        assert res.cct(2) == pytest.approx(1.0)
        assert res.cct(1) == pytest.approx(4.0)

    def test_scf_does_not_preempt_on_remaining(self):
        """SCF keys on static size: at t=1 the long coflow (300 total) still
        outranks... actually the newcomer (100) wins on static size too.
        Distinguish with sizes where remaining < newcomer < total."""
        fab = _fabric()
        cfg = _cfg()
        long = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 300.0)],
                           flow_id_start=0)
        # At t=2.5, long's remaining = 50 < newcomer's 100; SRTF would stay
        # with long... SCF compares 300 vs 100 and switches.
        newcomer = make_coflow(2, 2.5, [(0, fab.receiver_port(4), 100.0)],
                               flow_id_start=10)
        scf = run_policy(ScfScheduler(cfg),
                         [long, newcomer], fab, cfg)
        assert scf.cct(2) == pytest.approx(1.0)  # SCF prefers newcomer
        fab2 = _fabric()
        long2 = make_coflow(1, 0.0, [(0, fab2.receiver_port(3), 300.0)],
                            flow_id_start=0)
        newcomer2 = make_coflow(2, 2.5, [(0, fab2.receiver_port(4), 100.0)],
                                flow_id_start=10)
        srtf = run_policy(SrtfScheduler(cfg), [long2, newcomer2], fab2, cfg)
        # SRTF keeps the long coflow (50 remaining < 100).
        assert srtf.cct(1) == pytest.approx(3.0)
        assert srtf.cct(2) == pytest.approx(1.5)

    def test_lwtf_prefers_low_contention(self):
        """Fig. 17: C1 (5t, blocks 2) vs C2 (6t) + C3 (7t) each blocking 1.

        SCF runs C1 first (total 10t < 6t? no — C1 total = 10 units...).
        We check LWTF ranks by t*k: C1 key = 5*2=10; C2 = 6*1; C3 = 7*1,
        so LWTF runs C2/C3 before C1, giving the optimal average CCT.
        """
        fab = _fabric()
        cfg = _cfg()

        def build():
            c1 = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 500.0),
                                      (1, fab.receiver_port(4), 500.0)],
                             flow_id_start=0)
            c2 = make_coflow(2, 0.0, [(0, fab.receiver_port(5), 600.0)],
                             flow_id_start=10)
            c3 = make_coflow(3, 0.0, [(1, fab.receiver_port(6), 700.0)],
                             flow_id_start=20)
            return [c1, c2, c3]

        lwtf = run_policy(LwtfScheduler(cfg), build(), fab, cfg)
        assert lwtf.cct(2) == pytest.approx(6.0)
        assert lwtf.cct(3) == pytest.approx(7.0)
        assert lwtf.cct(1) == pytest.approx(12.0)
        # Note: SCF keyed on *total bytes* also defers C1 here (its total,
        # 1000, is the largest), so the toy example only shows LWTF is no
        # worse; the statistical LWTF-beats-SCF claim is the Fig. 3
        # experiment (see benchmarks/test_bench_fig3.py).
        scf = run_policy(ScfScheduler(cfg), build(), fab, cfg)
        assert lwtf.average_cct() <= scf.average_cct() + 1e-9


class TestUcTcp:
    def test_all_flows_share_fairly(self):
        fab = _fabric()
        cfg = _cfg()
        uctcp = UcTcpScheduler(cfg)
        a = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0)],
                        flow_id_start=0)
        b = make_coflow(2, 0.0, [(0, fab.receiver_port(4), 100.0)],
                        flow_id_start=10)
        state = ClusterState(fabric=fab, active_coflows=[a, b])
        alloc = uctcp.schedule(state, 0.0)
        assert alloc.rates[0] == pytest.approx(50.0)
        assert alloc.rates[10] == pytest.approx(50.0)

    def test_fair_sharing_inflates_cct_vs_serial(self):
        """Sharing is the worst strategy for average CCT (the 154x gap)."""
        fab = _fabric()
        cfg = _cfg()

        def build():
            return [
                make_coflow(i, 0.0, [(0, fab.receiver_port(i + 1), 100.0)],
                            flow_id_start=10 * i)
                for i in range(4)
            ]

        fair = run_policy(UcTcpScheduler(cfg), build(), fab, cfg)
        serial = run_policy(ScfScheduler(cfg), build(), fab, cfg)
        assert fair.average_cct() > serial.average_cct()
        # All four equal coflows sharing finish together at 4s.
        assert fair.average_cct() == pytest.approx(4.0)
        # Serial: 1+2+3+4 / 4 = 2.5s.
        assert serial.average_cct() == pytest.approx(2.5)

    def test_not_clairvoyant(self):
        assert not UcTcpScheduler.clairvoyant
