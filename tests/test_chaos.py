"""Chaos-injection tests: the resilience layer survives deliberate faults.

The headline contract: a sweep that experiences worker exceptions, a
SIGKILLed worker, a hung run (watchdog timeout) and a corrupted cache file
still completes, and its outcomes are byte-identical to a fault-free run —
determinism makes retry-after-failure provably safe. These tests arm the
:mod:`repro.testing.chaos` registry to fire exactly those faults.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import ChaosError, ConfigError, RunFailedError
from repro.experiments.runner import RunSpec, SweepRunner, WorkloadSpec
from repro.resilience import EXCEPTION, RetryPolicy
from repro.testing import chaos

WORKLOAD = WorkloadSpec(family="fb-like", machines=10, coflows=15, seed=5)
CONFIG = SimulationConfig()


def _specs(policies=("saath", "aalo", "scf"), seeds=(1, 2)):
    return [
        RunSpec(policy=p,
                workload=WorkloadSpec(family="fb-like", machines=10,
                                      coflows=15, seed=s),
                config=CONFIG)
        for p in policies for s in seeds
    ]


def _assert_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.spec == y.spec
        assert x.ccts == y.ccts
        assert x.makespan == y.makespan
        assert x.reschedules == y.reschedules


def _arm(monkeypatch, tmp_path, plan):
    directory = chaos.arm(plan, tmp_path / "chaos")
    monkeypatch.setenv(chaos.ENV_VAR, str(directory))
    return directory


# ---- plan validation -------------------------------------------------------


def test_arm_rejects_unknown_site(tmp_path):
    with pytest.raises(ConfigError, match="unknown site 'disk'"):
        chaos.arm([{"site": "disk", "action": "corrupt"}], tmp_path)


def test_arm_rejects_unknown_action(tmp_path):
    with pytest.raises(ConfigError, match="got action 'melt'"):
        chaos.arm([{"site": "worker", "action": "melt"}], tmp_path)


def test_arm_rejects_nonpositive_budget(tmp_path):
    with pytest.raises(ConfigError, match="times must be >= 1"):
        chaos.arm([{"site": "worker", "action": "exception", "times": 0}],
                  tmp_path)


def test_disarmed_trip_is_a_no_op(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.trip("worker", policy="saath", seed=1)  # must not raise
    assert not chaos.active()


# ---- the headline guarantee ------------------------------------------------


def test_chaos_sweep_is_byte_identical_to_fault_free(
        monkeypatch, tmp_path):
    """Worker exceptions + a worker kill + a hung run + a corrupted cache
    file: the sweep completes and every outcome matches the fault-free
    run bit for bit."""
    specs = _specs()
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    baseline = SweepRunner(jobs=1).run(specs)
    assert all(not o.failed for o in baseline)

    directory = _arm(monkeypatch, tmp_path, [
        {"site": "worker", "action": "exception", "times": 2},
        {"site": "worker", "action": "kill", "times": 1},
        # Pin the hang to one spec so exactly one timeout fires.
        {"site": "worker", "action": "delay", "times": 1,
         "seconds": 30.0, "policy": "scf", "seed": 2},
        {"site": "cache", "action": "corrupt", "times": 1},
    ])
    log_path = tmp_path / "sweep.jsonl"
    runner = SweepRunner(
        jobs=2, cache_dir=tmp_path / "cache",
        retry=RetryPolicy(max_attempts=4, base_delay=0.01, timeout=5.0),
        log_path=log_path,
    )
    outcomes = runner.run(specs)

    assert all(not o.failed for o in outcomes), [
        (o.spec.policy, o.kind, o.error) for o in outcomes if o.failed]
    _assert_identical(baseline, outcomes)
    # every armed fault actually fired (exact budgets, fully consumed)
    assert chaos.fired_count(directory) == 5
    # some run needed more than one attempt
    assert any(o.attempts > 1 for o in outcomes)
    # the sweep log recorded the whole story
    records = [json.loads(line)
               for line in log_path.read_text().splitlines()]
    events = [r["event"] for r in records]
    assert events[0] == "sweep-start"
    assert events[-1] == "sweep-end"
    assert sum(1 for e in events if e == "run") == len(specs)
    retried = [r for r in records
               if r["event"] == "run" and r.get("attempts", 1) > 1]
    assert retried, "expected at least one retried run in the log"

    # the corrupted cache entry is quarantined and recomputed on rerun
    monkeypatch.delenv(chaos.ENV_VAR)
    rerun = SweepRunner(jobs=1, cache_dir=tmp_path / "cache")
    _assert_identical(baseline, rerun.run(specs))
    assert rerun.cache.quarantined == 1
    assert rerun.cache.hits == len(specs) - 1


def test_inline_sweep_survives_worker_exceptions(monkeypatch, tmp_path):
    specs = _specs(policies=("saath",), seeds=(1,))
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    baseline = SweepRunner(jobs=1).run(specs)
    _arm(monkeypatch, tmp_path, [
        {"site": "worker", "action": "exception", "times": 2},
    ])
    runner = SweepRunner(
        jobs=1, retry=RetryPolicy(max_attempts=3, base_delay=0.0))
    outcomes = runner.run(specs)
    assert outcomes[0].attempts == 3
    _assert_identical(baseline, outcomes)


def test_inline_sweep_never_kills_the_main_process(monkeypatch, tmp_path):
    """A worker-kill entry must be skipped (budget unclaimed) when the
    sweep runs inline in the main process."""
    specs = _specs(policies=("saath",), seeds=(1,))
    directory = _arm(monkeypatch, tmp_path, [
        {"site": "worker", "action": "kill", "times": 1},
    ])
    outcomes = SweepRunner(jobs=1).run(specs)
    assert not outcomes[0].failed
    assert chaos.fired_count(directory) == 0


# ---- exhaustion and strict mode --------------------------------------------


def test_exhausted_retries_yield_structured_failure(monkeypatch, tmp_path):
    specs = _specs(policies=("saath", "aalo"), seeds=(1,))
    _arm(monkeypatch, tmp_path, [
        # More exceptions than saath's budget; aalo untouched.
        {"site": "worker", "action": "exception", "times": 5,
         "policy": "saath"},
    ])
    runner = SweepRunner(
        jobs=1, retry=RetryPolicy(max_attempts=2, base_delay=0.0))
    outcomes = runner.run(specs)
    failure, ok = outcomes
    assert failure.failed
    assert failure.kind == EXCEPTION
    assert len(failure.attempts) == 2
    assert "ChaosError" in failure.error
    assert failure.elapsed > 0
    assert not ok.failed  # the other run still completed


def test_strict_mode_raises_run_failed_error(monkeypatch, tmp_path):
    specs = _specs(policies=("saath",), seeds=(1,))
    _arm(monkeypatch, tmp_path, [
        {"site": "worker", "action": "exception", "times": 5},
    ])
    runner = SweepRunner(
        jobs=1, retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        strict=True)
    with pytest.raises(RunFailedError, match="failed \\(exception\\)"):
        runner.run(specs)


def test_chaos_error_is_raised_at_the_worker_site(monkeypatch, tmp_path):
    from repro.experiments.runner import execute_spec
    _arm(monkeypatch, tmp_path, [
        {"site": "worker", "action": "exception", "times": 1},
    ])
    with pytest.raises(ChaosError, match="injected worker exception"):
        execute_spec(_specs(policies=("saath",), seeds=(1,))[0])


# ---- cache damage flavours -------------------------------------------------


@pytest.mark.parametrize("action", ["corrupt", "truncate", "drift"])
def test_cache_damage_flavours_all_quarantine(monkeypatch, tmp_path, action):
    spec = _specs(policies=("saath",), seeds=(1,))[0]
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    cache_dir = tmp_path / "cache"
    baseline = SweepRunner(jobs=1, cache_dir=cache_dir).run([spec])
    _arm(monkeypatch, tmp_path, [
        {"site": "cache", "action": action, "times": 1},
    ])
    # Damage fires on the next put: force a recompute by clearing the entry.
    damaged = SweepRunner(jobs=1, cache_dir=cache_dir)
    damaged.cache._path(spec.cache_key()).unlink()
    damaged.run([spec])
    monkeypatch.delenv(chaos.ENV_VAR)
    rerun = SweepRunner(jobs=1, cache_dir=cache_dir)
    outcomes = rerun.run([spec])
    assert rerun.cache.quarantined == 1
    assert rerun.cache.misses == 1
    assert outcomes[0].ccts == baseline[0].ccts
    corpses = list(cache_dir.glob("*.corrupt"))
    assert len(corpses) == 1
