"""The high-level policy-comparison harness."""

import pytest

from repro.analysis.comparison import ComparisonOutcome, compare_policies
from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.workloads.synthetic import generate_fb_like


@pytest.fixture(scope="module")
def outcome():
    fabric, coflows = generate_fb_like(seed=9, num_machines=12,
                                       num_coflows=20)
    return compare_policies(
        coflows, fabric, ["aalo", "saath", "varys-sebf"], baseline="aalo",
        config=SimulationConfig(),
    )


class TestComparePolicies:
    def test_all_policies_ran(self, outcome):
        assert outcome.policies() == ["aalo", "saath", "varys-sebf"]
        for policy in outcome.policies():
            assert len(outcome.ccts(policy)) == 20

    def test_speedups_relative_to_baseline(self, outcome):
        speedups = outcome.speedups("saath")
        ccts_base = outcome.ccts("aalo")
        ccts_saath = outcome.ccts("saath")
        some_id = next(iter(speedups))
        assert speedups[some_id] == pytest.approx(
            ccts_base[some_id] / ccts_saath[some_id]
        )

    def test_baseline_speedup_is_identity(self, outcome):
        s = outcome.summary("aalo")
        assert s.p50 == pytest.approx(1.0)

    def test_overall_speedup(self, outcome):
        expected = outcome.average_cct("aalo") / outcome.average_cct("saath")
        assert outcome.overall_speedup("saath") == pytest.approx(expected)

    def test_render_contains_all_policies(self, outcome):
        text = outcome.render(title="my comparison")
        assert text.splitlines()[0] == "my comparison"
        for policy in outcome.policies():
            assert policy in text

    def test_unknown_policy_rejected(self, outcome):
        with pytest.raises(ConfigError):
            outcome.ccts("pfabric")


class TestValidation:
    def test_empty_policy_list_rejected(self):
        fabric, coflows = generate_fb_like(seed=1, num_machines=10,
                                           num_coflows=5)
        with pytest.raises(ConfigError):
            compare_policies(coflows, fabric, [])

    def test_baseline_must_be_included(self):
        fabric, coflows = generate_fb_like(seed=1, num_machines=10,
                                           num_coflows=5)
        with pytest.raises(ConfigError):
            compare_policies(coflows, fabric, ["saath"], baseline="aalo")

    def test_default_baseline_is_first(self):
        fabric, coflows = generate_fb_like(seed=1, num_machines=10,
                                           num_coflows=5)
        outcome = compare_policies(coflows, fabric, ["aalo", "saath"])
        assert outcome.baseline == "aalo"

    def test_source_workload_untouched(self):
        fabric, coflows = generate_fb_like(seed=2, num_machines=10,
                                           num_coflows=5)
        compare_policies(coflows, fabric, ["saath"])
        assert all(f.bytes_sent == 0.0 for c in coflows for f in c.flows)
