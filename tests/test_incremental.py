"""Equivalence tests: incremental vs full-recompute scheduling paths.

The incremental core (dirty-set deltas, the contention tracker, reusable
ledgers, restricted queue refreshes) is designed to be *exactly* equivalent
to rebuilding everything each round. These tests assert that equivalence —
identical ``SimulationResult``s, not merely statistically close ones — for
every registered scheduler, on the paper's toy scenarios, on a synthetic
trace, and under dynamics / DAG / availability edge cases.
"""

from __future__ import annotations

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.core.contention import ContentionTracker, contention_counts
from repro.experiments.toy import ALL_SCENARIOS, PORT_RATE, UNIT_BYTES
from repro.rng import make_rng
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.dynamics import (
    FlowRestart,
    FlowSlowdown,
    PortDegradation,
    PortRecovery,
    inject_stragglers,
)
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows, make_coflow
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


def _toy_config(**kw) -> dict:
    base = dict(
        port_rate=PORT_RATE,
        queues=QueueConfig(num_queues=6, start_threshold=100 * UNIT_BYTES,
                           growth_factor=10.0),
        min_rate=1e-3,
    )
    base.update(kw)
    return base


#: The scheduling/engine paths that must produce byte-identical results:
#: the allocation-epoch engine (the default), the pre-epoch incremental
#: path, the full-recompute path (``--no-incremental``), and the
#: CLI-reachable epoch-engine-over-full-recompute pairing.
_PATHS = (
    dict(epochs=True, incremental=True),
    dict(epochs=False, incremental=True),
    dict(epochs=False, incremental=False),
    dict(epochs=True, incremental=False),
)


def _run_both(policy, coflows, fabric, *, dynamics=(), **cfg_kw):
    """Run a policy over every engine/scheduler path; return all results."""
    results = []
    for path in _PATHS:
        cfg = SimulationConfig(**path, **cfg_kw)
        result = run_policy(
            make_scheduler(policy, cfg), clone_coflows(coflows), fabric, cfg,
            dynamics=list(dynamics),
        )
        results.append(result)
    return results


def _assert_identical(a, *others, context=""):
    for b in others:
        assert a.ccts() == b.ccts(), f"CCTs diverged {context}"
        assert a.reschedules == b.reschedules, \
            f"reschedules diverged {context}"
        assert a.makespan == b.makespan, f"makespan diverged {context}"
        assert [c.coflow_id for c in a.coflows] == [
            c.coflow_id for c in b.coflows
        ], f"completion order diverged {context}"


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("scenario_name", sorted(ALL_SCENARIOS))
def test_toy_scenarios_equivalent(policy, scenario_name):
    scenario = ALL_SCENARIOS[scenario_name]()
    results = _run_both(
        policy, scenario.coflows, scenario.fabric, **_toy_config()
    )
    _assert_identical(*results, context=f"({policy} on {scenario.name})")


@pytest.mark.parametrize("policy", available_policies())
def test_synthetic_trace_equivalent(policy):
    spec = fb_like_spec(num_machines=20, num_coflows=60)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=3).generate_coflows(fabric)
    results = _run_both(policy, coflows, fabric)
    _assert_identical(*results, context=f"({policy} on fb-like)")


@pytest.mark.parametrize("policy", ["saath", "aalo"])
@pytest.mark.parametrize("sync_ms", [0.0, 8.0])
def test_sync_interval_equivalent(policy, sync_ms):
    spec = fb_like_spec(num_machines=16, num_coflows=40)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=11).generate_coflows(fabric)
    results = _run_both(
        policy, coflows, fabric, sync_interval=sync_ms * 1e-3
    )
    _assert_identical(*results, context=f"({policy}, delta={sync_ms}ms)")


@pytest.mark.parametrize("policy", ["saath", "aalo", "uc-tcp"])
def test_dynamics_force_full_resync_equivalent(policy):
    """Restarts, stragglers and port capacity changes must not desync."""
    spec = fb_like_spec(num_machines=12, num_coflows=30)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=5).generate_coflows(fabric)
    some_flow = coflows[2].flows[0].flow_id
    dynamics = [
        FlowSlowdown(time=0.05, flow_id=some_flow, efficiency=0.4),
        FlowRestart(time=0.2, flow_id=coflows[4].flows[0].flow_id),
        PortDegradation(time=0.3, port=0, factor=0.5),
        PortRecovery(time=0.8, port=0),
    ]
    dynamics += inject_stragglers(coflows, make_rng(9), fraction=0.05,
                                  efficiency=0.3)
    results = _run_both(policy, coflows, fabric, dynamics=dynamics)
    _assert_identical(*results, context=f"({policy} with dynamics)")


def test_saath_dynamics_promotion_equivalent():
    """§4.3 promotion interacts with both trackers; both paths must agree."""
    spec = fb_like_spec(num_machines=12, num_coflows=30)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=13).generate_coflows(fabric)
    results = _run_both(
        "saath", coflows, fabric, enable_dynamics_promotion=True
    )
    _assert_identical(*results, context="(saath, dynamics promotion)")


def test_saath_queue_scoped_contention_equivalent():
    spec = fb_like_spec(num_machines=12, num_coflows=30)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=17).generate_coflows(fabric)
    results = _run_both(
        "saath", coflows, fabric, contention_scope="queue",
        enable_dynamics_promotion=True,
    )
    _assert_identical(*results, context="(saath, queue-scoped contention)")


def test_dag_release_equivalent():
    """DAG-released stages exercise mid-simulation activations."""
    fabric = Fabric(num_machines=4, port_rate=PORT_RATE)
    rcv = fabric.receiver_port
    stage1 = make_coflow(1, 0.0, [(0, rcv(1), UNIT_BYTES)], flow_id_start=0)
    stage2 = make_coflow(2, 0.0, [(1, rcv(2), UNIT_BYTES)],
                         flow_id_start=10, depends_on=(1,))
    stage3 = make_coflow(3, 0.0, [(2, rcv(3), UNIT_BYTES)],
                         flow_id_start=20, depends_on=(2,))
    for policy in ("saath", "aalo"):
        results = _run_both(
            policy, [stage1, stage2, stage3], fabric, **_toy_config()
        )
        _assert_identical(*results, context=f"({policy}, DAG)")


def test_validate_incremental_mode_passes():
    """The built-in equivalence assertion stays silent on a clean run."""
    spec = fb_like_spec(num_machines=12, num_coflows=30)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=21).generate_coflows(fabric)
    cfg = SimulationConfig(incremental=True, validate_incremental=True)
    result = run_policy(
        make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg
    )
    assert result.coflows  # ran to completion with assertions enabled


def test_contention_tracker_matches_full_recompute():
    """Unit-level: random add/shrink/remove sequences match the one-shot."""
    spec = fb_like_spec(num_machines=10, num_coflows=25)
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=2).generate_coflows(fabric)
    tracker = ContentionTracker("all")
    active: list = []
    rng = make_rng(4)
    for c in coflows:
        active.append(c)
        tracker.add(c)
        # Finish a random flow of a random active coflow now and then.
        if len(active) % 3 == 0:
            victim = active[int(rng.integers(len(active)))]
            unfinished = [f for f in victim.flows if f.finish_time is None]
            if unfinished:
                unfinished[0].finish_time = 1.0
                tracker.refresh_ports(victim)
        if len(active) % 5 == 0:
            gone = active.pop(0)
            tracker.remove(gone.coflow_id)
        assert tracker.counts() == contention_counts(active)
