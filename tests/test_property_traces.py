"""Property-based tests for trace I/O and the synthetic generators."""

import math

from hypothesis import given, settings, strategies as st

from repro.simulator.fabric import Fabric
from repro.units import MB
from repro.workloads.traces import (
    Trace,
    TraceCoflow,
    coflows_to_trace,
    dump_trace,
    parse_trace,
    trace_to_coflows,
)

NUM_PORTS = 12


@st.composite
def trace_coflows(draw, cid):
    n_mappers = draw(st.integers(min_value=1, max_value=4))
    mappers = draw(
        st.lists(st.integers(min_value=0, max_value=NUM_PORTS - 1),
                 min_size=n_mappers, max_size=n_mappers, unique=True)
    )
    n_reducers = draw(st.integers(min_value=1, max_value=4))
    reducer_machines = draw(
        st.lists(st.integers(min_value=0, max_value=NUM_PORTS - 1),
                 min_size=n_reducers, max_size=n_reducers, unique=True)
    )
    sizes = draw(
        st.lists(st.floats(min_value=0.001, max_value=1e4, allow_nan=False),
                 min_size=n_reducers, max_size=n_reducers)
    )
    arrival = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    return TraceCoflow(
        coflow_id=cid,
        arrival_ms=arrival,
        mappers=tuple(mappers),
        reducers=tuple(
            (m, s * MB) for m, s in zip(reducer_machines, sizes)
        ),
    )


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    coflows = tuple(draw(trace_coflows(cid)) for cid in range(n))
    return Trace(num_ports=NUM_PORTS, coflows=coflows)


class TestTraceRoundTrip:
    @given(traces())
    @settings(max_examples=80, deadline=None)
    def test_dump_parse_identity(self, trace):
        assert parse_trace(dump_trace(trace)) == trace

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_flow_expansion_conserves_bytes(self, trace):
        fabric = Fabric(num_machines=NUM_PORTS, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        for tc, c in zip(trace.coflows, coflows):
            assert math.isclose(c.total_volume, tc.total_bytes,
                                rel_tol=1e-9, abs_tol=1e-6)

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_width_is_mappers_times_reducers(self, trace):
        fabric = Fabric(num_machines=NUM_PORTS, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        for tc, c in zip(trace.coflows, coflows):
            nonzero_reducers = sum(
                1 for _, size in tc.reducers if size > 0
            )
            expected = len(tc.mappers) * nonzero_reducers
            assert c.width == max(expected, 1)

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_inverse_mapping_preserves_reducer_totals(self, trace):
        fabric = Fabric(num_machines=NUM_PORTS, port_rate=1e8)
        coflows = trace_to_coflows(trace, fabric)
        back = coflows_to_trace(coflows, fabric)
        for original, restored in zip(trace.coflows, back.coflows):
            orig_by_machine: dict[int, float] = {}
            for machine, size in original.reducers:
                orig_by_machine[machine] = (
                    orig_by_machine.get(machine, 0.0) + size
                )
            restored_by_machine = dict(restored.reducers)
            for machine, size in orig_by_machine.items():
                if size <= 0:
                    continue
                assert math.isclose(
                    restored_by_machine[machine], size,
                    rel_tol=1e-9, abs_tol=1e-6,
                )


class TestGeneratorProperties:
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_any_size_and_seed_generates_valid_workload(self, n, seed):
        from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec
        from repro.workloads.dag import validate_dag

        spec = fb_like_spec(num_machines=10, num_coflows=n)
        coflows = WorkloadGenerator(spec, seed=seed).generate_coflows()
        assert len(coflows) == n
        validate_dag(coflows)
        ids = [f.flow_id for c in coflows for f in c.flows]
        assert len(ids) == len(set(ids))
        arrivals = [c.arrival_time for c in coflows]
        assert arrivals == sorted(arrivals)
