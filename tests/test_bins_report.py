"""Table-1 binning and the text report renderers."""

import pytest

from repro.analysis.bins import (
    BIN_LABELS,
    bin_fractions,
    bin_membership,
    bin_of,
    binned_speedups,
)
from repro.analysis.report import format_cdf, format_speedup_bars, format_table
from repro.errors import ConfigError
from repro.simulator.flows import make_coflow
from repro.units import MB


def _coflow(cid, width, size_bytes):
    per_flow = size_bytes / width
    transfers = [(i % 10, 100 + i, per_flow) for i in range(width)]
    return make_coflow(cid, 0.0, transfers, flow_id_start=cid * 1000)


class TestBinOf:
    def test_bin1_small_narrow(self):
        assert bin_of(_coflow(1, 5, 50 * MB)) == "bin-1"

    def test_bin2_small_wide(self):
        assert bin_of(_coflow(1, 20, 50 * MB)) == "bin-2"

    def test_bin3_large_narrow(self):
        assert bin_of(_coflow(1, 5, 500 * MB)) == "bin-3"

    def test_bin4_large_wide(self):
        assert bin_of(_coflow(1, 20, 500 * MB)) == "bin-4"

    def test_boundaries_inclusive(self):
        # width exactly 10 and size exactly 100MB are "small/narrow".
        assert bin_of(_coflow(1, 10, 100 * MB)) == "bin-1"


class TestMembership:
    def test_all_labels_present(self):
        members = bin_membership([_coflow(1, 5, 50 * MB)])
        assert set(members) == set(BIN_LABELS)

    def test_fractions_sum_to_one(self):
        coflows = [
            _coflow(1, 5, 50 * MB),
            _coflow(2, 20, 50 * MB),
            _coflow(3, 5, 500 * MB),
            _coflow(4, 20, 500 * MB),
        ]
        fr = bin_fractions(coflows)
        assert sum(fr.values()) == pytest.approx(1.0)
        assert all(v == 0.25 for v in fr.values())

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bin_fractions([])


class TestBinnedSpeedups:
    def test_median_per_bin(self):
        coflows = [_coflow(1, 5, 50 * MB), _coflow(2, 5, 50 * MB),
                   _coflow(3, 20, 500 * MB)]
        speedups = {1: 1.0, 2: 3.0, 3: 2.0}
        binned = binned_speedups(coflows, speedups)
        assert binned.median("bin-1") == pytest.approx(2.0)
        assert binned.median("bin-4") == pytest.approx(2.0)

    def test_missing_bin_raises(self):
        binned = binned_speedups([_coflow(1, 5, 50 * MB)], {1: 1.5})
        with pytest.raises(ConfigError):
            binned.median("bin-4")

    def test_medians_skips_empty_bins(self):
        binned = binned_speedups([_coflow(1, 5, 50 * MB)], {1: 1.5})
        assert binned.medians() == {"bin-1": 1.5}

    def test_coflows_without_speedups_ignored(self):
        coflows = [_coflow(1, 5, 50 * MB), _coflow(2, 5, 50 * MB)]
        binned = binned_speedups(coflows, {1: 2.0})
        assert binned.median("bin-1") == pytest.approx(2.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert lines[1].startswith("---")
        assert "1.50" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1.0]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_cdf_percentiles(self):
        text = format_cdf([1.0, 2.0, 3.0, 4.0], title="speedups")
        assert text.splitlines()[0] == "speedups"
        assert "P  0" in text
        assert "P100" in text

    def test_format_speedup_bars(self):
        text = format_speedup_bars(
            {"aalo": 1.5, "uc-tcp": 100.0},
            title="Fig 9",
            p10={"aalo": 1.0, "uc-tcp": 50.0},
            p90={"aalo": 4.5, "uc-tcp": 200.0},
        )
        assert "Fig 9" in text
        assert "aalo" in text and "uc-tcp" in text
        assert "p90" in text
