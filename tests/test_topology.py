"""Topology subsystem tests: geometry, path selection, the link ledger,
spec round-trips, core-link dynamics and big-switch equivalence.

The load-bearing invariants:

* the default big-switch path is untouched — an explicit
  :class:`BigSwitchTopology` (and a single-rack leaf–spine, whose every
  path is rack-local) produces byte-identical results to ``topology=None``
  for every registered policy;
* the :class:`LinkLedger` extends the dense ``PortLedger`` columns to core
  links with the same touched-set reset semantics, raises
  :class:`CapacityViolationError` naming the bottleneck *link*, and
  validates capacity overrides with the offending link id;
* an oversubscribed core link actually bottlenecks cross-rack traffic.
"""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationConfig
from repro.errors import CapacityViolationError, ConfigError
from repro.experiments.runner import RunSpec, WorkloadSpec
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.dynamics import (
    LinkDegradation,
    LinkRecovery,
    decode_actions,
    encode_actions,
)
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric, PortLedger
from repro.simulator.flows import clone_coflows, make_coflow
from repro.simulator.state import ClusterState
from repro.simulator.topology import (
    BigSwitchTopology,
    LeafSpineTopology,
    LinkLedger,
    PathMap,
    TopologySpec,
)
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


@pytest.fixture
def fabric() -> Fabric:
    return Fabric(num_machines=8, port_rate=100.0)


@pytest.fixture
def topo(fabric) -> LeafSpineTopology:
    # 8 machines / 4 racks of 2 / 2 spines, 4:1 oversubscribed.
    return LeafSpineTopology(fabric, racks=4, spines=2, oversub=4.0)


# ---- geometry ---------------------------------------------------------------


def test_big_switch_topology_has_no_core_links(fabric):
    topo = BigSwitchTopology(fabric)
    assert topo.num_links == fabric.num_ports
    assert topo.num_core_links == 0
    assert list(topo.core_links()) == []
    assert topo.path_candidates(0, 8) == []
    assert topo.link_capacity(3) == fabric.capacity(3)
    with pytest.raises(ConfigError, match="link 16"):
        topo.link_capacity(16)


def test_leaf_spine_link_id_scheme(topo, fabric):
    # Host ports first, then (rack, spine) up/down pairs.
    assert topo.num_links == fabric.num_ports + 2 * 4 * 2
    assert topo.num_core_links == 16
    seen = set()
    for r in range(4):
        for s in range(2):
            up, down = topo.uplink(r, s), topo.downlink(r, s)
            assert up >= fabric.num_ports and down == up + 1
            seen.update((up, down))
    assert seen == set(topo.core_links())
    assert topo.link_name(topo.uplink(1, 0)) == "leaf1->spine0"
    assert topo.link_name(topo.downlink(2, 1)) == "spine1->leaf2"


def test_leaf_spine_oversub_capacity(topo, fabric):
    # rack of 2 hosts at 100 B/s, 4:1 oversub over 2 spines:
    # per-core-link capacity = 2*100 / (4*2) = 25.
    for link in topo.core_links():
        assert topo.link_capacity(link) == pytest.approx(25.0)
    # Host links keep the port rate.
    assert topo.link_capacity(0) == 100.0
    with pytest.raises(ConfigError, match=f"link {topo.num_links}"):
        topo.link_capacity(topo.num_links)


def test_leaf_spine_rack_assignment(fabric):
    topo = LeafSpineTopology(fabric, racks=3, spines=1)
    # stride = ceil(8/3) = 3: racks of 3, 3, 2.
    assert [topo.rack_size(r) for r in range(3)] == [3, 3, 2]
    assert topo.rack_of(0) == 0 and topo.rack_of(5) == 1
    # The smaller rack gets proportionally smaller fabric links.
    assert topo.link_capacity(topo.uplink(2, 0)) == pytest.approx(200.0)
    assert topo.link_capacity(topo.uplink(0, 0)) == pytest.approx(300.0)


def test_leaf_spine_validation(fabric):
    with pytest.raises(ConfigError, match="racks"):
        LeafSpineTopology(fabric, racks=9)
    with pytest.raises(ConfigError, match="spines"):
        LeafSpineTopology(fabric, spines=0)
    with pytest.raises(ConfigError, match="oversubscription"):
        LeafSpineTopology(fabric, oversub=0.0)
    with pytest.raises(ConfigError, match="selector"):
        LeafSpineTopology(fabric, path_select="bogus")


def test_rack_local_paths_have_no_core_links(topo):
    # Machines 0 and 1 share rack 0: sender 0 -> receiver 1+8.
    assert topo.path_candidates(0, 9) == []
    # Cross-rack: one candidate per spine, (uplink, downlink) pairs.
    candidates = topo.path_candidates(0, 8 + 7)
    assert candidates == [
        (topo.uplink(0, 0), topo.downlink(3, 0)),
        (topo.uplink(0, 1), topo.downlink(3, 1)),
    ]


# ---- path selection ---------------------------------------------------------


def test_ecmp_selection_is_deterministic_and_cached(topo):
    paths = PathMap(topo, "ecmp")
    first = paths.extra_links(0, 14)
    assert first in topo.path_candidates(0, 14)
    assert paths.extra_links(0, 14) is first  # cached
    # A fresh map makes the identical choice (stable across processes).
    assert PathMap(topo, "ecmp").extra_links(0, 14) == first


def test_static_selection_always_picks_spine_zero(topo):
    paths = PathMap(topo, "static")
    for src, dst in ((0, 12), (2, 14), (5, 8)):
        extras = paths.extra_links(src, dst)
        if extras:
            assert extras == topo.path_candidates(src, dst)[0]


def test_least_loaded_selection_spreads_pairs(topo):
    paths = PathMap(topo, "least-loaded")
    # Two pairs between the same racks must land on different spines.
    a = paths.extra_links(0, 12)  # rack 0 -> rack 2
    b = paths.extra_links(1, 13)  # rack 0 -> rack 2, next pair
    assert a != b
    assert {a, b} == set(topo.path_candidates(0, 12)) | set(
        topo.path_candidates(1, 13)
    )


# ---- the link ledger --------------------------------------------------------


def _cross_rack_pair(topo):
    """(src port, dst port, extras) for a machine-0 -> machine-7 flow."""
    src, dst = 0, 7 + 8
    paths = PathMap(topo, "static")
    return src, dst, paths, paths.extra_links(src, dst)


def test_link_ledger_commit_charges_whole_path(topo):
    src, dst, paths, extras = _cross_rack_pair(topo)
    ledger = LinkLedger(topo, paths)
    assert len(extras) == 2
    ledger.commit(src, dst, 10.0)
    for link in (src, dst, *extras):
        assert ledger.used(link) == 10.0
        assert link in ledger.touched_set
    # Rack-local commits touch only the two ports.
    ledger.commit(0, 9, 5.0)
    assert ledger.used(9) == 5.0
    assert all(ledger.used(link) == 10.0 for link in extras)


def test_link_ledger_reset_restores_touched_links_only(topo):
    src, dst, paths, extras = _cross_rack_pair(topo)
    ledger = LinkLedger(topo, paths)
    ledger.commit(src, dst, 10.0)
    ledger.reset()
    assert not ledger.touched_set
    assert all(v == 0.0 for v in ledger.used_list)
    # The dense columns keep their link-id indexing across resets.
    assert len(ledger.capacity_list) == topo.num_links
    assert ledger.capacity(extras[0]) == topo.link_capacity(extras[0])


def test_link_ledger_violation_names_the_core_link(topo):
    src, dst, paths, extras = _cross_rack_pair(topo)
    ledger = LinkLedger(topo, paths)
    # Core links carry 25 B/s; ports carry 100. A 30 B/s commit fits the
    # ports but over-commits the uplink.
    with pytest.raises(CapacityViolationError, match=str(extras[0])):
        ledger.commit(src, dst, 30.0)


def test_link_ledger_capacity_tolerance_edges(topo):
    src, dst, paths, extras = _cross_rack_pair(topo)
    ledger = LinkLedger(topo, paths)
    # Within the float-accumulation tolerance: clamped to capacity.
    ledger.commit(src, dst, 25.0 * (1.0 + 1e-10))
    assert ledger.used(extras[0]) == 25.0
    assert ledger.residual(extras[0]) == 0.0
    # fill() on an exhausted path grants nothing.
    assert ledger.fill(src, dst) == 0.0


def test_link_ledger_fill_bounded_by_core_link(topo):
    src, dst, paths, extras = _cross_rack_pair(topo)
    ledger = LinkLedger(topo, paths)
    assert ledger.fill(src, dst) == 25.0  # uplink-capped, not 100
    assert ledger.used(src) == 25.0
    # fill_capped: core-link exhaustion behaves like a full receiver (0.0,
    # nothing committed), while an exhausted sender keeps the -1 sentinel.
    assert ledger.fill_capped(src, dst, math.inf) == 0.0
    ledger2 = LinkLedger(topo, paths)
    assert ledger2.fill_capped(src, dst, 10.0) == 10.0
    ledger2.commit(0, 9, 90.0)  # exhaust sender 0 (10 + 90 = 100)
    assert ledger2.fill_capped(0, 9, 1.0) == -1.0


def test_link_ledger_override_validation(topo):
    paths = PathMap(topo)
    up = topo.uplink(0, 0)
    ledger = LinkLedger(topo, paths, capacity_override={up: 5.0})
    assert ledger.capacity(up) == 5.0
    with pytest.raises(ConfigError, match="link 999"):
        LinkLedger(topo, paths, capacity_override={999: 1.0})
    with pytest.raises(ConfigError, match=f"link {up}"):
        LinkLedger(topo, paths, capacity_override={up: -1.0})


def test_port_ledger_rejects_core_link_overrides(fabric):
    with pytest.raises(ConfigError, match="link 99"):
        PortLedger(fabric, capacity_override={99: 1.0})


# ---- cluster-state integration ---------------------------------------------


def test_state_path_aware_only_with_core_links(fabric, topo):
    assert not ClusterState(fabric=fabric).path_aware
    assert not ClusterState(
        fabric=fabric, topology=BigSwitchTopology(fabric)
    ).path_aware
    state = ClusterState(fabric=fabric, topology=topo)
    assert state.path_aware
    assert isinstance(state.make_ledger(), LinkLedger)
    assert isinstance(state.acquire_ledger(), LinkLedger)


def test_link_counts_cover_core_links(fabric, topo):
    state = ClusterState(fabric=fabric, topology=topo)
    # One rack-local flow (0->1) and one cross-rack flow (0->7).
    coflow = make_coflow(1, 0.0, [(0, 9, 100.0), (0, 15, 100.0)])
    state.active_coflows.append(coflow)
    state.note_activated(coflow)
    counts = state.link_counts(coflow, now=0.0)
    extras = state.paths.extra_links(0, 15)
    assert counts[0] == 2  # both flows send from port 0
    assert counts[9] == 1 and counts[15] == 1
    assert all(counts[link] == 1 for link in extras)
    # Completion notifications decrement path links too.
    flow = coflow.flows[1]
    flow.finish_time = 1.0
    state.note_flow_finished(flow)
    counts = state.link_counts(coflow, now=2.0)
    assert counts == {0: 1, 9: 1}


# ---- topology spec ----------------------------------------------------------


def test_topology_spec_roundtrip_and_defaults(fabric):
    spec = TopologySpec(kind="leaf-spine", oversub=4.0, racks=4, spines=2,
                        path_select="least-loaded")
    encoded = spec.encode()
    assert TopologySpec.decode(encoded) == spec
    # JSON round-trip shape (list-of-lists) decodes identically.
    assert TopologySpec.decode([list(kv) for kv in encoded]) == spec
    topo = spec.build(fabric)
    assert isinstance(topo, LeafSpineTopology)
    assert topo.oversub == 4.0 and topo.path_select == "least-loaded"

    default = TopologySpec()
    assert default.encode() == ()
    assert TopologySpec.decode(()) == default
    assert isinstance(default.build(fabric), BigSwitchTopology)


def test_topology_spec_validation():
    with pytest.raises(ConfigError):
        TopologySpec(kind="fat-tree")
    with pytest.raises(ConfigError):
        TopologySpec(kind="leaf-spine", oversub=-1.0)
    with pytest.raises(ConfigError):
        TopologySpec(kind="big-switch", oversub=2.0)
    with pytest.raises(ConfigError):
        TopologySpec(kind="leaf-spine", path_select="bogus")


def test_runspec_cache_key_topology_identity():
    workload = WorkloadSpec(family="fb-like", machines=20, coflows=40)
    base = RunSpec(policy="saath", workload=workload)
    leaf = base.with_topology(TopologySpec(kind="leaf-spine", oversub=4.0))
    assert base.cache_key() != leaf.cache_key()
    # Different oversub => different key; same spec => same key.
    leaf2 = base.with_topology(TopologySpec(kind="leaf-spine", oversub=2.0))
    assert leaf.cache_key() != leaf2.cache_key()
    assert leaf.cache_key() == base.with_topology(
        TopologySpec(kind="leaf-spine", oversub=4.0)
    ).cache_key()


def test_runspec_cache_key_big_switch_matches_pre_topology_format():
    """Big-switch keys must hash the exact v2 payload shape (modulo the
    version bump), so PR 4-era cache layouts survive the upgrade path."""
    import hashlib
    import json
    from dataclasses import asdict

    from repro.experiments.runner import CACHE_VERSION

    workload = WorkloadSpec(family="osp-like", machines=16, coflows=60)
    spec = RunSpec(policy="aalo", workload=workload, arrival_scale=2.0)
    # The v2/v3 payload has no ``params`` entry — shuffle-family specs must
    # keep hashing the exact legacy shape (the collective family's params
    # join the payload only when non-empty).
    legacy_workload = asdict(spec.workload)
    assert legacy_workload.pop("params") == ()
    legacy_payload = json.dumps(
        {
            "v": CACHE_VERSION,
            "policy": spec.policy,
            "workload": legacy_workload,
            "config": asdict(spec.config),
            "arrival_scale": spec.arrival_scale,
            "dynamics": spec.dynamics,
        },
        sort_keys=True,
        default=str,
    )
    expected = hashlib.sha256(legacy_payload.encode()).hexdigest()
    assert spec.cache_key() == expected


# ---- end-to-end -------------------------------------------------------------


def _small_workload(machines=12, coflows=20, seed=3):
    spec = fb_like_spec(num_machines=machines, num_coflows=coflows)
    fabric = spec.make_fabric()
    return fabric, WorkloadGenerator(spec, seed=seed).generate_coflows(fabric)


def _fingerprint(result):
    return (
        tuple(sorted((c, v.hex()) for c, v in result.ccts().items())),
        tuple(c.coflow_id for c in result.coflows),
        result.reschedules,
    )


@pytest.mark.parametrize("policy", available_policies())
def test_rack_local_leaf_spine_matches_big_switch(policy):
    """A single-rack leaf–spine at oversub 1 (every path rack-local)
    reproduces big-switch CCTs bit for bit — the path-aware machinery is
    engaged (core links exist) but never constrains."""
    fabric, coflows = _small_workload()
    cfg = SimulationConfig(sync_interval=8e-3)
    reference = _fingerprint(run_policy(
        make_scheduler(policy, cfg), clone_coflows(coflows), fabric, cfg,
    ))
    topo = LeafSpineTopology(fabric, racks=1, spines=2, oversub=1.0)
    assert topo.num_core_links > 0
    got = _fingerprint(run_policy(
        make_scheduler(policy, cfg), clone_coflows(coflows), fabric, cfg,
        topology=topo,
    ))
    assert got == reference


def test_oversubscribed_uplink_bottlenecks_cross_rack_flow():
    """A lone cross-rack flow runs at uplink speed, a rack-local one at
    port speed — the most direct statement of what the subsystem adds."""
    fabric = Fabric(num_machines=4, port_rate=100.0)
    topo = LeafSpineTopology(fabric, racks=2, spines=1, oversub=4.0)
    cfg = SimulationConfig()
    # Cross-rack: machine 0 (rack 0) -> machine 3 (rack 1); uplink carries
    # 2*100/(4*1) = 50 B/s, so 100 bytes take 2 s instead of 1 s.
    cross = [make_coflow(1, 0.0, [(0, 3 + 4, 100.0)])]
    result = run_policy(make_scheduler("uc-tcp", cfg), cross, fabric, cfg,
                        topology=topo)
    assert result.ccts()[1] == pytest.approx(2.0)
    # Rack-local: machine 0 -> machine 1 is unconstrained by the fabric.
    local = [make_coflow(1, 0.0, [(0, 1 + 4, 100.0)])]
    result = run_policy(make_scheduler("uc-tcp", cfg), local, fabric, cfg,
                        topology=topo)
    assert result.ccts()[1] == pytest.approx(1.0)


def test_link_degradation_on_core_link():
    """LinkDegradation/LinkRecovery route through the topology layer:
    halving the only uplink halves the cross-rack rate until recovery."""
    fabric = Fabric(num_machines=4, port_rate=100.0)
    topo = LeafSpineTopology(fabric, racks=2, spines=1, oversub=1.0)
    up = topo.uplink(0, 0)  # carries 200 B/s at oversub 1
    cfg = SimulationConfig()
    coflows = [make_coflow(1, 0.0, [(0, 3 + 4, 100.0)])]
    baseline = run_policy(
        make_scheduler("uc-tcp", cfg), clone_coflows(coflows), fabric, cfg,
        topology=topo,
    ).ccts()[1]
    assert baseline == pytest.approx(1.0)  # port-limited, not uplink
    degraded = run_policy(
        make_scheduler("uc-tcp", cfg), clone_coflows(coflows), fabric, cfg,
        topology=topo,
        dynamics=[LinkDegradation(time=0.0, link=up, factor=0.25)],
    ).ccts()[1]
    # 200 * 0.25 = 50 B/s uplink: the 100-byte flow now needs 2 s.
    assert degraded == pytest.approx(2.0)
    recovered = run_policy(
        make_scheduler("uc-tcp", cfg), clone_coflows(coflows), fabric, cfg,
        topology=topo,
        dynamics=[LinkDegradation(time=0.0, link=up, factor=0.25),
                  LinkRecovery(time=1.0, link=up)],
    ).ccts()[1]
    assert baseline < recovered < degraded


def test_link_degradation_validates_link_id():
    fabric = Fabric(num_machines=4, port_rate=100.0)
    cfg = SimulationConfig()
    coflows = [make_coflow(1, 0.0, [(0, 3 + 4, 100.0)])]
    # Core-link id on a big-switch run: no such link exists.
    with pytest.raises(ConfigError, match="port 23"):
        run_policy(
            make_scheduler("uc-tcp", cfg), clone_coflows(coflows), fabric,
            cfg, dynamics=[LinkDegradation(time=0.0, link=23, factor=0.5)],
        )
    with pytest.raises(ConfigError):
        LinkDegradation(time=0.0, link=0, factor=1.5)
    # Encode/decode round-trip (sweep-runner cache identity).
    actions = [LinkDegradation(time=0.5, link=9, factor=0.0),
               LinkRecovery(time=1.0, link=9)]
    assert decode_actions(encode_actions(actions)) == actions


def test_snapshot_resume_on_leaf_spine_topology():
    """The session kernel's checkpointing carries the topology and path
    map: a paused-and-resumed leaf-spine run is byte-identical to an
    uninterrupted one."""
    from repro.simulator.scenario import Scenario
    from repro.simulator.session import SimulationSession

    fabric, coflows = _small_workload()
    cfg = SimulationConfig(sync_interval=8e-3)
    topo = LeafSpineTopology(fabric, racks=4, spines=2, oversub=4.0)
    reference = _fingerprint(SimulationSession(
        fabric, make_scheduler("saath", cfg), cfg,
        scenario=Scenario.from_coflows(clone_coflows(coflows)),
        topology=topo,
    ).run())
    session = SimulationSession(
        fabric, make_scheduler("saath", cfg), cfg,
        scenario=Scenario.from_coflows(clone_coflows(coflows)),
        topology=topo,
    )
    session.run_until(0.5)
    snap = session.snapshot()
    assert _fingerprint(SimulationSession.restore(snap).run()) == reference
    # The donor keeps running unaffected by the checkpoint.
    assert _fingerprint(session.run()) == reference


def test_leaf_spine_sweep_spec_runs_through_runner():
    """RunSpec.topology reaches the worker entry point (decode + build)."""
    from repro.experiments.runner import execute_spec

    workload = WorkloadSpec(family="fb-like", machines=12, coflows=15)
    base = RunSpec(policy="saath", workload=workload)
    leaf = base.with_topology(
        TopologySpec(kind="leaf-spine", oversub=8.0, racks=4)
    )
    flat = execute_spec(base)
    steep = execute_spec(leaf)
    assert set(flat.ccts) == set(steep.ccts)
    # 8:1 oversubscription must hurt: mean CCT strictly worse.
    mean = lambda d: sum(d.values()) / len(d)  # noqa: E731
    assert mean(steep.ccts) > mean(flat.ccts)
