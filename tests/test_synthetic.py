"""Synthetic workload generators: marginals and invariants."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.units import MB
from repro.workloads.synthetic import (
    SyntheticSpec,
    WorkloadGenerator,
    fb_like_spec,
    generate_fb_like,
    generate_osp_like,
    osp_like_spec,
    scale_arrivals,
)
from repro.analysis.bins import bin_fractions
from repro.workloads.traces import dump_trace, parse_trace


class TestSpecValidation:
    def test_bin_probs_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", num_machines=10, num_coflows=10,
                          bin_probs=(0.5, 0.5, 0.5, 0.5))

    def test_load_bounds(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", num_machines=10, num_coflows=10, load=0.0)

    def test_placement_skew_bounds(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", num_machines=10, num_coflows=10,
                          placement_skew=1.5)

    def test_minimum_dimensions(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", num_machines=1, num_coflows=10)
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", num_machines=10, num_coflows=0)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        spec = fb_like_spec(num_machines=20, num_coflows=30)
        a = WorkloadGenerator(spec, seed=5).generate_trace()
        b = WorkloadGenerator(spec, seed=5).generate_trace()
        assert a == b

    def test_different_seed_different_workload(self):
        spec = fb_like_spec(num_machines=20, num_coflows=30)
        a = WorkloadGenerator(spec, seed=5).generate_trace()
        b = WorkloadGenerator(spec, seed=6).generate_trace()
        assert a != b


class TestStructuralInvariants:
    @pytest.fixture(scope="class")
    def coflows(self):
        _, cfs = generate_fb_like(seed=2, num_machines=40, num_coflows=200)
        return cfs

    def test_count(self, coflows):
        assert len(coflows) == 200

    def test_arrivals_sorted_and_nonnegative(self, coflows):
        arrivals = [c.arrival_time for c in coflows]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 0

    def test_every_coflow_has_flows(self, coflows):
        assert all(c.width >= 1 for c in coflows)

    def test_flow_ids_unique(self, coflows):
        ids = [f.flow_id for c in coflows for f in c.flows]
        assert len(ids) == len(set(ids))

    def test_ports_within_fabric(self, coflows):
        for c in coflows:
            for f in c.flows:
                assert 0 <= f.src < 40
                assert 40 <= f.dst < 80

    def test_volumes_positive(self, coflows):
        for c in coflows:
            assert c.total_volume > 0


class TestMarginals:
    """Distribution targets from Fig. 2 and Table 1 (tolerances are loose:
    n=400 samples)."""

    @pytest.fixture(scope="class")
    def coflows(self):
        _, cfs = generate_fb_like(seed=11, num_machines=60, num_coflows=400)
        return cfs

    def test_single_flow_fraction_near_23pct(self, coflows):
        frac = sum(1 for c in coflows if c.width == 1) / len(coflows)
        assert 0.13 <= frac <= 0.33

    def test_bin_fractions_near_table1(self, coflows):
        fracs = bin_fractions(coflows)
        assert 0.40 <= fracs["bin-1"] <= 0.68  # paper 0.54
        assert 0.05 <= fracs["bin-2"] <= 0.25  # paper 0.14
        assert 0.04 <= fracs["bin-3"] <= 0.22  # paper 0.12
        assert 0.10 <= fracs["bin-4"] <= 0.32  # paper 0.20

    def test_narrow_bins_respect_width_boundary(self, coflows):
        for c in coflows:
            if c.total_volume <= 100 * MB and c.width <= 10:
                continue  # bin-1 fine
        widths = [c.width for c in coflows]
        assert max(widths) > 10  # wide coflows exist
        assert min(widths) == 1

    def test_skewed_coflows_exist(self, coflows):
        from repro.analysis.outofsync import flow_lengths_equal

        multi = [c for c in coflows if c.width > 1]
        skewed = [c for c in multi if not flow_lengths_equal(c)]
        assert 0.10 <= len(skewed) / len(coflows) <= 0.45  # paper 0.27


class TestOspFamily:
    def test_osp_spec_has_placement_skew(self):
        assert osp_like_spec().placement_skew > 0
        assert fb_like_spec().placement_skew == 0

    def test_osp_generates(self):
        fabric, cfs = generate_osp_like(seed=1, num_machines=30,
                                        num_coflows=100)
        assert len(cfs) == 100
        assert fabric.num_machines == 30

    def test_osp_port_occupancy_more_concentrated(self):
        """OSP's hot subset should put more flows on the busiest port."""
        _, fb = generate_fb_like(seed=4, num_machines=30, num_coflows=150)
        _, osp = generate_osp_like(seed=4, num_machines=30, num_coflows=150)

        def top_port_share(cfs):
            counts = {}
            total = 0
            for c in cfs:
                for f in c.flows:
                    counts[f.src] = counts.get(f.src, 0) + 1
                    total += 1
            return max(counts.values()) / total

        assert top_port_share(osp) > top_port_share(fb)


class TestTraceEmission:
    def test_generated_trace_round_trips_text_format(self):
        spec = fb_like_spec(num_machines=20, num_coflows=25)
        trace = WorkloadGenerator(spec, seed=9).generate_trace()
        assert parse_trace(dump_trace(trace)) == trace


class TestScaleArrivals:
    def test_factor_speeds_up(self):
        _, cfs = generate_fb_like(seed=1, num_machines=20, num_coflows=10)
        original = [c.arrival_time for c in cfs]
        scale_arrivals(cfs, 2.0)
        assert all(
            c.arrival_time == pytest.approx(t / 2.0)
            for c, t in zip(cfs, original)
        )

    def test_bad_factor_rejected(self):
        _, cfs = generate_fb_like(seed=1, num_machines=20, num_coflows=5)
        with pytest.raises(ConfigError):
            scale_arrivals(cfs, 0.0)
