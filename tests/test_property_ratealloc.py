"""Property-based tests on the rate-allocation substrate.

Invariants under arbitrary flow layouts:

* no allocator ever oversubscribes a port;
* max-min fairness is Pareto-efficient on its bottlenecks;
* MADD finishes all flows of the coflow at one instant;
* Saath's equal-rate rule gives every flow the same rate.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.fabric import Fabric, PortLedger
from repro.simulator.flows import CoFlow, Flow
from repro.simulator.ratealloc import (
    equal_rate_for_coflow,
    greedy_residual_rates,
    madd_rates,
    max_min_fair,
)

MACHINES = 6
RATE = 100.0


@st.composite
def flow_sets(draw, max_flows=12, coflow_id=0):
    """Random flows over a 6-machine fabric, distinct flow ids."""
    n = draw(st.integers(min_value=1, max_value=max_flows))
    flows = []
    for i in range(n):
        src = draw(st.integers(min_value=0, max_value=MACHINES - 1))
        dst_machine = draw(st.integers(min_value=0, max_value=MACHINES - 1))
        volume = draw(st.floats(min_value=1.0, max_value=1e4,
                                allow_nan=False, allow_infinity=False))
        flows.append(
            Flow(flow_id=i, coflow_id=coflow_id, src=src,
                 dst=dst_machine + MACHINES, volume=volume)
        )
    return flows


def _fabric():
    return Fabric(num_machines=MACHINES, port_rate=RATE)


def _port_usage(flows, rates):
    usage: dict[int, float] = {}
    for f in flows:
        r = rates.get(f.flow_id, 0.0)
        usage[f.src] = usage.get(f.src, 0.0) + r
        usage[f.dst] = usage.get(f.dst, 0.0) + r
    return usage


class TestMaxMinProperties:
    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_never_oversubscribes(self, flows):
        rates = max_min_fair(flows, PortLedger(_fabric()))
        for port, used in _port_usage(flows, rates).items():
            assert used <= RATE * (1 + 1e-6)

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_every_flow_gets_positive_rate(self, flows):
        """With empty ledger every flow shares at least one port's capacity."""
        rates = max_min_fair(flows, PortLedger(_fabric()))
        for f in flows:
            assert rates[f.flow_id] > 0

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_pareto_on_bottleneck(self, flows):
        """Each flow is capped by at least one saturated port (can't raise
        any rate without lowering another)."""
        rates = max_min_fair(flows, PortLedger(_fabric()))
        usage = _port_usage(flows, rates)
        for f in flows:
            saturated = (
                usage[f.src] >= RATE * (1 - 1e-6)
                or usage[f.dst] >= RATE * (1 - 1e-6)
            )
            assert saturated

    @given(flow_sets(), st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_rate_cap_respected(self, flows, cap):
        rates = max_min_fair(flows, PortLedger(_fabric()), rate_cap=cap)
        for r in rates.values():
            assert r <= cap * (1 + 1e-9)


class TestMaddProperties:
    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_all_flows_finish_together(self, flows):
        coflow = CoFlow(coflow_id=0, arrival_time=0.0, flows=flows)
        rates = madd_rates(coflow, PortLedger(_fabric()))
        times = [
            f.remaining / rates[f.flow_id]
            for f in flows if f.flow_id in rates
        ]
        assert times, "empty ledger must always admit the coflow"
        first = times[0]
        for t in times[1:]:
            assert t == pytest.approx(first, rel=1e-9)

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_no_oversubscription(self, flows):
        coflow = CoFlow(coflow_id=0, arrival_time=0.0, flows=flows)
        rates = madd_rates(coflow, PortLedger(_fabric()))
        for port, used in _port_usage(flows, rates).items():
            assert used <= RATE * (1 + 1e-6)

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_bottleneck_port_saturated(self, flows):
        """MADD must fully use the bottleneck port (minimal duration)."""
        coflow = CoFlow(coflow_id=0, arrival_time=0.0, flows=flows)
        rates = madd_rates(coflow, PortLedger(_fabric()))
        usage = _port_usage(flows, rates)
        assert max(usage.values()) == pytest.approx(RATE, rel=1e-9)


class TestEqualRateProperties:
    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_single_common_rate(self, flows):
        coflow = CoFlow(coflow_id=0, arrival_time=0.0, flows=flows)
        rates = equal_rate_for_coflow(coflow, PortLedger(_fabric()))
        values = set(round(r, 9) for r in rates.values())
        assert len(values) == 1

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_no_oversubscription(self, flows):
        coflow = CoFlow(coflow_id=0, arrival_time=0.0, flows=flows)
        rates = equal_rate_for_coflow(coflow, PortLedger(_fabric()))
        for port, used in _port_usage(flows, rates).items():
            assert used <= RATE * (1 + 1e-6)


class TestGreedyProperties:
    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_no_oversubscription(self, flows):
        rates = greedy_residual_rates(flows, PortLedger(_fabric()))
        for port, used in _port_usage(flows, rates).items():
            assert used <= RATE * (1 + 1e-6)

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_first_flow_maximal(self, flows):
        """The first flow always receives the full min(src, dst) residual."""
        rates = greedy_residual_rates(flows, PortLedger(_fabric()))
        assert rates[flows[0].flow_id] == pytest.approx(RATE)
