"""Simulation engine: event ordering, completions, DAG, sync mode."""

import math

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.schedulers.base import Allocation, Scheduler
from repro.simulator.dynamics import FlowRestart, FlowSlowdown, PortDegradation
from repro.simulator.engine import Simulator, run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import make_coflow
from repro.schedulers.uctcp import UcTcpScheduler


def _fabric(machines=4, rate=100.0):
    return Fabric(num_machines=machines, port_rate=rate)


def _cfg(**kw):
    return SimulationConfig(port_rate=100.0, min_rate=1e-3, **kw)


class GreedyScheduler(Scheduler):
    """Deterministic test scheduler: arrival-order greedy fill."""

    name = "test-greedy"

    def schedule(self, state, now):
        ledger = state.make_ledger()
        allocation = Allocation()
        for coflow in sorted(state.active_coflows,
                             key=lambda c: (c.arrival_time, c.coflow_id)):
            for f in state.schedulable_flows(coflow, now):
                rate = min(ledger.residual(f.src), ledger.residual(f.dst))
                if rate > 0:
                    ledger.commit(f.src, f.dst, rate)
                    allocation.rates[f.flow_id] = rate
        return allocation


class TestBasicCompletion:
    def test_single_flow_finishes_at_expected_time(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 200.0)])
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())
        assert res.cct(0) == pytest.approx(2.0)
        assert res.makespan == pytest.approx(2.0)

    def test_cct_measured_from_arrival(self):
        fab = _fabric()
        c = make_coflow(0, 5.0, [(0, fab.receiver_port(1), 100.0)])
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())
        assert res.cct(0) == pytest.approx(1.0)
        assert res.coflow(0).finish_time == pytest.approx(6.0)

    def test_two_coflows_share_port_serially(self):
        fab = _fabric()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.0, [(0, fab.receiver_port(2), 100.0)],
                        flow_id_start=10)
        res = run_policy(GreedyScheduler(_cfg()), [a, b], fab, _cfg())
        # Greedy serves arrival order: a gets the port 1s, then b runs 1s.
        assert res.cct(0) == pytest.approx(1.0)
        assert res.cct(1) == pytest.approx(2.0)

    def test_zero_volume_flow_completes_instantly(self):
        fab = _fabric()
        c = make_coflow(0, 1.0, [(0, fab.receiver_port(1), 0.0)])
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())
        assert res.cct(0) == pytest.approx(0.0)

    def test_flow_start_time_recorded(self):
        fab = _fabric()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.0, [(0, fab.receiver_port(2), 100.0)],
                        flow_id_start=10)
        res = run_policy(GreedyScheduler(_cfg()), [a, b], fab, _cfg())
        assert res.coflow(0).flows[0].start_time == pytest.approx(0.0)
        assert res.coflow(1).flows[0].start_time == pytest.approx(1.0)

    def test_fresh_arrival_preempts_capacity_share(self):
        fab = _fabric()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0)
        # Arrives halfway through; greedy still favours earlier arrival.
        b = make_coflow(1, 0.5, [(0, fab.receiver_port(2), 50.0)],
                        flow_id_start=10)
        res = run_policy(GreedyScheduler(_cfg()), [a, b], fab, _cfg())
        assert res.cct(0) == pytest.approx(1.0)
        assert res.cct(1) == pytest.approx(1.0)  # waits 0.5, runs 0.5


class TestResultApi:
    def test_ccts_map(self):
        fab = _fabric()
        cs = [
            make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0),
            make_coflow(1, 0.0, [(1, fab.receiver_port(2), 100.0)],
                        flow_id_start=10),
        ]
        res = run_policy(GreedyScheduler(_cfg()), cs, fab, _cfg())
        assert set(res.ccts()) == {0, 1}
        assert res.average_cct() == pytest.approx(1.0)

    def test_unknown_coflow_raises(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())
        with pytest.raises(KeyError):
            res.cct(99)
        with pytest.raises(KeyError):
            res.coflow(99)


class TestWorkloadValidation:
    def test_duplicate_coflow_ids_rejected(self):
        fab = _fabric()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)],
                        flow_id_start=0)
        b = make_coflow(0, 0.0, [(1, fab.receiver_port(2), 1.0)],
                        flow_id_start=10)
        with pytest.raises(SimulationError):
            run_policy(GreedyScheduler(_cfg()), [a, b], fab, _cfg())

    def test_duplicate_flow_ids_rejected(self):
        fab = _fabric()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.0, [(1, fab.receiver_port(2), 1.0)],
                        flow_id_start=0)
        with pytest.raises(SimulationError):
            run_policy(GreedyScheduler(_cfg()), [a, b], fab, _cfg())

    def test_unknown_dependency_rejected(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 1.0)],
                        depends_on=(42,))
        with pytest.raises(SimulationError):
            run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())


class TestDag:
    def test_dependent_stage_waits_for_parent(self):
        fab = _fabric()
        parent = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                             flow_id_start=0)
        child = make_coflow(1, 0.0, [(1, fab.receiver_port(2), 100.0)],
                            flow_id_start=10, depends_on=(0,))
        res = run_policy(GreedyScheduler(_cfg()), [parent, child], fab, _cfg())
        assert res.coflow(1).finish_time == pytest.approx(2.0)
        # Child CCT counts from its release at t=1, not submission at t=0.
        assert res.cct(1) == pytest.approx(1.0)

    def test_fan_in_waits_for_all_parents(self):
        fab = _fabric()
        p1 = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                         flow_id_start=0)
        p2 = make_coflow(1, 0.0, [(1, fab.receiver_port(2), 200.0)],
                         flow_id_start=10)
        child = make_coflow(2, 0.0, [(2, fab.receiver_port(3), 100.0)],
                            flow_id_start=20, depends_on=(0, 1))
        res = run_policy(GreedyScheduler(_cfg()), [p1, p2, child], fab, _cfg())
        assert res.coflow(2).finish_time == pytest.approx(3.0)

    def test_chain_of_three(self):
        fab = _fabric()
        cs = [
            make_coflow(i, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=10 * i,
                        depends_on=(i - 1,) if i else ())
            for i in range(3)
        ]
        res = run_policy(GreedyScheduler(_cfg()), cs, fab, _cfg())
        assert res.coflow(2).finish_time == pytest.approx(3.0)


class TestSyncMode:
    def test_arrival_waits_for_sync_boundary(self):
        fab = _fabric()
        cfg = _cfg(sync_interval=0.5)
        c = make_coflow(0, 0.2, [(0, fab.receiver_port(1), 100.0)])
        res = run_policy(GreedyScheduler(cfg), [c], fab, cfg)
        # First schedule at t=0.5; flow needs 1s; CCT = 0.5-0.2 + 1.0.
        assert res.cct(0) == pytest.approx(1.3)

    def test_arrival_on_boundary_not_delayed(self):
        fab = _fabric()
        cfg = _cfg(sync_interval=0.5)
        c = make_coflow(0, 1.0, [(0, fab.receiver_port(1), 100.0)])
        res = run_policy(GreedyScheduler(cfg), [c], fab, cfg)
        assert res.cct(0) == pytest.approx(1.0)

    def test_freed_bandwidth_idle_until_boundary(self):
        fab = _fabric()
        cfg = _cfg(sync_interval=1.0)
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 50.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.0, [(0, fab.receiver_port(2), 100.0)],
                        flow_id_start=10)
        res = run_policy(GreedyScheduler(cfg), [a, b], fab, cfg)
        # a finishes at 0.5; b cannot start until the t=1.0 boundary.
        assert res.cct(0) == pytest.approx(0.5)
        assert res.cct(1) == pytest.approx(2.0)

    def test_smaller_delta_never_worse(self):
        fab = _fabric()
        coarse = _cfg(sync_interval=1.0)
        fine = _cfg(sync_interval=0.1)
        def workload():
            return [
                make_coflow(0, 0.05, [(0, fab.receiver_port(1), 60.0)],
                            flow_id_start=0),
                make_coflow(1, 0.15, [(0, fab.receiver_port(2), 60.0)],
                            flow_id_start=10),
            ]
        res_coarse = run_policy(GreedyScheduler(coarse), workload(), fab, coarse)
        res_fine = run_policy(GreedyScheduler(fine), workload(), fab, fine)
        assert res_fine.average_cct() <= res_coarse.average_cct() + 1e-9


class TestDynamics:
    def test_flow_restart_loses_progress(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        action = FlowRestart(time=0.5, flow_id=0)
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg(),
                         dynamics=[action])
        assert res.cct(0) == pytest.approx(1.5)

    def test_restart_after_finish_is_noop(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        action = FlowRestart(time=5.0, flow_id=0)
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg(),
                         dynamics=[action])
        assert res.cct(0) == pytest.approx(1.0)

    def test_slowdown_halves_throughput(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        action = FlowSlowdown(time=0.0, flow_id=0, efficiency=0.5)
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg(),
                         dynamics=[action])
        assert res.cct(0) == pytest.approx(2.0)

    def test_port_degradation_slows_flows(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        action = PortDegradation(time=0.0, port=0, factor=0.25)
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg(),
                         dynamics=[action])
        assert res.cct(0) == pytest.approx(4.0)

    def test_data_availability_delays_flow(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        c.flows[0].available_time = 2.0
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())
        assert res.cct(0) == pytest.approx(3.0)


class TestStuckDetection:
    def test_zero_rate_scheduler_raises(self):
        class NullScheduler(Scheduler):
            name = "null"

            def schedule(self, state, now):
                return Allocation()

        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        with pytest.raises(SimulationError, match="stalled"):
            run_policy(NullScheduler(_cfg()), [c], fab, _cfg())

    def test_rate_perturbation_applied(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        res = run_policy(
            GreedyScheduler(_cfg()), [c], fab, _cfg(),
            rate_perturbation=lambda flow, rate: rate * 0.5,
        )
        assert res.cct(0) == pytest.approx(2.0)

    def test_reschedules_counted(self):
        fab = _fabric()
        c = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)])
        res = run_policy(GreedyScheduler(_cfg()), [c], fab, _cfg())
        assert res.reschedules >= 1


class TestUcTcpIntegration:
    def test_fair_sharing_between_coflows(self):
        fab = _fabric()
        cfg = _cfg()
        a = make_coflow(0, 0.0, [(0, fab.receiver_port(1), 100.0)],
                        flow_id_start=0)
        b = make_coflow(1, 0.0, [(0, fab.receiver_port(2), 100.0)],
                        flow_id_start=10)
        res = run_policy(UcTcpScheduler(cfg), [a, b], fab, cfg)
        # Fair share 50 each until a finishes... both equal length: both 2s.
        assert res.cct(0) == pytest.approx(2.0)
        assert res.cct(1) == pytest.approx(2.0)
