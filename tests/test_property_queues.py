"""Property-based tests on queue geometry and tracker invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.config import QueueConfig, SimulationConfig
from repro.schedulers.queues import QueueTracker
from repro.simulator.flows import make_coflow

queue_configs = st.builds(
    QueueConfig,
    num_queues=st.integers(min_value=1, max_value=15),
    start_threshold=st.floats(min_value=1.0, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
    growth_factor=st.floats(min_value=1.1, max_value=64.0,
                            allow_nan=False, allow_infinity=False),
)

byte_values = st.floats(min_value=0.0, max_value=1e15,
                        allow_nan=False, allow_infinity=False)


class TestQueueGeometry:
    @given(queue_configs, byte_values)
    @settings(max_examples=200, deadline=None)
    def test_queue_for_bytes_in_range(self, qcfg, b):
        idx = qcfg.queue_for_bytes(b)
        assert 0 <= idx < qcfg.num_queues
        assert qcfg.lo_threshold(idx) <= b or idx == 0
        assert b < qcfg.hi_threshold(idx) or idx == qcfg.num_queues - 1

    @given(queue_configs, byte_values, byte_values)
    @settings(max_examples=200, deadline=None)
    def test_queue_assignment_monotone(self, qcfg, a, b):
        lo, hi = min(a, b), max(a, b)
        assert qcfg.queue_for_bytes(lo) <= qcfg.queue_for_bytes(hi)

    @given(queue_configs, byte_values,
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=200, deadline=None)
    def test_per_flow_rule_matches_scaled_total(self, qcfg, b, width):
        assert (qcfg.queue_for_per_flow_bytes(b, width)
                == qcfg.queue_for_bytes(min(b * width, 1e308)))

    @given(queue_configs)
    @settings(max_examples=100, deadline=None)
    def test_thresholds_strictly_increasing(self, qcfg):
        for i in range(qcfg.num_queues - 1):
            assert qcfg.hi_threshold(i) > qcfg.lo_threshold(i)
            if i + 1 < qcfg.num_queues:
                assert qcfg.hi_threshold(i + 1) > qcfg.hi_threshold(i)

    @given(queue_configs, st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=100, deadline=None)
    def test_min_residency_positive_and_finite(self, qcfg, rate):
        for q in range(qcfg.num_queues):
            t = qcfg.min_residency_time(q, rate)
            assert t > 0
            assert math.isfinite(t)


class TestTrackerInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),  # width
                st.floats(min_value=0.0, max_value=1e12),  # progress
            ),
            min_size=1, max_size=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_refresh_is_idempotent_and_demotion_only(self, shapes):
        cfg = SimulationConfig()
        tracker = QueueTracker(cfg, metric="perflow")
        for cid, (width, progress) in enumerate(shapes):
            c = make_coflow(
                cid, 0.0,
                [(i, 100 + i, 1e15) for i in range(width)],
                flow_id_start=cid * 100,
            )
            tracker.admit(c, 0.0)
            c.flows[0].bytes_sent = progress
            first = tracker.refresh(c, 1.0)
            q1 = tracker.queue_of(c)
            second = tracker.refresh(c, 2.0)
            q2 = tracker.queue_of(c)
            assert q2 == q1  # idempotent
            assert not second or not first  # no repeated move
            assert q1 >= 0
