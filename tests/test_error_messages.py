"""Error-path coverage: the library's failures must *explain themselves*.

A robustness layer is only as good as its diagnostics. These tests pin the
message content of the existing error paths — capacity violations name the
bottleneck link, session/scenario misuse says what to do instead, and
config validation names the offending value — so refactors cannot silently
degrade them into bare asserts.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import (
    CapacityViolationError,
    ConfigError,
    SimulationError,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.dynamics import (
    FlowSlowdown,
    LinkDegradation,
    PortDegradation,
    StragglerEvent,
    decode_actions,
)
from repro.simulator.fabric import Fabric, PortLedger
from repro.simulator.scenario import Scenario
from repro.simulator.session import SimulationSession
from repro.simulator.topology import (
    LeafSpineTopology,
    LinkLedger,
    PathMap,
)
from repro.units import GBPS
from repro.workloads.synthetic import WorkloadGenerator, fb_like_spec


# ---- capacity violations name the bottleneck -------------------------------


def test_port_ledger_violation_names_the_port():
    fabric = Fabric(num_machines=4, port_rate=GBPS)
    ledger = PortLedger(fabric)
    ledger.commit(0, fabric.receiver_port(1), GBPS)
    with pytest.raises(CapacityViolationError) as err:
        ledger.commit(0, fabric.receiver_port(2), GBPS)
    assert err.value.port == "0"  # the saturated sender port
    assert err.value.allocated == pytest.approx(2 * GBPS)
    assert err.value.capacity == pytest.approx(GBPS)
    assert "port 0" in str(err.value)
    assert "exceeds" in str(err.value)


def test_link_ledger_violation_names_the_core_bottleneck():
    """Over-committing an oversubscribed uplink must blame the *core*
    link, not the (healthy) host ports."""
    fabric = Fabric(num_machines=16, port_rate=GBPS)
    topo = LeafSpineTopology(fabric, racks=4, spines=1, oversub=4.0)
    paths = PathMap(topo, "ecmp")
    ledger = LinkLedger(topo, paths)
    # rack 0 edge = 4 × GBPS; oversub 4 → its single uplink carries 1 GBPS.
    cross = fabric.receiver_port(8)  # machine in rack 2
    ledger.commit(0, cross, GBPS)    # fills leaf0's uplink exactly
    with pytest.raises(CapacityViolationError) as err:
        ledger.commit(1, fabric.receiver_port(9), GBPS)
    bottleneck = int(err.value.port)
    assert bottleneck >= fabric.num_ports  # a core link, not a host port
    assert topo.link_name(bottleneck) == "leaf0->spine0"
    assert err.value.capacity == pytest.approx(GBPS)


def test_topology_rejects_out_of_range_link():
    fabric = Fabric(num_machines=16, port_rate=GBPS)
    topo = LeafSpineTopology(fabric, racks=4, spines=2)
    with pytest.raises(ConfigError, match=r"link 9999 out of range "
                                          r"\[0, \d+\)"):
        topo.link_capacity(9999)


def test_topology_rejects_bad_spine_count():
    fabric = Fabric(num_machines=16, port_rate=GBPS)
    with pytest.raises(ConfigError, match="spines must be >= 1, got 0"):
        LeafSpineTopology(fabric, spines=0)


# ---- session / scenario misuse ---------------------------------------------


def _session(scenario=None):
    config = SimulationConfig()
    fabric = Fabric(num_machines=4, port_rate=GBPS)
    return SimulationSession(
        fabric, make_scheduler("saath", config), config, scenario=scenario,
    )


def _coflows(seed=3):
    spec = fb_like_spec(num_machines=10, num_coflows=8)
    fabric = spec.make_fabric()
    return fabric, WorkloadGenerator(spec, seed=seed).generate_coflows(
        fabric)


def test_run_without_scenario_says_how_to_attach():
    with pytest.raises(SimulationError, match="no scenario attached; pass "
                                              "scenario= at construction"):
        _session().run()


def test_snapshot_without_scenario():
    with pytest.raises(SimulationError,
                       match="no scenario attached; nothing to snapshot"):
        _session().snapshot()


def test_double_attach_is_rejected():
    _, coflows = _coflows()
    session = _session(Scenario.from_coflows(coflows))
    with pytest.raises(SimulationError,
                       match="a scenario is already attached"):
        session.attach(Scenario.from_coflows(coflows))


def test_snapshot_of_one_shot_stream_names_the_fix():
    fabric, coflows = _coflows()
    config = SimulationConfig()
    scenario = Scenario.from_stream(iter(sorted(
        coflows, key=lambda c: c.arrival_time)), total_coflows=len(coflows))
    session = SimulationSession(
        fabric, make_scheduler("saath", config), config, scenario=scenario)
    with pytest.raises(SimulationError,
                       match=r"not replayable.*Scenario\.from_stream"):
        session.snapshot()


def test_driven_list_scenario_refuses_a_second_consumer():
    _, coflows = _coflows()
    scenario = Scenario.from_coflows(coflows)
    scenario.events()
    with pytest.raises(SimulationError,
                       match="already driven by a session"):
        scenario.events()


# ---- dynamics validation ----------------------------------------------------


def test_flow_slowdown_rejects_bad_efficiency():
    with pytest.raises(ConfigError,
                       match=r"efficiency must be in \[0, 1\], got 1.5"):
        FlowSlowdown(time=1.0, flow_id=0, efficiency=1.5)


def test_straggler_event_rejects_zero_efficiency():
    # A fully-stopped *machine* is a failure, not a straggler: 0 is out.
    with pytest.raises(ConfigError,
                       match=r"efficiency must be in \(0, 1\], got 0"):
        StragglerEvent(time=1.0, worker=0, efficiency=0.0)


def test_straggler_event_rejects_unknown_worker():
    fabric, coflows = _coflows()
    config = SimulationConfig()
    session = SimulationSession(
        fabric, make_scheduler("saath", config), config,
        scenario=Scenario.from_coflows(coflows))
    with pytest.raises(ConfigError, match="machine 999 out of range"):
        StragglerEvent(time=0.0, worker=999, efficiency=0.5).apply(
            session, 0.0)


@pytest.mark.parametrize("cls, kwargs", [
    (PortDegradation, dict(time=0.0, port=0, factor=-0.1)),
    (LinkDegradation, dict(time=0.0, link=0, factor=2.0)),
])
def test_degradations_reject_bad_factor(cls, kwargs):
    with pytest.raises(ConfigError,
                       match=r"factor must be in \[0, 1\], got"):
        cls(**kwargs)


def test_decode_actions_rejects_unknown_kind():
    with pytest.raises(ConfigError,
                       match="unknown dynamics action kind 'meteor-strike'"):
        decode_actions((("meteor-strike", (("time", 0.0),)),))
