"""Unit conversions and helpers."""

import math

import pytest

from repro import units


class TestConstants:
    def test_mb_is_1024_squared(self):
        assert units.MB == 1024.0 * 1024.0

    def test_gb_is_1024_mb(self):
        assert units.GB == 1024.0 * units.MB

    def test_tb_is_1024_gb(self):
        assert units.TB == 1024.0 * units.GB

    def test_gbps_in_bytes_per_second(self):
        assert units.GBPS == pytest.approx(1.25e8)


class TestConversions:
    def test_mb_round_trip(self):
        assert units.bytes_to_mb(units.mb(37.5)) == pytest.approx(37.5)

    def test_msec(self):
        assert units.msec(8.0) == pytest.approx(0.008)

    def test_seconds_to_msec(self):
        assert units.seconds_to_msec(0.5) == pytest.approx(500.0)

    def test_gbps_scaling(self):
        assert units.gbps(10.0) == pytest.approx(10 * units.GBPS)

    def test_gb_helper(self):
        assert units.gb(2.0) == 2.0 * units.GB


class TestTransferTime:
    def test_one_mb_at_one_gbps_is_about_8ms(self):
        t = units.transfer_time(units.mb(1), units.gbps(1))
        assert t == pytest.approx(0.00839, rel=1e-2)

    def test_zero_size_is_instant(self):
        assert units.transfer_time(0.0, units.gbps(1)) == 0.0

    def test_zero_rate_raises(self):
        with pytest.raises(ValueError):
            units.transfer_time(units.mb(1), 0.0)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            units.transfer_time(units.mb(1), -1.0)

    def test_time_scales_linearly(self):
        t1 = units.transfer_time(units.mb(10), units.gbps(1))
        t2 = units.transfer_time(units.mb(20), units.gbps(1))
        assert t2 == pytest.approx(2 * t1)
        assert math.isfinite(t2)
