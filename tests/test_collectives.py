"""Collective-communication workload generators (workloads/collectives)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import run_policy, run_scenario
from repro.simulator.fabric import Fabric
from repro.simulator.flows import clone_coflows
from repro.simulator.scenario import Scenario
from repro.workloads.collectives import (
    PATTERNS,
    all_to_all,
    collective_jobs,
    iteration_times,
    parameter_server,
    place_workers,
    ring_allreduce,
    training_job,
    tree_allreduce,
)
from repro.workloads.dag import job_stream, validate_dag


def _fabric(n=12):
    return Fabric(num_machines=n, port_rate=100.0)


def _job(pattern, fabric, workers, iterations=1, volume=400.0, **kw):
    servers = kw.pop("servers", ())
    if pattern == "ps" and not servers:
        servers = [w + len(workers) for w in range(2)]
    return training_job(pattern, iterations, fabric=fabric, workers=workers,
                        volume=volume, servers=servers, **kw)


# ---- generator invariants (property tests) ---------------------------------


class TestRingInvariants:
    @given(n=st.integers(min_value=2, max_value=10),
           volume=st.floats(min_value=1.0, max_value=1e9,
                            allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_per_worker_bytes_conserved(self, n, volume):
        """Each worker sends exactly 2·(N−1)·V/N bytes per all-reduce."""
        fab = _fabric(n)
        workers = list(range(n))
        stages = ring_allreduce(0, 0.0, fab, workers, volume)
        assert len(stages) == 2 * (n - 1)
        sent = {w: 0.0 for w in workers}
        for c in stages:
            assert len(c.flows) == n
            for f in c.flows:
                sent[f.src] += f.volume
        expected = 2 * (n - 1) * volume / n
        for w in workers:
            assert sent[w] == pytest.approx(expected, rel=1e-12)

    def test_each_step_is_a_ring(self):
        fab = _fabric(4)
        stages = ring_allreduce(0, 0.0, fab, [0, 1, 2, 3], 400.0)
        for c in stages:
            edges = {(f.src, fab.machine_of(f.dst)) for f in c.flows}
            assert edges == {(0, 1), (1, 2), (2, 3), (3, 0)}


@pytest.mark.parametrize("pattern", PATTERNS)
@given(n=st.integers(min_value=2, max_value=9),
       iterations=st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_validate_dag_accepts_every_pattern(pattern, n, iterations):
    """Every generated job is a valid DAG (no cycles, resolved refs)."""
    fab = _fabric(n + 3)
    job = _job(pattern, fab, list(range(n)), iterations=iterations,
               servers=[n, n + 1] if pattern == "ps" else ())
    validate_dag(job.coflows)
    assert job.iterations == iterations
    ids = [c.coflow_id for c in job]
    assert len(set(ids)) == len(ids)
    assert sorted(cid for stage in job.iteration_stages for cid in stage) \
        == sorted(ids)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_iteration_dependency_chain(pattern):
    """Iteration k+1's first stage depends on iteration k's final stage."""
    fab = _fabric(8)
    job = _job(pattern, fab, [0, 1, 2, 3], iterations=3)
    by_id = {c.coflow_id: c for c in job}
    for k in range(1, job.iterations):
        first = by_id[job.iteration_stages[k][0]]
        prev_last = job.iteration_stages[k - 1][-1]
        assert first.depends_on == (prev_last,)
    # Within an iteration the stages chain linearly too.
    for stage_ids in job.iteration_stages:
        for a, b in zip(stage_ids, stage_ids[1:]):
            assert by_id[b].depends_on == (a,)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_iterations_execute_in_order(pattern):
    """Simulated: no iteration-k+1 flow starts before iteration k ends."""
    fab = _fabric(8)
    cfg = SimulationConfig(port_rate=100.0)
    job = _job(pattern, fab, [0, 1, 2, 3], iterations=2)
    res = run_policy(make_scheduler("saath", cfg), job.coflows, fab, cfg)
    first_finish = res.coflow(job.iteration_stages[0][-1]).finish_time
    for cid in job.iteration_stages[1]:
        for f in res.coflow(cid).flows:
            assert f.start_time is None or f.start_time >= first_finish
    # Per-iteration times from CCTs match the finish-time arithmetic.
    times = iteration_times(job, res.ccts())
    assert times[0] == pytest.approx(first_finish - job.arrival_time)
    last_finish = res.coflow(job.iteration_stages[1][-1]).finish_time
    assert times[1] == pytest.approx(last_finish - first_finish)


# ---- placement -------------------------------------------------------------


class TestPlacement:
    @given(n=st.integers(min_value=2, max_value=32),
           count=st.integers(min_value=1, max_value=32),
           racks=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_placements_stay_within_rack_bounds(self, n, count, racks):
        fab = _fabric(n)
        if count > n or racks > n:
            with pytest.raises(ConfigError):
                place_workers(count, fab, racks=racks, placement="packed")
            return
        stride = math.ceil(n / racks)
        for placement in ("packed", "spread"):
            machines = place_workers(count, fab, racks=racks,
                                     placement=placement)
            assert len(machines) == count
            assert len(set(machines)) == count  # one machine per worker
            for m in machines:
                assert 0 <= m < n
                assert m // stride < racks  # within configured rack bounds
        # Packed fills the fewest racks possible.
        packed = place_workers(count, fab, racks=racks, placement="packed")
        assert max(m // stride for m in packed) == (count - 1) // stride
        # Spread balances: a rack more than one below the heaviest load can
        # only be a short tail rack that is completely full.
        spread = place_workers(count, fab, racks=racks, placement="spread")
        loads = [0] * racks
        sizes = [0] * racks
        for m in spread:
            loads[m // stride] += 1
        for m in range(n):
            sizes[m // stride] += 1
        heaviest = max(loads)
        for r in range(racks):
            assert loads[r] >= heaviest - 1 or loads[r] == sizes[r]

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigError, match="placement"):
            place_workers(2, _fabric(4), placement="diagonal")

    def test_too_many_workers_rejected(self):
        with pytest.raises(ConfigError, match="4 machines"):
            place_workers(5, _fabric(4))


# ---- jobs, skew, errors ----------------------------------------------------


class TestTrainingJob:
    def test_compute_gap_sets_available_floors(self):
        fab = _fabric(6)
        job = _job("ring", fab, [0, 1, 2], iterations=3, compute_gap=0.5,
                   arrival_time=1.0)
        for k, stage_ids in enumerate(job.iteration_stages):
            first = next(c for c in job if c.coflow_id == stage_ids[0])
            expected = 1.0 + k * 0.5 if k > 0 else 0.0
            for f in first.flows:
                assert f.available_time == expected

    def test_volume_skew_scales_one_workers_sends(self):
        fab = _fabric(6)
        plain = _job("ring", fab, [0, 1, 2], volume=300.0)
        skewed = training_job("ring", 1, fabric=fab, workers=[0, 1, 2],
                              volume=300.0, volume_skew={1: 2.0})
        for c_plain, c_skew in zip(plain, skewed):
            for f_plain, f_skew in zip(c_plain.flows, c_skew.flows):
                factor = 2.0 if f_plain.src == 1 else 1.0
                assert f_skew.volume == pytest.approx(
                    f_plain.volume * factor
                )

    def test_volume_skew_unknown_worker_rejected(self):
        fab = _fabric(6)
        with pytest.raises(ConfigError, match="unknown worker 7"):
            training_job("ring", 1, fabric=fab, workers=[0, 1, 2],
                         volume=300.0, volume_skew={7: 2.0})

    def test_ps_requires_disjoint_servers(self):
        fab = _fabric(6)
        with pytest.raises(ConfigError, match="disjoint"):
            parameter_server(0, 0.0, fab, [0, 1], [1, 2], 100.0)

    def test_unknown_pattern_rejected(self):
        fab = _fabric(6)
        with pytest.raises(ConfigError, match="unknown collective pattern"):
            training_job("butterfly", 1, fabric=fab, workers=[0, 1],
                         volume=1.0)

    def test_tree_and_all_to_all_shapes(self):
        fab = _fabric(8)
        tree = tree_allreduce(0, 0.0, fab, list(range(7)), 100.0)
        # 7 workers -> depth 2: two reduce stages + two broadcast stages.
        assert len(tree) == 4
        assert sum(len(c.flows) for c in tree) == 2 * 6  # one edge per link
        dense = all_to_all(0, 0.0, fab, list(range(5)), 100.0)
        assert len(dense) == 1
        assert len(dense[0].flows) == 5 * 4


class TestCollectiveJobs:
    def test_ids_globally_unique_across_jobs(self):
        fab = _fabric(8)
        jobs = collective_jobs(fab, pattern="ring", workers=4, iterations=2,
                               volume=100.0, jobs=3, arrival_gap=0.5)
        cids = [c.coflow_id for j in jobs for c in j]
        fids = [f.flow_id for j in jobs for c in j for f in c.flows]
        assert len(set(cids)) == len(cids)
        assert len(set(fids)) == len(fids)
        assert [j.arrival_time for j in jobs] == [0.0, 0.5, 1.0]
        validate_dag([c for j in jobs for c in j])

    def test_seeded_arrivals_deterministic(self):
        fab = _fabric(8)
        a = collective_jobs(fab, pattern="ring", workers=4, iterations=1,
                            volume=100.0, jobs=4, arrival_gap=0.5, seed=3)
        b = collective_jobs(fab, pattern="ring", workers=4, iterations=1,
                            volume=100.0, jobs=4, arrival_gap=0.5, seed=3)
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_jobs_stream_through_scenario_spine(self):
        """job_stream(jobs) through Scenario.from_stream == batch run."""
        fab = _fabric(8)
        cfg = SimulationConfig(port_rate=100.0)
        jobs = collective_jobs(fab, pattern="tree", workers=5, iterations=2,
                               volume=200.0, jobs=2, arrival_gap=1.0)
        batch = [c for j in jobs for c in j]
        res_batch = run_policy(
            make_scheduler("saath", cfg), clone_coflows(batch), fab, cfg
        )
        res_stream = run_scenario(
            make_scheduler("saath", cfg),
            Scenario.from_stream(
                lambda: job_stream(
                    collective_jobs(fab, pattern="tree", workers=5,
                                    iterations=2, volume=200.0, jobs=2,
                                    arrival_gap=1.0)
                ),
                total_coflows=len(batch),
            ),
            fab, cfg,
        )
        assert res_stream.ccts() == res_batch.ccts()
        assert res_stream.makespan == res_batch.makespan
