"""DAG builders and validation."""

import pytest

from repro.config import SimulationConfig
from repro.core.saath import SaathScheduler
from repro.errors import ConfigError
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import CoFlow, make_coflow
from repro.workloads.dag import (
    chain_stages,
    critical_path_stages,
    fan_in_stages,
    validate_dag,
)


def _fabric():
    return Fabric(num_machines=6, port_rate=100.0)


class TestChainStages:
    def test_builds_linear_dependencies(self):
        fab = _fabric()
        stages = chain_stages(
            10, 0.0,
            [
                [(0, fab.receiver_port(1), 100.0)],
                [(1, fab.receiver_port(2), 100.0)],
                [(2, fab.receiver_port(3), 100.0)],
            ],
            job_id=7,
        )
        assert [c.coflow_id for c in stages] == [10, 11, 12]
        assert stages[0].depends_on == ()
        assert stages[1].depends_on == (10,)
        assert stages[2].depends_on == (11,)
        assert all(c.job_id == 7 for c in stages)

    def test_flow_ids_consecutive_and_unique(self):
        fab = _fabric()
        stages = chain_stages(
            0, 0.0,
            [
                [(0, fab.receiver_port(1), 1.0), (1, fab.receiver_port(2), 1.0)],
                [(2, fab.receiver_port(3), 1.0)],
            ],
            flow_id_start=100,
        )
        ids = [f.flow_id for c in stages for f in c.flows]
        assert ids == [100, 101, 102]

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigError):
            chain_stages(0, 0.0, [])

    def test_chain_runs_serially(self):
        """A 3-wave job (multi-wave = chain DAG, §4.3) runs end to end."""
        fab = _fabric()
        cfg = SimulationConfig(port_rate=100.0)
        stages = chain_stages(
            0, 0.0,
            [[(0, fab.receiver_port(1), 100.0)] for _ in range(3)],
        )
        res = run_policy(SaathScheduler(cfg), stages, fab, cfg)
        assert res.coflow(2).finish_time == pytest.approx(3.0)


class TestFanIn:
    def test_structure(self):
        fab = _fabric()
        stages = fan_in_stages(
            0, 0.0,
            [
                [(0, fab.receiver_port(2), 1.0)],
                [(1, fab.receiver_port(3), 1.0)],
            ],
            [(2, fab.receiver_port(4), 1.0)],
        )
        assert [c.coflow_id for c in stages] == [0, 1, 2]
        assert stages[2].depends_on == (0, 1)

    def test_empty_branches_rejected(self):
        fab = _fabric()
        with pytest.raises(ConfigError):
            fan_in_stages(0, 0.0, [], [(0, fab.receiver_port(1), 1.0)])

    def test_final_waits_for_slowest_branch(self):
        fab = _fabric()
        cfg = SimulationConfig(port_rate=100.0)
        stages = fan_in_stages(
            0, 0.0,
            [
                [(0, fab.receiver_port(2), 100.0)],  # 1s
                [(1, fab.receiver_port(3), 300.0)],  # 3s
            ],
            [(2, fab.receiver_port(4), 100.0)],
        )
        res = run_policy(SaathScheduler(cfg), stages, fab, cfg)
        assert res.coflow(2).finish_time == pytest.approx(4.0)


class TestValidateDag:
    def test_valid_dag_passes(self):
        a = make_coflow(0, 0.0, [(0, 10, 1.0)], flow_id_start=0)
        b = make_coflow(1, 0.0, [(1, 11, 1.0)], flow_id_start=10,
                        depends_on=(0,))
        validate_dag([a, b])

    def test_unknown_reference_rejected(self):
        a = make_coflow(0, 0.0, [(0, 10, 1.0)], depends_on=(5,))
        with pytest.raises(ConfigError, match="unknown"):
            validate_dag([a])

    def test_cycle_detected(self):
        a = make_coflow(0, 0.0, [(0, 10, 1.0)], flow_id_start=0,
                        depends_on=(1,))
        b = make_coflow(1, 0.0, [(1, 11, 1.0)], flow_id_start=10,
                        depends_on=(0,))
        with pytest.raises(ConfigError, match="cycle"):
            validate_dag([a, b])

    def test_self_cycle_detected(self):
        a = make_coflow(0, 0.0, [(0, 10, 1.0)], depends_on=(0,))
        with pytest.raises(ConfigError, match="cycle"):
            validate_dag([a])

    def test_cycle_error_reports_full_path(self):
        """The error spells out the whole cycle, not just the entry node —
        a 3-cycle entered from an outside node must render as
        ``1 -> 2 -> 3 -> 1`` (in dependency order)."""
        entry = make_coflow(0, 0.0, [(0, 10, 1.0)], depends_on=(1,))
        a = make_coflow(1, 0.0, [(1, 11, 1.0)], depends_on=(2,))
        b = make_coflow(2, 0.0, [(2, 12, 1.0)], depends_on=(3,))
        c = make_coflow(3, 0.0, [(3, 13, 1.0)], depends_on=(1,))
        with pytest.raises(ConfigError,
                           match=r"DAG cycle: 1 -> 2 -> 3 -> 1"):
            validate_dag([entry, a, b, c])

    def test_deep_chain_validates_without_recursion_limit(self):
        """Thousand-stage chains (multi-iteration training jobs) must not
        blow the interpreter recursion limit; regression for the old
        recursive DFS."""
        depth = 5000
        coflows = [
            make_coflow(i, 0.0, [(0, 10, 1.0)],
                        depends_on=(i + 1,) if i + 1 < depth else ())
            for i in range(depth)
        ]
        validate_dag(coflows)
        path = critical_path_stages(coflows)
        assert len(path) == depth
        assert path[0] == depth - 1 and path[-1] == 0

    def test_deep_cycle_reported_without_recursion_limit(self):
        depth = 5000
        coflows = [
            make_coflow(i, 0.0, [(0, 10, 1.0)],
                        depends_on=((i + 1) % depth,))
            for i in range(depth)
        ]
        with pytest.raises(ConfigError, match="cycle"):
            validate_dag(coflows)


class TestCriticalPath:
    def test_chain_critical_path(self):
        fab = _fabric()
        stages = chain_stages(
            0, 0.0, [[(0, fab.receiver_port(1), 1.0)] for _ in range(4)]
        )
        assert critical_path_stages(stages) == [0, 1, 2, 3]

    def test_fan_in_critical_path_length(self):
        fab = _fabric()
        stages = fan_in_stages(
            0, 0.0,
            [[(0, fab.receiver_port(2), 1.0)], [(1, fab.receiver_port(3), 1.0)]],
            [(2, fab.receiver_port(4), 1.0)],
        )
        path = critical_path_stages(stages)
        assert len(path) == 2
        assert path[-1] == 2
