"""Aalo baseline: total-bytes queues + per-port FIFO."""

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.schedulers.aalo import AaloScheduler
from repro.simulator.engine import run_policy
from repro.simulator.fabric import Fabric
from repro.simulator.flows import make_coflow
from repro.simulator.state import ClusterState


def _fabric(machines=8, rate=100.0):
    return Fabric(num_machines=machines, port_rate=rate)


def _cfg(**kw):
    defaults = dict(
        port_rate=100.0,
        queues=QueueConfig(num_queues=5, start_threshold=1000.0,
                           growth_factor=10.0),
        min_rate=1e-3,
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


def _state(fabric, coflows, scheduler, now=0.0):
    state = ClusterState(fabric=fabric, active_coflows=list(coflows))
    for c in coflows:
        scheduler.on_coflow_arrival(c, now)
    return state


class TestFifoWithinQueue:
    def test_earlier_arrival_wins_port(self):
        fab = _fabric()
        aalo = AaloScheduler(_cfg())
        first = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0)],
                            flow_id_start=0)
        second = make_coflow(2, 0.1, [(0, fab.receiver_port(4), 100.0)],
                             flow_id_start=10)
        state = _state(fab, [first, second], aalo)
        alloc = aalo.schedule(state, 0.1)
        assert alloc.rates.get(0, 0.0) == pytest.approx(100.0)
        assert alloc.rates.get(10, 0.0) == 0.0

    def test_flows_of_one_coflow_uncoordinated(self):
        """The defining Aalo behaviour: a coflow can be served at one port
        and blocked at another (the out-of-sync problem)."""
        fab = _fabric()
        aalo = AaloScheduler(_cfg())
        blocker = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0)],
                              flow_id_start=0)
        victim = make_coflow(2, 0.1, [(0, fab.receiver_port(4), 100.0),
                                      (1, fab.receiver_port(5), 100.0)],
                             flow_id_start=10)
        state = _state(fab, [blocker, victim], aalo)
        alloc = aalo.schedule(state, 0.1)
        assert alloc.rates.get(10, 0.0) == 0.0  # blocked behind coflow 1
        assert alloc.rates.get(11, 0.0) == pytest.approx(100.0)  # running

    def test_lower_queue_gets_weighted_minority_share(self):
        fab = _fabric()
        aalo = AaloScheduler(_cfg())
        old = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 1e6)],
                          flow_id_start=0)
        young = make_coflow(2, 0.1, [(0, fab.receiver_port(4), 10.0)],
                            flow_id_start=10)
        state = _state(fab, [old, young], aalo)
        old.flows[0].bytes_sent = 2000.0  # beyond Q0's 1000-byte threshold
        alloc = aalo.schedule(state, 0.2)
        # Weighted sharing: Q0 weight 1, Q1 weight 0.1 -> 10/11 vs 1/11.
        assert alloc.rates.get(10, 0.0) == pytest.approx(100.0 * 10 / 11)
        assert alloc.rates.get(0, 0.0) == pytest.approx(100.0 / 11)

    def test_strict_priority_with_infinite_decay(self):
        fab = _fabric()
        aalo = AaloScheduler(_cfg(), queue_weight_decay=1e12)
        old = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 1e6)],
                          flow_id_start=0)
        young = make_coflow(2, 0.1, [(0, fab.receiver_port(4), 10.0)],
                            flow_id_start=10)
        state = _state(fab, [old, young], aalo)
        old.flows[0].bytes_sent = 2000.0
        alloc = aalo.schedule(state, 0.2)
        assert alloc.rates.get(10, 0.0) == pytest.approx(100.0, rel=1e-9)

    def test_port_work_conserving(self):
        """Leftover receiver capacity flows to the next FIFO flow."""
        fab = _fabric()
        aalo = AaloScheduler(_cfg())
        # First coflow limited by receiver 3 shared with an earlier commit.
        a = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 100.0)],
                        flow_id_start=0)
        b = make_coflow(2, 0.1, [(1, fab.receiver_port(3), 100.0)],
                        flow_id_start=10)
        state = _state(fab, [a, b], aalo)
        alloc = aalo.schedule(state, 0.1)
        # Receiver 3 fully given to coflow 1's flow; coflow 2 gets nothing.
        assert alloc.rates.get(0, 0.0) == pytest.approx(100.0)
        assert alloc.rates.get(10, 0.0) == 0.0


class TestQueueTransitions:
    def test_total_bytes_demotion_affects_scheduling(self):
        fab = _fabric()
        cfg = _cfg()
        # Long coflow, then short: once long crosses the threshold the
        # short one takes over -> short CCT unaffected by the long one.
        long = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 2000.0)],
                           flow_id_start=0)
        short = make_coflow(2, 0.0, [(0, fab.receiver_port(4), 500.0)],
                            flow_id_start=10)
        res = run_policy(AaloScheduler(cfg), [long, short], fab, cfg)
        # FIFO serves the long coflow alone for 10s (1000 bytes), demoting
        # it; the short one then takes the Q0-weighted share 10/11 of the
        # port (500 / 90.90 = 5.5s), while the long one trickles at 1/11;
        # afterwards the long coflow finishes its remaining 950 bytes.
        assert res.cct(2) == pytest.approx(15.5)
        assert res.cct(1) == pytest.approx(25.0)

    def test_multi_flow_total_metric(self):
        """Two half-speed flows cross the total threshold together (the
        slow-transition behaviour Fig. 5 criticises)."""
        fab = _fabric()
        cfg = _cfg()
        aalo = AaloScheduler(cfg)
        c = make_coflow(1, 0.0, [(0, fab.receiver_port(3), 5000.0),
                                 (1, fab.receiver_port(4), 5000.0)],
                        flow_id_start=0)
        state = _state(fab, [c], aalo)
        alloc = aalo.schedule(state, 0.0)
        # Both flows at 100 B/s: total rate 200; threshold 1000 -> 5s.
        wakeup = aalo.next_wakeup(state, alloc, 0.0)
        assert wakeup == pytest.approx(5.0)


class TestEndToEnd:
    def test_completes_random_workload(self):
        from repro.workloads.synthetic import fb_like_spec, WorkloadGenerator

        spec = fb_like_spec(num_machines=12, num_coflows=25)
        coflows = WorkloadGenerator(spec, seed=3).generate_coflows()
        cfg = SimulationConfig()
        res = run_policy(AaloScheduler(cfg), coflows, spec.make_fabric(), cfg)
        assert len(res.coflows) == 25

    def test_arrival_order_is_fifo_key_not_id(self):
        fab = _fabric()
        aalo = AaloScheduler(_cfg())
        late_small_id = make_coflow(1, 0.5, [(0, fab.receiver_port(3), 100.0)],
                                    flow_id_start=0)
        early_big_id = make_coflow(9, 0.0, [(0, fab.receiver_port(4), 100.0)],
                                   flow_id_start=10)
        state = ClusterState(fabric=fab,
                             active_coflows=[early_big_id, late_small_id])
        aalo.on_coflow_arrival(early_big_id, 0.0)
        aalo.on_coflow_arrival(late_small_id, 0.5)
        alloc = aalo.schedule(state, 0.5)
        assert alloc.rates.get(10, 0.0) == pytest.approx(100.0)
        assert alloc.rates.get(0, 0.0) == 0.0
