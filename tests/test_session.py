"""Scenario/session kernel: streaming, snapshot/restore, lifecycle.

The equivalence contract extended to the new input/control plane: for every
registered scheduler, a generator-fed streaming scenario and a
snapshot → restore → run resumption must be *byte-identical* to the classic
batch ``run(coflows)`` — same CCT bits, same completion order, same
reschedule count, same makespan. Plus lifecycle semantics: pausing between
instants, multi-restore independence, sink-based O(active) retention, lazy
stream validation, and dynamics routed through the spine.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.dynamics import FlowSlowdown, PortDegradation
from repro.simulator.engine import Simulator, run_policy, run_scenario
from repro.simulator.fabric import Fabric
from repro.simulator.flows import CoFlow, clone_coflows, make_coflow
from repro.simulator.scenario import ListScenario, Scenario, StreamScenario
from repro.simulator.session import SimulationSession

from test_fuzz_equivalence import fingerprint, random_workload


def _cfg(**kw) -> SimulationConfig:
    kw.setdefault("sync_interval", 8e-3)
    return SimulationConfig(**kw)


def _session(policy: str, fabric, cfg, **kw) -> SimulationSession:
    return SimulationSession(fabric, make_scheduler(policy, cfg), cfg, **kw)


def _stream_factory(coflows):
    """Replayable arrival-ordered coflow stream over fresh clones.

    Each invocation re-clones, so a restored session never shares mutable
    coflow state with the donor's already-consumed prefix.
    """
    ordered = sorted(coflows, key=lambda c: c.arrival_time)

    def factory():
        return iter(clone_coflows(ordered))

    return factory


class TestStreamingEquivalence:
    """Generator-fed scenarios reproduce batch runs bit for bit."""

    @pytest.mark.parametrize("policy", available_policies())
    def test_stream_matches_batch(self, policy):
        fabric, coflows = random_workload(5)
        cfg = _cfg()
        batch = fingerprint(
            run_policy(make_scheduler(policy, cfg), clone_coflows(coflows),
                       fabric, cfg)
        )
        scenario = Scenario.from_stream(
            _stream_factory(coflows), total_coflows=len(coflows)
        )
        stream = fingerprint(
            run_scenario(make_scheduler(policy, cfg), scenario, fabric, cfg)
        )
        assert stream == batch, f"streaming diverged for {policy}"

    def test_list_scenario_and_session_api(self):
        fabric, coflows = random_workload(2)
        cfg = _cfg()
        batch = fingerprint(
            run_policy(make_scheduler("saath", cfg), clone_coflows(coflows),
                       fabric, cfg)
        )
        scenario = Scenario.from_coflows(clone_coflows(coflows))
        assert isinstance(scenario, ListScenario)
        assert scenario.total_coflows == len(coflows)
        session = _session("saath", fabric, cfg, scenario=scenario)
        assert fingerprint(session.run()) == batch
        assert session.done

    def test_unbounded_stream_runs_to_exhaustion(self):
        fabric, coflows = random_workload(7)
        cfg = _cfg()
        # total_coflows deliberately unknown: the session must detect
        # exhaustion (stream dry + cluster empty) on its own.
        scenario = Scenario.from_stream(_stream_factory(coflows))
        result = run_scenario(
            make_scheduler("saath", cfg), scenario, fabric, cfg
        )
        assert len(result.coflows) == len(coflows)


class TestSnapshotRestore:
    """snapshot() → restore() → run() is byte-identical to a straight run."""

    @pytest.mark.parametrize("policy", available_policies())
    def test_mid_run_resume_matches_batch(self, policy):
        fabric, coflows = random_workload(5)
        cfg = _cfg()
        batch_result = run_policy(
            make_scheduler(policy, cfg), clone_coflows(coflows), fabric, cfg
        )
        batch = fingerprint(batch_result)
        mid = batch_result.makespan / 2

        session = _session(
            policy, fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        session.run_until(mid)
        assert session.now <= mid
        snap = session.snapshot()
        assert snap.time == session.now
        donor = fingerprint(session.run())
        resumed = fingerprint(SimulationSession.restore(snap).run())
        assert donor == batch, f"paused run diverged for {policy}"
        assert resumed == batch, f"restored run diverged for {policy}"

    def test_factory_stream_snapshot(self):
        fabric, coflows = random_workload(9)
        cfg = _cfg()
        batch = fingerprint(
            run_policy(make_scheduler("aalo", cfg), clone_coflows(coflows),
                       fabric, cfg)
        )
        scenario = Scenario.from_stream(
            _stream_factory(coflows), total_coflows=len(coflows)
        )
        session = _session("aalo", fabric, cfg, scenario=scenario)
        session.run_until(0.2)
        snap = session.snapshot()
        assert fingerprint(SimulationSession.restore(snap).run()) == batch
        assert fingerprint(session.run()) == batch

    def test_multiple_restores_are_independent(self):
        fabric, coflows = random_workload(4)
        cfg = _cfg()
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        session.run_until(0.1)
        snap = session.snapshot()
        first = SimulationSession.restore(snap)
        second = SimulationSession.restore(snap)
        a = fingerprint(first.run())
        # Running the first restore must not have advanced the second.
        assert second.now == snap.time
        b = fingerprint(second.run())
        c = fingerprint(session.run())
        assert a == b == c

    def test_fork_is_snapshot_plus_restore(self):
        fabric, coflows = random_workload(6)
        cfg = _cfg()
        session = _session(
            "varys-sebf", fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        session.run_until(0.1)
        branch = session.fork()
        assert fingerprint(branch.run()) == fingerprint(session.run())

    def test_what_if_policy_swap(self):
        """A fork may swap the policy: the branch completes under the new
        scheduler while the donor's trajectory is untouched."""
        fabric, coflows = random_workload(1)
        cfg = _cfg()
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        session.run_until(0.1)
        snap = session.snapshot()
        branch = SimulationSession.restore(
            snap, scheduler=make_scheduler("uc-tcp", cfg)
        )
        what_if = branch.run()
        donor = session.run()
        assert len(what_if.coflows) == len(donor.coflows) == len(coflows)
        assert sorted(c.coflow_id for c in what_if.coflows) == sorted(
            c.coflow_id for c in donor.coflows
        )

    def test_what_if_outcomes_warm_started_sweep(self):
        from repro.experiments.runner import what_if_outcomes

        fabric, coflows = random_workload(2)
        cfg = _cfg()
        batch = fingerprint(run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg
        ))
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
        )
        session.run_until(0.2)
        outcomes = what_if_outcomes(
            session.snapshot(), ["saath", "aalo", "uc-tcp"], cfg
        )
        assert set(outcomes) == {"saath", "aalo", "uc-tcp"}
        # The donor-policy branch is bit-exact with an uninterrupted run.
        assert fingerprint(outcomes["saath"]) == batch
        for result in outcomes.values():
            assert len(result.coflows) == len(coflows)

    def test_what_if_outcomes_from_sink_mode_donor(self):
        """Branches retain their own results and never feed the donor's
        sink aggregator."""
        from repro.experiments.runner import what_if_outcomes

        fabric, coflows = random_workload(2)
        cfg = _cfg()
        donor_seen: list[int] = []
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
            sink=lambda c: donor_seen.append(c.coflow_id),
        )
        session.run_until(0.2)
        donor_count_at_snapshot = len(donor_seen)
        outcomes = what_if_outcomes(session.snapshot(), ["saath", "aalo"],
                                    cfg)
        # Branch completions went into branch results, not the donor sink.
        assert len(donor_seen) == donor_count_at_snapshot
        for result in outcomes.values():
            assert len(result.coflows) == len(coflows) - donor_count_at_snapshot

    def test_run_raises_when_stream_breaks_its_promise(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        coflows = [make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 10.0)])]
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_stream(iter(coflows), total_coflows=3),
        )
        with pytest.raises(SimulationError,
                           match="promised 3 coflows.*ended after 1"):
            session.run()

    def test_snapshot_requires_replayable_scenario(self):
        fabric, coflows = random_workload(3)
        cfg = _cfg()
        one_shot = Scenario.from_stream(
            iter(sorted(clone_coflows(coflows),
                        key=lambda c: c.arrival_time))
        )
        session = _session("saath", fabric, cfg, scenario=one_shot)
        with pytest.raises(SimulationError, match="replayable"):
            session.snapshot()


class TestLifecycle:
    def test_run_until_pauses_between_instants(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg(sync_interval=0.0)
        coflows = [
            make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 500.0)]),
            make_coflow(1, 2.0, [(1, fabric.receiver_port(2), 700.0)],
                        flow_id_start=10),
        ]
        session = _session(
            "saath", fabric, cfg, scenario=Scenario.from_coflows(coflows)
        )
        session.run_until(1.0)
        # now sits at the last processed instant ≤ 1.0 (arrival or
        # scheduler wakeup), never at the arbitrary pause bound itself.
        assert session.now <= 1.0
        assert not session.done
        assert len(session.result.coflows) == 0  # nothing finished yet
        assert session.step()  # keeps going past the pause bound
        session.run_until(6.0)
        assert len(session.result.coflows) == 1  # coflow 0 done at t=5
        session.run()
        assert len(session.result.coflows) == 2  # coflow 1 done at t=9
        assert session.result.makespan == pytest.approx(9.0)

    def test_step_after_done_returns_false(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        coflows = [make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 100.0)])]
        session = _session(
            "saath", fabric, cfg, scenario=Scenario.from_coflows(coflows)
        )
        session.run()
        assert session.done
        assert session.step() is False

    def test_run_requires_scenario(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        with pytest.raises(SimulationError, match="no scenario"):
            _session("saath", fabric, cfg).run()

    def test_attach_twice_rejected(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_coflows(
                [make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 1.0)])]
            ),
        )
        with pytest.raises(SimulationError, match="already attached"):
            session.attach(Scenario.from_coflows([]))

    def test_simulator_facade_is_a_session(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        sim = Simulator(fabric, make_scheduler("saath", cfg), cfg)
        assert isinstance(sim, SimulationSession)
        result = sim.run(
            [make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 100.0)])]
        )
        assert result.cct(0) == pytest.approx(1.0)

    def test_sink_mode_drops_retention(self):
        fabric, coflows = random_workload(8)
        cfg = _cfg()
        batch = run_policy(
            make_scheduler("saath", cfg), clone_coflows(coflows), fabric, cfg
        )
        seen: dict[int, float] = {}
        session = _session(
            "saath", fabric, cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
            sink=lambda c: seen.setdefault(c.coflow_id, c.cct()),
        )
        result = session.run()
        assert result.coflows == []  # nothing retained
        assert seen == batch.ccts()
        assert result.makespan == batch.makespan
        assert result.reschedules == batch.reschedules


class TestStreamValidation:
    def test_out_of_order_stream_raises(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        coflows = [
            make_coflow(0, 1.0, [(0, fabric.receiver_port(1), 100.0)]),
            make_coflow(1, 0.5, [(1, fabric.receiver_port(2), 100.0)],
                        flow_id_start=10),
        ]
        session = _session(
            "saath", fabric, cfg, scenario=Scenario.from_stream(iter(coflows))
        )
        with pytest.raises(SimulationError, match="out of order"):
            session.run()

    def test_duplicate_coflow_id_in_stream_raises(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        coflows = [
            make_coflow(7, 0.0, [(0, fabric.receiver_port(1), 100.0)]),
            make_coflow(7, 0.5, [(1, fabric.receiver_port(2), 100.0)],
                        flow_id_start=10),
        ]
        session = _session(
            "saath", fabric, cfg, scenario=Scenario.from_stream(iter(coflows))
        )
        with pytest.raises(SimulationError, match="duplicate coflow id"):
            session.run()

    def test_duplicate_flow_id_in_stream_raises(self):
        """A stream cannot be validated up front; a duplicate *live* flow
        id must fail loudly instead of corrupting the flow table."""
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        coflows = [
            make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 1000.0)],
                        flow_id_start=7),
            make_coflow(1, 0.1, [(1, fabric.receiver_port(2), 1000.0)],
                        flow_id_start=7),
        ]
        session = _session(
            "saath", fabric, cfg, scenario=Scenario.from_stream(iter(coflows))
        )
        with pytest.raises(SimulationError, match="duplicate flow id 7"):
            session.run()

    def test_run_until_surfaces_stall(self):
        """A stalled cluster raises from run_until too, instead of letting
        a `while not session.done` driver spin forever."""
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        # Unsatisfiable DAG dependency: streams skip up-front validation,
        # so the coflow waits forever.
        coflows = [
            make_coflow(1, 0.0, [(0, fabric.receiver_port(1), 100.0)],
                        depends_on=(99,)),
        ]
        session = _session(
            "saath", fabric, cfg, scenario=Scenario.from_stream(iter(coflows))
        )
        with pytest.raises(SimulationError, match="stalled"):
            while not session.done:
                session.run_until(10.0)

    def test_stream_may_reuse_finished_flow_ids(self):
        """Unbounded streams may recycle a *finished* flow's id; the
        newcomer must not inherit the predecessor's epoch-diff rate or
        straggler efficiency."""
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        coflows = [
            make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 100.0)],
                        flow_id_start=7),
            # Arrives the instant coflow 0 finishes, reusing flow id 7 on
            # the same ports — the scheduler will grant the same rate,
            # which the prev-rate probe must not treat as "unchanged".
            make_coflow(1, 1.0, [(0, fabric.receiver_port(1), 100.0)],
                        flow_id_start=7),
        ]
        result = run_scenario(
            make_scheduler("saath", cfg),
            Scenario.from_stream(iter(coflows), total_coflows=2),
            fabric, cfg,
        )
        assert len(result.coflows) == 2
        assert result.cct(1) == pytest.approx(1.0)

    def test_list_scenario_rejects_second_consumer(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        scenario = Scenario.from_coflows(
            [make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 10.0)])]
        )
        _session("saath", fabric, cfg, scenario=scenario).run()
        with pytest.raises(SimulationError, match="already driven"):
            _session("saath", fabric, cfg, scenario=scenario)

    def test_restore_rebinds_observer_to_swapped_scheduler(self):
        class Recorder:
            def __init__(self):
                self.scheduler = None

            def bind_scheduler(self, scheduler):
                self.scheduler = scheduler

            def on_schedule(self, state, allocation, now):
                pass

        fabric, coflows = random_workload(3)
        cfg = _cfg()
        session = SimulationSession(
            fabric, make_scheduler("saath", cfg), cfg,
            scenario=Scenario.from_coflows(clone_coflows(coflows)),
            observer=Recorder(),
        )
        session.run_until(0.1)
        swapped = make_scheduler("aalo", cfg)
        branch = SimulationSession.restore(session.snapshot(),
                                           scheduler=swapped)
        assert branch._observer.scheduler is swapped
        branch.run()

    def test_stream_rejects_junk_payload(self):
        fabric = Fabric(num_machines=4, port_rate=100.0)
        cfg = _cfg()
        with pytest.raises(SimulationError, match="scenario stream yielded"):
            # The spine pulls one event ahead, so the junk is rejected the
            # moment the scenario is attached.
            _session(
                "saath", fabric, cfg,
                scenario=Scenario.from_stream(iter([object()])),
            )

    def test_one_shot_stream_consumed_once(self):
        scenario = Scenario.from_stream(iter([]))
        assert list(scenario.events()) == []
        with pytest.raises(SimulationError, match="already consumed"):
            scenario.events()

    def test_poisson_stream_validates_eagerly(self):
        from repro.errors import ConfigError
        from repro.workloads.synthetic import (
            fb_like_spec,
            stream_poisson_coflows,
        )

        with pytest.raises(ConfigError, match="rate_per_sec"):
            stream_poisson_coflows(
                fb_like_spec(num_machines=10, num_coflows=5),
                rate_per_sec=0.0,
            )


class TestDynamicsOnTheSpine:
    """Dynamics actions ride the same event stream as arrivals."""

    def _workload(self, fabric) -> list[CoFlow]:
        return [
            make_coflow(0, 0.0, [(0, fabric.receiver_port(1), 400.0),
                                 (1, fabric.receiver_port(2), 400.0)]),
            make_coflow(1, 1.0, [(2, fabric.receiver_port(3), 200.0)],
                        flow_id_start=10),
        ]

    def _dynamics(self):
        return [
            FlowSlowdown(time=0.5, flow_id=0, efficiency=0.5),
            PortDegradation(time=1.5, port=2, factor=0.5),
        ]

    def test_batch_scenario_and_stream_agree(self):
        fabric = Fabric(num_machines=5, port_rate=100.0)
        cfg = _cfg()
        batch = fingerprint(run_policy(
            make_scheduler("saath", cfg), self._workload(fabric), fabric,
            cfg, dynamics=self._dynamics(),
        ))
        from_scenario = fingerprint(run_scenario(
            make_scheduler("saath", cfg),
            Scenario.from_coflows(self._workload(fabric), self._dynamics()),
            fabric, cfg,
        ))
        streamed = fingerprint(run_scenario(
            make_scheduler("saath", cfg),
            Scenario.from_stream(iter(self._workload(fabric)),
                                 dynamics=self._dynamics(),
                                 total_coflows=2),
            fabric, cfg,
        ))
        assert batch == from_scenario == streamed

    def test_stream_scenario_type(self):
        scenario = Scenario.from_stream(iter([]), dynamics=self._dynamics())
        assert isinstance(scenario, StreamScenario)
        times = [e.time for e in scenario.events()]
        assert times == sorted(times)
