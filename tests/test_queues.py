"""QueueTracker: transitions, deadlines, wakeup computation."""

import math

import pytest

from repro.config import QueueConfig, SimulationConfig
from repro.errors import SchedulerError
from repro.schedulers.queues import QueueTracker
from repro.simulator.flows import make_coflow


def _cfg(**kw):
    defaults = dict(
        port_rate=100.0,
        queues=QueueConfig(num_queues=5, start_threshold=100.0,
                           growth_factor=10.0),
        min_rate=1e-3,
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


def _coflow(width=2, volume=1000.0, cid=0):
    transfers = [(i, 100 + i, volume) for i in range(width)]
    return make_coflow(cid, 0.0, transfers, flow_id_start=cid * 100)


class TestAdmissionAndRemoval:
    def test_admit_places_in_queue_zero(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow()
        tracker.admit(c, now=1.0)
        assert tracker.queue_of(c) == 0
        assert c.queue == 0
        assert c.queue_entry_time == 1.0

    def test_untracked_coflow_raises(self):
        tracker = QueueTracker(_cfg(), metric="total")
        with pytest.raises(SchedulerError):
            tracker.queue_of(_coflow())

    def test_remove_forgets(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow()
        tracker.admit(c, 0.0)
        tracker.remove(c)
        with pytest.raises(SchedulerError):
            tracker.queue_of(c)

    def test_unknown_metric_rejected(self):
        with pytest.raises(SchedulerError):
            QueueTracker(_cfg(), metric="bogus")

    def test_population_counts(self):
        tracker = QueueTracker(_cfg(), metric="total")
        cs = [_coflow(cid=i) for i in range(3)]
        for c in cs:
            tracker.admit(c, 0.0)
        assert tracker.population(0) == 3
        assert tracker.population(1) == 0


class TestTotalBytesTransitions:
    def test_refresh_demotes_on_total_bytes(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow(width=2)
        tracker.admit(c, 0.0)
        c.flows[0].bytes_sent = 60.0
        c.flows[1].bytes_sent = 50.0  # total 110 >= 100
        assert tracker.refresh(c, now=1.0)
        assert tracker.queue_of(c) == 1

    def test_refresh_no_change_below_threshold(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow()
        tracker.admit(c, 0.0)
        c.flows[0].bytes_sent = 99.0
        assert not tracker.refresh(c, 1.0)
        assert tracker.queue_of(c) == 0

    def test_refresh_never_promotes(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow()
        tracker.admit(c, 0.0)
        tracker.force_queue(c, 3, 0.0)
        c.flows[0].bytes_sent = 50.0  # target would be queue 0
        assert not tracker.refresh(c, 1.0)
        assert tracker.queue_of(c) == 3

    def test_next_transition_time_total(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow(width=2)
        tracker.admit(c, 0.0)
        rates = {c.flows[0].flow_id: 10.0, c.flows[1].flow_id: 10.0}
        # 100 bytes to threshold at combined 20 B/s -> 5 seconds.
        assert tracker.next_transition_time(c, rates) == pytest.approx(5.0)

    def test_next_transition_inf_when_idle(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow()
        tracker.admit(c, 0.0)
        assert math.isinf(tracker.next_transition_time(c, {}))

    def test_next_transition_inf_in_last_queue(self):
        tracker = QueueTracker(_cfg(), metric="total")
        c = _coflow()
        tracker.admit(c, 0.0)
        tracker.force_queue(c, 4, 0.0)
        rates = {f.flow_id: 100.0 for f in c.flows}
        assert math.isinf(tracker.next_transition_time(c, rates))


class TestPerFlowTransitions:
    def test_refresh_uses_max_flow_bytes(self):
        tracker = QueueTracker(_cfg(), metric="perflow")
        c = _coflow(width=4)  # per-flow share of Q0: 100/4 = 25
        tracker.admit(c, 0.0)
        c.flows[0].bytes_sent = 26.0
        assert tracker.refresh(c, 1.0)
        assert tracker.queue_of(c) == 1

    def test_wide_coflow_demotes_faster_than_total(self):
        total = QueueTracker(_cfg(), metric="total")
        perflow = QueueTracker(_cfg(), metric="perflow")
        c1, c2 = _coflow(width=10, cid=1), _coflow(width=10, cid=2)
        total.admit(c1, 0.0)
        perflow.admit(c2, 0.0)
        for c in (c1, c2):
            c.flows[0].bytes_sent = 15.0  # one flow crossed 100/10 = 10
        assert not total.refresh(c1, 1.0)  # total 15 < 100
        assert perflow.refresh(c2, 1.0)

    def test_next_transition_time_perflow(self):
        tracker = QueueTracker(_cfg(), metric="perflow")
        c = _coflow(width=2, volume=1000.0)  # per-flow share 50
        tracker.admit(c, 0.0)
        rates = {c.flows[0].flow_id: 10.0}
        assert tracker.next_transition_time(c, rates) == pytest.approx(5.0)

    def test_transition_unreachable_when_flows_too_short(self):
        tracker = QueueTracker(_cfg(), metric="perflow")
        c = _coflow(width=2, volume=30.0)  # flows end before 50-byte share
        tracker.admit(c, 0.0)
        rates = {f.flow_id: 10.0 for f in c.flows}
        assert math.isinf(tracker.next_transition_time(c, rates))

    def test_immediate_transition_returns_zero(self):
        tracker = QueueTracker(_cfg(), metric="perflow")
        c = _coflow(width=2, volume=1000.0)
        tracker.admit(c, 0.0)
        c.flows[0].bytes_sent = 55.0  # already past share
        rates = {c.flows[0].flow_id: 10.0}
        assert tracker.next_transition_time(c, rates) == 0.0


class TestDeadlines:
    def test_deadline_set_on_admit(self):
        cfg = _cfg(deadline_factor=2.0)
        tracker = QueueTracker(cfg, metric="perflow")
        c = _coflow()
        tracker.admit(c, now=10.0)
        # Queue 0 span 100 bytes at 100 B/s -> t_q = 1; one resident coflow.
        assert tracker.deadline_of(c) == pytest.approx(10.0 + 2.0 * 1 * 1.0)

    def test_deadline_scales_with_population(self):
        cfg = _cfg(deadline_factor=2.0)
        tracker = QueueTracker(cfg, metric="perflow")
        first = _coflow(cid=1)
        second = _coflow(cid=2)
        tracker.admit(first, 0.0)
        tracker.admit(second, 0.0)
        # Second admission sees population 2.
        assert tracker.deadline_of(second) == pytest.approx(4.0)

    def test_starving_after_deadline(self):
        tracker = QueueTracker(_cfg(deadline_factor=1.0), metric="perflow")
        c = _coflow()
        tracker.admit(c, 0.0)
        assert not tracker.starving(c, now=0.5)
        assert tracker.starving(c, now=1.1)

    def test_no_deadline_when_disabled(self):
        tracker = QueueTracker(_cfg(deadline_factor=None), metric="perflow")
        c = _coflow()
        tracker.admit(c, 0.0)
        assert math.isinf(tracker.deadline_of(c))
        assert not tracker.starving(c, now=1e9)

    def test_queue_change_resets_deadline(self):
        tracker = QueueTracker(_cfg(deadline_factor=2.0), metric="perflow")
        c = _coflow()
        tracker.admit(c, 0.0)
        d0 = tracker.deadline_of(c)
        tracker.force_queue(c, 1, now=5.0)
        d1 = tracker.deadline_of(c)
        assert d1 > d0
        # Queue 1 spans 1000-100=900 bytes -> t_q = 9s; d=2, pop=1.
        assert d1 == pytest.approx(5.0 + 18.0)

    def test_next_deadline_after(self):
        tracker = QueueTracker(_cfg(deadline_factor=1.0), metric="perflow")
        a, b = _coflow(cid=1), _coflow(cid=2)
        tracker.admit(a, 0.0)  # deadline 1.0
        tracker.admit(b, 0.0)  # deadline 2.0
        assert tracker.next_deadline_after(0.5) == pytest.approx(1.0)
        assert tracker.next_deadline_after(1.5) == pytest.approx(2.0)
        assert math.isinf(tracker.next_deadline_after(10.0))

    def test_force_queue_same_queue_is_noop(self):
        tracker = QueueTracker(_cfg(), metric="perflow")
        c = _coflow()
        tracker.admit(c, 0.0)
        d0 = tracker.deadline_of(c)
        assert not tracker.force_queue(c, 0, now=0.7)
        assert tracker.deadline_of(c) == d0
