"""Packaging for the Saath (CoNEXT 2017) reproduction.

Kept as a classic ``setup.py`` on purpose: this project is developed in
offline environments where the ``wheel`` package (and hence PEP 660
editable installs) may be unavailable, while ``setup.py develop`` works
with plain setuptools. ``PYTHONPATH=src`` is an equally supported way to
run everything — see README.md.

The ``repro._fastcore._core`` C extension (compiled twins of the simulator
hot loops, see ARCHITECTURE.md "Compiled core") is built opportunistically:
a missing compiler degrades to the pure-Python rows path instead of failing
the install. ``-ffp-contract=off`` is mandatory for bit-identity with
CPython float arithmetic — fused multiply-adds would change intermediate
roundings; ``-ffast-math`` must never be added for the same reason.
"""
from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build the extension if we can; fall back to pure Python if not."""

    def run(self):  # noqa: D102 - setuptools hook
        try:
            super().run()
        except Exception as exc:  # no compiler / headers: not fatal
            self._warn_skip(exc)

    def build_extension(self, ext):  # noqa: D102 - setuptools hook
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn_skip(exc)

    @staticmethod
    def _warn_skip(exc):
        import sys

        print(
            f"WARNING: building repro._fastcore._core failed ({exc}); "
            "continuing with the pure-Python rows path "
            "(identical results, ~2x slower)",
            file=sys.stderr,
        )


setup(
    name="saath-repro",
    version="0.1.0",
    description="Reproduction of Saath (CoNEXT 2017) coflow scheduling",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    ext_modules=[
        Extension(
            "repro._fastcore._core",
            sources=["src/repro/_fastcore/fastcore.c"],
            extra_compile_args=["-O2", "-ffp-contract=off"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
    entry_points={
        "console_scripts": ["saath-repro = repro.cli:main"],
    },
)
