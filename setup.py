"""Packaging for the Saath (CoNEXT 2017) reproduction.

Kept as a classic ``setup.py`` on purpose: this project is developed in
offline environments where the ``wheel`` package (and hence PEP 660
editable installs) may be unavailable, while ``setup.py develop`` works
with plain setuptools. ``PYTHONPATH=src`` is an equally supported way to
run everything — see README.md.
"""
from setuptools import find_packages, setup

setup(
    name="saath-repro",
    version="0.1.0",
    description="Reproduction of Saath (CoNEXT 2017) coflow scheduling",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["saath-repro = repro.cli:main"],
    },
)
