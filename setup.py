"""Legacy setup shim: this offline environment lacks the `wheel` package, so
PEP 660 editable installs fail; `setup.py develop` works with plain
setuptools. Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
