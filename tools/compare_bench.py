#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files on their *metric* payload.

The simulator is deterministic, so the regenerated figure text attached to
each benchmark (``extra_info.figure`` — the rendered paper table/series)
must be **bit-identical** across machines and commits; only the timings may
move. This script asserts exactly that split for the CI perf-regression
job: metrics are compared byte-for-byte (exit 1 on any difference, with a
diff), timings are printed as an advisory report and never fail the run.

Usage::

    python tools/compare_bench.py BENCH_fig9.json fresh.json
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from pathlib import Path


def load_metrics(path: Path) -> dict[str, str]:
    """``benchmark fullname -> rendered figure text`` from a benchmark JSON."""
    data = json.loads(path.read_text())
    metrics: dict[str, str] = {}
    for bench in data.get("benchmarks", []):
        figure = bench.get("extra_info", {}).get("figure")
        if figure is not None:
            metrics[bench["fullname"]] = figure
    return metrics


def load_timings(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: bench["stats"]["median"]
        for bench in data.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert benchmark metrics are bit-identical; "
                    "report timings as advisory"
    )
    parser.add_argument("committed", type=Path,
                        help="the benchmark JSON committed to the repo")
    parser.add_argument("fresh", type=Path,
                        help="the benchmark JSON produced by this run")
    args = parser.parse_args(argv)

    committed = load_metrics(args.committed)
    fresh = load_metrics(args.fresh)

    failed = False
    for name in sorted(committed.keys() | fresh.keys()):
        old = committed.get(name)
        new = fresh.get(name)
        if old is None or new is None:
            print(f"METRIC MISMATCH: {name} present only in "
                  f"{'fresh' if old is None else 'committed'} file")
            failed = True
            continue
        if old != new:
            print(f"METRIC MISMATCH: {name} diverged from the committed "
                  f"figure:")
            sys.stdout.writelines(difflib.unified_diff(
                old.splitlines(keepends=True), new.splitlines(keepends=True),
                fromfile="committed", tofile="fresh",
            ))
            failed = True
        else:
            print(f"metrics identical: {name}")

    # Timings are hardware-dependent: advisory only, never a failure.
    old_times = load_timings(args.committed)
    new_times = load_timings(args.fresh)
    print("\ntiming report (advisory, not asserted):")
    for name in sorted(old_times.keys() | new_times.keys()):
        old_t = old_times.get(name)
        new_t = new_times.get(name)
        if old_t and new_t:
            print(f"  {name}: committed {old_t:.3f}s -> fresh {new_t:.3f}s "
                  f"({new_t / old_t:.2f}x)")
        else:
            print(f"  {name}: committed {old_t} -> fresh {new_t}")

    if failed:
        print("\nFAIL: simulation metrics changed — the engine is expected "
              "to be bit-deterministic. If the change is intentional, "
              "regenerate and commit BENCH_fig9.json.")
        return 1
    print("\nOK: all metrics bit-identical to the committed benchmark.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
