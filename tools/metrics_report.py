#!/usr/bin/env python
"""Render one or more metrics-registry JSON files as a readable report.

Feed it the files written by ``simulate --metrics PATH`` or a whole
``sweep --metrics-dir`` directory; multiple inputs are rolled up with
:func:`repro.observability.aggregate_metrics` (counters add, summaries
combine) before rendering.

Usage::

    PYTHONPATH=src python tools/metrics_report.py run.json
    PYTHONPATH=src python tools/metrics_report.py sweep-metrics/*.json
    PYTHONPATH=src python tools/metrics_report.py --dir sweep-metrics
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import MetricsRegistry, aggregate_metrics  # noqa: E402


def render(registry: MetricsRegistry, *, sources: int) -> str:
    lines = [f"metrics report ({sources} source file(s))"]
    if registry.counters:
        lines.append("")
        lines.append(f"{'counter':<40s} {'value':>14s}")
        for name in sorted(registry.counters):
            lines.append(f"{name:<40s} {registry.counters[name]:>14.0f}")
    if registry.gauges:
        lines.append("")
        lines.append(f"{'gauge':<40s} {'value':>14s}")
        for name in sorted(registry.gauges):
            lines.append(f"{name:<40s} {registry.gauges[name]:>14.4f}")
    if registry.summaries:
        lines.append("")
        lines.append(f"{'summary':<28s} {'count':>8s} {'mean':>12s} "
                     f"{'min':>12s} {'max':>12s}")
        for name in sorted(registry.summaries):
            cell = registry.summary(name)
            lines.append(
                f"{name:<28s} {cell['count']:>8.0f} {cell['mean']:>12.4f} "
                f"{cell['min']:>12.4f} {cell['max']:>12.4f}"
            )
    if len(lines) == 1:
        lines.append("(empty registry)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="metrics JSON files to merge and render")
    parser.add_argument("--dir", type=Path, default=None,
                        help="read every *.json in this directory "
                             "(e.g. a sweep --metrics-dir)")
    args = parser.parse_args(argv)
    files = list(args.files)
    if args.dir is not None:
        # Skip the sweep's own rollup: it already merges the per-run
        # files, so including it would double every counter.
        files.extend(p for p in sorted(args.dir.glob("*.json"))
                     if p.name != "aggregate.json")
    if not files:
        parser.error("no input files (pass paths or --dir)")
    try:
        parts = [MetricsRegistry.load(str(path)) for path in files]
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render(aggregate_metrics(parts), sources=len(files)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
