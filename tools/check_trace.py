#!/usr/bin/env python
"""Validate a simulation trace file (CI gate for the observability layer).

Checks a ``jsonl`` trace line by line against the event schema emitted by
:class:`repro.observability.Tracer` — header first, then instants /
completes / counters with known categories, non-negative monotone-safe
timestamps and JSON-object args — or loads a ``chrome`` trace and checks
the ``trace_event`` envelope (``traceEvents`` array, known phase codes,
microsecond timestamps).

Usage::

    PYTHONPATH=src python tools/check_trace.py run.jsonl
    PYTHONPATH=src python tools/check_trace.py --format chrome run.json

Exit status 0 when the file validates; 1 with a line-numbered complaint
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability.trace import (  # noqa: E402
    CATEGORIES,
    FORMAT_CHROME,
    FORMAT_JSONL,
    FORMATS,
    TRACE_SCHEMA_VERSION,
)

_EVENT_KINDS = ("instant", "complete", "counter")
_CHROME_PHASES = {"i", "X", "C"}


class TraceError(ValueError):
    """One schema violation, with location context."""


def _fail(where: str, message: str) -> None:
    raise TraceError(f"{where}: {message}")


def _check_event(event: dict, where: str) -> None:
    kind = event.get("kind")
    if kind not in _EVENT_KINDS:
        _fail(where, f"unknown event kind {kind!r}")
    if not isinstance(event.get("name"), str) or not event["name"]:
        _fail(where, "missing or empty event name")
    cat = event.get("cat")
    if cat not in CATEGORIES:
        _fail(where, f"unknown category {cat!r}; known: {CATEGORIES}")
    t = event.get("t")
    if not isinstance(t, (int, float)) or t < 0:
        _fail(where, f"bad timestamp {t!r} (want a non-negative number)")
    if kind == "complete":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            _fail(where, f"bad duration {dur!r}")
    args = event.get("args")
    if not isinstance(args, dict):
        _fail(where, f"args must be a JSON object, got {type(args).__name__}")
    if kind == "counter":
        if not args:
            _fail(where, "counter event with no value series")
        for key, value in args.items():
            if not isinstance(value, (int, float)):
                _fail(where, f"counter series {key!r} holds non-numeric "
                             f"value {value!r}")


def check_jsonl(path: Path) -> int:
    """Validate a jsonl trace; returns the number of events checked."""
    events = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            where = f"{path}:{lineno}"
            line = line.strip()
            if not line:
                _fail(where, "blank line inside trace")
            try:
                record = json.loads(line)
            except ValueError as exc:
                _fail(where, f"not valid JSON ({exc})")
            if not isinstance(record, dict):
                _fail(where, "trace line is not a JSON object")
            if lineno == 1:
                if record.get("kind") != "meta":
                    _fail(where, "first line must be the meta header")
                if record.get("schema") != TRACE_SCHEMA_VERSION:
                    _fail(where, f"schema {record.get('schema')!r} != "
                                 f"{TRACE_SCHEMA_VERSION}")
                if record.get("format") != FORMAT_JSONL:
                    _fail(where, f"format {record.get('format')!r} in a "
                                 f"jsonl trace")
                cats = record.get("categories")
                if (not isinstance(cats, list)
                        or not set(cats) <= set(CATEGORIES)):
                    _fail(where, f"bad categories list {cats!r}")
                continue
            if record.get("kind") == "meta":
                _fail(where, "duplicate meta header")
            _check_event(record, where)
            events += 1
    if events == 0:
        raise TraceError(f"{path}: header-only trace (no events)")
    return events


def check_chrome(path: Path) -> int:
    """Validate a Chrome trace_event file; returns the event count."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    where = str(path)
    if not isinstance(doc, dict):
        _fail(where, "top level must be a JSON object")
    trace_events = doc.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        _fail(where, "missing or empty traceEvents array")
    metadata = doc.get("metadata", {})
    if metadata.get("schema") != TRACE_SCHEMA_VERSION:
        _fail(where, f"metadata.schema {metadata.get('schema')!r} != "
                     f"{TRACE_SCHEMA_VERSION}")
    for i, event in enumerate(trace_events):
        ewhere = f"{where} traceEvents[{i}]"
        if not isinstance(event, dict):
            _fail(ewhere, "event is not a JSON object")
        ph = event.get("ph")
        if ph not in _CHROME_PHASES:
            _fail(ewhere, f"unknown phase {ph!r}")
        if not isinstance(event.get("name"), str):
            _fail(ewhere, "missing event name")
        if event.get("cat") not in CATEGORIES:
            _fail(ewhere, f"unknown category {event.get('cat')!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            _fail(ewhere, f"bad ts {ts!r}")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            _fail(ewhere, "complete event without dur")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            _fail(ewhere, f"instant without a valid scope: {event.get('s')!r}")
    return len(trace_events)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace file to validate")
    parser.add_argument("--format", choices=list(FORMATS),
                        default=FORMAT_JSONL,
                        help="expected trace format (default: jsonl)")
    args = parser.parse_args(argv)
    try:
        if args.format == FORMAT_CHROME:
            events = check_chrome(args.trace)
        else:
            events = check_jsonl(args.trace)
    except TraceError as exc:
        print(f"TRACE-INVALID {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"TRACE-INVALID {exc}", file=sys.stderr)
        return 1
    print(f"TRACE-OK {args.trace}: {events} events ({args.format})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
