#!/usr/bin/env python3
"""cProfile harness over a Fig. 9 slice, for attributing engine hot paths.

Runs one policy × trace simulation (the same workloads and δ = 8 ms
configuration the Fig. 9 benchmark uses) under cProfile and prints the top
functions, so a perf win — or regression — can be attributed to the code
that caused it instead of eyeballed from end-to-end wall clock.

Usage::

    PYTHONPATH=src python tools/profile_hotpaths.py                # saath/fb
    PYTHONPATH=src python tools/profile_hotpaths.py --policy uc-tcp \\
        --trace osp-like --scale small --sort cumulative --top 25
    PYTHONPATH=src python tools/profile_hotpaths.py --all          # 4 policies
    PYTHONPATH=src python tools/profile_hotpaths.py --no-epochs    # old engine
    PYTHONPATH=src python tools/profile_hotpaths.py --cells        # cell table
    PYTHONPATH=src python tools/profile_hotpaths.py --phases       # phase timers

The ``--no-epochs`` / ``--no-incremental`` / ``--no-fastcore`` flags
profile the fallback paths, which is how the allocation-epoch engine's win
(engine.py PR 2) and the compiled-core win (_fastcore PR 8) were measured:
profile both, diff the per-function tottime.

``--cells`` skips cProfile and instead times every (trace × policy) cell
of the Fig. 9 grid end-to-end (median of ``--runs``), printing a table
sorted slowest-first — the figure-level view that tells you *which* cell
to drill into with the cProfile mode. This is how the "osp-like/uc-tcp
and osp-like/aalo dominate the wall clock" claims are reproduced.

``--phases`` replaces cProfile with the engine's lightweight
:class:`~repro.observability.PhaseTimers` — per-phase (lookout / advance /
completions / events / schedule / apply) wall-time breakdowns that span
the fastcore boundary without cProfile's per-call overhead distorting
compiled-vs-Python comparisons. Composes with ``--cells`` to print a
phase breakdown under every cell.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import statistics
import sys
import time

from repro.config import PAPER_SYNC_INTERVAL, SimulationConfig
from repro.experiments.common import ExperimentScale, fb_spec_for, osp_spec_for
from repro.observability import PhaseTimers
from repro.schedulers.registry import available_policies, make_scheduler
from repro.simulator.engine import run_policy
from repro.simulator.flows import clone_coflows
from repro.workloads.synthetic import WorkloadGenerator

#: The Fig. 9 comparison set — the policies worth profiling by default.
FIG9_POLICIES = ("saath", "aalo", "varys-sebf", "uc-tcp")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="profile engine hot paths on a Fig. 9 workload slice"
    )
    parser.add_argument("--policy", default="saath",
                        choices=available_policies())
    parser.add_argument("--all", action="store_true",
                        help="profile every Fig. 9 policy in sequence")
    parser.add_argument("--trace", default="fb-like",
                        choices=["fb-like", "osp-like"])
    parser.add_argument("--scale", default="small",
                        choices=[s.value for s in ExperimentScale])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--sync-ms", type=float,
                        default=PAPER_SYNC_INTERVAL * 1e3,
                        help="coordinator sync interval in ms (default 8)")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"])
    parser.add_argument("--top", type=int, default=20,
                        help="number of rows to print per policy")
    parser.add_argument("--no-epochs", action="store_true",
                        help="profile the pre-epoch engine path")
    parser.add_argument("--no-incremental", action="store_true",
                        help="profile the full-recompute scheduler path")
    parser.add_argument("--no-fastcore", action="store_true",
                        help="profile the pure-Python path even when the "
                             "repro._fastcore extension is built")
    parser.add_argument("--cells", action="store_true",
                        help="skip cProfile; time every (trace x policy) "
                             "Fig. 9 cell and print a slowest-first table")
    parser.add_argument("--runs", type=int, default=3,
                        help="repetitions per cell in --cells mode "
                             "(median is reported; default 3)")
    parser.add_argument("--phases", action="store_true",
                        help="report engine phase-timer breakdowns "
                             "(lookout/advance/completions/events/"
                             "schedule/apply) instead of cProfile; "
                             "composes with --cells")
    return parser


def profile_one(policy: str, coflows, fabric, config: SimulationConfig,
                *, sort: str, top: int) -> None:
    profiler = cProfile.Profile()
    wall = time.perf_counter()
    profiler.enable()
    result = run_policy(
        make_scheduler(policy, config), clone_coflows(coflows), fabric,
        config,
    )
    profiler.disable()
    wall = time.perf_counter() - wall
    print(f"\n=== {policy}: {len(result.coflows)} coflows, "
          f"{result.reschedules} reschedules, {wall:.2f}s wall ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(sort).print_stats(top)


def profile_phases_one(policy: str, coflows, fabric,
                       config: SimulationConfig) -> None:
    """One policy run under phase timers (no cProfile overhead)."""
    timers = PhaseTimers()
    result = run_policy(
        make_scheduler(policy, config), clone_coflows(coflows), fabric,
        config, timers=timers,
    )
    print(f"\n=== {policy}: {len(result.coflows)} coflows, "
          f"{result.reschedules} reschedules ===")
    print(timers.report())


def profile_cells(config: SimulationConfig, scale: ExperimentScale,
                  seed: int, runs: int, phases: bool = False) -> None:
    """Time every (trace x policy) Fig. 9 cell, slowest first.

    Uses wall-clock medians rather than cProfile (profiler overhead skews
    C-extension vs bytecode comparisons); each cell is one full
    ``run_policy`` simulation on the shared Fig. 9 workloads.
    """
    from repro import _fastcore

    cells: list[tuple[str, str, float, int, "PhaseTimers | None"]] = []
    for trace, spec_for in (("fb-like", fb_spec_for), ("osp-like", osp_spec_for)):
        spec = spec_for(scale)
        fabric = spec.make_fabric()
        trace_seed = seed if trace == "fb-like" else 11
        coflows = WorkloadGenerator(
            spec, seed=trace_seed
        ).generate_coflows(fabric)
        for policy in FIG9_POLICIES:
            walls = []
            reschedules = 0
            merged = PhaseTimers() if phases else None
            for _ in range(runs):
                timers = PhaseTimers() if phases else None
                start = time.perf_counter()
                result = run_policy(
                    make_scheduler(policy, config), clone_coflows(coflows),
                    fabric, config, timers=timers,
                )
                walls.append(time.perf_counter() - start)
                reschedules = result.reschedules
                if merged is not None:
                    merged.merge(timers)
            cells.append((trace, policy,
                          statistics.median(walls), reschedules, merged))
    cells.sort(key=lambda c: c[2], reverse=True)
    total = sum(c[2] for c in cells)
    active = config.fastcore and _fastcore.AVAILABLE
    print(f"\nFig. 9 cells, slowest first (median of {runs}, "
          f"fastcore={'on' if active else 'off'}):")
    print(f"{'cell':<24} {'median_s':>9} {'share':>7} {'reschedules':>12}")
    for trace, policy, wall, reschedules, _ in cells:
        print(f"{trace + '/' + policy:<24} {wall:>9.3f} "
              f"{wall / total:>6.1%} {reschedules:>12}")
    print(f"{'total':<24} {total:>9.3f}")
    if phases:
        for trace, policy, _, _, merged in cells:
            print(f"\n-- {trace}/{policy} phases (all {runs} run(s)) --")
            print(merged.report())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = ExperimentScale(args.scale)
    config = SimulationConfig(
        sync_interval=args.sync_ms * 1e-3,
        epochs=not args.no_epochs,
        incremental=not args.no_incremental,
        fastcore=not args.no_fastcore,
    )
    if args.cells:
        profile_cells(config, scale, args.seed, max(1, args.runs),
                      phases=args.phases)
        return 0
    spec = (fb_spec_for(scale) if args.trace == "fb-like"
            else osp_spec_for(scale))
    fabric = spec.make_fabric()
    coflows = WorkloadGenerator(spec, seed=args.seed).generate_coflows(fabric)
    print(f"trace={args.trace} scale={scale.value} "
          f"machines={spec.num_machines} coflows={len(coflows)} "
          f"sync={args.sync_ms}ms epochs={config.epochs} "
          f"incremental={config.incremental} fastcore={config.fastcore}")
    policies = FIG9_POLICIES if args.all else (args.policy,)
    for policy in policies:
        if args.phases:
            profile_phases_one(policy, coflows, fabric, config)
        else:
            profile_one(policy, coflows, fabric, config,
                        sort=args.sort, top=args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
