#!/usr/bin/env python3
"""Chaos smoke: a faulted sweep must match a fault-free sweep bit for bit.

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/chaos_smoke.py

The script runs the same policy × seed grid twice through the fault-
tolerant sweep runner:

1. **Baseline** — no chaos armed, sequential, no cache.
2. **Chaos** — the :mod:`repro.testing.chaos` registry armed with every
   supported fault flavour: injected worker exceptions, a SIGKILLed pool
   worker, a hung run that the per-run watchdog must kill and retry, and
   a corrupted cache file written mid-sweep.

Because the simulator is deterministic, every retried run must reproduce
the original result exactly, so the two sweeps must agree on every CCT,
makespan and reschedule count — byte-identical through the JSON cache.
A final cache-only rerun asserts the damaged entry was quarantined
(``*.corrupt``) and recomputed. Exits non-zero on any mismatch, any
failed run, or any armed fault that never fired.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import SimulationConfig  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    RunSpec,
    SweepRunner,
    WorkloadSpec,
)
from repro.resilience import RetryPolicy  # noqa: E402
from repro.testing import chaos  # noqa: E402

POLICIES = ("saath", "aalo", "scf")
SEEDS = (1, 2)


def _specs() -> list[RunSpec]:
    config = SimulationConfig()
    return [
        RunSpec(policy=p,
                workload=WorkloadSpec(family="fb-like", machines=24,
                                      coflows=20, seed=s),
                config=config)
        for p in POLICIES for s in SEEDS
    ]


def _check_identical(baseline, outcomes) -> list[str]:
    problems = []
    for base, out in zip(baseline, outcomes):
        label = f"{out.spec.policy}/seed{out.spec.workload.seed}"
        if out.failed:
            problems.append(f"{label}: failed ({out.kind}): {out.error}")
            continue
        if (base.ccts != out.ccts or base.makespan != out.makespan
                or base.reschedules != out.reschedules):
            problems.append(f"{label}: outcome differs from fault-free run")
    return problems


def main() -> int:
    specs = _specs()
    os.environ.pop(chaos.ENV_VAR, None)

    print(f"baseline sweep: {len(specs)} runs, no chaos")
    baseline = SweepRunner(jobs=1).run(specs)
    assert all(not o.failed for o in baseline)

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp_path = Path(tmp)
        directory = chaos.arm(
            [
                {"site": "worker", "action": "exception", "times": 2},
                {"site": "worker", "action": "kill", "times": 1},
                {"site": "worker", "action": "delay", "times": 1,
                 "seconds": 30.0, "policy": "scf", "seed": 2},
                {"site": "cache", "action": "corrupt", "times": 1},
            ],
            tmp_path / "chaos",
        )
        os.environ[chaos.ENV_VAR] = str(directory)
        log_path = tmp_path / "sweep.jsonl"
        print("chaos sweep: 2 exceptions + 1 worker kill + 1 hang "
              "+ 1 cache corruption armed")
        runner = SweepRunner(
            jobs=2, cache_dir=tmp_path / "cache",
            retry=RetryPolicy(max_attempts=4, base_delay=0.01, timeout=5.0),
            log_path=log_path,
        )
        outcomes = runner.run(specs)
        os.environ.pop(chaos.ENV_VAR, None)

        problems = _check_identical(baseline, outcomes)
        fired = chaos.fired_count(directory)
        if fired != 5:
            problems.append(f"expected all 5 armed faults to fire, got "
                            f"{fired}")
        retried = sum(1 for o in outcomes
                      if not o.failed and o.attempts > 1)
        if not retried:
            problems.append("no run was retried — the faults were no-ops")

        for line in log_path.read_text().splitlines():
            record = json.loads(line)
            if record["event"] == "run" and record.get("attempts", 1) > 1:
                print(f"  retried: {record['policy']}/seed"
                      f"{record['seed']} took {record['attempts']} attempts")

        print("cache-only rerun: the corrupted entry must be quarantined")
        rerun = SweepRunner(jobs=1, cache_dir=tmp_path / "cache")
        problems += _check_identical(baseline, rerun.run(specs))
        if rerun.cache.quarantined != 1:
            problems.append(f"expected 1 quarantined cache entry, got "
                            f"{rerun.cache.quarantined}")
        if rerun.cache.hits != len(specs) - 1:
            problems.append(f"expected {len(specs) - 1} cache hits on "
                            f"rerun, got {rerun.cache.hits}")

    if problems:
        print("\nCHAOS SMOKE FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(f"OK: {len(specs)} runs byte-identical under chaos "
          f"({fired} faults fired, {retried} runs retried)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
