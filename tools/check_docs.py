#!/usr/bin/env python
"""Documentation lint: markdown link targets + module docstring policy.

Run from the repository root (CI does):

    python tools/check_docs.py

Checks:

1. Every relative markdown link in README.md and docs/*.md points at a
   file or directory that exists (external http(s) links are skipped).
2. Every module under src/repro/ has a module docstring, and modules in
   the experiments/ and workloads/ packages state which paper artifact
   they serve (a "Fig.", "§" or "Table" reference), matching the style of
   engine.py / saath.py.

Exits non-zero with a summary of violations.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
#: Packages whose modules must cite the paper artifact they reproduce.
PAPER_REF_PACKAGES = ("src/repro/experiments", "src/repro/workloads")
PAPER_REF_RE = re.compile(r"Fig\.?\s*\d|§\s*\d|Table\s*\d")


def check_markdown_links() -> list[str]:
    errors = []
    for md in [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]:
        if not md.exists():
            errors.append(f"{md.relative_to(ROOT)}: file missing")
            continue
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                target = target.split("#", 1)[0].strip()
                if not target or target.startswith(("http://", "https://",
                                                    "mailto:")):
                    continue
                resolved = (md.parent / target).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(ROOT)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return errors


def check_module_docstrings() -> list[str]:
    errors = []
    for py in sorted((ROOT / "src" / "repro").rglob("*.py")):
        rel = py.relative_to(ROOT)
        doc = ast.get_docstring(ast.parse(py.read_text()))
        if not doc:
            errors.append(f"{rel}: missing module docstring")
            continue
        needs_ref = (
            any(str(rel).startswith(pkg) for pkg in PAPER_REF_PACKAGES)
            and py.name != "__init__.py"
        )
        if needs_ref and not PAPER_REF_RE.search(doc):
            errors.append(
                f"{rel}: module docstring should state the paper "
                f"figure/section it reproduces (no Fig./§/Table reference)"
            )
    return errors


def main() -> int:
    errors = check_markdown_links() + check_module_docstrings()
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} documentation problem(s)")
        return 1
    print("docs lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
