#!/usr/bin/env python
"""Documentation lint: markdown link targets + module docstring policy.

Run from the repository root (CI does):

    python tools/check_docs.py

Checks:

1. Every relative markdown link in README.md and docs/*.md points at a
   file or directory that exists (external http(s) links are skipped).
2. Every module under src/repro/ has a module docstring, and modules in
   the experiments/ and workloads/ packages state which paper artifact
   they serve (a "Fig.", "§" or "Table" reference), matching the style of
   engine.py / saath.py.
3. Every public class in the modules listed in PUBLIC_API_MODULES —
   currently the topology subsystem — carries a docstring: these modules
   are the extension surface users subclass, so an undocumented class is
   an API regression.

Exits non-zero with a summary of violations.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
#: Packages whose modules must cite the paper artifact they reproduce.
PAPER_REF_PACKAGES = ("src/repro/experiments", "src/repro/workloads")
PAPER_REF_RE = re.compile(r"Fig\.?\s*\d|§\s*\d|Table\s*\d")
#: Modules whose public classes must all carry docstrings (the
#: user-subclassable extension surface).
PUBLIC_API_MODULES = ("src/repro/simulator/topology.py",)


def check_markdown_links() -> list[str]:
    errors = []
    for md in [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]:
        if not md.exists():
            errors.append(f"{md.relative_to(ROOT)}: file missing")
            continue
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                target = target.split("#", 1)[0].strip()
                if not target or target.startswith(("http://", "https://",
                                                    "mailto:")):
                    continue
                resolved = (md.parent / target).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(ROOT)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return errors


def check_module_docstrings() -> list[str]:
    errors = []
    for py in sorted((ROOT / "src" / "repro").rglob("*.py")):
        rel = py.relative_to(ROOT)
        doc = ast.get_docstring(ast.parse(py.read_text()))
        if not doc:
            errors.append(f"{rel}: missing module docstring")
            continue
        needs_ref = (
            any(str(rel).startswith(pkg) for pkg in PAPER_REF_PACKAGES)
            and py.name != "__init__.py"
        )
        if needs_ref and not PAPER_REF_RE.search(doc):
            errors.append(
                f"{rel}: module docstring should state the paper "
                f"figure/section it reproduces (no Fig./§/Table reference)"
            )
    return errors


def check_public_classes() -> list[str]:
    """Public classes in PUBLIC_API_MODULES must have docstrings."""
    errors = []
    for rel in PUBLIC_API_MODULES:
        py = ROOT / rel
        if not py.exists():
            errors.append(f"{rel}: file missing (PUBLIC_API_MODULES)")
            continue
        tree = ast.parse(py.read_text())
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                errors.append(
                    f"{rel}:{node.lineno}: public class {node.name} "
                    f"lacks a docstring"
                )
    return errors


def main() -> int:
    errors = (check_markdown_links() + check_module_docstrings()
              + check_public_classes())
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} documentation problem(s)")
        return 1
    print("docs lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
