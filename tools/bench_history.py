#!/usr/bin/env python3
"""Append a Fig. 9 wall-clock measurement to the perf-trajectory record.

The repo's engine-generation story ("seed 14.3s → PR 1 6.5s → PR 2 4.3s →
…") used to live only in prose; this tool makes it a machine-readable
series. Each invocation measures the Fig. 9 SMALL experiment end-to-end
``--runs`` times (median, per the repo's measurement discipline: wall-clock
variance on the 1-CPU reference box is ±15–20%, so never trust a single
run), times each (trace, policy) simulation individually, and appends::

    {
      "commit": "<git HEAD short hash>",
      "date": "<UTC ISO-8601>",
      "scale": "small",
      "runs": 3,
      "fastcore": true,
      "fig9_median_s": 3.42,
      "per_policy": {"fb-like/saath": 0.26, ...}
    }

to ``BENCH_history.json`` (a JSON list, newest entry last; entries before
PR 8 use the legacy key ``fig9_small_median_s`` and carry no ``fastcore``
field — they all measured the pure-Python engine). ``fastcore`` records
whether the compiled :mod:`repro._fastcore` kernels were active for the
row, so compiled and pure-Python timings are never conflated; pass
``--no-fastcore`` to measure the Python path explicitly. CI runs this as
an advisory job and uploads the refreshed file as an artifact; timings are
hardware-dependent and never asserted.

Since the observability layer landed, every measurement runs with tracing
and metrics *disabled* (the production configuration: each hook costs one
attribute check), and the entry carries ``instrumentation: "off"`` plus an
``overhead_check`` comparing the median against the newest earlier row at
the same scale and fastcore setting — the regression guard that the
disabled instrumentation hooks stay within the documented ±15–20%
wall-clock variance of the pre-observability baseline.

Usage::

    PYTHONPATH=src python tools/bench_history.py               # 3 runs, small
    PYTHONPATH=src python tools/bench_history.py --runs 5
    PYTHONPATH=src python tools/bench_history.py --scale large # slow row
    PYTHONPATH=src python tools/bench_history.py --no-fastcore # Python path
    PYTHONPATH=src python tools/bench_history.py --scale tiny  # smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

from repro import _fastcore
from repro.experiments import fig9_speedup
from repro.experiments.common import (
    ExperimentScale,
    default_experiment_config,
    fb_spec_for,
    osp_spec_for,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import run_policy
from repro.simulator.flows import clone_coflows
from repro.workloads.synthetic import WorkloadGenerator

#: (trace name, spec factory, workload seed) — the Fig. 9 configuration.
TRACES = (
    ("fb-like", fb_spec_for, 7),
    ("osp-like", osp_spec_for, 11),
)
POLICIES = ("saath", "aalo", "varys-sebf", "uc-tcp")


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent.parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def baseline_for(history: list, scale: str, fastcore: bool):
    """Newest earlier entry measured at the same scale + fastcore setting."""
    for entry in reversed(history):
        if (entry.get("scale") == scale
                and entry.get("fastcore") == fastcore
                and "fig9_median_s" in entry):
            return entry
    return None


def measure(scale: ExperimentScale, runs: int,
            fastcore: bool = True) -> tuple[float, dict[str, float]]:
    """Median end-to-end Fig. 9 wall plus per-(trace, policy) sim medians."""
    workloads = []
    for trace, spec_for, seed in TRACES:
        spec = spec_for(scale)
        fabric = spec.make_fabric()
        coflows = WorkloadGenerator(spec, seed=seed).generate_coflows(fabric)
        workloads.append((trace, fabric, coflows))
    config = default_experiment_config().with_updates(fastcore=fastcore)

    totals: list[float] = []
    per_policy: dict[str, list[float]] = {}
    for _ in range(runs):
        start = time.perf_counter()
        fig9_speedup.run(scale=scale, config=config)
        totals.append(time.perf_counter() - start)
        for trace, fabric, coflows in workloads:
            for policy in POLICIES:
                start = time.perf_counter()
                run_policy(
                    make_scheduler(policy, config), clone_coflows(coflows),
                    fabric, config,
                )
                per_policy.setdefault(f"{trace}/{policy}", []).append(
                    time.perf_counter() - start
                )
    return (
        statistics.median(totals),
        {key: round(statistics.median(vals), 4)
         for key, vals in per_policy.items()},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="append a Fig. 9 wall-clock entry to BENCH_history.json"
    )
    parser.add_argument("--runs", type=int, default=3,
                        help="measurement repetitions (median is recorded)")
    parser.add_argument("--scale", default="small",
                        choices=[s.value for s in ExperimentScale])
    parser.add_argument("--no-fastcore", action="store_true",
                        help="force the pure-Python engine even when the "
                             "repro._fastcore extension is built")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_history.json"),
        help="history file to append to (default: repo BENCH_history.json)",
    )
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.runs < 3:
        print(f"warning: --runs {args.runs} < 3; medians of fewer runs are "
              "noise-prone on shared hardware")

    scale = ExperimentScale(args.scale)
    want_fastcore = not args.no_fastcore
    # Record what actually ran: requesting fastcore without the built
    # extension silently measures the Python fallback path.
    fastcore_active = want_fastcore and _fastcore.AVAILABLE
    if want_fastcore and not _fastcore.AVAILABLE:
        print("warning: repro._fastcore is not built; measuring the "
              "pure-Python path (build with: python tools/build_fastcore.py)")
    median_s, per_policy = measure(scale, args.runs, fastcore=want_fastcore)

    entry = {
        "commit": git_commit(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scale.value,
        "runs": args.runs,
        "fastcore": fastcore_active,
        # Measurements always run with tracing/metrics/timers detached —
        # the production configuration whose overhead (one attribute check
        # per hook) the overhead_check below guards.
        "instrumentation": "off",
        "fig9_median_s": round(median_s, 3),
        "per_policy": per_policy,
    }

    path = Path(args.output)
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"{path} is not a JSON list")
    baseline = baseline_for(history, scale.value, fastcore_active)
    if baseline is not None:
        ratio = median_s / baseline["fig9_median_s"]
        entry["overhead_check"] = {
            "baseline_commit": baseline["commit"],
            "baseline_median_s": baseline["fig9_median_s"],
            "ratio": round(ratio, 3),
            # The repo's measurement discipline documents ±15–20% run-to-
            # run variance on the 1-CPU reference box; a ratio beyond 1.2
            # is a real regression, not noise.
            "within_variance": ratio <= 1.20,
        }
        print(f"instrumentation-off overhead check: {median_s:.3f}s vs "
              f"baseline {baseline['fig9_median_s']:.3f}s "
              f"({baseline['commit']}) -> ratio {ratio:.3f}")
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {path}:")
    print(json.dumps(entry, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
