#!/usr/bin/env python
"""Peak-RSS guard: streaming scenarios must run in O(active) memory.

Simulates the same lightly-loaded 100k-coflow open-loop workload twice, in
two fresh child processes:

* **streaming** — coflows come from a generator-backed
  :class:`~repro.simulator.scenario.Scenario`, finished coflows go to a
  counting ``sink``; the session holds only the active set.
* **materialized** — the classic path: the full ``list[CoFlow]`` is built
  up front and every finished coflow is retained in the result.

Each child reports its own peak RSS (``ru_maxrss``); the parent asserts
the streaming run stays under a fixed budget that the materialized run
demonstrably exceeds. This is the regression gate for the session kernel's
O(active-flows) memory claim — if someone reintroduces an O(total)
structure on the streaming path (retained results, materialised event
lists, per-coflow caches that never evict), this trips.

Usage::

    python tools/rss_guard.py --check              # CI entry point
    python tools/rss_guard.py --mode streaming     # one child, prints JSON
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys

#: Fixed budget (MB) separating the two paths at --coflows 100000: the
#: streaming run sits well below it (~27 MB incl. interpreter), the
#: materialized run well above (~115 MB).
DEFAULT_BUDGET_MB = 70.0


def _workload_params():
    return dict(machines=20, port_rate=1e6, volume=1e5, spacing=0.05)


def _coflow_stream(n: int):
    """Deterministic two-flow coflows, lightly loaded (O(1) active)."""
    from repro.simulator.flows import CoFlow, Flow

    p = _workload_params()
    machines = p["machines"]
    half = machines // 2
    t = 0.0
    for i in range(n):
        src = i % half
        dst = machines + half + (i % half)  # receiver port id
        dst2 = machines + half + ((i + 1) % half)
        flows = [
            Flow(flow_id=2 * i, coflow_id=i, src=src, dst=dst,
                 volume=p["volume"]),
            Flow(flow_id=2 * i + 1, coflow_id=i, src=src, dst=dst2,
                 volume=p["volume"] / 2),
        ]
        yield CoFlow(coflow_id=i, arrival_time=t, flows=flows)
        t += p["spacing"]


def _run_child(mode: str, n: int) -> None:
    from repro.config import SimulationConfig
    from repro.schedulers.registry import make_scheduler
    from repro.simulator.engine import Simulator
    from repro.simulator.fabric import Fabric
    from repro.simulator.scenario import Scenario
    from repro.simulator.session import SimulationSession

    p = _workload_params()
    fabric = Fabric(num_machines=p["machines"], port_rate=p["port_rate"])
    config = SimulationConfig(port_rate=p["port_rate"])
    scheduler = make_scheduler("saath", config)

    finished = 0
    if mode == "streaming":
        def sink(_c):
            nonlocal finished
            finished += 1

        session = SimulationSession(
            fabric, scheduler, config,
            scenario=Scenario.from_stream(lambda: _coflow_stream(n),
                                          total_coflows=n),
            sink=sink,
        )
        result = session.run()
    else:
        coflows = list(_coflow_stream(n))
        result = Simulator(fabric, scheduler, config).run(coflows)
        finished = len(result.coflows)

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux but *bytes* on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    print(json.dumps({
        "mode": mode,
        "finished": finished,
        "makespan": result.makespan,
        "peak_rss_mb": peak / divisor,
    }))


def _spawn(mode: str, n: int) -> dict:
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--mode", mode, "--coflows", str(n)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=["streaming", "materialized"],
                        help="run one measurement child (internal)")
    parser.add_argument("--coflows", type=int, default=100_000)
    parser.add_argument("--budget-mb", type=float, default=DEFAULT_BUDGET_MB)
    parser.add_argument("--check", action="store_true",
                        help="run both children and assert the budget split")
    args = parser.parse_args()

    if args.mode:
        _run_child(args.mode, args.coflows)
        return 0

    streaming = _spawn("streaming", args.coflows)
    materialized = _spawn("materialized", args.coflows)
    print(f"coflows:            {args.coflows}")
    print(f"streaming peak RSS:    {streaming['peak_rss_mb']:8.1f} MB "
          f"({streaming['finished']} finished)")
    print(f"materialized peak RSS: {materialized['peak_rss_mb']:8.1f} MB "
          f"({materialized['finished']} finished)")
    print(f"budget:                {args.budget_mb:8.1f} MB")

    ok = True
    if streaming["finished"] != args.coflows:
        print("FAIL: streaming run lost coflows")
        ok = False
    if streaming["makespan"] != materialized["makespan"]:
        print("FAIL: streaming and materialized runs disagree on makespan")
        ok = False
    if args.check:
        if streaming["peak_rss_mb"] >= args.budget_mb:
            print("FAIL: streaming path exceeded the memory budget — "
                  "something on the spine is O(total coflows) again")
            ok = False
        if materialized["peak_rss_mb"] <= args.budget_mb:
            print("NOTE: materialized path under budget too; the guard "
                  "cannot distinguish the paths at this scale")
            ok = False
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
