#!/usr/bin/env python3
"""One-shot in-place build of the ``repro._fastcore._core`` C extension.

Compiles ``src/repro/_fastcore/fastcore.c`` and drops the resulting shared
object next to its package so plain ``PYTHONPATH=src`` runs pick it up —
no install step needed.  Idempotent: skips the compile when the existing
.so is newer than the C source (``--force`` rebuilds anyway).

This deliberately bypasses setup.py/setuptools: the offline environments
this repo targets may lack ``wheel`` (and setuptools grows noisy deprecation
paths), while the extension is a single C file whose compile line is fully
known.  Flags mirror setup.py: ``-O2 -ffp-contract=off`` — contraction off
is required for bit-identity with CPython float arithmetic, and
``-ffast-math`` must never be added.

Usage:
    python tools/build_fastcore.py [--force] [--quiet]

Exit status: 0 on success (or fresh .so), 1 when the compile fails.
"""
from __future__ import annotations

import argparse
import shlex
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "_fastcore" / "fastcore.c"


def target_path() -> Path:
    """Destination .so path, tagged for the running interpreter ABI."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.parent / f"_core{suffix}"


def build(force: bool = False, quiet: bool = False) -> int:
    out = target_path()
    if not force and out.exists() and out.stat().st_mtime >= SOURCE.stat().st_mtime:
        if not quiet:
            print(f"fastcore: up to date ({out.relative_to(REPO)})")
        return 0
    cc = sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_path("include")
    cmd = [
        *shlex.split(cc),
        "-shared",
        "-fPIC",
        "-O2",
        "-ffp-contract=off",
        f"-I{include}",
        str(SOURCE),
        "-o",
        str(out),
    ]
    if not quiet:
        print("fastcore:", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(
            "fastcore: build FAILED — the simulator still runs on the "
            "pure-Python rows path (identical results, ~2x slower)",
            file=sys.stderr,
        )
        return 1
    if not quiet:
        print(f"fastcore: built {out.relative_to(REPO)}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force", action="store_true", help="rebuild even if up to date"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print errors only"
    )
    args = parser.parse_args()
    return build(force=args.force, quiet=args.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
