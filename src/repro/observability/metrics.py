"""Metrics registry: counters, gauges, and value summaries.

:class:`MetricsRegistry` is the single sink for quantitative run
telemetry — epoch counts, heap rebuilds, fastcore vs Python kernel
dispatch counts, ledger fill calls, queue transitions, sweep retry and
timeout counts, per-port utilisation summaries. It is deliberately a
plain-data container (dicts of floats) so that it deep-copies with
session snapshots, pickles across process pools, and serialises to JSON
without any custom machinery.

The zero-overhead contract: nothing in the simulator ever *requires* a
registry. Every instrumentation point is guarded by a single
``if metrics is not None:`` attribute check, and the registry itself
only ever reads simulation state — it never feeds a value back into the
engine, so enabling it cannot perturb results.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping


class MetricsRegistry:
    """Counters, gauges and min/max/sum/count value summaries.

    * ``inc(name, n)``       — monotonically increasing counter.
    * ``set_gauge(name, v)`` — last-write-wins point-in-time value.
    * ``observe(name, v)``   — streaming summary (count/total/min/max),
      the histogram-lite primitive used for per-port utilisation,
      schedule-round sizes, and phase durations.
    """

    __slots__ = ("counters", "gauges", "summaries")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self.summaries: dict[str, list[float]] = {}

    # ---- recording ---------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        cell = self.summaries.get(name)
        if cell is None:
            self.summaries[name] = [1.0, value, value, value]
            return
        cell[0] += 1.0
        cell[1] += value
        if value < cell[2]:
            cell[2] = value
        if value > cell[3]:
            cell[3] = value

    # ---- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, math.nan)

    def summary(self, name: str) -> dict[str, float]:
        """Summary as ``{count, total, mean, min, max}`` (zeros if unseen)."""
        cell = self.summaries.get(name)
        if cell is None:
            return {"count": 0.0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        count, total, lo, hi = cell
        return {"count": count, "total": total,
                "mean": total / count if count else 0.0,
                "min": lo, "max": hi}

    def __bool__(self) -> bool:
        """An attached registry is always truthy (even while empty) so
        ``if metrics:`` guards behave like ``is not None`` checks."""
        return True

    # ---- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "summaries": {k: list(v) for k, v in self.summaries.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.counters.update(payload.get("counters", {}))
        reg.gauges.update(payload.get("gauges", {}))
        for name, cell in payload.get("summaries", {}).items():
            reg.summaries[name] = [float(x) for x in cell]
        return reg

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold ``other`` into this registry (counters add, gauges
        last-write-wins, summaries combine exactly)."""
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_dict(other)
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, cell in other.summaries.items():
            mine = self.summaries.get(name)
            if mine is None:
                self.summaries[name] = list(cell)
                continue
            mine[0] += cell[0]
            mine[1] += cell[1]
            if cell[2] < mine[2]:
                mine[2] = cell[2]
            if cell[3] > mine[3]:
                mine[3] = cell[3]

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "MetricsRegistry":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, "
                f"summaries={len(self.summaries)})")


def aggregate_metrics(
    parts: Iterable["MetricsRegistry | Mapping[str, Any]"],
) -> MetricsRegistry:
    """Roll up many per-run registries (or their ``to_dict`` payloads —
    e.g. straight out of the sweep :class:`ResultCache`) into one."""
    total = MetricsRegistry()
    for part in parts:
        if part is None:
            continue
        total.merge(part)
    return total
