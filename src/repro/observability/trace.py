"""Structured event tracing for simulation runs.

:class:`Tracer` records engine events — epoch advances, schedule
applications, rate-diff applies, queue transitions, admission and
work-conservation decisions, path assignments, link saturation,
checkpoints, snapshot/restore, dynamics actions — in one of two
formats:

* ``jsonl`` — one JSON object per line, written incrementally (safe for
  huge runs; the file is valid after every event). The first line is a
  ``meta`` header describing the run.
* ``chrome`` — the Chrome ``trace_event`` format (a single JSON object
  with a ``traceEvents`` array), loadable in Perfetto or
  ``chrome://tracing``. Events are buffered and flushed on ``close()``.

Timestamps are *simulated* seconds (Chrome events convert to the
required microseconds), so the trace timeline matches the simulation
timeline rather than wall-clock noise.

Non-perturbation contract: a tracer only ever *reads* engine state.
Every hook is guarded by a single ``if tracer is not None:`` attribute
check, so the disabled path costs one pointer compare. The one
deliberate interaction with execution strategy: trace categories listed
in :data:`PYTHON_KERNEL_CATEGORIES` ask dispatch sites that have both a
compiled and a Python twin to take the (bit-identical) Python twin for
the specific calls being traced, because per-port detail is only
observable there. Outputs remain byte-identical either way — that is
exactly the property the compiled-core firewall already guarantees.

Tracers are attachments of the *live* session, not of simulated state:
``copy.deepcopy`` of a tracer yields ``None`` so that session
``snapshot()`` payloads, durable checkpoints, and process-pool pickles
never capture an open file handle.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable, Mapping

FORMAT_JSONL = "jsonl"
FORMAT_CHROME = "chrome"
FORMATS = (FORMAT_JSONL, FORMAT_CHROME)

#: Schema version stamped into every trace header.
TRACE_SCHEMA_VERSION = 1

#: Event categories (``cat`` field). Keeping the taxonomy closed makes
#: the JSONL schema checkable by ``tools/check_trace.py``.
CATEGORIES = (
    "session",    # arrivals, completions, checkpoints, snapshot/restore
    "epoch",      # full-epoch application, rate-diff application
    "schedule",   # scheduling rounds, admission / work conservation
    "queues",     # queue transitions
    "port",       # per-port grant summaries, utilisation, saturation
    "path",       # topology path assignment
    "dynamics",   # runtime dynamics actions
)

#: Categories whose events require per-call visibility inside kernels
#: that also have compiled twins; tracing one of these flips the
#: affected dispatch sites to the bit-identical Python twin.
PYTHON_KERNEL_CATEGORIES = frozenset({"port"})


class Tracer:
    """Structured event sink with instant/duration/counter kinds."""

    def __init__(
        self,
        path: str,
        *,
        format: str = FORMAT_JSONL,
        categories: "Iterable[str] | None" = None,
        metadata: "Mapping[str, Any] | None" = None,
    ) -> None:
        if format not in FORMATS:
            raise ValueError(
                f"unknown trace format {format!r}; expected one of {FORMATS}"
            )
        if categories is not None:
            unknown = set(categories) - set(CATEGORIES)
            if unknown:
                raise ValueError(
                    f"unknown trace categories {sorted(unknown)!r}; "
                    f"known: {CATEGORIES}"
                )
        self.path = path
        self.format = format
        self._categories = (
            None if categories is None else frozenset(categories)
        )
        self.metadata: dict[str, Any] = dict(metadata or {})
        #: Simulated "current time" maintained by the session so that
        #: components without a ``now`` argument in scope (e.g. path
        #: selection) can stamp events.
        self.now: float = 0.0
        self.events = 0
        self._closed = False
        self._buffer: list[dict[str, Any]] = []
        self._fh: "IO[str] | None" = None
        if format == FORMAT_JSONL:
            self._fh = open(path, "w", encoding="utf-8")
            header = {
                "kind": "meta",
                "schema": TRACE_SCHEMA_VERSION,
                "format": FORMAT_JSONL,
                "categories": (
                    sorted(self._categories)
                    if self._categories is not None else list(CATEGORIES)
                ),
                "metadata": self.metadata,
            }
            self._fh.write(json.dumps(header) + "\n")

    # ---- category gating ---------------------------------------------------

    def wants(self, category: str) -> bool:
        """True if events in ``category`` are being recorded."""
        return self._categories is None or category in self._categories

    @property
    def forces_python_kernels(self) -> bool:
        """True if any traced category needs the Python kernel twins."""
        if self._categories is None:
            return True
        return bool(self._categories & PYTHON_KERNEL_CATEGORIES)

    # ---- event kinds -------------------------------------------------------

    def instant(self, name: str, t: float, cat: str,
                args: "Mapping[str, Any] | None" = None) -> None:
        """Point event at simulated time ``t``."""
        if not self.wants(cat):
            return
        self._emit({"kind": "instant", "name": name, "t": t, "cat": cat,
                    "args": dict(args) if args else {}})

    def complete(self, name: str, t: float, dur: float, cat: str,
                 args: "Mapping[str, Any] | None" = None) -> None:
        """Duration event spanning ``[t, t + dur]`` simulated seconds."""
        if not self.wants(cat):
            return
        self._emit({"kind": "complete", "name": name, "t": t, "dur": dur,
                    "cat": cat, "args": dict(args) if args else {}})

    def counter(self, name: str, t: float, cat: str,
                values: Mapping[str, float]) -> None:
        """Counter-track sample (one series per key in ``values``)."""
        if not self.wants(cat):
            return
        self._emit({"kind": "counter", "name": name, "t": t, "cat": cat,
                    "args": dict(values)})

    # ---- lifecycle ---------------------------------------------------------

    def _emit(self, event: dict[str, Any]) -> None:
        if self._closed:
            return
        self.events += 1
        if self._fh is not None:
            self._fh.write(json.dumps(event) + "\n")
        else:
            self._buffer.append(event)

    def close(self) -> None:
        """Flush and close the trace file. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            return
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "traceEvents": [
                        _chrome_event(ev) for ev in self._buffer
                    ],
                    "displayTimeUnit": "ms",
                    "metadata": dict(
                        self.metadata, schema=TRACE_SCHEMA_VERSION
                    ),
                },
                fh,
            )
            fh.write("\n")
        self._buffer = []

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # Snapshots / checkpoints / pool pickles must never capture an open
    # file handle: a deep copy of a tracer is simply "no tracer".
    def __deepcopy__(self, memo: dict) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"Tracer({self.path!r}, format={self.format!r}, "
                f"events={self.events}, {state})")


_CHROME_PH = {"instant": "i", "complete": "X", "counter": "C"}


def _chrome_event(event: Mapping[str, Any]) -> dict[str, Any]:
    """Translate one internal event to Chrome ``trace_event`` form."""
    ph = _CHROME_PH[event["kind"]]
    out: dict[str, Any] = {
        "name": event["name"],
        "ph": ph,
        "cat": event["cat"],
        # Simulated seconds -> microseconds (the unit chrome://tracing
        # and Perfetto expect).
        "ts": event["t"] * 1e6,
        "pid": 1,
        "tid": 1,
        "args": event.get("args", {}),
    }
    if ph == "i":
        out["s"] = "t"  # thread-scoped instant
    elif ph == "X":
        out["dur"] = event["dur"] * 1e6
    return out
