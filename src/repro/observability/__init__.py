"""Unified observability layer: tracing, metrics, profiling hooks.

Three pillars, one contract: **zero overhead when disabled, provably
non-perturbing when enabled**.

* :class:`~repro.observability.trace.Tracer` — structured engine events
  as JSON-lines or Chrome ``trace_event`` JSON (Perfetto-viewable).
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges, and value summaries embedded into ``SimulationResult`` and
  the sweep result cache; :func:`aggregate_metrics` rolls sweeps up.
* :class:`~repro.observability.profiling.PhaseTimers` — perf_counter_ns
  phase accounting across the fastcore boundary.

Every instrumentation point in the engine is guarded by a single
``if x is not None:`` attribute check; instrumentation only ever reads
state. See ``docs/ARCHITECTURE.md`` ("Observability layer").
"""

from .metrics import MetricsRegistry, aggregate_metrics
from .profiling import PhaseTimers
from .trace import (
    CATEGORIES,
    FORMAT_CHROME,
    FORMAT_JSONL,
    FORMATS,
    PYTHON_KERNEL_CATEGORIES,
    TRACE_SCHEMA_VERSION,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "aggregate_metrics",
    "PhaseTimers",
    "Tracer",
    "CATEGORIES",
    "FORMATS",
    "FORMAT_JSONL",
    "FORMAT_CHROME",
    "PYTHON_KERNEL_CATEGORIES",
    "TRACE_SCHEMA_VERSION",
]
