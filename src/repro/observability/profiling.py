"""Lightweight phase timers for kernel-level breakdowns.

:class:`PhaseTimers` accumulates wall time per engine phase using
``time.perf_counter_ns`` — cheap enough to span the fastcore boundary
(a compiled kernel call costs microseconds; a timer sample costs tens
of nanoseconds) so ``tools/profile_hotpaths.py`` can attribute time to
*advance / schedule / completions / events* without cProfile's
per-call tracing overhead distorting exactly the loops being measured.

Usage at an instrumentation point (the disabled path is one attribute
check, matching the tracer/metrics contract)::

    timers = self._timers
    if timers is not None:
        _t0 = perf_counter_ns()
    ... work ...
    if timers is not None:
        timers.add("advance", perf_counter_ns() - _t0)

Timers measure *wall* time of the instrumented code; they never touch
simulation state, so enabling them cannot perturb results.
"""

from __future__ import annotations

import time
from typing import Any, Mapping


class PhaseTimers:
    """Per-phase call counts and accumulated wall time (ns)."""

    __slots__ = ("phases", "started_wall", "started_ns", "stopped_ns")

    def __init__(self) -> None:
        #: phase -> [calls, total_ns, min_ns, max_ns]
        self.phases: dict[str, list[float]] = {}
        #: wall-clock epoch seconds at :meth:`start` (``None`` until then)
        self.started_wall: "float | None" = None
        self.started_ns: "int | None" = None
        self.stopped_ns: "int | None" = None

    # ---- run envelope ------------------------------------------------------

    def start(self) -> None:
        """Mark the start of the run envelope (wall + monotonic)."""
        if self.started_ns is None:
            self.started_wall = time.time()
            self.started_ns = time.perf_counter_ns()

    def stop(self) -> None:
        """Mark the end of the run envelope."""
        self.stopped_ns = time.perf_counter_ns()

    @property
    def elapsed_s(self) -> float:
        """Run-envelope elapsed seconds (0.0 if never started)."""
        if self.started_ns is None:
            return 0.0
        end = (self.stopped_ns if self.stopped_ns is not None
               else time.perf_counter_ns())
        return (end - self.started_ns) / 1e9

    # ---- phase accumulation ------------------------------------------------

    def add(self, phase: str, elapsed_ns: int) -> None:
        cell = self.phases.get(phase)
        if cell is None:
            self.phases[phase] = [1, elapsed_ns, elapsed_ns, elapsed_ns]
            return
        cell[0] += 1
        cell[1] += elapsed_ns
        if elapsed_ns < cell[2]:
            cell[2] = elapsed_ns
        if elapsed_ns > cell[3]:
            cell[3] = elapsed_ns

    # ---- reporting ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "elapsed_s": self.elapsed_s,
            "started_wall": self.started_wall,
            "phases": {
                name: {"calls": int(c[0]), "total_ns": int(c[1]),
                       "min_ns": int(c[2]), "max_ns": int(c[3])}
                for name, c in self.phases.items()
            },
        }

    def merge(self, other: "PhaseTimers | Mapping[str, Any]") -> None:
        phases = (other.phases if isinstance(other, PhaseTimers)
                  else {name: [d["calls"], d["total_ns"],
                               d["min_ns"], d["max_ns"]]
                        for name, d in other.get("phases", {}).items()})
        for name, cell in phases.items():
            mine = self.phases.get(name)
            if mine is None:
                self.phases[name] = list(cell)
                continue
            mine[0] += cell[0]
            mine[1] += cell[1]
            if cell[2] < mine[2]:
                mine[2] = cell[2]
            if cell[3] > mine[3]:
                mine[3] = cell[3]

    def report(self) -> str:
        """Human-readable breakdown, widest phase first."""
        lines = ["phase                 calls     total_ms    mean_us"]
        total_ns = sum(c[1] for c in self.phases.values()) or 1
        order = sorted(self.phases.items(), key=lambda kv: -kv[1][1])
        for name, (calls, total, _lo, _hi) in order:
            mean_us = total / calls / 1e3 if calls else 0.0
            share = 100.0 * total / total_ns
            lines.append(
                f"{name:<20} {int(calls):>6} {total / 1e6:>12.3f} "
                f"{mean_us:>10.2f}  ({share:4.1f}%)"
            )
        if self.started_ns is not None:
            lines.append(f"run envelope: {self.elapsed_s:.3f}s wall")
        return "\n".join(lines)

    # Like tracers, timers are live-session attachments: snapshots and
    # checkpoints drop them rather than deep-copying monotonic anchors.
    def __deepcopy__(self, memo: dict) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseTimers(phases={sorted(self.phases)})"
