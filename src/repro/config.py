"""Configuration objects for the simulator and schedulers.

Two dataclasses cover everything:

* :class:`QueueConfig` — the priority-queue geometry shared by Aalo and
  Saath (§4.1 of the paper): number of queues ``K``, starting threshold
  ``S = Q^hi_0``, and exponential growth factor ``E``.
* :class:`SimulationConfig` — fabric geometry, coordinator timing (the sync
  interval δ of §5), starvation deadline factor ``d`` (§4.2 D5), and the
  feature flags that the ablation experiments toggle.

Paper defaults (§6 Setup): ``S = 10 MB``, ``E = 10``, ``K = 10``,
``δ = 8 ms``, ``d = 2``, 1 Gbps ports.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import GBPS, MB, MSEC


@dataclass(frozen=True)
class QueueConfig:
    """Geometry of the logical priority queues (§4.1).

    Queue ``q`` covers the byte range ``[Q_lo(q), Q_hi(q))`` with
    ``Q_lo(0) = 0``, ``Q_hi(q) = S * E**q`` and ``Q_hi(K-1) = inf``.
    Lower queue index = higher priority.
    """

    num_queues: int = 10
    start_threshold: float = 10.0 * MB
    growth_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.num_queues < 1:
            raise ConfigError(f"num_queues must be >= 1, got {self.num_queues}")
        if self.start_threshold <= 0:
            raise ConfigError(
                f"start_threshold must be positive, got {self.start_threshold}"
            )
        if self.growth_factor <= 1:
            raise ConfigError(
                f"growth_factor must be > 1, got {self.growth_factor}"
            )
        # Finite upper thresholds Q_hi(0..K-2), precomputed so the hot
        # queue lookup is one bisect (the dataclass is frozen, hence the
        # object.__setattr__; the cache is derived state, not a field).
        object.__setattr__(
            self, "_finite_hi",
            [self.start_threshold * self.growth_factor**q
             for q in range(self.num_queues - 1)],
        )

    def hi_threshold(self, queue: int) -> float:
        """Upper byte threshold ``Q_hi`` of ``queue`` (inf for the last)."""
        self._check_queue(queue)
        if queue == self.num_queues - 1:
            return math.inf
        return self.start_threshold * self.growth_factor**queue

    def lo_threshold(self, queue: int) -> float:
        """Lower byte threshold ``Q_lo`` of ``queue`` (0 for the first)."""
        self._check_queue(queue)
        if queue == 0:
            return 0.0
        return self.start_threshold * self.growth_factor ** (queue - 1)

    def queue_for_bytes(self, sent_bytes: float) -> int:
        """Queue index whose ``[Q_lo, Q_hi)`` range contains ``sent_bytes``.

        This is Aalo's rule: a coflow that has sent ``b`` total bytes lives
        in the queue with ``Q_lo <= b < Q_hi``.
        """
        if sent_bytes < 0:
            raise ConfigError(f"sent_bytes must be >= 0, got {sent_bytes}")
        if sent_bytes < self.start_threshold:
            return 0
        # The queue is the unique q with Q_lo(q) <= b < Q_hi(q) (clamped to
        # the last queue) — previously found with a log plus wobble guards,
        # but a bisect over the precomputed finite thresholds lands on the
        # same fixpoint directly and skips the transcendental call.
        return bisect_right(self._finite_hi, sent_bytes)

    def queue_for_per_flow_bytes(self, max_flow_bytes: float, width: int) -> int:
        """Saath's per-flow-threshold rule (Eq. 1, §4.2 D3).

        The coflow with ``width`` flows whose largest flow has sent
        ``max_flow_bytes`` lives in the queue ``q`` with
        ``Q_hi(q-1)/width <= max_flow_bytes < Q_hi(q)/width``.
        """
        if width < 1:
            raise ConfigError(f"width must be >= 1, got {width}")
        return self.queue_for_bytes(max_flow_bytes * width)

    def min_residency_time(self, queue: int, port_rate: float) -> float:
        """Minimum time a coflow spends in ``queue`` at full ``port_rate``.

        Used to derive the starvation deadline (§4.2 D5): the byte span of
        the queue divided by the port bandwidth. The last queue has an
        infinite span; we fall back to the span it *would* have had with one
        more exponential step, so deadlines stay finite.
        """
        hi = self.hi_threshold(queue)
        lo = self.lo_threshold(queue)
        if math.isinf(hi):
            hi = lo * self.growth_factor if lo > 0 else self.start_threshold
        return max(hi - lo, self.start_threshold) / port_rate

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ConfigError(
                f"queue index {queue} out of range [0, {self.num_queues})"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Full configuration for one simulation run.

    Attributes mirror the paper's knobs:

    * ``port_rate`` — per-port capacity in bytes/second (1 Gbps default).
    * ``queues`` — priority-queue geometry (S, E, K).
    * ``sync_interval`` — coordinator/agent sync interval δ in seconds;
      ``0`` means the idealised event-driven coordinator (schedule reacts
      instantly to every event).
    * ``deadline_factor`` — the starvation constant ``d`` (D5); ``None``
      disables starvation avoidance entirely.
    * ``contention_scope`` — ``"all"`` counts contention against every
      active coflow sharing a port (default); ``"queue"`` restricts it to
      coflows in the same priority queue.
    * ``enable_dynamics_promotion`` — §4.3 approximated-SRTF queue
      promotion once some flows of a coflow have finished.
    * ``min_rate`` — minimum residual port capacity (bytes/s) for a port to
      count as "available" in all-or-none admission.
    * ``epsilon_bytes`` — tolerance below which a flow's remaining volume is
      treated as zero (fluid-simulation rounding guard).
    * ``incremental`` — maintain scheduler bookkeeping (queue placement,
      contention counts, residual-capacity ledgers) incrementally from the
      per-event :class:`~repro.simulator.state.SchedulingDelta` instead of
      rebuilding it from scratch every round. The two paths are exactly
      equivalent (asserted by the equivalence test-suite); ``False``
      restores the original full-recompute path (CLI ``--no-incremental``).
    * ``epochs`` — run the engine's allocation lifecycle in *epochs*: apply
      allocations as rate diffs against the previous round (touching only
      flows whose rate changed), find the next completion through a lazy
      min-heap instead of scanning every running flow per event, and let
      rate allocators consume the cluster state's per-coflow port-count
      caches. Exactly equivalent to the per-event full recompute (asserted
      by the equivalence suite); ``False`` restores the pre-epoch engine
      (CLI ``--no-epochs``).
    * ``fastcore`` — use the compiled C twins of the hot loops
      (:mod:`repro._fastcore`) when the extension is built. Bit-identical
      to the pure-Python rows path (asserted by the fuzz firewall);
      ``False`` forces the Python path (CLI ``--no-fastcore``). When the
      extension is absent the engine falls back to Python automatically,
      with a loud one-time ``RuntimeWarning``.
    * ``validate_incremental`` — debug mode: run the incremental *and* the
      full-recompute bookkeeping every round and assert they agree. Slower
      than either path alone; used by the equivalence tests.
    """

    port_rate: float = GBPS
    queues: QueueConfig = field(default_factory=QueueConfig)
    sync_interval: float = 0.0
    deadline_factor: float | None = 2.0
    contention_scope: str = "all"
    enable_dynamics_promotion: bool = False
    min_rate: float = 1.0
    epsilon_bytes: float = 1e-6
    max_sim_time: float = 1e7
    incremental: bool = True
    epochs: bool = True
    fastcore: bool = True
    validate_incremental: bool = False

    def __post_init__(self) -> None:
        if self.port_rate <= 0:
            raise ConfigError(f"port_rate must be positive, got {self.port_rate}")
        if self.sync_interval < 0:
            raise ConfigError(
                f"sync_interval must be >= 0, got {self.sync_interval}"
            )
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ConfigError(
                f"deadline_factor must be positive or None, "
                f"got {self.deadline_factor}"
            )
        if self.contention_scope not in ("all", "queue"):
            raise ConfigError(
                f"contention_scope must be 'all' or 'queue', "
                f"got {self.contention_scope!r}"
            )
        if self.min_rate <= 0:
            raise ConfigError(f"min_rate must be positive, got {self.min_rate}")

    def with_updates(self, **changes: object) -> "SimulationConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: The paper's default simulation settings (§6 Setup).
PAPER_DEFAULTS = SimulationConfig(
    port_rate=GBPS,
    queues=QueueConfig(num_queues=10, start_threshold=10.0 * MB,
                       growth_factor=10.0),
    sync_interval=0.0,
    deadline_factor=2.0,
)

#: δ used by the paper's prototype: 8 ms (time to send 1 MB at 1 Gbps).
PAPER_SYNC_INTERVAL = 8.0 * MSEC
