"""Optional compiled core: C twins of the simulator's measured hot loops.

The extension module (``repro._fastcore._core``, built from ``fastcore.c``)
re-implements the progressive-fill / fused-allocation kernels of
:mod:`repro.simulator.ratealloc` and the inner loops of
:mod:`repro.simulator.session` with the same IEEE-754 operations in the same
order, so results are **bitwise identical** to the pure-Python rows path —
asserted by the fuzz firewall (``tests/test_fuzz_equivalence.py``).

This package degrades gracefully: when the extension is not built (no
compiler, fresh checkout, cross-platform wheel), :data:`core` is ``None``,
:data:`AVAILABLE` is ``False``, and every caller falls back to the Python
rows path.  Build in place with ``python tools/build_fastcore.py``.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["AVAILABLE", "core", "warn_fallback_once"]

#: Cross-process backing for the warn-once latch: module globals reset in
#: every pool worker (each is a fresh interpreter), but workers inherit the
#: parent's environment, so a sweep warns once instead of once per worker.
_WARNED_ENV = "REPRO_FASTCORE_WARNED"

try:  # pragma: no cover - exercised via both CI matrix legs
    from . import _core as core  # type: ignore[attr-defined]
except ImportError:  # extension not built: pure-Python fallback
    core = None  # type: ignore[assignment]

AVAILABLE = core is not None

if AVAILABLE:
    # The C ledger-commit twin raises the same exception type as
    # PortLedger.commit; registered here to avoid an import cycle in C.
    from ..errors import CapacityViolationError

    core.set_capacity_error(CapacityViolationError)

_warned = False


def warn_fallback_once() -> None:
    """Warn loudly (once per process) that fastcore was requested but the
    extension is not built, so the simulation runs on the Python rows path.

    Silent fallback would quietly forfeit the ~2x speedup and make bench
    numbers incomparable, hence a RuntimeWarning rather than a debug log.
    """
    global _warned
    if _warned or os.environ.get(_WARNED_ENV):
        return
    _warned = True
    os.environ[_WARNED_ENV] = "1"
    warnings.warn(
        "fastcore requested but repro._fastcore._core is not built; "
        "falling back to the pure-Python rows path (results are identical, "
        "~2x slower). Build it with: python tools/build_fastcore.py",
        RuntimeWarning,
        stacklevel=3,
    )
