/* fastcore: compiled twins of the simulator's measured hot loops.
 *
 * Every kernel in this module re-implements one Python hot loop from
 * repro.simulator.ratealloc / repro.simulator.session with the SAME
 * IEEE-754 double operations in the SAME order, so results are bitwise
 * identical to the pure-Python rows path (asserted by the fuzz firewall,
 * tests/test_fuzz_equivalence.py).  The bit-identity contract rests on:
 *
 *   - CPython floats are C doubles; +, -, *, / and comparisons map 1:1
 *     onto the hardware ops CPython itself performs.
 *   - The build must NOT use -ffast-math, and must disable floating-point
 *     expression contraction (-ffp-contract=off) so no fused
 *     multiply-adds change intermediate roundings (see setup.py).
 *   - Python's `min(xs)` / `xs.index(m)` tie-break (first index achieving
 *     the minimum) is reproduced by a single scan updating on strict `<`.
 *   - Completion-heap pops depend only on the heap's *contents* (the pop
 *     sequence of a binary min-heap is a function of the stored multiset,
 *     and fully-equal entries are interchangeable), so this module's
 *     sift implementation does not need to replicate heapq's internal
 *     layout to stay bit-identical — only its ordering semantics, which
 *     are plain tuple `<`.
 *
 * Memory-layout contract: FlowTable numeric columns and the PortLedger
 * capacity/usage tables are array('d') / array('q') buffers (see
 * repro.simulator.state / repro.simulator.fabric); kernels address them
 * through the buffer protocol as contiguous C arrays.  Object columns
 * (finish_time / start_time with their None sentinels) stay Python lists
 * and are read via Py_None identity checks, exactly like the Python
 * rows path.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <stdio.h>
#include <string.h>

/* Mirrors repro.simulator.fabric._CAPACITY_TOLERANCE. */
static const double CAP_TOL = 1.0 + 1e-9;
/* Mirror repro.simulator.session._HEAP_MARGIN_REL / _HEAP_MARGIN_ABS. */
static const double HEAP_MARGIN_REL = 1e-9;
static const double HEAP_MARGIN_ABS = 1e-12;

/* CapacityViolationError, registered from repro._fastcore at import time
 * (a C extension cannot import repro.errors without a cycle). */
static PyObject *capacity_error = NULL;

/* ---- buffer plumbing --------------------------------------------------- */

#define MAX_BUFS 12

typedef struct {
    Py_buffer v[MAX_BUFS];
    int n;
} bufs;

static void
bufs_release(bufs *B)
{
    while (B->n > 0)
        PyBuffer_Release(&B->v[--B->n]);
}

/* Acquire a contiguous writable buffer of 8-byte items: fmt 'd' for
 * array('d'), fmt 'q' for array('q') (accepting 'l' on LP64 platforms). */
static void *
bufs_get(bufs *B, PyObject *o, char fmt, Py_ssize_t *len, const char *name)
{
    if (B->n >= MAX_BUFS) {
        PyErr_SetString(PyExc_SystemError, "fastcore: buffer slots exhausted");
        return NULL;
    }
    Py_buffer *view = &B->v[B->n];
    if (PyObject_GetBuffer(o, view, PyBUF_CONTIG | PyBUF_FORMAT) < 0)
        return NULL;
    B->n++;
    char f = view->format ? view->format[0] : '\0';
    int ok = (view->itemsize == 8)
             && (fmt == 'd' ? f == 'd' : (f == 'q' || f == 'l'));
    if (!ok) {
        PyErr_Format(PyExc_TypeError,
                     "fastcore: %s must be a contiguous array('%c') buffer",
                     name, fmt);
        return NULL;
    }
    if (len)
        *len = view->len / 8;
    return view->buf;
}

/* ---- small helpers ----------------------------------------------------- */

static int
raise_capacity(int64_t port, double allocated, double cap)
{
    if (capacity_error == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "fastcore: CapacityViolationError not registered");
        return -1;
    }
    char buf[32];
    snprintf(buf, sizeof buf, "%lld", (long long)port);
    PyObject *args = Py_BuildValue("(sdd)", buf, allocated, cap);
    if (args == NULL)
        return -1;
    PyErr_SetObject(capacity_error, args);
    Py_DECREF(args);
    return -1;
}

static int
set_add_port(PyObject *set, int64_t port)
{
    PyObject *o = PyLong_FromLongLong((long long)port);
    if (o == NULL)
        return -1;
    int r = PySet_Add(set, o);
    Py_DECREF(o);
    return r;
}

/* PortLedger.commit's unrolled src/dst update (same op order: touch both
 * ports, then check/clamp src, then dst). Caller guarantees rate > 0. */
static int
ledger_commit(double *lcap, double *lused, PyObject *touched,
              int64_t src, int64_t dst, double rate)
{
    if (set_add_port(touched, src) < 0 || set_add_port(touched, dst) < 0)
        return -1;
    double cap = lcap[src];
    double new_used = lused[src] + rate;
    if (new_used > cap * CAP_TOL)
        return raise_capacity(src, new_used, cap);
    lused[src] = new_used < cap ? new_used : cap;
    cap = lcap[dst];
    new_used = lused[dst] + rate;
    if (new_used > cap * CAP_TOL)
        return raise_capacity(dst, new_used, cap);
    lused[dst] = new_used < cap ? new_used : cap;
    return 0;
}

static Py_ssize_t
as_row(PyObject *o, Py_ssize_t cap, const char *what)
{
    Py_ssize_t i = PyLong_AsSsize_t(o);
    if (i == -1 && PyErr_Occurred())
        return -1;
    if (i < 0 || i >= cap) {
        PyErr_Format(PyExc_IndexError,
                     "fastcore: %s row %zd out of range [0, %zd)",
                     what, i, cap);
        return -1;
    }
    return i;
}

/* Materialise the running set (row-keyed dict under epochs, row list on
 * the legacy engine) as parallel (key object, row index) arrays.  Key
 * references are borrowed: from the dict entries, or from an owned fast
 * sequence returned via *fast_out (caller decrefs it after use).  Rows
 * are bounds-checked against cap. */
static Py_ssize_t
gather_rows(PyObject *running, Py_ssize_t cap,
            PyObject ***keys_out, Py_ssize_t **rows_out, PyObject **fast_out)
{
    PyObject **keys = NULL;
    Py_ssize_t *rows = NULL;
    PyObject *fast = NULL;
    Py_ssize_t n;

    if (PyDict_Check(running)) {
        n = PyDict_GET_SIZE(running);
        keys = PyMem_New(PyObject *, n > 0 ? n : 1);
        rows = PyMem_New(Py_ssize_t, n > 0 ? n : 1);
        if (keys == NULL || rows == NULL)
            goto nomem;
        Py_ssize_t pos = 0, k = 0;
        PyObject *key, *val;
        while (PyDict_Next(running, &pos, &key, &val)) {
            Py_ssize_t i = as_row(key, cap, "running");
            if (i < 0)
                goto fail;
            keys[k] = key;
            rows[k] = i;
            k++;
        }
        n = k;
    }
    else {
        fast = PySequence_Fast(running, "fastcore: running set must be a "
                                        "dict or a sequence of rows");
        if (fast == NULL)
            goto fail;
        n = PySequence_Fast_GET_SIZE(fast);
        PyObject **items = PySequence_Fast_ITEMS(fast);
        keys = PyMem_New(PyObject *, n > 0 ? n : 1);
        rows = PyMem_New(Py_ssize_t, n > 0 ? n : 1);
        if (keys == NULL || rows == NULL)
            goto nomem;
        for (Py_ssize_t k = 0; k < n; k++) {
            Py_ssize_t i = as_row(items[k], cap, "running");
            if (i < 0)
                goto fail;
            keys[k] = items[k];
            rows[k] = i;
        }
    }
    *keys_out = keys;
    *rows_out = rows;
    *fast_out = fast;
    return n;

nomem:
    PyErr_NoMemory();
fail:
    PyMem_Free(keys);
    PyMem_Free(rows);
    Py_XDECREF(fast);
    return -1;
}

/* ---- completion-heap primitives ---------------------------------------
 * Entries are (lower bound: float, epoch: int, row: int) tuples ordered
 * by plain tuple `<` — exactly what heapq uses.  Layout independence of
 * results is argued in the module docstring above. */

static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
        && PyTuple_GET_SIZE(a) > 0 && PyTuple_GET_SIZE(b) > 0) {
        PyObject *a0 = PyTuple_GET_ITEM(a, 0);
        PyObject *b0 = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(a0) && PyFloat_CheckExact(b0)) {
            double x = PyFloat_AS_DOUBLE(a0);
            double y = PyFloat_AS_DOUBLE(b0);
            if (x < y)
                return 1;
            if (y < x)
                return 0;
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* list-swap helper keeping refcounts balanced. */
static void
heap_swap(PyObject *heap, Py_ssize_t a, Py_ssize_t b)
{
    PyObject *x = PyList_GET_ITEM(heap, a);
    PyObject *y = PyList_GET_ITEM(heap, b);
    PyList_SET_ITEM(heap, a, y);
    PyList_SET_ITEM(heap, b, x);
}

static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        int lt = entry_lt(PyList_GET_ITEM(heap, pos),
                          PyList_GET_ITEM(heap, parent));
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        heap_swap(heap, pos, parent);
        pos = parent;
    }
    return 0;
}

/* Pop the minimum entry; returns a new reference (NULL on error).  The
 * caller must know the heap is non-empty. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    n--;
    if (n == 0)
        return last; /* the root was the last element */
    PyObject *ret = PyList_GET_ITEM(heap, 0);
    Py_INCREF(ret);
    PyList_SetItem(heap, 0, last); /* steals last's reference */
    /* sift the new root down to a position where it beats both children */
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n) {
            int lt = entry_lt(PyList_GET_ITEM(heap, child + 1),
                              PyList_GET_ITEM(heap, child));
            if (lt < 0) {
                Py_DECREF(ret);
                return NULL;
            }
            if (lt)
                child++;
        }
        int lt = entry_lt(PyList_GET_ITEM(heap, child),
                          PyList_GET_ITEM(heap, pos));
        if (lt < 0) {
            Py_DECREF(ret);
            return NULL;
        }
        if (!lt)
            break;
        heap_swap(heap, pos, child);
        pos = child;
    }
    return ret;
}

/* Build and push a (bound, epoch, row) entry.  row_obj is borrowed. */
static int
heap_push_entry(PyObject *heap, double bound, int64_t epoch, PyObject *row_obj)
{
    PyObject *b = PyFloat_FromDouble(bound);
    if (b == NULL)
        return -1;
    PyObject *e = PyLong_FromLongLong((long long)epoch);
    if (e == NULL) {
        Py_DECREF(b);
        return -1;
    }
    PyObject *entry = PyTuple_New(3);
    if (entry == NULL) {
        Py_DECREF(b);
        Py_DECREF(e);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 0, b);
    PyTuple_SET_ITEM(entry, 1, e);
    Py_INCREF(row_obj);
    PyTuple_SET_ITEM(entry, 2, row_obj);
    int r = heap_push(heap, entry);
    Py_DECREF(entry);
    return r;
}

/* ======================================================================
 * Rate-allocator kernels (repro.simulator.ratealloc *_rows twins)
 * ====================================================================== */

/* mmf_fill(active, src, dst, lcap, lused, touched, rate_cap, commit)
 *   -> list[float]
 *
 * The fill/commit core of max_min_fair_rows_raw.  `active` is the
 * already-filtered list of unfinished rows; rate_cap is None or a float
 * > 0 (the <= 0 early-out happens in the wrapper, as in Python). */
static PyObject *
mmf_fill(PyObject *self, PyObject *args)
{
    PyObject *active, *src_o, *dst_o, *lcap_o, *lused_o, *touched;
    PyObject *rate_cap_o;
    int do_commit;
    if (!PyArg_ParseTuple(args, "OOOOOOOp", &active, &src_o, &dst_o,
                          &lcap_o, &lused_o, &touched, &rate_cap_o,
                          &do_commit))
        return NULL;
    if (!PyList_Check(active)) {
        PyErr_SetString(PyExc_TypeError, "fastcore: active must be a list");
        return NULL;
    }
    int has_cap = rate_cap_o != Py_None;
    double rate_cap = 0.0;
    if (has_cap) {
        rate_cap = PyFloat_AsDouble(rate_cap_o);
        if (rate_cap == -1.0 && PyErr_Occurred())
            return NULL;
    }

    bufs B = {.n = 0};
    PyObject *result = NULL;
    int64_t *rows = NULL;
    Py_ssize_t *port_pos = NULL, *src_i = NULL, *dst_i = NULL;
    Py_ssize_t *live = NULL, *moff = NULL, *mem = NULL;
    double *residual = NULL, *shares = NULL, *rate_of = NULL;
    char *frozen = NULL;

    Py_ssize_t ncols, nports;
    int64_t *src = bufs_get(&B, src_o, 'q', &ncols, "table.src");
    int64_t *dst = src ? bufs_get(&B, dst_o, 'q', NULL, "table.dst") : NULL;
    double *lcap = dst ? bufs_get(&B, lcap_o, 'd', &nports, "capacity_list")
                       : NULL;
    double *lused = lcap ? bufs_get(&B, lused_o, 'd', NULL, "used_list")
                         : NULL;
    if (lused == NULL)
        goto done;

    Py_ssize_t n = PyList_GET_SIZE(active);
    rows = PyMem_New(int64_t, n > 0 ? n : 1);
    port_pos = PyMem_New(Py_ssize_t, nports > 0 ? nports : 1);
    src_i = PyMem_New(Py_ssize_t, n > 0 ? n : 1);
    dst_i = PyMem_New(Py_ssize_t, n > 0 ? n : 1);
    live = PyMem_New(Py_ssize_t, 2 * n > 0 ? 2 * n : 1);
    moff = PyMem_New(Py_ssize_t, 2 * n + 1);
    mem = PyMem_New(Py_ssize_t, 2 * n > 0 ? 2 * n : 1);
    residual = PyMem_New(double, 2 * n > 0 ? 2 * n : 1);
    shares = PyMem_New(double, 2 * n > 0 ? 2 * n : 1);
    rate_of = PyMem_New(double, n > 0 ? n : 1);
    frozen = PyMem_New(char, n > 0 ? n : 1);
    if (!rows || !port_pos || !src_i || !dst_i || !live || !moff || !mem
        || !residual || !shares || !rate_of || !frozen) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t j = 0; j < nports; j++)
        port_pos[j] = -1;
    memset(frozen, 0, (size_t)(n > 0 ? n : 1));

    /* Pass 1: dense port indices in first-seen order (src before dst per
     * flow), per-port flow counts, residual snapshot. */
    Py_ssize_t ndense = 0;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = as_row(PyList_GET_ITEM(active, k), ncols, "active");
        if (i < 0)
            goto done;
        rows[k] = (int64_t)i;
        for (int half = 0; half < 2; half++) {
            int64_t port = half == 0 ? src[i] : dst[i];
            if (port < 0 || port >= nports) {
                PyErr_Format(PyExc_IndexError,
                             "fastcore: port %lld out of range",
                             (long long)port);
                goto done;
            }
            Py_ssize_t j = port_pos[port];
            if (j < 0) {
                j = port_pos[port] = ndense++;
                double r = lcap[port] - lused[port];
                residual[j] = r >= 0.0 ? r : 0.0;
                live[j] = 1;
            }
            else {
                live[j] += 1;
            }
            if (half == 0)
                src_i[k] = j;
            else
                dst_i[k] = j;
        }
        rate_of[k] = 0.0;
    }

    /* Pass 2: member lists (CSR).  Per-port append order matches the
     * Python build: ascending flow position, src before dst per flow. */
    moff[0] = 0;
    for (Py_ssize_t j = 0; j < ndense; j++)
        moff[j + 1] = moff[j] + live[j];
    {
        Py_ssize_t *cursor = PyMem_New(Py_ssize_t, ndense > 0 ? ndense : 1);
        if (cursor == NULL) {
            PyErr_NoMemory();
            goto done;
        }
        for (Py_ssize_t j = 0; j < ndense; j++)
            cursor[j] = moff[j];
        for (Py_ssize_t k = 0; k < n; k++) {
            mem[cursor[src_i[k]]++] = k;
            mem[cursor[dst_i[k]]++] = k;
        }
        PyMem_Free(cursor);
    }

    for (Py_ssize_t j = 0; j < ndense; j++)
        shares[j] = residual[j] / (double)live[j];

    /* Progressive fill.  A single strict-`<` scan finds both min(shares)
     * and its first index — Python's min() + list.index() tie-break. */
    Py_ssize_t remaining = n;
    while (remaining) {
        double best_share = INFINITY;
        Py_ssize_t best_j = -1;
        for (Py_ssize_t j = 0; j < ndense; j++) {
            if (shares[j] < best_share) {
                best_share = shares[j];
                best_j = j;
            }
        }
        if (best_j < 0 || best_share == INFINITY)
            break;

        if (has_cap && rate_cap < best_share) {
            for (Py_ssize_t k = 0; k < n; k++)
                if (!frozen[k])
                    rate_of[k] = rate_cap;
            break;
        }

        for (Py_ssize_t m = moff[best_j]; m < moff[best_j + 1]; m++) {
            Py_ssize_t k = mem[m];
            if (frozen[k])
                continue;
            frozen[k] = 1;
            rate_of[k] = best_share;
            Py_ssize_t j = src_i[k];
            double nr = residual[j] - best_share;
            nr = nr >= 0.0 ? nr : 0.0;
            residual[j] = nr;
            Py_ssize_t lv = --live[j];
            shares[j] = lv ? nr / (double)lv : INFINITY;
            j = dst_i[k];
            nr = residual[j] - best_share;
            nr = nr >= 0.0 ? nr : 0.0;
            residual[j] = nr;
            lv = --live[j];
            shares[j] = lv ? nr / (double)lv : INFINITY;
            remaining--;
        }
    }

    if (do_commit) {
        for (Py_ssize_t k = 0; k < n; k++) {
            double rate = rate_of[k];
            if (rate > 0.0) {
                if (ledger_commit(lcap, lused, touched,
                                  src[rows[k]], dst[rows[k]], rate) < 0)
                    goto done;
            }
        }
    }

    result = PyList_New(n);
    if (result == NULL)
        goto done;
    for (Py_ssize_t k = 0; k < n; k++) {
        PyObject *f = PyFloat_FromDouble(rate_of[k]);
        if (f == NULL) {
            Py_CLEAR(result);
            goto done;
        }
        PyList_SET_ITEM(result, k, f);
    }

done:
    PyMem_Free(rows);
    PyMem_Free(port_pos);
    PyMem_Free(src_i);
    PyMem_Free(dst_i);
    PyMem_Free(live);
    PyMem_Free(moff);
    PyMem_Free(mem);
    PyMem_Free(residual);
    PyMem_Free(shares);
    PyMem_Free(rate_of);
    PyMem_Free(frozen);
    bufs_release(&B);
    return result;
}

/* madd_rows(rows, ft, vol, bs, src, dst, fid, lcap, lused, touched)
 *   -> dict[int, float]    (madd_rates_rows twin) */
static PyObject *
madd_rows(PyObject *self, PyObject *args)
{
    PyObject *rows_o, *ft, *vol_o, *bs_o, *src_o, *dst_o, *fid_o;
    PyObject *lcap_o, *lused_o, *touched;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOO", &rows_o, &ft, &vol_o, &bs_o,
                          &src_o, &dst_o, &fid_o, &lcap_o, &lused_o,
                          &touched))
        return NULL;
    if (!PyList_CheckExact(ft)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time must be a list");
        return NULL;
    }

    bufs B = {.n = 0};
    PyObject *fast = NULL, *rates = NULL;
    Py_ssize_t *todo = NULL;
    double *left = NULL, *pbytes = NULL;
    int64_t *order = NULL;
    char *seen = NULL;

    Py_ssize_t ncols, nports;
    double *vol = bufs_get(&B, vol_o, 'd', &ncols, "table.volume");
    double *bs = vol ? bufs_get(&B, bs_o, 'd', NULL, "table.bytes_sent")
                     : NULL;
    int64_t *src = bs ? bufs_get(&B, src_o, 'q', NULL, "table.src") : NULL;
    int64_t *dst = src ? bufs_get(&B, dst_o, 'q', NULL, "table.dst") : NULL;
    int64_t *fid = dst ? bufs_get(&B, fid_o, 'q', NULL, "table.flow_id")
                       : NULL;
    double *lcap = fid ? bufs_get(&B, lcap_o, 'd', &nports, "capacity_list")
                       : NULL;
    double *lused = lcap ? bufs_get(&B, lused_o, 'd', NULL, "used_list")
                         : NULL;
    if (lused == NULL)
        goto fail;

    fast = PySequence_Fast(rows_o, "fastcore: rows must be a sequence");
    if (fast == NULL)
        goto fail;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);

    todo = PyMem_New(Py_ssize_t, n > 0 ? n : 1);
    left = PyMem_New(double, n > 0 ? n : 1);
    pbytes = PyMem_New(double, nports > 0 ? nports : 1);
    order = PyMem_New(int64_t, 2 * n > 0 ? 2 * n : 1);
    seen = PyMem_New(char, nports > 0 ? nports : 1);
    if (!todo || !left || !pbytes || !order || !seen) {
        PyErr_NoMemory();
        goto fail;
    }
    memset(seen, 0, (size_t)(nports > 0 ? nports : 1));

    /* Fused liveness filter + per-port byte aggregation, in row order. */
    Py_ssize_t nt = 0, no = 0;
    if (PyList_GET_SIZE(ft) < ncols) {
        PyErr_SetString(PyExc_ValueError,
                        "fastcore: finish_time shorter than table columns");
        goto fail;
    }
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = as_row(items[k], ncols, "rows");
        if (i < 0)
            goto fail;
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        double remaining = vol[i] - bs[i];
        if (remaining <= 0.0)
            continue;
        todo[nt] = i;
        left[nt] = remaining;
        nt++;
        int64_t ports[2] = {src[i], dst[i]};
        for (int half = 0; half < 2; half++) {
            int64_t p = ports[half];
            if (p < 0 || p >= nports) {
                PyErr_Format(PyExc_IndexError,
                             "fastcore: port %lld out of range",
                             (long long)p);
                goto fail;
            }
            if (!seen[p]) {
                seen[p] = 1;
                order[no++] = p;
                pbytes[p] = remaining;
            }
            else {
                pbytes[p] += remaining;
            }
        }
    }
    if (nt == 0) {
        rates = PyDict_New();
        goto done;
    }

    double gamma = 0.0;
    for (Py_ssize_t o = 0; o < no; o++) {
        int64_t p = order[o];
        double residual = lcap[p] - lused[p];
        if (residual <= 0.0) {
            rates = PyDict_New();
            goto done;
        }
        double share = pbytes[p] / residual;
        if (share > gamma)
            gamma = share;
    }
    if (gamma <= 0.0) {
        rates = PyDict_New();
        goto done;
    }

    /* Rate build + inlined commit, in todo order (the Python fused loop:
     * dict store, touch src/dst, then check/clamp src, then dst). */
    rates = PyDict_New();
    if (rates == NULL)
        goto fail;
    for (Py_ssize_t t = 0; t < nt; t++) {
        Py_ssize_t i = todo[t];
        double rate = left[t] / gamma;
        PyObject *key = PyLong_FromLongLong((long long)fid[i]);
        PyObject *val = key ? PyFloat_FromDouble(rate) : NULL;
        int r = val ? PyDict_SetItem(rates, key, val) : -1;
        Py_XDECREF(key);
        Py_XDECREF(val);
        if (r < 0)
            goto fail;
        if (ledger_commit(lcap, lused, touched, src[i], dst[i], rate) < 0)
            goto fail;
    }
    goto done;

fail:
    Py_CLEAR(rates);
done:
    PyMem_Free(todo);
    PyMem_Free(left);
    PyMem_Free(pbytes);
    PyMem_Free(order);
    PyMem_Free(seen);
    Py_XDECREF(fast);
    bufs_release(&B);
    return rates;
}

/* equal_rate_rows(rows, ft, src, dst, fid, lcap, lused, touched,
 *                 port_counts) -> dict[int, float]
 *   (equal_rate_for_coflow_rows twin; port_counts is a dict or None) */
static PyObject *
equal_rate_rows(PyObject *self, PyObject *args)
{
    PyObject *rows_o, *ft, *src_o, *dst_o, *fid_o;
    PyObject *lcap_o, *lused_o, *touched, *port_counts;
    if (!PyArg_ParseTuple(args, "OOOOOOOOO", &rows_o, &ft, &src_o, &dst_o,
                          &fid_o, &lcap_o, &lused_o, &touched, &port_counts))
        return NULL;
    if (!PyList_CheckExact(ft)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time must be a list");
        return NULL;
    }
    if (port_counts != Py_None && !PyDict_Check(port_counts)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: port_counts must be a dict or None");
        return NULL;
    }

    bufs B = {.n = 0};
    PyObject *fast = NULL, *rates = NULL;
    Py_ssize_t *todo = NULL;
    int64_t *counts = NULL;

    Py_ssize_t ncols, nports;
    int64_t *src = bufs_get(&B, src_o, 'q', &ncols, "table.src");
    int64_t *dst = src ? bufs_get(&B, dst_o, 'q', NULL, "table.dst") : NULL;
    int64_t *fid = dst ? bufs_get(&B, fid_o, 'q', NULL, "table.flow_id")
                       : NULL;
    double *lcap = fid ? bufs_get(&B, lcap_o, 'd', &nports, "capacity_list")
                       : NULL;
    double *lused = lcap ? bufs_get(&B, lused_o, 'd', NULL, "used_list")
                         : NULL;
    if (lused == NULL)
        goto fail;
    if (PyList_GET_SIZE(ft) < ncols) {
        PyErr_SetString(PyExc_ValueError,
                        "fastcore: finish_time shorter than table columns");
        goto fail;
    }

    fast = PySequence_Fast(rows_o, "fastcore: rows must be a sequence");
    if (fast == NULL)
        goto fail;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);

    todo = PyMem_New(Py_ssize_t, n > 0 ? n : 1);
    if (todo == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    Py_ssize_t nt = 0;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = as_row(items[k], ncols, "rows");
        if (i < 0)
            goto fail;
        if (PyList_GET_ITEM(ft, i) == Py_None)
            todo[nt++] = i;
    }
    if (nt == 0) {
        rates = PyDict_New();
        goto done;
    }

    double rate = INFINITY;
    if (port_counts != Py_None) {
        Py_ssize_t pos = 0;
        PyObject *k, *v;
        while (PyDict_Next(port_counts, &pos, &k, &v)) {
            long long port = PyLong_AsLongLong(k);
            if (port == -1 && PyErr_Occurred())
                goto fail;
            long long count = PyLong_AsLongLong(v);
            if (count == -1 && PyErr_Occurred())
                goto fail;
            if (port < 0 || port >= nports) {
                PyErr_Format(PyExc_IndexError,
                             "fastcore: port %lld out of range", port);
                goto fail;
            }
            double r = lcap[port] - lused[port];
            double cap = (r >= 0.0 ? r : 0.0) / (double)count;
            if (cap < rate)
                rate = cap;
        }
    }
    else {
        counts = PyMem_New(int64_t, nports > 0 ? nports : 1);
        if (counts == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
        memset(counts, 0, (size_t)(nports > 0 ? nports : 1)
                              * sizeof(int64_t));
        for (Py_ssize_t t = 0; t < nt; t++) {
            Py_ssize_t i = todo[t];
            int64_t s = src[i], d = dst[i];
            if (s < 0 || s >= nports || d < 0 || d >= nports) {
                PyErr_SetString(PyExc_IndexError,
                                "fastcore: port out of range");
                goto fail;
            }
            counts[s]++;
            counts[d]++;
        }
        for (Py_ssize_t t = 0; t < nt; t++) {
            Py_ssize_t i = todo[t];
            int64_t s = src[i], d = dst[i];
            /* ledger.residual() == max(cap - used, 0.0) */
            double rs = lcap[s] - lused[s];
            rs = rs >= 0.0 ? rs : 0.0;
            double rd = lcap[d] - lused[d];
            rd = rd >= 0.0 ? rd : 0.0;
            double cap_src = rs / (double)counts[s];
            double cap_dst = rd / (double)counts[d];
            if (cap_src < rate)
                rate = cap_src;
            if (cap_dst < rate)
                rate = cap_dst;
        }
    }
    if (!isfinite(rate) || rate <= 0.0) {
        rates = PyDict_New();
        goto done;
    }

    rates = PyDict_New();
    if (rates == NULL)
        goto fail;
    PyObject *rate_obj = PyFloat_FromDouble(rate);
    if (rate_obj == NULL)
        goto fail;
    for (Py_ssize_t t = 0; t < nt; t++) {
        Py_ssize_t i = todo[t];
        PyObject *key = PyLong_FromLongLong((long long)fid[i]);
        int r = key ? PyDict_SetItem(rates, key, rate_obj) : -1;
        Py_XDECREF(key);
        if (r < 0) {
            Py_DECREF(rate_obj);
            goto fail;
        }
        if (ledger_commit(lcap, lused, touched, src[i], dst[i], rate) < 0) {
            Py_DECREF(rate_obj);
            goto fail;
        }
    }
    Py_DECREF(rate_obj);
    goto done;

fail:
    Py_CLEAR(rates);
done:
    PyMem_Free(todo);
    PyMem_Free(counts);
    Py_XDECREF(fast);
    bufs_release(&B);
    return rates;
}

/* greedy_rows(rows, ft, fid, src, dst, lcap, lused, touched)
 *   -> dict[int, float]    (greedy_residual_rates_rows twin) */
static PyObject *
greedy_rows(PyObject *self, PyObject *args)
{
    PyObject *rows_o, *ft, *fid_o, *src_o, *dst_o;
    PyObject *lcap_o, *lused_o, *touched;
    if (!PyArg_ParseTuple(args, "OOOOOOOO", &rows_o, &ft, &fid_o, &src_o,
                          &dst_o, &lcap_o, &lused_o, &touched))
        return NULL;
    if (!PyList_CheckExact(ft)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time must be a list");
        return NULL;
    }

    bufs B = {.n = 0};
    PyObject *fast = NULL, *rates = NULL;
    char *dead = NULL;

    Py_ssize_t ncols, nports;
    int64_t *fid = bufs_get(&B, fid_o, 'q', &ncols, "table.flow_id");
    int64_t *src = fid ? bufs_get(&B, src_o, 'q', NULL, "table.src") : NULL;
    int64_t *dst = src ? bufs_get(&B, dst_o, 'q', NULL, "table.dst") : NULL;
    double *lcap = dst ? bufs_get(&B, lcap_o, 'd', &nports, "capacity_list")
                       : NULL;
    double *lused = lcap ? bufs_get(&B, lused_o, 'd', NULL, "used_list")
                         : NULL;
    if (lused == NULL)
        goto fail;
    if (PyList_GET_SIZE(ft) < ncols) {
        PyErr_SetString(PyExc_ValueError,
                        "fastcore: finish_time shorter than table columns");
        goto fail;
    }

    fast = PySequence_Fast(rows_o, "fastcore: rows must be a sequence");
    if (fast == NULL)
        goto fail;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);

    dead = PyMem_New(char, nports > 0 ? nports : 1);
    if (dead == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    memset(dead, 0, (size_t)(nports > 0 ? nports : 1));

    rates = PyDict_New();
    if (rates == NULL)
        goto fail;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = as_row(items[k], ncols, "rows");
        if (i < 0)
            goto fail;
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        int64_t s = src[i], d = dst[i];
        if (s < 0 || s >= nports || d < 0 || d >= nports) {
            PyErr_SetString(PyExc_IndexError, "fastcore: port out of range");
            goto fail;
        }
        if (dead[s] || dead[d])
            continue;
        double rate = lcap[s] - lused[s];
        double rate_dst = lcap[d] - lused[d];
        if (rate_dst < rate)
            rate = rate_dst;
        if (rate > 0.0) {
            lused[s] += rate;
            lused[d] += rate;
            if (set_add_port(touched, s) < 0 || set_add_port(touched, d) < 0)
                goto fail;
            PyObject *key = PyLong_FromLongLong((long long)fid[i]);
            PyObject *val = key ? PyFloat_FromDouble(rate) : NULL;
            int r = val ? PyDict_SetItem(rates, key, val) : -1;
            Py_XDECREF(key);
            Py_XDECREF(val);
            if (r < 0)
                goto fail;
        }
        else {
            if (lcap[s] - lused[s] <= 0.0)
                dead[s] = 1;
            if (lcap[d] - lused[d] <= 0.0)
                dead[d] = 1;
        }
    }
    goto done;

fail:
    Py_CLEAR(rates);
done:
    PyMem_Free(dead);
    Py_XDECREF(fast);
    bufs_release(&B);
    return rates;
}

/* ======================================================================
 * Session kernels (repro.simulator.session inner-loop twins)
 * ====================================================================== */

/* advance_running(running, vol, bs, rt, dt) -> None
 *   The branchless byte-accounting fast path of _advance_to. */
static PyObject *
advance_running(PyObject *self, PyObject *args)
{
    PyObject *running, *vol_o, *bs_o, *rt_o;
    double dt;
    if (!PyArg_ParseTuple(args, "OOOOd", &running, &vol_o, &bs_o, &rt_o,
                          &dt))
        return NULL;

    bufs B = {.n = 0};
    Py_ssize_t ncols;
    double *vol = bufs_get(&B, vol_o, 'd', &ncols, "table.volume");
    double *bs = vol ? bufs_get(&B, bs_o, 'd', NULL, "table.bytes_sent")
                     : NULL;
    double *rt = bs ? bufs_get(&B, rt_o, 'd', NULL, "table.rate") : NULL;
    if (rt == NULL) {
        bufs_release(&B);
        return NULL;
    }

    PyObject **keys;
    Py_ssize_t *rows;
    PyObject *fast;
    Py_ssize_t n = gather_rows(running, ncols, &keys, &rows, &fast);
    if (n < 0) {
        bufs_release(&B);
        return NULL;
    }
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = rows[k];
        double sent = bs[i] + rt[i] * dt;
        double volume = vol[i];
        bs[i] = sent < volume ? sent : volume;
    }
    PyMem_Free(keys);
    PyMem_Free(rows);
    Py_XDECREF(fast);
    bufs_release(&B);
    Py_RETURN_NONE;
}

/* advance_collect(running, vol, bs, rt, ft, dt, eps, out) -> None
 *   The candidate-collecting byte-accounting path of _advance_to.  Rows
 *   whose completion predicate fires are appended to `out`. */
static PyObject *
advance_collect(PyObject *self, PyObject *args)
{
    PyObject *running, *vol_o, *bs_o, *rt_o, *ft, *out;
    double dt, eps;
    if (!PyArg_ParseTuple(args, "OOOOOddO", &running, &vol_o, &bs_o, &rt_o,
                          &ft, &dt, &eps, &out))
        return NULL;
    if (!PyList_CheckExact(ft) || !PyList_Check(out)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time/out must be lists");
        return NULL;
    }

    bufs B = {.n = 0};
    Py_ssize_t ncols;
    double *vol = bufs_get(&B, vol_o, 'd', &ncols, "table.volume");
    double *bs = vol ? bufs_get(&B, bs_o, 'd', NULL, "table.bytes_sent")
                     : NULL;
    double *rt = bs ? bufs_get(&B, rt_o, 'd', NULL, "table.rate") : NULL;
    if (rt == NULL || PyList_GET_SIZE(ft) < ncols) {
        if (rt != NULL)
            PyErr_SetString(PyExc_ValueError,
                            "fastcore: finish_time shorter than columns");
        bufs_release(&B);
        return NULL;
    }

    PyObject **keys;
    Py_ssize_t *rows;
    PyObject *fast;
    Py_ssize_t n = gather_rows(running, ncols, &keys, &rows, &fast);
    if (n < 0) {
        bufs_release(&B);
        return NULL;
    }
    int err = 0;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = rows[k];
        double rate = rt[i];
        if (rate > 0.0 && PyList_GET_ITEM(ft, i) == Py_None) {
            double volume = vol[i];
            double sent = bs[i] + rate * dt;
            if (sent > volume)
                sent = volume;
            bs[i] = sent;
            double remaining = volume - sent;
            if (remaining <= eps || remaining <= rate * 1e-8) {
                if (PyList_Append(out, keys[k]) < 0) {
                    err = 1;
                    break;
                }
            }
        }
    }
    PyMem_Free(keys);
    PyMem_Free(rows);
    Py_XDECREF(fast);
    bufs_release(&B);
    if (err)
        return NULL;
    Py_RETURN_NONE;
}

/* scan_candidates(running, vol, bs, rt, ft, eps) -> list[int]
 *   The zero-width-step completion scan of _process_completions. */
static PyObject *
scan_candidates(PyObject *self, PyObject *args)
{
    PyObject *running, *vol_o, *bs_o, *rt_o, *ft;
    double eps;
    if (!PyArg_ParseTuple(args, "OOOOOd", &running, &vol_o, &bs_o, &rt_o,
                          &ft, &eps))
        return NULL;
    if (!PyList_CheckExact(ft)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time must be a list");
        return NULL;
    }

    bufs B = {.n = 0};
    Py_ssize_t ncols;
    double *vol = bufs_get(&B, vol_o, 'd', &ncols, "table.volume");
    double *bs = vol ? bufs_get(&B, bs_o, 'd', NULL, "table.bytes_sent")
                     : NULL;
    double *rt = bs ? bufs_get(&B, rt_o, 'd', NULL, "table.rate") : NULL;
    if (rt == NULL || PyList_GET_SIZE(ft) < ncols) {
        if (rt != NULL)
            PyErr_SetString(PyExc_ValueError,
                            "fastcore: finish_time shorter than columns");
        bufs_release(&B);
        return NULL;
    }

    PyObject **keys;
    Py_ssize_t *rows;
    PyObject *fast;
    Py_ssize_t n = gather_rows(running, ncols, &keys, &rows, &fast);
    if (n < 0) {
        bufs_release(&B);
        return NULL;
    }
    PyObject *raw = PyList_New(0);
    if (raw == NULL)
        goto done;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = rows[k];
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        double remaining = vol[i] - bs[i];
        if (remaining <= eps
            || (rt[i] > 0.0 && remaining <= rt[i] * 1e-8)) {
            if (PyList_Append(raw, keys[k]) < 0) {
                Py_CLEAR(raw);
                goto done;
            }
        }
    }
done:
    PyMem_Free(keys);
    PyMem_Free(rows);
    Py_XDECREF(fast);
    bufs_release(&B);
    return raw;
}

/* scan_completions(running, vol, bs, rt, ft, ep, eps, now, seed, heap)
 *   -> (next_completion_or_None, no_completion_before, seeded)
 *   The full completion scan of _earliest_completion, optionally seeding
 *   the lazy heap. */
static PyObject *
scan_completions(PyObject *self, PyObject *args)
{
    PyObject *running, *vol_o, *bs_o, *rt_o, *ft, *ep_o, *heap;
    double eps, now;
    int seed;
    if (!PyArg_ParseTuple(args, "OOOOOOddpO", &running, &vol_o, &bs_o,
                          &rt_o, &ft, &ep_o, &eps, &now, &seed, &heap))
        return NULL;
    if (!PyList_CheckExact(ft) || !PyList_Check(heap)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time/heap must be lists");
        return NULL;
    }

    bufs B = {.n = 0};
    Py_ssize_t ncols;
    double *vol = bufs_get(&B, vol_o, 'd', &ncols, "table.volume");
    double *bs = vol ? bufs_get(&B, bs_o, 'd', NULL, "table.bytes_sent")
                     : NULL;
    double *rt = bs ? bufs_get(&B, rt_o, 'd', NULL, "table.rate") : NULL;
    int64_t *ep = rt ? bufs_get(&B, ep_o, 'q', NULL, "table.epoch") : NULL;
    if (ep == NULL || PyList_GET_SIZE(ft) < ncols) {
        if (ep != NULL)
            PyErr_SetString(PyExc_ValueError,
                            "fastcore: finish_time shorter than columns");
        bufs_release(&B);
        return NULL;
    }

    PyObject **keys;
    Py_ssize_t *rows;
    PyObject *fast;
    Py_ssize_t n = gather_rows(running, ncols, &keys, &rows, &fast);
    if (n < 0) {
        bufs_release(&B);
        return NULL;
    }

    PyObject *result = NULL;
    double best = INFINITY, pred_min = INFINITY;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = rows[k];
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        double remaining = vol[i] - bs[i];
        double rate = rt[i];
        if (remaining <= eps || (rate > 0.0 && remaining <= rate * 1e-8)) {
            if (seed) { /* partial seed; retry next event */
                if (PyList_SetSlice(heap, 0, PyList_GET_SIZE(heap), NULL)
                    < 0)
                    goto done;
            }
            result = Py_BuildValue("(ddO)", now, now, Py_False);
            goto done;
        }
        if (rate > 0.0) {
            double ttc = remaining / rate;
            if (ttc < best)
                best = ttc;
            double s8 = rate * 1e-8;
            double slack = eps > s8 ? eps : s8;
            double pred = (remaining - slack) / rate;
            if (pred < pred_min)
                pred_min = pred;
            if (seed) {
                double bound = now + pred - fabs(pred) * HEAP_MARGIN_REL
                               - HEAP_MARGIN_ABS;
                if (heap_push_entry(heap, bound, ep[i], keys[k]) < 0)
                    goto done;
            }
        }
    }
    {
        double ncb = isfinite(pred_min)
                         ? now + pred_min - fabs(pred_min) * 1e-12 - 1e-15
                         : INFINITY;
        if (isfinite(best))
            result = Py_BuildValue("(ddO)", now + best, ncb,
                                   seed ? Py_True : Py_False);
        else
            result = Py_BuildValue("(OdO)", Py_None, ncb,
                                   seed ? Py_True : Py_False);
    }
done:
    PyMem_Free(keys);
    PyMem_Free(rows);
    Py_XDECREF(fast);
    bufs_release(&B);
    return result;
}

/* heap_completion(running, vol, bs, rt, ft, ep, eps, now, heap, unheaped)
 *   -> (next_completion_or_None, no_completion_before)
 *   The lazy-heap completion lookout of _heap_completion: re-scan rows
 *   rescheduled since the last event (re-heaping them), then pop entries
 *   whose lower bound beats the provisional best and recompute those few
 *   rows exactly. */
static PyObject *
heap_completion_fn(PyObject *self, PyObject *args)
{
    PyObject *running, *vol_o, *bs_o, *rt_o, *ft, *ep_o, *heap, *unheaped;
    double eps, now;
    if (!PyArg_ParseTuple(args, "OOOOOOddOO", &running, &vol_o, &bs_o,
                          &rt_o, &ft, &ep_o, &eps, &now, &heap, &unheaped))
        return NULL;
    if (!PyList_CheckExact(ft) || !PyList_Check(heap)
        || !PyDict_Check(unheaped) || !PyDict_Check(running)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: bad container types for heap_completion");
        return NULL;
    }

    bufs B = {.n = 0};
    Py_ssize_t ncols;
    double *vol = bufs_get(&B, vol_o, 'd', &ncols, "table.volume");
    double *bs = vol ? bufs_get(&B, bs_o, 'd', NULL, "table.bytes_sent")
                     : NULL;
    double *rt = bs ? bufs_get(&B, rt_o, 'd', NULL, "table.rate") : NULL;
    int64_t *ep = rt ? bufs_get(&B, ep_o, 'q', NULL, "table.epoch") : NULL;
    if (ep == NULL || PyList_GET_SIZE(ft) < ncols) {
        if (ep != NULL)
            PyErr_SetString(PyExc_ValueError,
                            "fastcore: finish_time shorter than columns");
        bufs_release(&B);
        return NULL;
    }

    PyObject *result = NULL;
    char *seen = NULL;
    struct repush_entry {
        double bound;
        int64_t epoch;
        PyObject *row; /* borrowed from a popped entry until repushed */
    } *repush = NULL;
    PyObject **owned = NULL; /* popped entries owned until repush done */
    Py_ssize_t n_repush = 0, n_owned = 0, cap_repush = 0;
    double best = INFINITY;

    if (PyDict_GET_SIZE(unheaped) > 0) {
        Py_ssize_t pos = 0;
        PyObject *key, *val;
        while (PyDict_Next(unheaped, &pos, &key, &val)) {
            Py_ssize_t i = as_row(key, ncols, "unheaped");
            if (i < 0)
                goto done;
            if (PyList_GET_ITEM(ft, i) != Py_None)
                continue;
            double remaining = vol[i] - bs[i];
            double rate = rt[i];
            if (remaining <= eps
                || (rate > 0.0 && remaining <= rate * 1e-8)) {
                /* unheaped rows are re-examined next event; do not clear */
                result = Py_BuildValue("(dd)", now, now);
                goto done;
            }
            if (rate > 0.0) {
                double tt = now + remaining / rate;
                if (tt < best)
                    best = tt;
                double s8 = rate * 1e-8;
                double slack = eps > s8 ? eps : s8;
                double pred = (remaining - slack) / rate;
                double bound = now + pred - fabs(pred) * HEAP_MARGIN_REL
                               - HEAP_MARGIN_ABS;
                if (heap_push_entry(heap, bound, ep[i], key) < 0)
                    goto done;
            }
        }
        PyDict_Clear(unheaped);
    }

    seen = PyMem_New(char, ncols > 0 ? ncols : 1);
    if (seen == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    memset(seen, 0, (size_t)(ncols > 0 ? ncols : 1));

    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *top = PyList_GET_ITEM(heap, 0);
        if (!PyTuple_CheckExact(top) || PyTuple_GET_SIZE(top) != 3) {
            PyErr_SetString(PyExc_TypeError,
                            "fastcore: malformed heap entry");
            goto done;
        }
        PyObject *b0 = PyTuple_GET_ITEM(top, 0);
        double top_bound = PyFloat_AsDouble(b0);
        if (top_bound == -1.0 && PyErr_Occurred())
            goto done;
        if (!(top_bound < best))
            break;
        PyObject *entry = heap_pop(heap);
        if (entry == NULL)
            goto done;
        /* track ownership so early exits can repush/decref */
        if (n_owned == cap_repush) {
            Py_ssize_t nc = cap_repush ? cap_repush * 2 : 16;
            struct repush_entry *nr =
                PyMem_Resize(repush, struct repush_entry, nc);
            PyObject **no_ = owned
                ? PyMem_Resize(owned, PyObject *, nc)
                : PyMem_New(PyObject *, nc);
            if (nr == NULL || no_ == NULL) {
                if (nr != NULL)
                    repush = nr;
                if (no_ != NULL)
                    owned = no_;
                Py_DECREF(entry);
                PyErr_NoMemory();
                goto done;
            }
            repush = nr;
            owned = no_;
            cap_repush = nc;
        }
        PyObject *row_obj = PyTuple_GET_ITEM(entry, 2);
        Py_ssize_t i = as_row(row_obj, ncols, "heap");
        if (i < 0) {
            Py_DECREF(entry);
            goto done;
        }
        long long entry_epoch = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
        if (entry_epoch == -1 && PyErr_Occurred()) {
            Py_DECREF(entry);
            goto done;
        }
        int member = PyDict_Contains(running, row_obj);
        if (member < 0) {
            Py_DECREF(entry);
            goto done;
        }
        if (!member || ep[i] != (int64_t)entry_epoch
            || PyList_GET_ITEM(ft, i) != Py_None || seen[i]) {
            Py_DECREF(entry); /* stale epoch / finished / refreshed */
            continue;
        }
        double rate = rt[i];
        if (rate <= 0.0) {
            Py_DECREF(entry); /* silenced mid-window; re-heaped later */
            continue;
        }
        double remaining = vol[i] - bs[i];
        if (remaining <= eps || remaining <= rate * 1e-8) {
            int bad = heap_push(heap, entry) < 0;
            Py_DECREF(entry);
            for (Py_ssize_t r = 0; !bad && r < n_repush; r++) {
                if (heap_push_entry(heap, repush[r].bound, repush[r].epoch,
                                    repush[r].row) < 0)
                    bad = 1;
            }
            if (!bad)
                result = Py_BuildValue("(dd)", now, now);
            goto done;
        }
        double tt = now + remaining / rate;
        if (tt < best)
            best = tt;
        double s8 = rate * 1e-8;
        double slack = eps > s8 ? eps : s8;
        double pred = (remaining - slack) / rate;
        seen[i] = 1;
        repush[n_repush].bound =
            now + pred - fabs(pred) * HEAP_MARGIN_REL - HEAP_MARGIN_ABS;
        repush[n_repush].epoch = (int64_t)entry_epoch;
        repush[n_repush].row = row_obj; /* kept alive via owned[] */
        n_repush++;
        owned[n_owned++] = entry; /* keep entry (and row_obj) alive */
    }
    for (Py_ssize_t r = 0; r < n_repush; r++) {
        if (heap_push_entry(heap, repush[r].bound, repush[r].epoch,
                            repush[r].row) < 0)
            goto done;
    }
    {
        double ncb;
        if (PyList_GET_SIZE(heap) > 0) {
            PyObject *top = PyList_GET_ITEM(heap, 0);
            ncb = PyFloat_AsDouble(PyTuple_GET_ITEM(top, 0));
            if (ncb == -1.0 && PyErr_Occurred())
                goto done;
        }
        else {
            ncb = INFINITY;
        }
        if (isfinite(best))
            result = Py_BuildValue("(dd)", best, ncb);
        else
            result = Py_BuildValue("(Od)", Py_None, ncb);
    }
done:
    for (Py_ssize_t r = 0; r < n_owned; r++)
        Py_DECREF(owned[r]);
    PyMem_Free(owned);
    PyMem_Free(repush);
    PyMem_Free(seen);
    bufs_release(&B);
    return result;
}

/* diff_changed(new, prev) -> list[(flow_id, rate)]
 *   Entries of `new` whose rate differs from `prev` (additions included),
 *   in `new`'s insertion order — the changed-entry probe of _apply_diff. */
static PyObject *
diff_changed(PyObject *self, PyObject *args)
{
    PyObject *new, *prev;
    if (!PyArg_ParseTuple(args, "OO", &new, &prev))
        return NULL;
    if (!PyDict_Check(new) || !PyDict_Check(prev)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: rate maps must be dicts");
        return NULL;
    }
    PyObject *changed = PyList_New(0);
    if (changed == NULL)
        return NULL;
    Py_ssize_t pos = 0;
    PyObject *k, *v;
    while (PyDict_Next(new, &pos, &k, &v)) {
        PyObject *pv = PyDict_GetItemWithError(prev, k);
        int ne;
        if (pv == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(changed);
                return NULL;
            }
            ne = 1; /* prev_get() -> None, never equal to a float rate */
        }
        else if (PyFloat_CheckExact(pv) && PyFloat_CheckExact(v)) {
            ne = PyFloat_AS_DOUBLE(pv) != PyFloat_AS_DOUBLE(v);
        }
        else {
            ne = PyObject_RichCompareBool(pv, v, Py_NE);
            if (ne < 0) {
                Py_DECREF(changed);
                return NULL;
            }
        }
        if (ne) {
            PyObject *item = PyTuple_Pack(2, k, v);
            if (item == NULL || PyList_Append(changed, item) < 0) {
                Py_XDECREF(item);
                Py_DECREF(changed);
                return NULL;
            }
            Py_DECREF(item);
        }
    }
    return changed;
}

/* Decrement counts[cid]; delete the key at zero.  Mirrors the Python
 * `left = counts[cid] - 1` (KeyError on a missing key preserved). */
static int
counts_dec(PyObject *counts, int64_t cid)
{
    PyObject *key = PyLong_FromLongLong((long long)cid);
    if (key == NULL)
        return -1;
    PyObject *cur = PyDict_GetItemWithError(counts, key);
    if (cur == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, key);
        Py_DECREF(key);
        return -1;
    }
    long long left = PyLong_AsLongLong(cur) - 1;
    if (left == -2 && PyErr_Occurred()) {
        Py_DECREF(key);
        return -1;
    }
    int r;
    if (left > 0) {
        PyObject *nv = PyLong_FromLongLong(left);
        r = nv ? PyDict_SetItem(counts, key, nv) : -1;
        Py_XDECREF(nv);
    }
    else {
        r = PyDict_DelItem(counts, key);
    }
    Py_DECREF(key);
    return r;
}

static int
counts_inc(PyObject *counts, int64_t cid)
{
    PyObject *key = PyLong_FromLongLong((long long)cid);
    if (key == NULL)
        return -1;
    PyObject *cur = PyDict_GetItemWithError(counts, key);
    if (cur == NULL && PyErr_Occurred()) {
        Py_DECREF(key);
        return -1;
    }
    long long v = 0;
    if (cur != NULL) {
        v = PyLong_AsLongLong(cur);
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
    }
    PyObject *nv = PyLong_FromLongLong(v + 1);
    int r = nv ? PyDict_SetItem(counts, key, nv) : -1;
    Py_XDECREF(nv);
    Py_DECREF(key);
    return r;
}

static int
dict_pop_discard(PyObject *d, PyObject *key)
{
    int has = PyDict_Contains(d, key);
    if (has < 0)
        return -1;
    if (has)
        return PyDict_DelItem(d, key);
    return 0;
}

/* apply_diff(dropped, changed, new, row_of, fid, cid, ft, rt, st, avail,
 *            ep, running, counts, gated, unheaped, efficiency, now,
 *            track, bump) -> members_changed: bool
 *   The rate-application core of _apply_diff: zero dropped flows, then
 *   re-evaluate changed + availability-gated flows, maintaining the
 *   running set, per-coflow counts, gated/unheaped membership, epochs
 *   and start times exactly as the Python loop does. */
static PyObject *
apply_diff(PyObject *self, PyObject *args)
{
    PyObject *dropped, *changed, *new, *row_of, *fid_o, *cid_o, *ft;
    PyObject *rt_o, *st, *avail_o, *ep_o, *running, *counts, *gated;
    PyObject *unheaped, *efficiency;
    double now;
    int track, bump;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOOOOOdpp", &dropped, &changed,
                          &new, &row_of, &fid_o, &cid_o, &ft, &rt_o, &st,
                          &avail_o, &ep_o, &running, &counts, &gated,
                          &unheaped, &efficiency, &now, &track, &bump))
        return NULL;
    if (!PyList_CheckExact(ft) || !PyList_CheckExact(st)
        || !PyList_Check(changed) || !PyDict_Check(row_of)
        || !PyDict_Check(new) || !PyDict_Check(running)
        || !PyDict_Check(counts) || !PyDict_Check(gated)
        || !PyDict_Check(unheaped) || !PyDict_Check(efficiency)) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: bad container types for apply_diff");
        return NULL;
    }

    bufs B = {.n = 0};
    Py_ssize_t ncols;
    int64_t *fid = bufs_get(&B, fid_o, 'q', &ncols, "table.flow_id");
    int64_t *cid = fid ? bufs_get(&B, cid_o, 'q', NULL, "table.coflow_id")
                       : NULL;
    double *rt = cid ? bufs_get(&B, rt_o, 'd', NULL, "table.rate") : NULL;
    double *avail = rt ? bufs_get(&B, avail_o, 'd', NULL,
                                  "table.available_time")
                       : NULL;
    int64_t *ep = avail ? bufs_get(&B, ep_o, 'q', NULL, "table.epoch")
                        : NULL;
    if (ep == NULL || PyList_GET_SIZE(ft) < ncols
        || PyList_GET_SIZE(st) < ncols) {
        if (ep != NULL)
            PyErr_SetString(PyExc_ValueError,
                            "fastcore: object columns shorter than table");
        bufs_release(&B);
        return NULL;
    }

    int members_changed = 0;
    PyObject *result = NULL;
    PyObject *iter = NULL;
    PyObject **gated_pairs = NULL; /* owned (fid, rate) pairs, flat */
    Py_ssize_t n_gated = 0;

    /* ---- dropped flows: zero their rate, leave the running set -------- */
    iter = PyObject_GetIter(dropped);
    if (iter == NULL)
        goto done;
    PyObject *dropped_fid;
    while ((dropped_fid = PyIter_Next(iter)) != NULL) {
        PyObject *i_obj = PyDict_GetItemWithError(row_of, dropped_fid);
        Py_DECREF(dropped_fid);
        if (i_obj == NULL) {
            if (PyErr_Occurred())
                goto done;
            continue; /* evicted with its finished coflow */
        }
        Py_ssize_t i = as_row(i_obj, ncols, "row_of");
        if (i < 0)
            goto done;
        if (PyList_GET_ITEM(ft, i) == Py_None && rt[i] != 0.0) {
            rt[i] = 0.0;
            if (bump)
                ep[i] += 1;
        }
        int member = PyDict_Contains(running, i_obj);
        if (member < 0)
            goto done;
        if (member) {
            if (PyDict_DelItem(running, i_obj) < 0)
                goto done;
            members_changed = 1;
            if (counts_dec(counts, cid[i]) < 0)
                goto done;
        }
        if (PyDict_GET_SIZE(gated) > 0 && dict_pop_discard(gated, i_obj) < 0)
            goto done;
        if (PyDict_GET_SIZE(unheaped) > 0
            && dict_pop_discard(unheaped, i_obj) < 0)
            goto done;
    }
    Py_CLEAR(iter);
    if (PyErr_Occurred())
        goto done;

    /* ---- snapshot availability-gated flows (legacy order: built before
     *      the changed pass mutates `gated`) --------------------------- */
    if (PyDict_GET_SIZE(gated) > 0) {
        Py_ssize_t ng = PyDict_GET_SIZE(gated);
        gated_pairs = PyMem_New(PyObject *, 2 * ng);
        if (gated_pairs == NULL) {
            PyErr_NoMemory();
            goto done;
        }
        Py_ssize_t pos = 0;
        PyObject *key, *val;
        while (PyDict_Next(gated, &pos, &key, &val)) {
            Py_ssize_t i = as_row(key, ncols, "gated");
            if (i < 0)
                goto done;
            PyObject *f = PyLong_FromLongLong((long long)fid[i]);
            if (f == NULL)
                goto done;
            PyObject *r = PyDict_GetItemWithError(new, f);
            if (r == NULL) {
                if (PyErr_Occurred()) {
                    Py_DECREF(f);
                    goto done;
                }
                r = PyFloat_FromDouble(0.0);
                if (r == NULL) {
                    Py_DECREF(f);
                    goto done;
                }
            }
            else {
                Py_INCREF(r);
            }
            gated_pairs[2 * n_gated] = f;
            gated_pairs[2 * n_gated + 1] = r;
            n_gated++;
        }
    }

    /* ---- changed + gated pairs ---------------------------------------- */
    Py_ssize_t n_changed = PyList_GET_SIZE(changed);
    for (Py_ssize_t c = 0; c < n_changed + n_gated; c++) {
        PyObject *fid_obj, *rate_obj;
        if (c < n_changed) {
            PyObject *item = PyList_GET_ITEM(changed, c);
            if (!PyTuple_CheckExact(item) || PyTuple_GET_SIZE(item) != 2) {
                PyErr_SetString(PyExc_TypeError,
                                "fastcore: changed items must be pairs");
                goto done;
            }
            fid_obj = PyTuple_GET_ITEM(item, 0);
            rate_obj = PyTuple_GET_ITEM(item, 1);
        }
        else {
            fid_obj = gated_pairs[2 * (c - n_changed)];
            rate_obj = gated_pairs[2 * (c - n_changed) + 1];
        }
        PyObject *i_obj = PyDict_GetItemWithError(row_of, fid_obj);
        if (i_obj == NULL) {
            if (PyErr_Occurred())
                goto done;
            continue; /* evicted with its finished coflow */
        }
        Py_ssize_t i = as_row(i_obj, ncols, "row_of");
        if (i < 0)
            goto done;
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        double rate = PyFloat_AsDouble(rate_obj);
        if (rate == -1.0 && PyErr_Occurred())
            goto done;
        if (rate > 0.0) {
            if (avail[i] > now) {
                rate = 0.0;
                if (PyDict_SetItem(gated, i_obj, Py_None) < 0)
                    goto done;
            }
            else {
                if (PyDict_GET_SIZE(gated) > 0
                    && dict_pop_discard(gated, i_obj) < 0)
                    goto done;
                if (PyDict_GET_SIZE(efficiency) > 0) {
                    PyObject *f = PyLong_FromLongLong((long long)fid[i]);
                    if (f == NULL)
                        goto done;
                    PyObject *eff = PyDict_GetItemWithError(efficiency, f);
                    Py_DECREF(f);
                    if (eff == NULL) {
                        if (PyErr_Occurred())
                            goto done;
                        rate *= 1.0;
                    }
                    else {
                        double e = PyFloat_AsDouble(eff);
                        if (e == -1.0 && PyErr_Occurred())
                            goto done;
                        rate *= e;
                    }
                }
            }
        }
        if (rate <= 0.0)
            rate = 0.0;
        if (rate != rt[i]) {
            rt[i] = rate;
            if (bump)
                ep[i] += 1;
            if (rate > 0.0) {
                int member = PyDict_Contains(running, i_obj);
                if (member < 0)
                    goto done;
                if (!member) {
                    if (PyDict_SetItem(running, i_obj, Py_None) < 0)
                        goto done;
                    members_changed = 1;
                    if (counts_inc(counts, cid[i]) < 0)
                        goto done;
                }
                if (track
                    && PyDict_SetItem(unheaped, i_obj, Py_None) < 0)
                    goto done;
                if (PyList_GET_ITEM(st, i) == Py_None) {
                    PyObject *t = PyFloat_FromDouble(now);
                    if (t == NULL)
                        goto done;
                    PyList_SetItem(st, i, t); /* steals t, drops None */
                }
            }
            else {
                int member = PyDict_Contains(running, i_obj);
                if (member < 0)
                    goto done;
                if (member) {
                    if (PyDict_DelItem(running, i_obj) < 0)
                        goto done;
                    members_changed = 1;
                    if (counts_dec(counts, cid[i]) < 0)
                        goto done;
                }
                if (PyDict_GET_SIZE(unheaped) > 0
                    && dict_pop_discard(unheaped, i_obj) < 0)
                    goto done;
            }
        }
    }
    result = PyBool_FromLong(members_changed);

done:
    Py_XDECREF(iter);
    for (Py_ssize_t g = 0; g < 2 * n_gated; g++)
        Py_DECREF(gated_pairs[g]);
    PyMem_Free(gated_pairs);
    bufs_release(&B);
    return result;
}

/* ---- Aalo round kernel ------------------------------------------------- */

/* rates[flow_id] = rates.get(flow_id, 0.0) + rate, with a Python-int key. */
static int
rate_accum(PyObject *rates, int64_t flow_id, double rate)
{
    PyObject *key = PyLong_FromLongLong((long long)flow_id);
    if (key == NULL)
        return -1;
    double base = 0.0;
    PyObject *prev = PyDict_GetItemWithError(rates, key);
    if (prev != NULL) {
        base = PyFloat_CheckExact(prev) ? PyFloat_AS_DOUBLE(prev)
                                        : PyFloat_AsDouble(prev);
        if (base == -1.0 && PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(key);
        return -1;
    }
    PyObject *val = PyFloat_FromDouble(base + rate);
    if (val == NULL) {
        Py_DECREF(key);
        return -1;
    }
    int r = PyDict_SetItem(rates, key, val);
    Py_DECREF(key);
    Py_DECREF(val);
    return r;
}

/* aalo_ports(coflow_runs, weights, src, dst, fid, cid,
 *            lcap, lused, touched, rates, scheduled)
 *
 * Compiled twin of AaloScheduler._schedule_rows' bucket-and-serve core:
 * flatten the (queue, rows) coflow runs — already in (queue, FIFO) order
 * with each coflow's rows in flow-id order — into per-sender sequences
 * (CSR over the sender ports, preserving global order, which is exactly
 * the defaultdict-append order of the Python path), then serve every
 * non-empty port in ascending order with the weighted-share pass and the
 * work-conservation spill pass of _allocate_port_rows.  Grant arithmetic,
 * clamps, the cross-port dead-receiver memo, grant order (hence rates
 * dict insertion order) and the early sender-exhausted bailout are all
 * replicated exactly; see _allocate_port_rows for the rationale of the
 * deferred lused[port] write-back. */
static PyObject *
aalo_ports(PyObject *self, PyObject *args)
{
    PyObject *runs_in, *weights, *src_o, *dst_o, *fid_o, *cid_o,
             *lcap_o, *lused_o, *touched, *rates, *scheduled;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOO", &runs_in, &weights,
                          &src_o, &dst_o, &fid_o, &cid_o,
                          &lcap_o, &lused_o, &touched, &rates, &scheduled))
        return NULL;

    bufs B = {0};
    PyObject *result = NULL;
    PyObject *runs_fast = NULL;
    PyObject *wfast = NULL;
    PyObject **row_fasts = NULL;
    int *run_queue = NULL;
    Py_ssize_t *g_row = NULL, *off = NULL, *cur = NULL, *p_row = NULL;
    int *g_queue = NULL, *p_queue = NULL;
    double *wq = NULL;
    char *dead = NULL;
    Py_ssize_t nruns = 0;

    Py_ssize_t ncols, n2, n3, n4, nports, nused;
    int64_t *src = bufs_get(&B, src_o, 'q', &ncols, "src");
    int64_t *dst = bufs_get(&B, dst_o, 'q', &n2, "dst");
    int64_t *fid = bufs_get(&B, fid_o, 'q', &n3, "flow_id");
    int64_t *cid = bufs_get(&B, cid_o, 'q', &n4, "coflow_id");
    double *lcap = bufs_get(&B, lcap_o, 'd', &nports, "capacity");
    double *lused = bufs_get(&B, lused_o, 'd', &nused, "used");
    if (src == NULL || dst == NULL || fid == NULL || cid == NULL
        || lcap == NULL || lused == NULL)
        goto done;
    if (n2 != ncols || n3 != ncols || n4 != ncols || nused != nports) {
        PyErr_SetString(PyExc_ValueError,
                        "fastcore: aalo_ports column/ledger length mismatch");
        goto done;
    }

    wfast = PySequence_Fast(weights,
                            "fastcore: queue weights must be a sequence");
    if (wfast == NULL)
        goto done;
    Py_ssize_t nq = PySequence_Fast_GET_SIZE(wfast);
    wq = PyMem_New(double, nq > 0 ? nq : 1);
    if (wq == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t i = 0; i < nq; i++) {
        wq[i] = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(wfast, i));
        if (wq[i] == -1.0 && PyErr_Occurred())
            goto done;
    }

    runs_fast = PySequence_Fast(runs_in,
                                "fastcore: coflow runs must be a sequence");
    if (runs_fast == NULL)
        goto done;
    nruns = PySequence_Fast_GET_SIZE(runs_fast);
    row_fasts = PyMem_New(PyObject *, nruns > 0 ? nruns : 1);
    run_queue = PyMem_New(int, nruns > 0 ? nruns : 1);
    if (row_fasts == NULL || run_queue == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t r = 0; r < nruns; r++)
        row_fasts[r] = NULL;
    Py_ssize_t total = 0;
    for (Py_ssize_t r = 0; r < nruns; r++) {
        PyObject *item = PySequence_Fast_GET_ITEM(runs_fast, r);
        if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "fastcore: coflow run must be (queue, rows)");
            goto done;
        }
        long q = PyLong_AsLong(PyTuple_GET_ITEM(item, 0));
        if (q == -1 && PyErr_Occurred())
            goto done;
        if (q < 0 || q >= nq) {
            PyErr_Format(PyExc_IndexError,
                         "fastcore: queue %ld out of range [0, %zd)",
                         q, nq);
            goto done;
        }
        run_queue[r] = (int)q;
        row_fasts[r] = PySequence_Fast(PyTuple_GET_ITEM(item, 1),
                                       "fastcore: rows must be a sequence");
        if (row_fasts[r] == NULL)
            goto done;
        total += PySequence_Fast_GET_SIZE(row_fasts[r]);
    }

    g_row = PyMem_New(Py_ssize_t, total > 0 ? total : 1);
    g_queue = PyMem_New(int, total > 0 ? total : 1);
    off = PyMem_New(Py_ssize_t, nports + 1);
    cur = PyMem_New(Py_ssize_t, nports > 0 ? nports : 1);
    p_row = PyMem_New(Py_ssize_t, total > 0 ? total : 1);
    p_queue = PyMem_New(int, total > 0 ? total : 1);
    dead = PyMem_New(char, nports > 0 ? nports : 1);
    if (g_row == NULL || g_queue == NULL || off == NULL || cur == NULL
        || p_row == NULL || p_queue == NULL || dead == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    memset(dead, 0, (size_t)(nports > 0 ? nports : 1));
    for (Py_ssize_t p = 0; p <= nports; p++)
        off[p] = 0;

    Py_ssize_t N = 0;
    for (Py_ssize_t r = 0; r < nruns; r++) {
        Py_ssize_t nr = PySequence_Fast_GET_SIZE(row_fasts[r]);
        PyObject **items = PySequence_Fast_ITEMS(row_fasts[r]);
        for (Py_ssize_t k = 0; k < nr; k++) {
            Py_ssize_t i = as_row(items[k], ncols, "aalo");
            if (i < 0)
                goto done;
            int64_t s = src[i];
            if (s < 0 || s >= nports) {
                PyErr_Format(PyExc_IndexError,
                             "fastcore: sender port %lld out of range",
                             (long long)s);
                goto done;
            }
            g_row[N] = i;
            g_queue[N] = run_queue[r];
            off[s + 1]++;
            N++;
        }
    }
    for (Py_ssize_t p = 0; p < nports; p++) {
        off[p + 1] += off[p];
        cur[p] = off[p];
    }
    for (Py_ssize_t k = 0; k < N; k++) {
        int64_t s = src[g_row[k]];
        Py_ssize_t idx = cur[s]++;
        p_row[idx] = g_row[k];
        p_queue[idx] = g_queue[k];
    }

    for (Py_ssize_t p = 0; p < nports; p++) {
        Py_ssize_t lo = off[p], hi = off[p + 1];
        if (lo == hi)
            continue;
        double cap_src = lcap[p];
        double used_src = lused[p];
        double port_capacity = cap_src - used_src;
        if (port_capacity <= 0.0)
            continue;
        /* total_weight: one addend per run, in run order. */
        double tw = 0.0;
        for (Py_ssize_t k = lo; k < hi; ) {
            int q = p_queue[k];
            tw += wq[q];
            do
                k++;
            while (k < hi && p_queue[k] == q);
        }

        /* Pass 1: each occupied queue spends its weighted share, FIFO. */
        for (Py_ssize_t k = lo; k < hi; ) {
            int q = p_queue[k];
            Py_ssize_t end = k;
            do
                end++;
            while (end < hi && p_queue[end] == q);
            double budget = port_capacity * wq[q] / tw;
            for (; k < end; k++) {
                if (budget <= 0.0)
                    break;
                double rate = cap_src - used_src;
                if (rate <= 0.0) {          /* sender port exhausted */
                    lused[p] = used_src;
                    goto next_port;
                }
                int64_t d = dst[p_row[k]];
                if (d < 0 || d >= nports) {
                    PyErr_Format(PyExc_IndexError,
                                 "fastcore: receiver port %lld out of range",
                                 (long long)d);
                    goto done;
                }
                if (dead[d])
                    continue;
                double cap_dst = lcap[d];
                double other = cap_dst - lused[d];
                if (other < rate)
                    rate = other;
                if (budget < rate)
                    rate = budget;
                if (rate <= 0.0) {
                    dead[d] = 1;
                    continue;
                }
                double nu = used_src + rate;
                used_src = nu < cap_src ? nu : cap_src;
                nu = lused[d] + rate;
                lused[d] = nu < cap_dst ? nu : cap_dst;
                if (set_add_port(touched, (int64_t)p) < 0
                    || set_add_port(touched, d) < 0)
                    goto done;
                budget -= rate;
                if (rate_accum(rates, fid[p_row[k]], rate) < 0)
                    goto done;
                if (set_add_port(scheduled, cid[p_row[k]]) < 0)
                    goto done;
            }
            k = end;
        }

        /* Pass 2 (work conservation): spill in strict priority+FIFO. */
        for (Py_ssize_t k = lo; k < hi; k++) {
            double rate = cap_src - used_src;
            if (rate <= 0.0) {              /* sender port exhausted */
                lused[p] = used_src;
                goto next_port;
            }
            int64_t d = dst[p_row[k]];
            if (dead[d])
                continue;
            double cap_dst = lcap[d];
            double other = cap_dst - lused[d];
            if (other < rate)
                rate = other;
            if (rate <= 0.0) {
                dead[d] = 1;
                continue;
            }
            double nu = used_src + rate;
            used_src = nu < cap_src ? nu : cap_src;
            nu = lused[d] + rate;
            lused[d] = nu < cap_dst ? nu : cap_dst;
            if (set_add_port(touched, (int64_t)p) < 0
                || set_add_port(touched, d) < 0)
                goto done;
            if (rate_accum(rates, fid[p_row[k]], rate) < 0)
                goto done;
            if (set_add_port(scheduled, cid[p_row[k]]) < 0)
                goto done;
        }
        lused[p] = used_src;
    next_port:;
    }

    result = Py_None;
    Py_INCREF(result);

done:
    PyMem_Free(dead);
    PyMem_Free(p_queue);
    PyMem_Free(p_row);
    PyMem_Free(cur);
    PyMem_Free(off);
    PyMem_Free(g_queue);
    PyMem_Free(g_row);
    PyMem_Free(wq);
    PyMem_Free(run_queue);
    if (row_fasts != NULL)
        for (Py_ssize_t r = 0; r < nruns; r++)
            Py_XDECREF(row_fasts[r]);
    PyMem_Free(row_fasts);
    Py_XDECREF(runs_fast);
    Py_XDECREF(wfast);
    bufs_release(&B);
    return result;
}

/* ---- queue-transition and positive-rate helpers ------------------------ */

/* rates.get(flow_id, 0.0) with a fresh Python-int key; -1.0 with an
 * exception set on failure (real rates are never negative, so the caller
 * can use the error indicator directly after PyErr_Occurred()). */
static double
rates_get(PyObject *rates, int64_t flow_id, int *err)
{
    PyObject *key = PyLong_FromLongLong((long long)flow_id);
    if (key == NULL) {
        *err = 1;
        return 0.0;
    }
    PyObject *v = PyDict_GetItemWithError(rates, key);
    Py_DECREF(key);
    if (v == NULL) {
        if (PyErr_Occurred())
            *err = 1;
        return 0.0;
    }
    double r = PyFloat_CheckExact(v) ? PyFloat_AS_DOUBLE(v)
                                     : PyFloat_AsDouble(v);
    if (r == -1.0 && PyErr_Occurred())
        *err = 1;
    return r;
}

/* total_rate_rows(rows, fid, ft, rates) -> float
 *
 * QueueTracker.next_transition_time's "total" row branch: the summed rate
 * of the coflow's unfinished rows, in row order (same addition order as
 * the Python listcomp+sum). */
static PyObject *
total_rate_rows(PyObject *self, PyObject *args)
{
    PyObject *rows_in, *fid_o, *ft, *rates;
    if (!PyArg_ParseTuple(args, "OOOO", &rows_in, &fid_o, &ft, &rates))
        return NULL;

    bufs B = {0};
    PyObject *result = NULL, *fast = NULL;
    Py_ssize_t ncols;
    int64_t *fid = bufs_get(&B, fid_o, 'q', &ncols, "flow_id");
    if (fid == NULL)
        goto done;
    if (!PyList_Check(ft) || PyList_GET_SIZE(ft) < ncols) {
        PyErr_SetString(PyExc_TypeError,
                        "fastcore: finish_time must be a list spanning "
                        "the table columns");
        goto done;
    }
    fast = PySequence_Fast(rows_in, "fastcore: rows must be a sequence");
    if (fast == NULL)
        goto done;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    double acc = 0.0;
    int err = 0;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = as_row(items[k], ncols, "transition");
        if (i < 0)
            goto done;
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        acc += rates_get(rates, fid[i], &err);
        if (err)
            goto done;
    }
    result = PyFloat_FromDouble(acc);

done:
    Py_XDECREF(fast);
    bufs_release(&B);
    return result;
}

/* per_flow_transition(rows, fid, ft, vol, bs, rates, per_flow_hi) -> float
 *
 * QueueTracker.next_transition_time's "perflow" row branch: seconds until
 * the first flow crosses per_flow_hi (0.0 for an immediate transition,
 * inf when none will).  Same scan order, comparisons and early return as
 * the Python loop. */
static PyObject *
per_flow_transition(PyObject *self, PyObject *args)
{
    PyObject *rows_in, *fid_o, *ft, *vol_o, *bs_o, *rates;
    double per_flow_hi;
    if (!PyArg_ParseTuple(args, "OOOOOOd", &rows_in, &fid_o, &ft,
                          &vol_o, &bs_o, &rates, &per_flow_hi))
        return NULL;

    bufs B = {0};
    PyObject *result = NULL, *fast = NULL;
    Py_ssize_t ncols, n2, n3;
    int64_t *fid = bufs_get(&B, fid_o, 'q', &ncols, "flow_id");
    double *vol = bufs_get(&B, vol_o, 'd', &n2, "volume");
    double *bs = bufs_get(&B, bs_o, 'd', &n3, "bytes_sent");
    if (fid == NULL || vol == NULL || bs == NULL)
        goto done;
    if (n2 != ncols || n3 != ncols
        || !PyList_Check(ft) || PyList_GET_SIZE(ft) < ncols) {
        PyErr_SetString(PyExc_ValueError,
                        "fastcore: per_flow_transition column mismatch");
        goto done;
    }
    fast = PySequence_Fast(rows_in, "fastcore: rows must be a sequence");
    if (fast == NULL)
        goto done;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    double best = Py_HUGE_VAL;
    int err = 0;
    for (Py_ssize_t k = 0; k < n; k++) {
        Py_ssize_t i = as_row(items[k], ncols, "transition");
        if (i < 0)
            goto done;
        if (PyList_GET_ITEM(ft, i) != Py_None)
            continue;
        double rate = rates_get(rates, fid[i], &err);
        if (err)
            goto done;
        if (rate <= 0.0)
            continue;
        double reachable = vol[i] < per_flow_hi ? vol[i] : per_flow_hi;
        if (reachable <= bs[i]) {
            if (bs[i] >= per_flow_hi) {
                result = PyFloat_FromDouble(0.0);
                goto done;
            }
            continue;
        }
        if (per_flow_hi <= vol[i]) {
            double cand = (per_flow_hi - bs[i]) / rate;
            if (cand < best)
                best = cand;
        }
    }
    result = PyFloat_FromDouble(best);

done:
    Py_XDECREF(fast);
    bufs_release(&B);
    return result;
}

/* positive_rows(active, rate_of, fid, cid, rates, scheduled) -> None
 *
 * UcTcpScheduler.schedule's positive-rate gather: for every (row, rate)
 * pair with rate > 0, store the *same* rate object under the row's
 * flow id and mark its coflow scheduled, in pair order (so dict/set
 * insertion order matches the Python zip loop exactly). */
static PyObject *
positive_rows(PyObject *self, PyObject *args)
{
    PyObject *active_in, *rate_in, *fid_o, *cid_o, *rates, *scheduled;
    if (!PyArg_ParseTuple(args, "OOOOOO", &active_in, &rate_in,
                          &fid_o, &cid_o, &rates, &scheduled))
        return NULL;

    bufs B = {0};
    PyObject *result = NULL, *afast = NULL, *rfast = NULL;
    Py_ssize_t ncols, n2;
    int64_t *fid = bufs_get(&B, fid_o, 'q', &ncols, "flow_id");
    int64_t *cid = bufs_get(&B, cid_o, 'q', &n2, "coflow_id");
    if (fid == NULL || cid == NULL)
        goto done;
    if (n2 != ncols) {
        PyErr_SetString(PyExc_ValueError,
                        "fastcore: positive_rows column mismatch");
        goto done;
    }
    afast = PySequence_Fast(active_in, "fastcore: active must be a sequence");
    rfast = PySequence_Fast(rate_in, "fastcore: rates must be a sequence");
    if (afast == NULL || rfast == NULL)
        goto done;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(afast);
    Py_ssize_t nr = PySequence_Fast_GET_SIZE(rfast);
    if (nr < n)            /* zip() stops at the shorter side */
        n = nr;
    PyObject **arows = PySequence_Fast_ITEMS(afast);
    PyObject **rvals = PySequence_Fast_ITEMS(rfast);
    for (Py_ssize_t k = 0; k < n; k++) {
        PyObject *robj = rvals[k];
        double rate = PyFloat_CheckExact(robj) ? PyFloat_AS_DOUBLE(robj)
                                               : PyFloat_AsDouble(robj);
        if (rate == -1.0 && PyErr_Occurred())
            goto done;
        if (!(rate > 0.0))
            continue;
        Py_ssize_t i = as_row(arows[k], ncols, "positive");
        if (i < 0)
            goto done;
        PyObject *key = PyLong_FromLongLong((long long)fid[i]);
        if (key == NULL)
            goto done;
        int r = PyDict_SetItem(rates, key, robj);
        Py_DECREF(key);
        if (r < 0)
            goto done;
        if (set_add_port(scheduled, cid[i]) < 0)
            goto done;
    }
    result = Py_None;
    Py_INCREF(result);

done:
    Py_XDECREF(afast);
    Py_XDECREF(rfast);
    bufs_release(&B);
    return result;
}

/* ---- module ------------------------------------------------------------ */

static PyObject *
set_capacity_error(PyObject *self, PyObject *arg)
{
    if (!PyType_Check(arg)) {
        PyErr_SetString(PyExc_TypeError, "expected an exception class");
        return NULL;
    }
    Py_XDECREF(capacity_error);
    Py_INCREF(arg);
    capacity_error = arg;
    Py_RETURN_NONE;
}

static PyMethodDef fastcore_methods[] = {
    {"set_capacity_error", set_capacity_error, METH_O,
     "Register repro.errors.CapacityViolationError for ledger commits."},
    {"mmf_fill", mmf_fill, METH_VARARGS,
     "Progressive-fill core of max_min_fair_rows_raw."},
    {"madd_rows", madd_rows, METH_VARARGS,
     "Fused single-pass core of madd_rates_rows."},
    {"equal_rate_rows", equal_rate_rows, METH_VARARGS,
     "Equal-rate core of equal_rate_for_coflow_rows."},
    {"greedy_rows", greedy_rows, METH_VARARGS,
     "Work-conservation fill core of greedy_residual_rates_rows."},
    {"advance_running", advance_running, METH_VARARGS,
     "Branchless byte-accounting fast path of _advance_to."},
    {"advance_collect", advance_collect, METH_VARARGS,
     "Candidate-collecting byte accounting of _advance_to."},
    {"scan_candidates", scan_candidates, METH_VARARGS,
     "Zero-width-step completion scan of _process_completions."},
    {"scan_completions", scan_completions, METH_VARARGS,
     "Full completion scan of _earliest_completion (optional heap seed)."},
    {"heap_completion", heap_completion_fn, METH_VARARGS,
     "Lazy-heap completion lookout of _heap_completion."},
    {"diff_changed", diff_changed, METH_VARARGS,
     "Changed-entry probe of _apply_diff."},
    {"apply_diff", apply_diff, METH_VARARGS,
     "Rate-application core of _apply_diff."},
    {"aalo_ports", aalo_ports, METH_VARARGS,
     "Bucket-and-serve round core of AaloScheduler._schedule_rows."},
    {"total_rate_rows", total_rate_rows, METH_VARARGS,
     "Summed-live-rate core of next_transition_time (total metric)."},
    {"per_flow_transition", per_flow_transition, METH_VARARGS,
     "Threshold-crossing scan of next_transition_time (perflow metric)."},
    {"positive_rows", positive_rows, METH_VARARGS,
     "Positive-rate gather of UcTcpScheduler.schedule's row path."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastcore_module = {
    PyModuleDef_HEAD_INIT,
    "repro._fastcore._core",
    "Compiled twins of the simulator hot loops (bit-identical to the\n"
    "pure-Python rows path; see repro._fastcore).",
    -1,
    fastcore_methods,
};

PyMODINIT_FUNC
PyInit__core(void)
{
    return PyModule_Create(&fastcore_module);
}
