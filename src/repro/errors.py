"""Exception hierarchy for the Saath reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class TraceFormatError(ReproError):
    """A trace file did not conform to the coflow-benchmark format."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SchedulerError(ReproError):
    """A scheduler produced an invalid allocation or was misused."""


class CapacityViolationError(SchedulerError):
    """An allocation exceeded the capacity of some port."""

    def __init__(self, port: str, allocated: float, capacity: float):
        self.port = port
        self.allocated = allocated
        self.capacity = capacity
        super().__init__(
            f"port {port}: allocated {allocated:.3f} B/s exceeds "
            f"capacity {capacity:.3f} B/s"
        )


class UnknownPolicyError(ReproError):
    """A scheduler name was not found in the registry."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown scheduling policy {name!r}; known policies: "
            + ", ".join(sorted(known))
        )
