"""Exception hierarchy for the Saath reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class TraceFormatError(ReproError):
    """A trace file did not conform to the coflow-benchmark format."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SchedulerError(ReproError):
    """A scheduler produced an invalid allocation or was misused."""


class CapacityViolationError(SchedulerError):
    """An allocation exceeded the capacity of some port."""

    def __init__(self, port: str, allocated: float, capacity: float):
        self.port = port
        self.allocated = allocated
        self.capacity = capacity
        super().__init__(
            f"port {port}: allocated {allocated:.3f} B/s exceeds "
            f"capacity {capacity:.3f} B/s"
        )


class UnknownPolicyError(ReproError):
    """A scheduler name was not found in the registry."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown scheduling policy {name!r}; known policies: "
            + ", ".join(sorted(known))
        )


class CheckpointError(ReproError):
    """A session checkpoint file is missing, corrupt, or incompatible."""


class ChaosError(ReproError):
    """A deliberately injected fault (see :mod:`repro.testing.chaos`).

    Raised only when a chaos plan is armed; production code never sees it.
    Deriving from :class:`ReproError` keeps the injection realistic — the
    resilience layer must treat it exactly like any other worker crash.
    """


class RunFailedError(ReproError):
    """Strict-mode wrapper: a sweep run exhausted its retry budget.

    Carries the structured :class:`~repro.resilience.RunFailure` as
    ``failure`` so callers keep the full attempt history.
    """

    def __init__(self, failure):
        self.failure = failure
        spec = failure.spec
        super().__init__(
            f"run {getattr(spec, 'policy', spec)!r} failed "
            f"({failure.kind}) after {len(failure.attempts)} attempt(s): "
            f"{failure.error}"
        )


class SweepInterrupted(ReproError):
    """A sweep was interrupted (Ctrl-C) after finishing some of its runs.

    Completed runs were already persisted to the result cache (the runner
    writes per-completion), so re-running the same sweep resumes from the
    cache instead of starting over.
    """

    def __init__(self, completed: int, total: int):
        self.completed = completed
        self.total = total
        super().__init__(
            f"sweep interrupted: {completed}/{total} runs finished; "
            f"completed results were persisted to the cache"
        )
