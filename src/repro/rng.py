"""Deterministic random-number helpers.

Every stochastic component (workload generators, dynamics injection, testbed
noise) takes an explicit ``numpy.random.Generator`` so experiments are
reproducible bit-for-bit from a seed. This module centralises construction so
call sites never touch the global numpy RNG state.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator`.

    ``None`` produces an OS-seeded generator (useful interactively); all
    experiment code passes explicit integer seeds.
    """
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used when one experiment seed must fan out to several independent
    stochastic components (e.g. workload + straggler injection) without the
    order of draws in one component perturbing the other.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
