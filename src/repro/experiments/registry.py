"""Experiment registry: every paper table/figure, runnable by name.

Each entry maps an experiment id to its module's ``run``/``render`` pair:
Fig. 2 (§2.3 out-of-sync), Fig. 3 (§2.4 offline policies), Fig. 9 (§6.1
headline speedups), Figs. 10–13 (§6.2 design breakdown), Fig. 14 (§6.3
sensitivity), Figs. 15–16 (§7 testbed/JCT), Table 2 (§7.3 overhead) and
the fig-oversub leaf–spine oversubscription extension.
Used by the CLI (``saath-repro run-experiment``) and the benchmark harness;
see ``docs/EXPERIMENTS.md`` for the full figure-to-module table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ReproError
from . import (
    fig2_outofsync,
    fig3_offline,
    fig9_speedup,
    fig10_breakdown,
    fig11_bins,
    fig13_deviation,
    fig14_sensitivity,
    fig15_testbed,
    fig16_jct,
    fig_collectives,
    fig_oversub,
    table2_overhead,
)
from .common import ExperimentScale


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    exp_id: str
    description: str
    run: Callable[..., Any]
    render: Callable[[Any], str]


_EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        Experiment("fig2", "out-of-sync prevalence under Aalo (§2.3)",
                   fig2_outofsync.run, fig2_outofsync.render),
        Experiment("fig3", "offline SCF/SRTF/LWTF vs Aalo (§2.4)",
                   fig3_offline.run, fig3_offline.render),
        Experiment("fig9", "Saath speedup over SEBF/Aalo/UC-TCP (§6.1)",
                   fig9_speedup.run, fig9_speedup.render),
        Experiment("fig10", "design breakdown A/N, P/F, LCoF (§6.2)",
                   fig10_breakdown.run, fig10_breakdown.render),
        Experiment("fig11", "per-bin breakdown, FB + OSP (§6.2)",
                   fig11_bins.run, fig11_bins.render),
        Experiment("fig13", "FCT deviation Saath vs Aalo (§6.2)",
                   fig13_deviation.run, fig13_deviation.render),
        Experiment("fig14", "sensitivity: S, E, δ, A, d (§6.3)",
                   fig14_sensitivity.run, fig14_sensitivity.render),
        Experiment("fig15", "testbed-mode CCT speedup CDF (§7.1)",
                   fig15_testbed.run, fig15_testbed.render),
        Experiment("fig16", "JCT speedup by shuffle fraction (§7.2)",
                   fig16_jct.run, fig16_jct.render),
        Experiment("fig-collectives",
                   "collective training workloads vs oversubscription "
                   "(extension)",
                   fig_collectives.run, fig_collectives.render),
        Experiment("fig-oversub",
                   "leaf-spine oversubscription sensitivity (extension)",
                   fig_oversub.run, fig_oversub.render),
        Experiment("table2", "scheduler overhead breakdown (§7.3)",
                   table2_overhead.run, table2_overhead.render),
    ]
}


def available_experiments() -> list[str]:
    return sorted(_EXPERIMENTS)


def get_experiment(exp_id: str) -> Experiment:
    try:
        return _EXPERIMENTS[exp_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {exp_id!r}; known: "
            + ", ".join(available_experiments())
        ) from None


def run_and_render(exp_id: str,
                   scale: ExperimentScale = ExperimentScale.SMALL,
                   **kwargs: Any) -> str:
    """Run an experiment and return its rendered text."""
    exp = get_experiment(exp_id)
    result = exp.run(scale=scale, **kwargs)
    return exp.render(result)
