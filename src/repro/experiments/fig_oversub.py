"""Oversubscription sensitivity sweep (beyond-paper extension of §6.3).

The paper's evaluation (§6) assumes a non-blocking big switch, so its
sensitivity study (Fig. 14) never varies the *fabric*. This experiment adds
that missing axis: every registered policy runs on a leaf–spine topology
(see :mod:`repro.simulator.topology`) at oversubscription ratios 1–8, plus
the big-switch reference, on the FB-like workload. Reported per policy and
ratio: the median CCT and its slowdown relative to the same policy on the
big switch.

Expected shape: at 1:1 the leaf–spine fabric tracks the big switch closely
(only ECMP hash collisions on spine links separate them); as the ratio
grows, cross-rack traffic queues at leaf uplinks and the policies that
schedule around contention (Saath's all-or-none + LCoF, the clairvoyant
baselines) degrade more gracefully than contention-blind ones (UC-TCP,
per-port FIFO). All runs go through the sweep runner, so they fan out and
cache like every other figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import DistributionSummary
from ..analysis.report import format_table
from ..schedulers.registry import available_policies
from ..simulator.topology import TopologySpec
from .common import (
    ExperimentScale,
    default_experiment_config,
    workload_spec_for,
)
from .runner import RunSpec, run_specs

#: Leaf-spine oversubscription ratios swept (1 = rack-level non-blocking).
RATIOS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)

#: Label used for the big-switch reference column.
BIG_SWITCH = "big-switch"


@dataclass
class FigOversubResult:
    """Per-policy CCT summaries across fabric configurations."""

    #: policy -> fabric label ("big-switch" or "oversub=R") -> summary.
    summaries: dict[str, dict[str, DistributionSummary]]
    #: Fabric labels in sweep order (render column order).
    labels: tuple[str, ...]


def _label(ratio: float) -> str:
    return f"oversub={ratio:g}"


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        *,
        policies: tuple[str, ...] | None = None,
        ratios: tuple[float, ...] = RATIOS,
        path_select: str = "ecmp",
        seed: int = 7) -> FigOversubResult:
    """Sweep every policy across oversubscription ratios (one runner batch)."""
    if policies is None:
        policies = tuple(available_policies())
    workload = workload_spec_for("fb-like", scale, seed)
    config = default_experiment_config()
    fabrics: list[tuple[str, tuple]] = [(BIG_SWITCH, ())]
    fabrics.extend(
        (_label(r),
         TopologySpec(kind="leaf-spine", oversub=r,
                      path_select=path_select).encode())
        for r in ratios
    )
    specs = [
        RunSpec(policy=p, workload=workload, config=config, topology=t)
        for _, t in fabrics for p in policies
    ]
    outcomes = iter(run_specs(specs))
    summaries: dict[str, dict[str, DistributionSummary]] = {
        p: {} for p in policies
    }
    for label, _ in fabrics:
        for policy in policies:
            outcome = next(outcomes)
            summaries[policy][label] = DistributionSummary.of(
                list(outcome.ccts.values())
            )
    return FigOversubResult(
        summaries=summaries, labels=tuple(label for label, _ in fabrics)
    )


def render(result: FigOversubResult) -> str:
    rows = []
    for policy, by_label in sorted(result.summaries.items()):
        base = by_label[BIG_SWITCH].p50
        row: list[object] = [policy]
        for label in result.labels:
            p50 = by_label[label].p50
            if label == BIG_SWITCH:
                row.append(p50)
            else:
                slowdown = p50 / base if base > 0 else float("inf")
                row.append(f"{p50:.3f} ({slowdown:.2f}x)")
        rows.append(row)
    headers = ["policy"] + [
        f"{label} p50" if label == BIG_SWITCH else f"{label} p50 (vs bs)"
        for label in result.labels
    ]
    return format_table(
        headers,
        rows,
        title=(
            "Fig. O — median CCT vs leaf-spine oversubscription "
            "(extension of the §6.3 sensitivity axis; slowdowns relative "
            "to the big-switch fabric)"
        ),
    )
