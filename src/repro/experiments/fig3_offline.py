"""Fig. 3 — offline SCF vs SRTF vs LWTF, all relative to Aalo (§2.4).

The motivation study: with clairvoyant coflow sizes, a contention-aware
ordering (LWTF, key ``t_c · k_c``) beats pure duration-based orderings (SCF,
SRTF), demonstrating that SJF misses the spatial dimension.

Outputs: (a) the per-coflow speedup CDF of each policy over Aalo, and
(b) the overall (average-CCT) speedup percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import overall_cct_speedup, per_coflow_speedups
from ..analysis.report import format_cdf, format_table
from .common import ExperimentScale, Workload, ccts_under, fb_workload

POLICIES = ("scf", "srtf", "lwtf")


@dataclass
class Fig3Result:
    #: policy -> per-coflow speedup over Aalo.
    speedups: dict[str, dict[int, float]]
    #: policy -> overall average-CCT speedup (ratio, not %).
    overall: dict[str, float]


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        workload: Workload | None = None,
        seed: int = 7) -> Fig3Result:
    workload = workload or fb_workload(scale, seed=seed)
    ccts = ccts_under(workload, ["aalo", *POLICIES])
    speedups = {
        policy: per_coflow_speedups(ccts["aalo"], ccts[policy])
        for policy in POLICIES
    }
    overall = {
        policy: overall_cct_speedup(ccts["aalo"], ccts[policy])
        for policy in POLICIES
    }
    return Fig3Result(speedups=speedups, overall=overall)


def render(result: Fig3Result) -> str:
    lines = ["Fig. 3 — offline policies over Aalo (clairvoyant)"]
    for policy in POLICIES:
        lines.append("")
        lines.append(
            format_cdf(list(result.speedups[policy].values()),
                       title=f"(a) speedup CDF: {policy}")
        )
    lines.append("")
    lines.append(
        format_table(
            ["policy", "overall CCT speedup (%)"],
            [[p, (result.overall[p] - 1.0) * 100.0] for p in POLICIES],
            title="(b) overall CCT speedup over Aalo "
                  "(paper: LWTF > SRTF ≥ SCF)",
        )
    )
    return "\n".join(lines)
