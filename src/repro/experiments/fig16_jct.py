"""Fig. 16 — job completion time speedup by shuffle fraction (§7.2).

Converts the testbed-mode CCT results into job completion times with the
shuffle-fraction model of :mod:`repro.workloads.jobs`. Paper numbers:
shuffle-heavy jobs (fraction ≥ 50%) speed up 1.83× on average (P50 1.24×,
P90 2.81×); across all jobs the average is 1.42× (P50 1.07×, P90 1.98×).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_table
from ..workloads.jobs import (
    SHUFFLE_BUCKETS,
    bucket_speedups,
    job_outcomes,
    sample_shuffle_fractions,
)
from .common import ExperimentScale, Workload, ccts_under, fb_workload


@dataclass
class Fig16Result:
    #: bucket label -> (P50, P90, mean) of JCT speedup.
    buckets: dict[str, tuple[float, float, float]]
    shuffle_heavy_mean: float
    all_jobs_mean: float


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        workload: Workload | None = None,
        *,
        fraction_seed: int = 5,
        seed: int = 7) -> Fig16Result:
    workload = workload or fb_workload(scale, seed=seed)
    ccts = ccts_under(workload, ["aalo", "saath"])
    fractions = sample_shuffle_fractions(len(ccts["aalo"]), seed=fraction_seed)
    outcomes = job_outcomes(ccts["aalo"], ccts["saath"], fractions)

    grouped = bucket_speedups(outcomes)
    buckets = {}
    for label, values in grouped.items():
        if not values:
            continue
        arr = np.asarray(values)
        buckets[label] = (
            float(np.percentile(arr, 50)),
            float(np.percentile(arr, 90)),
            float(arr.mean()),
        )
    heavy = [o.speedup for o in outcomes if o.shuffle_fraction >= 0.5]
    return Fig16Result(
        buckets=buckets,
        shuffle_heavy_mean=float(np.mean(heavy)) if heavy else float("nan"),
        all_jobs_mean=float(np.mean([o.speedup for o in outcomes])),
    )


def render(result: Fig16Result) -> str:
    order = [label for label, _, _ in SHUFFLE_BUCKETS] + ["All"]
    rows = []
    for label in order:
        if label in result.buckets:
            p50, p90, mean = result.buckets[label]
            rows.append([label, p50, p90, mean])
    table = format_table(
        ["shuffle fraction", "P50", "P90", "mean"],
        rows,
        title="Fig. 16 — JCT speedup of Saath over Aalo by shuffle fraction",
    )
    return "\n".join([
        table,
        f"shuffle-heavy (>=50%) mean: {result.shuffle_heavy_mean:.2f}x "
        f"(paper: 1.83x)",
        f"all jobs mean: {result.all_jobs_mean:.2f}x (paper: 1.42x)",
    ])
