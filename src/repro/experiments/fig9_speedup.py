"""Fig. 9 — Saath's headline speedups over SEBF, Aalo and UC-TCP (§6.1).

For both traces (FB-like, OSP-like), report the median / P10 / P90 of the
per-coflow speedup of Saath over each comparison policy. Paper values:

* over Aalo: median 1.53× (FB), 1.42× (OSP); P90 4.5× and 37×;
* over offline SEBF: close to 1× (Saath approaches the clairvoyant
  scheduler while running online);
* over UC-TCP: median 154× (FB) and 121× (OSP).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import DistributionSummary, per_coflow_speedups
from ..analysis.report import format_table
from ..config import SimulationConfig
from .common import (
    ExperimentScale,
    default_experiment_config,
    workload_spec_for,
)
from .runner import RunSpec, run_specs

BASELINES = ("varys-sebf", "aalo", "uc-tcp")


@dataclass
class Fig9Result:
    #: trace name -> baseline -> summary of CCT_baseline / CCT_saath.
    summaries: dict[str, dict[str, DistributionSummary]]


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        *,
        include_osp: bool = True,
        baselines: tuple[str, ...] = BASELINES,
        seed: int = 7,
        config: SimulationConfig | None = None) -> Fig9Result:
    # One sweep-runner batch covering every (trace, policy) pair, so the
    # whole figure fans out at once when parallel jobs are available.
    traces = {"fb-like": workload_spec_for("fb-like", scale, seed)}
    if include_osp:
        traces["osp-like"] = workload_spec_for("osp-like", scale, 11)
    policies = ["saath", *baselines]
    if config is None:
        config = default_experiment_config()
    specs = [
        RunSpec(policy=p, workload=w, config=config)
        for w in traces.values() for p in policies
    ]
    outcomes = iter(run_specs(specs))
    summaries: dict[str, dict[str, DistributionSummary]] = {}
    for trace in traces:
        ccts = {p: next(outcomes).ccts for p in policies}
        summaries[trace] = {
            b: DistributionSummary.of(
                list(per_coflow_speedups(ccts[b], ccts["saath"]).values())
            )
            for b in baselines
        }
    return Fig9Result(summaries=summaries)


def render(result: Fig9Result) -> str:
    rows = []
    for trace, by_baseline in result.summaries.items():
        for baseline, summary in by_baseline.items():
            rows.append(
                [trace, baseline, summary.p50, summary.p10, summary.p90]
            )
    return format_table(
        ["trace", "baseline", "median", "p10", "p90"],
        rows,
        title=(
            "Fig. 9 — speedup of Saath over other policies\n"
            "(paper medians: aalo 1.53x FB / 1.42x OSP, "
            "uc-tcp 154x FB / 121x OSP, varys-sebf ~1x)"
        ),
    )
