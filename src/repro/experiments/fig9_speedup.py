"""Fig. 9 — Saath's headline speedups over SEBF, Aalo and UC-TCP (§6.1).

For both traces (FB-like, OSP-like), report the median / P10 / P90 of the
per-coflow speedup of Saath over each comparison policy. Paper values:

* over Aalo: median 1.53× (FB), 1.42× (OSP); P90 4.5× and 37×;
* over offline SEBF: close to 1× (Saath approaches the clairvoyant
  scheduler while running online);
* over UC-TCP: median 154× (FB) and 121× (OSP).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import DistributionSummary, per_coflow_speedups
from ..analysis.report import format_table
from .common import (
    ExperimentScale,
    Workload,
    ccts_under,
    fb_workload,
    osp_workload,
)

BASELINES = ("varys-sebf", "aalo", "uc-tcp")


@dataclass
class Fig9Result:
    #: trace name -> baseline -> summary of CCT_baseline / CCT_saath.
    summaries: dict[str, dict[str, DistributionSummary]]


def _speedups_for(workload: Workload,
                  baselines: tuple[str, ...]) -> dict[str, DistributionSummary]:
    ccts = ccts_under(workload, ["saath", *baselines])
    return {
        b: DistributionSummary.of(
            list(per_coflow_speedups(ccts[b], ccts["saath"]).values())
        )
        for b in baselines
    }


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        *,
        include_osp: bool = True,
        baselines: tuple[str, ...] = BASELINES,
        seed: int = 7) -> Fig9Result:
    summaries = {"fb-like": _speedups_for(fb_workload(scale, seed=seed),
                                          baselines)}
    if include_osp:
        summaries["osp-like"] = _speedups_for(osp_workload(scale), baselines)
    return Fig9Result(summaries=summaries)


def render(result: Fig9Result) -> str:
    rows = []
    for trace, by_baseline in result.summaries.items():
        for baseline, summary in by_baseline.items():
            rows.append(
                [trace, baseline, summary.p50, summary.p10, summary.p90]
            )
    return format_table(
        ["trace", "baseline", "median", "p10", "p90"],
        rows,
        title=(
            "Fig. 9 — speedup of Saath over other policies\n"
            "(paper medians: aalo 1.53x FB / 1.42x OSP, "
            "uc-tcp 154x FB / 121x OSP, varys-sebf ~1x)"
        ),
    )
