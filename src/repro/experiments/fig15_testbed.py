"""Fig. 15 — testbed CCT speedup CDF (§7.1), via testbed mode.

The paper's Azure testbed replays the FB trace through the C++ prototype;
per-coflow CCT speedups over Aalo range 0.09–12.15× with an average of
1.88× and median 1.43×, and >70% of coflows improve. Some coflows *slow
down* — those favoured by FIFO's arrival-order service that LCoF pushes
back — which is why the CDF starts below 1.

This reproduction runs both schedulers in testbed mode: the coordinator
sync interval δ = 8 ms and multiplicative achieved-rate jitter
(:class:`~repro.simulator.testbed.RateJitter`) stand in for the real
deployment's imperfections (substitution documented in DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import (
    DistributionSummary,
    fraction_at_least,
    per_coflow_speedups,
)
from ..analysis.report import format_cdf
from ..config import SimulationConfig
from ..schedulers.registry import make_scheduler
from ..simulator.engine import run_policy
from ..simulator.testbed import RateJitter, testbed_config
from .common import ExperimentScale, Workload, fb_workload


@dataclass
class Fig15Result:
    speedups: dict[int, float]
    summary: DistributionSummary
    improved_fraction: float
    #: Count of starvation-path admissions during the Saath run (the paper
    #: reports the starvation mechanism triggering for <1% of coflows).
    starvation_admissions: int = 0


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        workload: Workload | None = None,
        *,
        jitter_seed: int = 3,
        seed: int = 7) -> Fig15Result:
    workload = workload or fb_workload(scale, seed=seed)
    config: SimulationConfig = testbed_config()

    ccts = {}
    starvation = 0
    for policy in ("aalo", "saath"):
        jitter = RateJitter(seed=jitter_seed)
        scheduler = make_scheduler(policy, config)
        result = run_policy(
            scheduler, workload.fresh_coflows(), workload.fabric, config,
            rate_perturbation=jitter,
        )
        ccts[policy] = result.ccts()
        starvation = getattr(scheduler, "starvation_admissions", starvation)

    speedups = per_coflow_speedups(ccts["aalo"], ccts["saath"])
    values = list(speedups.values())
    return Fig15Result(
        speedups=speedups,
        summary=DistributionSummary.of(values),
        improved_fraction=fraction_at_least(values, 1.0),
        starvation_admissions=starvation,
    )


def render(result: Fig15Result) -> str:
    s = result.summary
    return "\n".join([
        "Fig. 15 — [testbed mode] CCT speedup CDF (Saath over Aalo)",
        format_cdf(list(result.speedups.values()), title="speedup CDF"),
        f"range: {s.minimum:.2f}x – {s.maximum:.2f}x "
        f"(paper: 0.09x – 12.15x)",
        f"mean: {s.mean:.2f}x (paper: 1.88x)   "
        f"median: {s.p50:.2f}x (paper: 1.43x)",
        f"fraction improved: {result.improved_fraction:.2f} (paper: >0.70)",
        f"starvation-path admissions: {result.starvation_admissions} "
        f"(paper: <1% of coflows)",
    ])
