"""Collective-workload sweep: per-iteration time vs oversubscription.

The paper's entire evaluation (§6) is shuffle-shaped. This beyond-paper
experiment asks its central question — do coflow schedulers still win when
traffic has *structure*? — on ML-training traffic: every registered policy
runs ring all-reduce, tree all-reduce, all-to-all and parameter-server
training jobs (see :mod:`repro.workloads.collectives`) on a leaf–spine
fabric at oversubscription ratios 1, 4 and 8, with workers *spread*
round-robin across racks so nearly every collective flow crosses the core.

The reported metric is the **per-iteration time**: the elapsed time from a
training iteration's release (job arrival, or the previous iteration's
final collective completing) to the completion of its own final collective.
Every pattern is a pure stage chain, so an iteration's duration is exactly
the sum of its stage coflows' CCTs
(:func:`repro.workloads.collectives.iteration_times`); the table shows the
mean over all jobs × iterations, with the slowdown relative to the same
policy on the non-blocking (1:1) fabric.

Expected shape: all-or-none policies (Saath) and clairvoyant bottleneck
schedulers keep ring steps moving together, while per-flow fair sharing
(UC-TCP) lets one congested uplink stall a whole iteration; oversubscription
amplifies the gap because collectives synchronise on the slowest chunk.
All runs go through the sweep runner, so they fan out and cache like every
other figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import DistributionSummary
from ..analysis.report import format_table
from ..schedulers.registry import available_policies
from ..simulator.topology import TopologySpec
from ..units import MB
from .common import ExperimentScale, default_experiment_config
from .runner import RunSpec, collective_jobs_for, collective_spec, run_specs
from ..workloads.collectives import iteration_times

#: Collective patterns swept (every shape the generator family emits).
PATTERNS_SWEPT: tuple[str, ...] = ("ring", "tree", "all-to-all", "ps")

#: Leaf-spine oversubscription ratios swept (1 = non-blocking).
RATIOS: tuple[float, ...] = (1.0, 4.0, 8.0)

#: Per-scale workload dimensions:
#: (machines, racks, workers, servers, iterations, jobs, volume_bytes).
_DIMENSIONS: dict[ExperimentScale, tuple[int, int, int, int, int, int, float]] = {
    ExperimentScale.TINY: (8, 2, 4, 2, 2, 1, 16 * MB),
    ExperimentScale.SMALL: (16, 4, 8, 4, 3, 2, 64 * MB),
    ExperimentScale.PAPER: (32, 4, 16, 8, 5, 4, 256 * MB),
}


@dataclass
class FigCollectivesResult:
    """Per-pattern, per-policy iteration-time summaries across ratios."""

    #: pattern -> policy -> ratio label -> per-iteration time summary.
    summaries: dict[str, dict[str, dict[str, DistributionSummary]]]
    patterns: tuple[str, ...]
    #: Ratio labels in sweep order (render column order).
    labels: tuple[str, ...]


def _label(ratio: float) -> str:
    return f"oversub={ratio:g}"


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        *,
        policies: tuple[str, ...] | None = None,
        patterns: tuple[str, ...] = PATTERNS_SWEPT,
        ratios: tuple[float, ...] = RATIOS,
        placement: str = "spread",
        seed: int = 7) -> FigCollectivesResult:
    """Sweep policies × patterns × oversubscription (one runner batch)."""
    if policies is None:
        policies = tuple(available_policies())
    machines, racks, workers, servers, iterations, jobs, volume = (
        _DIMENSIONS[scale]
    )
    config = default_experiment_config()
    workloads = {
        pattern: collective_spec(
            machines=machines, pattern=pattern, workers=workers,
            iterations=iterations, volume=volume, jobs=jobs,
            servers=servers if pattern == "ps" else 0, racks=racks,
            placement=placement, arrival_gap=0.1, seed=seed,
        )
        for pattern in patterns
    }
    topologies = [
        (_label(r),
         TopologySpec(kind="leaf-spine", oversub=r, racks=racks).encode())
        for r in ratios
    ]
    specs = [
        RunSpec(policy=p, workload=workloads[pattern], config=config,
                topology=t)
        for pattern in patterns for _, t in topologies for p in policies
    ]
    outcomes = iter(run_specs(specs))
    summaries: dict[str, dict[str, dict[str, DistributionSummary]]] = {}
    for pattern in patterns:
        _, pattern_jobs = collective_jobs_for(workloads[pattern])
        per_policy: dict[str, dict[str, DistributionSummary]] = {
            p: {} for p in policies
        }
        for label, _ in topologies:
            for policy in policies:
                outcome = next(outcomes)
                times = [
                    t for job in pattern_jobs
                    for t in iteration_times(job, outcome.ccts)
                ]
                per_policy[policy][label] = DistributionSummary.of(times)
        summaries[pattern] = per_policy
    return FigCollectivesResult(
        summaries=summaries, patterns=tuple(patterns),
        labels=tuple(label for label, _ in topologies),
    )


def render(result: FigCollectivesResult) -> str:
    sections = []
    for pattern in result.patterns:
        rows = []
        for policy, by_label in sorted(result.summaries[pattern].items()):
            base = by_label[result.labels[0]].mean
            row: list[object] = [policy]
            for i, label in enumerate(result.labels):
                mean = by_label[label].mean
                if i == 0:
                    row.append(f"{mean:.3f}")
                else:
                    slowdown = mean / base if base > 0 else float("inf")
                    row.append(f"{mean:.3f} ({slowdown:.2f}x)")
            rows.append(row)
        headers = ["policy"] + [
            f"{label} iter-time" if i == 0 else f"{label} iter-time (vs 1:1)"
            for i, label in enumerate(result.labels)
        ]
        sections.append(format_table(
            headers, rows,
            title=(
                f"Fig. C [{pattern}] — mean per-iteration time (s) vs "
                f"leaf-spine oversubscription (workers spread across racks)"
            ),
        ))
    return "\n\n".join(sections)
