"""Fig. 2 — prevalence of the out-of-sync problem under Aalo (§2.3).

Three panels:

* (a) distribution of coflow widths,
* (b) distribution of per-coflow normalised flow-length deviation,
* (c) distribution of normalised FCT deviation under Aalo, split by
  equal-length vs unequal-length coflows (single-flow coflows excluded).

Paper claims to check against: for the FB trace, ~23% single-flow, 50%
equal multi-flow, 27% unequal multi-flow; under Aalo, 50% (20%) of the
equal-length coflows exceed 12% (39%) normalised FCT deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.outofsync import (
    OutOfSyncProfile,
    flow_lengths_equal,
    normalized_length_deviation,
    out_of_sync_profile,
    width_distribution,
)
from ..analysis.report import format_cdf, format_table
from .common import ExperimentScale, Workload, fb_workload, run_policy_on


@dataclass
class Fig2Result:
    """Structured output of the Fig. 2 reproduction."""

    widths: np.ndarray
    length_deviations: np.ndarray
    profile: OutOfSyncProfile
    single_flow_fraction: float
    equal_multiflow_fraction: float
    unequal_multiflow_fraction: float


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        workload: Workload | None = None,
        seed: int = 7) -> Fig2Result:
    workload = workload or fb_workload(scale, seed=seed)
    result = run_policy_on(workload, "aalo")

    coflows = result.coflows
    widths = width_distribution(coflows)
    multi = [c for c in coflows if c.width > 1]
    equal = sum(1 for c in multi if flow_lengths_equal(c))
    n = len(coflows)
    return Fig2Result(
        widths=widths,
        length_deviations=np.array(
            [normalized_length_deviation(c) for c in multi]
        ),
        profile=out_of_sync_profile(coflows),
        single_flow_fraction=(n - len(multi)) / n,
        equal_multiflow_fraction=equal / n,
        unequal_multiflow_fraction=(len(multi) - equal) / n,
    )


def render(result: Fig2Result) -> str:
    lines = [
        "Fig. 2 — out-of-sync under Aalo",
        "",
        format_table(
            ["population", "fraction"],
            [
                ["single-flow", result.single_flow_fraction],
                ["multi-flow equal-length", result.equal_multiflow_fraction],
                ["multi-flow unequal-length", result.unequal_multiflow_fraction],
            ],
            title="(a) coflow mix (paper: 0.23 / 0.50 / 0.27)",
        ),
        "",
        format_cdf(result.widths.tolist(),
                   title="(a) width CDF", value_fmt="{:.0f}"),
        "",
        format_cdf(result.length_deviations.tolist(),
                   title="(b) normalised flow-length deviation CDF"),
    ]
    profile = result.profile
    if profile.equal_length:
        lines += [
            "",
            format_cdf(list(profile.equal_length),
                       title="(c) normalised FCT deviation, equal-length"),
            f"  fraction > 0.12: {profile.equal_fraction_over(0.12):.2f} "
            f"(paper: 0.50)",
            f"  fraction > 0.39: {profile.equal_fraction_over(0.39):.2f} "
            f"(paper: 0.20)",
        ]
    if profile.unequal_length:
        lines += [
            "",
            format_cdf(list(profile.unequal_length),
                       title="(c) normalised FCT deviation, unequal-length"),
            f"  fraction > 0.27: {profile.unequal_fraction_over(0.27):.2f} "
            f"(paper: 0.50)",
        ]
    return "\n".join(lines)
