"""Experiments: one module per table/figure of the paper's evaluation."""

from .common import (
    ExperimentScale,
    Workload,
    build_workload,
    ccts_under,
    fb_workload,
    osp_workload,
    run_policy_on,
)
from .registry import (
    Experiment,
    available_experiments,
    get_experiment,
    run_and_render,
)

__all__ = [
    "Experiment",
    "ExperimentScale",
    "Workload",
    "available_experiments",
    "build_workload",
    "ccts_under",
    "fb_workload",
    "get_experiment",
    "osp_workload",
    "run_and_render",
    "run_policy_on",
]
