"""Fig. 13 — normalised FCT deviation under Saath vs Aalo (§6.2).

The closing evidence that all-or-none fixes the out-of-sync problem: the
CDF of per-coflow normalised FCT deviation (multi-flow coflows, FB trace)
under both schedulers. Paper claims: 40% of equal-length coflows finish
perfectly in sync under Saath vs 20% under Aalo, and 71% vs 47% stay under
10% deviation. Saath does not reach 100% because work conservation breaks
all-or-none on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.outofsync import OutOfSyncProfile, out_of_sync_profile
from ..analysis.report import format_cdf
from .common import ExperimentScale, Workload, fb_workload, run_policy_on


@dataclass
class Fig13Result:
    profiles: dict[str, OutOfSyncProfile]  # policy -> profile

    def in_sync_fraction(self, policy: str, tolerance: float = 0.01) -> float:
        """Fraction of equal-length coflows with deviation <= tolerance."""
        profile = self.profiles[policy]
        if not profile.equal_length:
            return 0.0
        return 1.0 - profile.equal_fraction_over(tolerance)


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        workload: Workload | None = None,
        seed: int = 7) -> Fig13Result:
    workload = workload or fb_workload(scale, seed=seed)
    profiles = {}
    for policy in ("aalo", "saath"):
        result = run_policy_on(workload, policy)
        profiles[policy] = out_of_sync_profile(result.coflows)
    return Fig13Result(profiles=profiles)


def render(result: Fig13Result) -> str:
    lines = ["Fig. 13 — normalised FCT deviation (multi-flow coflows)"]
    for policy, profile in result.profiles.items():
        if profile.equal_length:
            lines += [
                "",
                format_cdf(list(profile.equal_length),
                           title=f"{policy}: equal-length coflows"),
                f"  fraction <= 0.10 deviation: "
                f"{1 - profile.equal_fraction_over(0.10):.2f}"
                + ("  (paper: saath 0.71 / aalo 0.47)" if True else ""),
                f"  perfectly in sync: {profile.equal_fraction_at_zero(1e-3):.2f}"
                f"  (paper: saath 0.40 / aalo 0.20)",
            ]
        if profile.unequal_length:
            lines += [
                format_cdf(list(profile.unequal_length),
                           title=f"{policy}: unequal-length coflows"),
            ]
    return "\n".join(lines)
