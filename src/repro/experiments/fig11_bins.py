"""Fig. 11 / Fig. 12 — per-bin speedup breakdown (§6.2, Table 1 bins).

Same variants as Fig. 10, but median speedups reported per Table-1
size×width bin. Paper qualitative claims to check:

* A/N helps small+thin coflows (bin-1) most;
* P/F helps the wide bins (2 and 4);
* LCoF helps every bin, most dramatically bin-1.

Fig. 11 is the FB trace (with bin population fractions 54/14/12/20%);
Fig. 12 repeats for OSP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.bins import BIN_LABELS, bin_fractions, binned_speedups
from ..analysis.metrics import per_coflow_speedups
from ..analysis.report import format_table
from .common import (
    ExperimentScale,
    Workload,
    ccts_under,
    fb_workload,
    osp_workload,
)
from .fig10_breakdown import VARIANTS


@dataclass
class BinBreakdown:
    #: variant -> bin label -> median speedup over Aalo.
    medians: dict[str, dict[str, float]]
    #: bin label -> fraction of coflows (x-label percentages of Fig. 11).
    fractions: dict[str, float]


@dataclass
class Fig11Result:
    per_trace: dict[str, BinBreakdown]


def _bin_breakdown(workload: Workload) -> BinBreakdown:
    ccts = ccts_under(workload, ["aalo", *VARIANTS])
    medians: dict[str, dict[str, float]] = {}
    for variant in VARIANTS:
        speedups = per_coflow_speedups(ccts["aalo"], ccts[variant])
        medians[variant] = binned_speedups(
            workload.coflows, speedups
        ).medians()
    return BinBreakdown(
        medians=medians, fractions=bin_fractions(workload.coflows)
    )


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        *, include_osp: bool = True, seed: int = 7) -> Fig11Result:
    per_trace = {"fb-like": _bin_breakdown(fb_workload(scale, seed=seed))}
    if include_osp:
        per_trace["osp-like"] = _bin_breakdown(osp_workload(scale))
    return Fig11Result(per_trace=per_trace)


def render(result: Fig11Result) -> str:
    blocks = []
    for trace, breakdown in result.per_trace.items():
        rows = []
        for label in BIN_LABELS:
            row: list[object] = [
                f"{label} ({breakdown.fractions[label] * 100:.0f}%)"
            ]
            for variant in VARIANTS:
                row.append(breakdown.medians[variant].get(label, float("nan")))
            rows.append(row)
        blocks.append(
            format_table(
                ["bin", *VARIANTS],
                rows,
                title=f"Fig. 11/12 — median speedup over Aalo by bin "
                      f"({trace})",
            )
        )
    return "\n\n".join(blocks)
