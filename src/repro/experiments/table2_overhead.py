"""Table 2 — scheduler overhead (§7.3), measured on this implementation.

The paper's Table 2 reports the C++ coordinator's CPU/memory and, most
importantly for the design argument, the schedule-computation latency and
its breakdown: ordering (per-flow thresholds + LCoF) accounts for *less
than half* of the compute time, with most of the rest in work-conservation
rate assignment, and the whole computation fits comfortably inside the
δ = 8 ms interval.

We reproduce the *structure* of that claim on our Python scheduler: build a
busy snapshot (many concurrent coflows), time ``schedule()`` end-to-end and
its phases, and report average / P90 along with peak memory via
``tracemalloc``. Absolute milliseconds are Python-vs-C++ and are expected
to differ; the breakdown proportions are the reproducible quantity.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_table
from ..config import SimulationConfig
from ..core.contention import contention_counts
from ..core.saath import SaathScheduler
from ..simulator.state import ClusterState
from .common import ExperimentScale, Workload, fb_workload


@dataclass
class Table2Result:
    total_ms_avg: float
    total_ms_p90: float
    ordering_ms_avg: float  # LCoF contention + sort
    admission_ms_avg: float  # all-or-none + rate assignment (approximate)
    peak_memory_mb: float
    rounds: int

    @property
    def ordering_fraction(self) -> float:
        """Share of compute spent ordering (paper: < 0.5)."""
        if self.total_ms_avg <= 0:
            return 0.0
        return self.ordering_ms_avg / self.total_ms_avg


def _busy_state(workload: Workload, scheduler: SaathScheduler,
                arrived_fraction: float = 0.5) -> ClusterState:
    """A snapshot with many coflows simultaneously active.

    All coflows in the first ``arrived_fraction`` of the arrival sequence
    are made active at once — a deliberately pessimistic "busy period".
    """
    coflows = sorted(workload.fresh_coflows(), key=lambda c: c.arrival_time)
    active = coflows[: max(1, int(len(coflows) * arrived_fraction))]
    state = ClusterState(fabric=workload.fabric, active_coflows=active)
    for c in active:
        scheduler.on_coflow_arrival(c, now=0.0)
    return state


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        workload: Workload | None = None,
        *, rounds: int = 30, seed: int = 7) -> Table2Result:
    workload = workload or fb_workload(scale, seed=seed)
    config = SimulationConfig()
    scheduler = SaathScheduler(config)
    state = _busy_state(workload, scheduler)

    totals, orderings = [], []
    tracemalloc.start()
    for _ in range(rounds):
        t0 = time.perf_counter()
        scheduler.schedule(state, now=0.0)
        totals.append(time.perf_counter() - t0)

        # Phase timing: the ordering phase re-run in isolation.
        t0 = time.perf_counter()
        queue_of = {
            c.coflow_id: scheduler.tracker.queue_of(c)
            for c in state.active_coflows
        }
        contention = contention_counts(
            state.active_coflows, scope=config.contention_scope,
            queue_of=queue_of,
        )
        sorted(state.active_coflows,
               key=lambda c: (queue_of[c.coflow_id],
                              contention[c.coflow_id], c.arrival_time))
        orderings.append(time.perf_counter() - t0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    totals_ms = np.asarray(totals) * 1e3
    orderings_ms = np.asarray(orderings) * 1e3
    return Table2Result(
        total_ms_avg=float(totals_ms.mean()),
        total_ms_p90=float(np.percentile(totals_ms, 90)),
        ordering_ms_avg=float(orderings_ms.mean()),
        admission_ms_avg=float(totals_ms.mean() - orderings_ms.mean()),
        peak_memory_mb=peak / (1024 * 1024),
        rounds=rounds,
    )


def render(result: Table2Result) -> str:
    table = format_table(
        ["metric", "value"],
        [
            ["schedule compute avg (ms)", result.total_ms_avg],
            ["schedule compute P90 (ms)", result.total_ms_p90],
            ["  ordering (LCoF) avg (ms)", result.ordering_ms_avg],
            ["  admission + work-conservation avg (ms)",
             result.admission_ms_avg],
            ["ordering fraction of compute", result.ordering_fraction],
            ["peak traced memory (MB)", result.peak_memory_mb],
        ],
        title="Table 2 — coordinator overhead (this implementation)",
        float_fmt="{:.3f}",
    )
    return "\n".join([
        table,
        "paper structure: ordering < 50% of compute; compute << δ "
        "(C++ got 0.57 ms avg / 2.85 ms P90 against δ = 8 ms)",
    ])
