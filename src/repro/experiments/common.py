"""Shared experiment machinery.

Every experiment module exposes a ``run(scale=...) -> <Result dataclass>``
plus a ``render(result) -> str`` that prints the paper's rows/series. The
:class:`ExperimentScale` knob trades fidelity for runtime: benchmarks
default to ``SMALL`` so the whole harness finishes in minutes on a laptop;
``PAPER`` reproduces the full trace dimensions (150 machines / 526 coflows
FB-like, 100 machines / 1000 coflows OSP-like).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import PAPER_SYNC_INTERVAL, SimulationConfig
from ..schedulers.registry import make_scheduler
from ..simulator.engine import SimulationResult, run_policy
from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow, clone_coflows
from ..workloads.synthetic import (
    SyntheticSpec,
    WorkloadGenerator,
    fb_like_spec,
    osp_like_spec,
)


class ExperimentScale(enum.Enum):
    """Workload sizing presets."""

    TINY = "tiny"  # CI smoke: seconds
    SMALL = "small"  # default benchmarks: tens of seconds
    PAPER = "paper"  # full trace dimensions: minutes per policy


_FB_DIMENSIONS: dict[ExperimentScale, tuple[int, int]] = {
    ExperimentScale.TINY: (20, 40),
    ExperimentScale.SMALL: (50, 150),
    ExperimentScale.PAPER: (150, 526),
}

_OSP_DIMENSIONS: dict[ExperimentScale, tuple[int, int]] = {
    ExperimentScale.TINY: (16, 60),
    ExperimentScale.SMALL: (40, 250),
    ExperimentScale.PAPER: (100, 1000),
}


def fb_spec_for(scale: ExperimentScale) -> SyntheticSpec:
    machines, coflows = _FB_DIMENSIONS[scale]
    return fb_like_spec(num_machines=machines, num_coflows=coflows)


def osp_spec_for(scale: ExperimentScale) -> SyntheticSpec:
    machines, coflows = _OSP_DIMENSIONS[scale]
    return osp_like_spec(num_machines=machines, num_coflows=coflows)


@dataclass
class Workload:
    """A reusable workload: fabric + pristine coflows + provenance."""

    name: str
    fabric: Fabric
    coflows: list[CoFlow]
    seed: int

    def fresh_coflows(self) -> list[CoFlow]:
        """A fresh, unmutated copy for one simulation run."""
        return clone_coflows(self.coflows)


def build_workload(spec: SyntheticSpec, seed: int = 7) -> Workload:
    gen = WorkloadGenerator(spec, seed=seed)
    fabric = spec.make_fabric()
    return Workload(
        name=spec.name, fabric=fabric,
        coflows=gen.generate_coflows(fabric), seed=seed,
    )


def fb_workload(scale: ExperimentScale = ExperimentScale.SMALL,
                seed: int = 7) -> Workload:
    return build_workload(fb_spec_for(scale), seed=seed)


def osp_workload(scale: ExperimentScale = ExperimentScale.SMALL,
                 seed: int = 11) -> Workload:
    return build_workload(osp_spec_for(scale), seed=seed)


def default_experiment_config() -> SimulationConfig:
    """The paper's §6 simulation defaults, δ = 8 ms included.

    Experiments simulate the coordinator/agent sync loop (the paper's
    simulator does too — δ is a first-class parameter of Fig. 14c); the
    library-wide :class:`SimulationConfig` default stays at the idealised
    δ = 0 for unit tests and interactive use.
    """
    return SimulationConfig(sync_interval=PAPER_SYNC_INTERVAL)


def run_policy_on(
    workload: Workload,
    policy: str,
    config: SimulationConfig | None = None,
    **run_kwargs,
) -> SimulationResult:
    """Run one registered policy on a fresh copy of the workload."""
    config = config or default_experiment_config()
    scheduler = make_scheduler(policy, config)
    return run_policy(
        scheduler, workload.fresh_coflows(), workload.fabric, config,
        **run_kwargs,
    )


def ccts_under(
    workload: Workload,
    policies: list[str],
    config: SimulationConfig | None = None,
) -> dict[str, dict[int, float]]:
    """CCT maps for several policies on the same workload."""
    return {
        policy: run_policy_on(workload, policy, config).ccts()
        for policy in policies
    }
