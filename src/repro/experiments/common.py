"""Shared experiment machinery behind every figure/table reproduction.

Implements the paper's §6 evaluation setup that Figs. 2–16 and Table 2 all
build on: the two workloads (FB-like and OSP-like, §6.1) and the default
simulation configuration (δ = 8 ms coordinator sync, §5/§6 Setup).

Every experiment module exposes a ``run(scale=...) -> <Result dataclass>``
plus a ``render(result) -> str`` that prints the paper's rows/series. The
:class:`ExperimentScale` knob trades fidelity for runtime: benchmarks
default to ``SMALL`` so the whole harness finishes in minutes on a laptop;
``PAPER`` reproduces the full trace dimensions (150 machines / 526 coflows
FB-like, 100 machines / 1000 coflows OSP-like).

Simulation runs are dispatched through the sweep runner
(:mod:`repro.experiments.runner`) whenever the workload carries a
rebuildable :class:`~repro.experiments.runner.WorkloadSpec` provenance —
enabling process fan-out and per-run caching with byte-identical results.
Workloads built by hand (no provenance) fall back to inline execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import PAPER_SYNC_INTERVAL, SimulationConfig
from ..schedulers.registry import make_scheduler
from ..simulator.engine import SimulationResult, run_policy
from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow, clone_coflows
from ..workloads.synthetic import (
    SyntheticSpec,
    WorkloadGenerator,
    fb_like_spec,
    osp_like_spec,
)
from .runner import RunSpec, WorkloadSpec, run_specs


class ExperimentScale(enum.Enum):
    """Workload sizing presets."""

    TINY = "tiny"  # CI smoke: seconds
    SMALL = "small"  # default benchmarks: tens of seconds
    PAPER = "paper"  # full trace dimensions: minutes per policy


_FB_DIMENSIONS: dict[ExperimentScale, tuple[int, int]] = {
    ExperimentScale.TINY: (20, 40),
    ExperimentScale.SMALL: (50, 150),
    ExperimentScale.PAPER: (150, 526),
}

_OSP_DIMENSIONS: dict[ExperimentScale, tuple[int, int]] = {
    ExperimentScale.TINY: (16, 60),
    ExperimentScale.SMALL: (40, 250),
    ExperimentScale.PAPER: (100, 1000),
}


def fb_spec_for(scale: ExperimentScale) -> SyntheticSpec:
    machines, coflows = _FB_DIMENSIONS[scale]
    return fb_like_spec(num_machines=machines, num_coflows=coflows)


def osp_spec_for(scale: ExperimentScale) -> SyntheticSpec:
    machines, coflows = _OSP_DIMENSIONS[scale]
    return osp_like_spec(num_machines=machines, num_coflows=coflows)


@dataclass
class Workload:
    """A reusable workload: fabric + pristine coflows + provenance.

    ``spec`` is the sweep-runner provenance: when set, worker processes can
    regenerate the exact same coflows from it, so runs over this workload
    are eligible for process fan-out and caching.
    """

    name: str
    fabric: Fabric
    coflows: list[CoFlow]
    seed: int
    spec: WorkloadSpec | None = None

    def fresh_coflows(self) -> list[CoFlow]:
        """A fresh, unmutated copy for one simulation run."""
        return clone_coflows(self.coflows)


def build_workload(spec: SyntheticSpec, seed: int = 7) -> Workload:
    gen = WorkloadGenerator(spec, seed=seed)
    fabric = spec.make_fabric()
    runner_spec = None
    if spec.name in ("fb-like", "osp-like"):
        candidate = WorkloadSpec(
            family=spec.name, machines=spec.num_machines,
            coflows=spec.num_coflows, seed=seed,
        )
        # Provenance is only valid if a worker rebuilding from the compact
        # recipe gets *exactly* this spec — a caller that customised any
        # other knob (load, skew, …) must not be silently rebuilt with
        # defaults, so such workloads stay on the inline path.
        if candidate.synthetic_spec() == spec:
            runner_spec = candidate
    return Workload(
        name=spec.name, fabric=fabric,
        coflows=gen.generate_coflows(fabric), seed=seed, spec=runner_spec,
    )


def fb_workload(scale: ExperimentScale = ExperimentScale.SMALL,
                seed: int = 7) -> Workload:
    return build_workload(fb_spec_for(scale), seed=seed)


def osp_workload(scale: ExperimentScale = ExperimentScale.SMALL,
                 seed: int = 11) -> Workload:
    return build_workload(osp_spec_for(scale), seed=seed)


def workload_spec_for(family: str, scale: ExperimentScale,
                      seed: int) -> WorkloadSpec:
    """Sweep-runner workload spec matching :func:`fb_workload` /
    :func:`osp_workload` at the given scale."""
    dims = _FB_DIMENSIONS if family == "fb-like" else _OSP_DIMENSIONS
    machines, coflows = dims[scale]
    return WorkloadSpec(family=family, machines=machines,
                        coflows=coflows, seed=seed)


def default_experiment_config() -> SimulationConfig:
    """The paper's §6 simulation defaults, δ = 8 ms included.

    Experiments simulate the coordinator/agent sync loop (the paper's
    simulator does too — δ is a first-class parameter of Fig. 14c); the
    library-wide :class:`SimulationConfig` default stays at the idealised
    δ = 0 for unit tests and interactive use.
    """
    return SimulationConfig(sync_interval=PAPER_SYNC_INTERVAL)


def run_policy_on(
    workload: Workload,
    policy: str,
    config: SimulationConfig | None = None,
    **run_kwargs,
) -> SimulationResult:
    """Run one registered policy on a fresh copy of the workload."""
    config = config or default_experiment_config()
    scheduler = make_scheduler(policy, config)
    return run_policy(
        scheduler, workload.fresh_coflows(), workload.fabric, config,
        **run_kwargs,
    )


def ccts_under(
    workload: Workload,
    policies: list[str],
    config: SimulationConfig | None = None,
) -> dict[str, dict[int, float]]:
    """CCT maps for several policies on the same workload.

    Dispatched through the sweep runner (fan-out + caching) when the
    workload carries a :class:`WorkloadSpec` provenance; results are
    identical to running each policy inline.
    """
    config = config or default_experiment_config()
    if workload.spec is not None:
        outcomes = run_specs([
            RunSpec(policy=p, workload=workload.spec, config=config)
            for p in policies
        ])
        return {p: o.ccts for p, o in zip(policies, outcomes)}
    return {
        policy: run_policy_on(workload, policy, config).ccts()
        for policy in policies
    }
