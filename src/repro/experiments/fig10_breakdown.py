"""Fig. 10 — speedup breakdown across Saath's three design ideas (§6.2).

Three cumulative variants over Aalo, for both traces:

* ``A/N + FIFO`` — paper medians 1.13× (FB), 1.10× (OSP);
* ``A/N + P/F + FIFO`` — 1.30× (FB), 1.32× (OSP);
* ``A/N + P/F + LCoF`` (= Saath) — 1.53× (FB), 1.42× (OSP).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import DistributionSummary, per_coflow_speedups
from ..analysis.report import format_table
from .common import (
    ExperimentScale,
    Workload,
    ccts_under,
    fb_workload,
    osp_workload,
)

VARIANTS = ("an-fifo", "an-pf-fifo", "saath")
PAPER_MEDIANS = {
    "fb-like": {"an-fifo": 1.13, "an-pf-fifo": 1.30, "saath": 1.53},
    "osp-like": {"an-fifo": 1.10, "an-pf-fifo": 1.32, "saath": 1.42},
}


@dataclass
class Fig10Result:
    #: trace -> variant -> speedup summary over Aalo.
    summaries: dict[str, dict[str, DistributionSummary]]


def _breakdown(workload: Workload) -> dict[str, DistributionSummary]:
    ccts = ccts_under(workload, ["aalo", *VARIANTS])
    return {
        v: DistributionSummary.of(
            list(per_coflow_speedups(ccts["aalo"], ccts[v]).values())
        )
        for v in VARIANTS
    }


def run(scale: ExperimentScale = ExperimentScale.SMALL,
        *, include_osp: bool = True, seed: int = 7) -> Fig10Result:
    summaries = {"fb-like": _breakdown(fb_workload(scale, seed=seed))}
    if include_osp:
        summaries["osp-like"] = _breakdown(osp_workload(scale))
    return Fig10Result(summaries=summaries)


def render(result: Fig10Result) -> str:
    rows = []
    for trace, by_variant in result.summaries.items():
        for variant, summary in by_variant.items():
            paper = PAPER_MEDIANS.get(trace, {}).get(variant, float("nan"))
            rows.append([trace, variant, summary.p50, summary.p90, paper])
    return format_table(
        ["trace", "variant", "median", "p90", "paper median"],
        rows,
        title="Fig. 10 — Saath speedup breakdown over Aalo",
    )
