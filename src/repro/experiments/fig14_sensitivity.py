"""Fig. 14 — sensitivity analysis (§6.3).

Five sweeps on the FB-like trace, each reporting the median per-coflow
speedup over *default Aalo* (Aalo at the paper's default parameters) for
both Saath and Aalo at the swept setting:

* (a) start queue threshold ``S`` — Aalo degrades as S grows (HoL blocking
  inside the giant first queue); Saath stays flat thanks to LCoF;
* (b) threshold growth exponent ``E`` — both insensitive;
* (c) sync interval δ — both degrade as schedules go stale;
* (d) arrival-time scaling ``A`` — contention up, both slow down, but the
  Saath/Aalo gap widens (paper: 1.53× → 1.9×);
* (e) starvation deadline factor ``d`` — Saath insensitive, slight dip at
  d=1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.metrics import per_coflow_speedups
from ..analysis.report import format_table
from ..config import QueueConfig, SimulationConfig
from ..schedulers.registry import make_scheduler
from ..simulator.engine import run_policy
from ..units import GB, MB, MSEC, TB
from ..workloads.synthetic import scale_arrivals
from .common import (
    ExperimentScale,
    Workload,
    default_experiment_config,
    fb_workload,
)
from .runner import RunSpec, run_specs

#: Sweep values mirroring the paper's x-axes (S capped at 100 GB — the 1 TB
#: point adds nothing once every coflow fits in the first queue).
START_THRESHOLDS = (10 * MB, 100 * MB, 1 * GB, 10 * GB, 100 * GB, 1 * TB)
EXPONENTS = (2, 5, 10, 16, 32)
SYNC_INTERVALS = tuple(x * MSEC for x in (2, 4, 8, 12, 16, 20))
ARRIVAL_SCALES = (0.25, 0.5, 1, 2, 4, 5)
DEADLINE_FACTORS = (1, 2, 4, 8, 16)


@dataclass
class SweepResult:
    """One parameter sweep: setting -> policy -> median speedup."""

    parameter: str
    #: setting value -> {"saath": median, "aalo": median} over default Aalo.
    medians: dict[float, dict[str, float]] = field(default_factory=dict)


@dataclass
class Fig14Result:
    sweeps: dict[str, SweepResult]


def _median_speedup(reference: dict[int, float],
                    candidate: dict[int, float]) -> float:
    return float(np.median(
        list(per_coflow_speedups(reference, candidate).values())
    ))


def _run(workload: Workload, policy: str, config: SimulationConfig,
         arrival_scale: float = 1.0) -> dict[int, float]:
    coflows = workload.fresh_coflows()
    if arrival_scale != 1.0:
        scale_arrivals(coflows, arrival_scale)
    scheduler = make_scheduler(policy, config)
    return run_policy(scheduler, coflows, workload.fabric, config).ccts()


#: (sweep key, parameter label, swept settings, config-updates builder).
_CONFIG_SWEEPS = {
    "S": ("start_threshold", START_THRESHOLDS,
          lambda cfg, s: cfg.with_updates(queues=QueueConfig(start_threshold=s))),
    "E": ("growth_factor", EXPONENTS,
          lambda cfg, e: cfg.with_updates(
              queues=QueueConfig(growth_factor=float(e)))),
    "delta": ("sync_interval", SYNC_INTERVALS,
              lambda cfg, d: cfg.with_updates(sync_interval=d)),
    "d": ("deadline_factor", DEADLINE_FACTORS,
          lambda cfg, d: cfg.with_updates(deadline_factor=float(d))),
}


def run(scale: ExperimentScale = ExperimentScale.TINY,
        workload: Workload | None = None,
        *,
        sweeps: tuple[str, ...] = ("S", "E", "delta", "A", "d"),
        seed: int = 7) -> Fig14Result:
    workload = workload or fb_workload(scale, seed=seed)
    default_cfg = default_experiment_config()

    if workload.spec is None:
        # Hand-built workload: no rebuildable provenance, run inline.
        ccts_of = lambda policy, cfg, a=1.0: _run(workload, policy, cfg, a)  # noqa: E731
    else:
        # Sweep-runner path: enumerate every (policy, config, A) run the
        # figure needs, dispatch them as ONE deduplicated batch (fan-out +
        # caching), then read results back from the batch.
        wspec = workload.spec
        batch: list[RunSpec] = [RunSpec("aalo", wspec, default_cfg)]
        for key in (k for k in ("S", "E", "delta", "A", "d") if k in sweeps):
            if key == "A":
                for a in ARRIVAL_SCALES:
                    for policy in ("aalo", "saath"):
                        batch.append(RunSpec(policy, wspec, default_cfg,
                                             arrival_scale=float(a)))
                continue
            _, settings, build = _CONFIG_SWEEPS[key]
            for value in settings:
                cfg = build(default_cfg, value)
                for policy in ("saath", "aalo"):
                    batch.append(RunSpec(policy, wspec, cfg))
        results = {
            spec: outcome.ccts
            for spec, outcome in zip(batch, run_specs(batch))
        }

        def ccts_of(policy: str, cfg: SimulationConfig,
                    a: float = 1.0) -> dict[int, float]:
            return results[RunSpec(policy, wspec, cfg, arrival_scale=a)]

    reference = ccts_of("aalo", default_cfg)
    out: dict[str, SweepResult] = {}
    # Canonical sweep order (matches the original if-chain regardless of
    # the order the caller listed them in).
    for key in (k for k in ("S", "E", "delta", "A", "d") if k in sweeps):
        if key == "A":
            sweep = SweepResult(parameter="arrival_scale")
            for a in ARRIVAL_SCALES:
                # The paper normalises to "default Aalo"; we keep per-A
                # Aalo-vs-Saath pairs — the Saath/Aalo gap is the quantity
                # the text discusses (1.53x -> 1.9x as load grows).
                aalo_a = ccts_of("aalo", default_cfg, float(a))
                saath_a = ccts_of("saath", default_cfg, float(a))
                sweep.medians[a] = {
                    "saath": _median_speedup(aalo_a, saath_a),
                    "aalo": 1.0,
                }
            out["A"] = sweep
            continue
        parameter, settings, build = _CONFIG_SWEEPS[key]
        sweep = SweepResult(parameter=parameter)
        for value in settings:
            cfg = build(default_cfg, value)
            sweep.medians[value] = {
                "saath": _median_speedup(reference, ccts_of("saath", cfg)),
                "aalo": _median_speedup(reference, ccts_of("aalo", cfg)),
            }
        out[key] = sweep

    return Fig14Result(sweeps=out)


def render(result: Fig14Result) -> str:
    blocks = []
    captions = {
        "S": "(a) start queue threshold S (paper: Aalo sensitive, Saath not)",
        "E": "(b) growth exponent E (paper: both insensitive)",
        "delta": "(c) sync interval δ seconds (paper: both degrade)",
        "A": "(d) arrival scaling A (paper: Saath/Aalo gap widens "
             "1.53x -> 1.9x)",
        "d": "(e) deadline factor d (paper: insensitive, slight dip at 1)",
    }
    for key, sweep in result.sweeps.items():
        rows = [
            [setting, vals.get("saath", float("nan")),
             vals.get("aalo", float("nan"))]
            for setting, vals in sweep.medians.items()
        ]
        blocks.append(
            format_table(
                [sweep.parameter, "saath median speedup", "aalo median speedup"],
                rows,
                title=f"Fig. 14 {captions.get(key, key)}",
                float_fmt="{:.3g}",
            )
        )
    return "\n\n".join(blocks)
