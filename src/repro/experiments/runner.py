"""Parallel sweep runner: process-pool fan-out with per-run result caching.

Every experiment is, at heart, a bag of independent *(workload, policy,
config)* simulation runs followed by cheap analysis. This module makes that
bag a first-class object:

* :class:`WorkloadSpec` — a picklable recipe for a synthetic workload
  (family, dimensions, seed) that any worker process can rebuild
  bit-identically, because generation is fully seeded;
* :class:`RunSpec` — one simulation run: a workload spec, a policy name, a
  :class:`~repro.config.SimulationConfig`, an optional arrival-time
  scaling (the Fig. 14d knob), an optional encoded dynamics injection
  (failures/stragglers) and an optional encoded topology (oversubscribed
  leaf–spine fabrics) — all part of the cache identity;
* :class:`SweepRunner` — executes a list of specs, deduplicating repeats,
  fanning out over a ``ProcessPoolExecutor`` when more than one job is
  allowed, and consulting an optional on-disk :class:`ResultCache` first;
* :func:`fan_out_seeds` — expands specs across seeds for replicated sweeps;
* :func:`what_if_outcomes` — warm-started policy sweep resuming several
  branches from one mid-run session snapshot (the shared prefix is
  simulated once).

Determinism: a run's outcome is a pure function of its spec (workload
generation and the simulator are seeded and event-ordered), so results are
identical whether a spec runs inline, in a worker process, or comes out of
the cache — the invariant the runner test-suite asserts. Experiment outputs
are therefore byte-identical to the sequential path this replaces.

The CLI wires ``--jobs`` / ``--cache-dir`` to :func:`configure`; the
``REPRO_RUNNER_JOBS`` and ``REPRO_RUNNER_CACHE`` environment variables set
process-wide defaults. Parallelism and caching are strictly opt-in: with
both unset the runner executes inline with one job and no cache, so
benchmark timings measure the simulator rather than process fan-out.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..config import SimulationConfig
from ..errors import ReproError
from ..schedulers.registry import make_scheduler
from ..simulator.dynamics import decode_actions, encode_actions
from ..simulator.engine import run_policy
from ..simulator.flows import clone_coflows
from ..simulator.topology import TopologySpec
from ..units import GBPS
from ..workloads.collectives import materialize_collective
from ..workloads.synthetic import (
    SyntheticSpec,
    WorkloadGenerator,
    fb_like_spec,
    osp_like_spec,
    scale_arrivals,
)

#: Bump when simulation semantics change, invalidating every cached result.
#: v2: cache keys include the dynamics-injection content hash, so results
#: computed under different failure/straggler scenarios can never alias.
#: v3: cache keys content-hash the topology spec (oversubscribed leaf–spine
#: fabrics); big-switch specs keep the v2 payload shape (the default
#: topology contributes nothing to the key beyond the version bump).
CACHE_VERSION = 3

_FAMILIES = {
    "fb-like": fb_like_spec,
    "osp-like": osp_like_spec,
}

#: Structured (non-synthetic-shuffle) families with their own generators.
COLLECTIVE_FAMILY = "collective"


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for a synthetic workload any process can rebuild identically."""

    family: str  # "fb-like" | "osp-like" | "collective"
    machines: int
    #: Coflow count for the shuffle families; *training-job* count for the
    #: collective family (stage-coflow counts follow from ``params``).
    coflows: int
    seed: int = 7
    #: Extra generator knobs as a canonical ``((key, value), ...)`` tuple,
    #: sorted by key — hashable, JSON-able, order-stable. Empty for the
    #: shuffle families; the collective family carries its pattern recipe
    #: here (see :func:`collective_spec`).
    params: tuple = ()

    def __post_init__(self) -> None:
        known = sorted(_FAMILIES) + [COLLECTIVE_FAMILY]
        if self.family not in known:
            raise ReproError(
                f"unknown workload family {self.family!r}; known: {known}"
            )
        if self.family == COLLECTIVE_FAMILY and not self.params:
            raise ReproError(
                "collective workloads need a params recipe; "
                "build specs with collective_spec(...)"
            )

    def synthetic_spec(self) -> SyntheticSpec:
        if self.family not in _FAMILIES:
            raise ReproError(
                f"{self.family!r} workloads have no synthetic shuffle spec"
            )
        return _FAMILIES[self.family](
            num_machines=self.machines, num_coflows=self.coflows
        )


def collective_spec(
    *,
    machines: int,
    pattern: str,
    workers: int,
    iterations: int,
    volume: float,
    jobs: int = 1,
    servers: int = 0,
    racks: int = 1,
    placement: str = "packed",
    compute_gap: float = 0.0,
    arrival_gap: float = 0.0,
    seed: int = 7,
) -> WorkloadSpec:
    """Canonical :class:`WorkloadSpec` for a collective training workload.

    The recipe round-trips through :func:`collective_jobs_for` /
    ``materialize_collective`` bit-identically in any process — the same
    contract the shuffle families get from seeded generation.
    """
    params = (
        ("arrival_gap", arrival_gap),
        ("compute_gap", compute_gap),
        ("iterations", iterations),
        ("jobs", jobs),
        ("pattern", pattern),
        ("placement", placement),
        ("racks", racks),
        ("servers", servers),
        ("volume", volume),
        ("workers", workers),
    )
    return WorkloadSpec(
        family=COLLECTIVE_FAMILY, machines=machines, coflows=jobs,
        seed=seed, params=params,
    )


def collective_jobs_for(workload: WorkloadSpec) -> tuple:
    """``(fabric, [TrainingJob, ...])`` rebuilt from a collective spec.

    Experiments use the job objects' iteration metadata
    (:func:`repro.workloads.collectives.iteration_times`) to turn a run's
    CCT map into per-iteration times; generation is pure, so the metadata
    always matches what :func:`execute_spec` simulated.
    """
    if workload.family != COLLECTIVE_FAMILY:
        raise ReproError(
            f"collective_jobs_for needs a collective spec, "
            f"got family {workload.family!r}"
        )
    return materialize_collective(
        workload.machines, workload.seed, dict(workload.params),
        port_rate=GBPS,
    )


@dataclass(frozen=True)
class RunSpec:
    """One simulation run: workload × policy × config (× arrival scaling
    × dynamics injection)."""

    policy: str
    workload: WorkloadSpec
    config: SimulationConfig = field(default_factory=SimulationConfig)
    arrival_scale: float = 1.0
    #: Encoded dynamics actions (see
    #: :func:`repro.simulator.dynamics.encode_actions`): a hashable,
    #: JSON-able content identity that workers decode back into live
    #: actions. Use :meth:`with_dynamics` to set from action objects.
    dynamics: tuple = ()
    #: Encoded topology spec (see
    #: :meth:`repro.simulator.topology.TopologySpec.encode`): ``()`` is
    #: the big-switch default; anything else names a multi-tier fabric
    #: that workers rebuild over the workload's host-port fabric. Use
    #: :meth:`with_topology` to set from a :class:`TopologySpec`.
    topology: tuple = ()

    def with_dynamics(self, actions) -> "RunSpec":
        """Copy of this spec carrying ``actions`` (encoded canonically)."""
        from dataclasses import replace

        return replace(self, dynamics=encode_actions(actions))

    def with_topology(self, spec: TopologySpec) -> "RunSpec":
        """Copy of this spec carrying ``spec`` (encoded canonically)."""
        from dataclasses import replace

        return replace(self, topology=spec.encode())

    def cache_key(self) -> str:
        """Stable content hash identifying this run across processes.

        The hash covers everything the outcome depends on — policy,
        workload recipe, config, arrival scaling, the dynamics injection
        *and* the topology — so cached results can never be reused across
        different failure scenarios or fabric geometries. The big-switch
        default omits the topology key entirely, keeping default run keys
        identical to the v2 format modulo the version bump (asserted by
        the cache-key regression test).
        """
        workload = asdict(self.workload)
        if not workload.get("params"):
            # Empty params (every pre-collective family) are dropped so the
            # payload — and therefore every existing on-disk cache key —
            # stays byte-identical to the v3 format.
            workload.pop("params", None)
        body = {
            "v": CACHE_VERSION,
            "policy": self.policy,
            "workload": workload,
            "config": asdict(self.config),
            "arrival_scale": self.arrival_scale,
            "dynamics": self.dynamics,
        }
        if self.topology:
            body["topology"] = self.topology
        payload = json.dumps(body, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RunOutcome:
    """Result of one run, reduced to what experiments consume."""

    spec: RunSpec
    #: coflow_id -> coflow completion time (seconds).
    ccts: dict[int, float]
    makespan: float
    reschedules: int
    from_cache: bool = False


#: Per-process memo of pristine generated workloads. Generation is fully
#: seeded, so a clone of the memoised workload is bit-identical to a fresh
#: generation — experiments sweeping many policies over one trace (Fig. 9:
#: 4 policies × 2 traces) stop paying the generator once per run. Bounded:
#: sweeps touch a handful of distinct workloads.
_WORKLOAD_MEMO: dict[WorkloadSpec, tuple] = {}
_WORKLOAD_MEMO_MAX = 8


def _fresh_workload(workload: WorkloadSpec) -> tuple:
    """(fabric, fresh mutable coflows) for one run of ``workload``."""
    memo = _WORKLOAD_MEMO.get(workload)
    if memo is None:
        if workload.family == COLLECTIVE_FAMILY:
            fabric, jobs = collective_jobs_for(workload)
            pristine = [c for job in jobs for c in job]
        else:
            synth = workload.synthetic_spec()
            fabric = synth.make_fabric()
            pristine = WorkloadGenerator(
                synth, seed=workload.seed
            ).generate_coflows(fabric)
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            _WORKLOAD_MEMO.clear()
        memo = _WORKLOAD_MEMO[workload] = (fabric, pristine)
    fabric, pristine = memo
    return fabric, clone_coflows(pristine)


def execute_spec(spec: RunSpec) -> RunOutcome:
    """Run one spec to completion in this process (the worker entry point).

    The run goes through the scenario/session kernel: workload plus any
    decoded dynamics actions become one batch
    :class:`~repro.simulator.scenario.Scenario` driving a session — the
    same spine every other entry point uses, so outcomes are byte-identical
    whether a spec runs inline, in a worker, or streams from a generator.
    """
    fabric, coflows = _fresh_workload(spec.workload)
    if spec.arrival_scale != 1.0:
        scale_arrivals(coflows, spec.arrival_scale)
    scheduler = make_scheduler(spec.policy, spec.config)
    topology = (
        TopologySpec.decode(spec.topology).build(fabric)
        if spec.topology else None
    )
    result = run_policy(
        scheduler, coflows, fabric, spec.config,
        dynamics=decode_actions(spec.dynamics),
        topology=topology,
    )
    return RunOutcome(
        spec=spec,
        ccts=result.ccts(),
        makespan=result.makespan,
        reschedules=result.reschedules,
    )


class ResultCache:
    """Content-addressed on-disk cache of :class:`RunOutcome` payloads.

    One JSON file per run keyed by :meth:`RunSpec.cache_key`. Floats
    round-trip exactly through JSON (shortest-repr), so cached CCTs equal
    freshly-computed ones bit for bit.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, spec: RunSpec) -> RunOutcome | None:
        path = self._path(spec.cache_key())
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return RunOutcome(
            spec=spec,
            ccts={int(k): v for k, v in payload["ccts"].items()},
            makespan=payload["makespan"],
            reschedules=payload["reschedules"],
            from_cache=True,
        )

    def put(self, outcome: RunOutcome) -> None:
        path = self._path(outcome.spec.cache_key())
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({
            "ccts": {str(k): v for k, v in outcome.ccts.items()},
            "makespan": outcome.makespan,
            "reschedules": outcome.reschedules,
        }))
        tmp.replace(path)


class SweepRunner:
    """Executes batches of :class:`RunSpec`, in parallel when allowed.

    ``jobs=1`` (the default on single-core hosts) runs inline with zero
    process overhead; ``jobs>1`` fans pending specs out over a process
    pool. Identical specs within a batch are computed once. Results come
    back in input order regardless of completion order.
    """

    def __init__(self, *, jobs: int | None = None,
                 cache_dir: str | Path | None = None):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None

    def run(self, specs: Sequence[RunSpec]) -> list[RunOutcome]:
        unique: dict[RunSpec, RunOutcome | None] = {}
        for spec in specs:
            if spec not in unique:
                unique[spec] = self.cache.get(spec) if self.cache else None

        pending = [spec for spec, out in unique.items() if out is None]
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    computed = list(pool.map(execute_spec, pending))
            else:
                computed = [execute_spec(spec) for spec in pending]
            for outcome in computed:
                unique[outcome.spec] = outcome
                if self.cache:
                    self.cache.put(outcome)

        return [unique[spec] for spec in specs]  # type: ignore[misc]


def what_if_outcomes(snapshot, policies: Sequence[str],
                     config: SimulationConfig) -> dict:
    """Warm-started policy sweep from one mid-run session checkpoint.

    The shared workload prefix is simulated *once* (by whoever produced
    ``snapshot`` — see :meth:`repro.SimulationSession.snapshot`); each
    policy then resumes an independent branch from the identical half-done
    cluster — flow table, in-flight bytes, queue bookkeeping and the
    unconsumed scenario tail all carry over. The branch matching the
    donor's own policy continues its scheduler state untouched (bit-exact
    with an uninterrupted run); other policies are swapped in with a
    forced full rebuild. ``config`` should match the snapshot's embedded
    simulation config — it only parameterises the swapped-in schedulers.
    Returns ``policy → SimulationResult``.

    Every branch's sink is cleared so its result retains the finished
    coflows (a donor running in sink-streaming mode would otherwise leak
    each branch's completions into its own aggregator and return empty
    results).
    """
    from ..simulator.session import SimulationSession

    outcomes = {}
    for policy in policies:
        scheduler = (None if policy == snapshot.policy
                     else make_scheduler(policy, config))
        outcomes[policy] = SimulationSession.restore(
            snapshot, scheduler=scheduler, sink=None
        ).run()
    return outcomes


def fan_out_seeds(spec: RunSpec, seeds: Iterable[int]) -> list[RunSpec]:
    """Replicate one spec across workload seeds (replicated experiments)."""
    from dataclasses import replace

    return [
        replace(spec, workload=replace(spec.workload, seed=s)) for s in seeds
    ]


# ---- process-wide default runner (wired to the CLI) -----------------------

_default_runner: SweepRunner | None = None


def default_jobs() -> int:
    """``REPRO_RUNNER_JOBS`` if set, else 1.

    Parallelism is strictly opt-in (CLI ``--jobs`` or the environment
    variable): the default stays sequential so benchmark timings measure
    the simulator, not process fan-out, and stay comparable across hosts.
    """
    env = os.environ.get("REPRO_RUNNER_JOBS")
    if env:
        return max(int(env), 1)
    return 1


def configure(*, jobs: int | None = None,
              cache_dir: str | Path | None = None) -> SweepRunner:
    """Install the process-wide runner used by :func:`run_specs`."""
    global _default_runner
    _default_runner = SweepRunner(jobs=jobs, cache_dir=cache_dir)
    return _default_runner


def get_runner() -> SweepRunner:
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner(
            cache_dir=os.environ.get("REPRO_RUNNER_CACHE") or None
        )
    return _default_runner


def run_specs(specs: Sequence[RunSpec]) -> list[RunOutcome]:
    """Run a batch through the process-wide runner."""
    return get_runner().run(specs)
