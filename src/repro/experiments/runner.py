"""Parallel sweep runner: process-pool fan-out with per-run result caching.

Every experiment is, at heart, a bag of independent *(workload, policy,
config)* simulation runs followed by cheap analysis. This module makes that
bag a first-class object:

* :class:`WorkloadSpec` — a picklable recipe for a synthetic workload
  (family, dimensions, seed) that any worker process can rebuild
  bit-identically, because generation is fully seeded;
* :class:`RunSpec` — one simulation run: a workload spec, a policy name, a
  :class:`~repro.config.SimulationConfig`, an optional arrival-time
  scaling (the Fig. 14d knob), an optional encoded dynamics injection
  (failures/stragglers) and an optional encoded topology (oversubscribed
  leaf–spine fabrics) — all part of the cache identity;
* :class:`SweepRunner` — executes a list of specs, deduplicating repeats,
  fanning out over a supervised ``ProcessPoolExecutor`` when more than one
  job is allowed, and consulting an optional on-disk :class:`ResultCache`
  first. The runner is fault-tolerant: results persist per-completion,
  failed runs retry under a :class:`~repro.resilience.RetryPolicy`, dead
  or hung workers are reclaimed by respawning the pool, and exhausted
  runs come back as structured :class:`~repro.resilience.RunFailure`
  values instead of exceptions (``strict=True`` restores fail-fast);
* :func:`fan_out_seeds` — expands specs across seeds for replicated sweeps;
* :func:`what_if_outcomes` — warm-started policy sweep resuming several
  branches from one mid-run session snapshot (the shared prefix is
  simulated once).

Determinism: a run's outcome is a pure function of its spec (workload
generation and the simulator are seeded and event-ordered), so results are
identical whether a spec runs inline, in a worker process, or comes out of
the cache — the invariant the runner test-suite asserts. Experiment outputs
are therefore byte-identical to the sequential path this replaces.

The CLI wires ``--jobs`` / ``--cache-dir`` to :func:`configure`; the
``REPRO_RUNNER_JOBS`` and ``REPRO_RUNNER_CACHE`` environment variables set
process-wide defaults. Parallelism and caching are strictly opt-in: with
both unset the runner executes inline with one job and no cache, so
benchmark timings measure the simulator rather than process fan-out.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..config import SimulationConfig
from ..errors import ReproError, RunFailedError, SweepInterrupted
from ..observability import MetricsRegistry
from ..resilience import (
    EXCEPTION,
    OK,
    TIMEOUT,
    WORKER_LOST,
    Attempt,
    RetryPolicy,
    RunFailure,
    SweepLog,
    Watchdog,
    format_exception_chain,
)
from ..schedulers.registry import make_scheduler
from ..testing import chaos
from ..simulator.dynamics import decode_actions, encode_actions
from ..simulator.engine import run_policy
from ..simulator.flows import clone_coflows
from ..simulator.topology import TopologySpec
from ..units import GBPS
from ..workloads.collectives import materialize_collective
from ..workloads.synthetic import (
    SyntheticSpec,
    WorkloadGenerator,
    fb_like_spec,
    osp_like_spec,
    scale_arrivals,
)

#: Bump when simulation semantics change, invalidating every cached result.
#: v2: cache keys include the dynamics-injection content hash, so results
#: computed under different failure/straggler scenarios can never alias.
#: v3: cache keys content-hash the topology spec (oversubscribed leaf–spine
#: fabrics); big-switch specs keep the v2 payload shape (the default
#: topology contributes nothing to the key beyond the version bump).
CACHE_VERSION = 3

_FAMILIES = {
    "fb-like": fb_like_spec,
    "osp-like": osp_like_spec,
}

#: Structured (non-synthetic-shuffle) families with their own generators.
COLLECTIVE_FAMILY = "collective"

#: Set (to any non-empty value) to make every :func:`execute_spec` run carry
#: a per-run metrics payload in :attr:`RunOutcome.metrics`. An environment
#: variable — not a module global — because pool workers are separate
#: processes that inherit the environment, not this module's state.
METRICS_ENV = "REPRO_SWEEP_METRICS"


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for a synthetic workload any process can rebuild identically."""

    family: str  # "fb-like" | "osp-like" | "collective"
    machines: int
    #: Coflow count for the shuffle families; *training-job* count for the
    #: collective family (stage-coflow counts follow from ``params``).
    coflows: int
    seed: int = 7
    #: Extra generator knobs as a canonical ``((key, value), ...)`` tuple,
    #: sorted by key — hashable, JSON-able, order-stable. Empty for the
    #: shuffle families; the collective family carries its pattern recipe
    #: here (see :func:`collective_spec`).
    params: tuple = ()

    def __post_init__(self) -> None:
        known = sorted(_FAMILIES) + [COLLECTIVE_FAMILY]
        if self.family not in known:
            raise ReproError(
                f"unknown workload family {self.family!r}; known: {known}"
            )
        if self.family == COLLECTIVE_FAMILY and not self.params:
            raise ReproError(
                "collective workloads need a params recipe; "
                "build specs with collective_spec(...)"
            )

    def synthetic_spec(self) -> SyntheticSpec:
        if self.family not in _FAMILIES:
            raise ReproError(
                f"{self.family!r} workloads have no synthetic shuffle spec"
            )
        return _FAMILIES[self.family](
            num_machines=self.machines, num_coflows=self.coflows
        )


def collective_spec(
    *,
    machines: int,
    pattern: str,
    workers: int,
    iterations: int,
    volume: float,
    jobs: int = 1,
    servers: int = 0,
    racks: int = 1,
    placement: str = "packed",
    compute_gap: float = 0.0,
    arrival_gap: float = 0.0,
    seed: int = 7,
) -> WorkloadSpec:
    """Canonical :class:`WorkloadSpec` for a collective training workload.

    The recipe round-trips through :func:`collective_jobs_for` /
    ``materialize_collective`` bit-identically in any process — the same
    contract the shuffle families get from seeded generation.
    """
    params = (
        ("arrival_gap", arrival_gap),
        ("compute_gap", compute_gap),
        ("iterations", iterations),
        ("jobs", jobs),
        ("pattern", pattern),
        ("placement", placement),
        ("racks", racks),
        ("servers", servers),
        ("volume", volume),
        ("workers", workers),
    )
    return WorkloadSpec(
        family=COLLECTIVE_FAMILY, machines=machines, coflows=jobs,
        seed=seed, params=params,
    )


def collective_jobs_for(workload: WorkloadSpec) -> tuple:
    """``(fabric, [TrainingJob, ...])`` rebuilt from a collective spec.

    Experiments use the job objects' iteration metadata
    (:func:`repro.workloads.collectives.iteration_times`) to turn a run's
    CCT map into per-iteration times; generation is pure, so the metadata
    always matches what :func:`execute_spec` simulated.
    """
    if workload.family != COLLECTIVE_FAMILY:
        raise ReproError(
            f"collective_jobs_for needs a collective spec, "
            f"got family {workload.family!r}"
        )
    return materialize_collective(
        workload.machines, workload.seed, dict(workload.params),
        port_rate=GBPS,
    )


@dataclass(frozen=True)
class RunSpec:
    """One simulation run: workload × policy × config (× arrival scaling
    × dynamics injection)."""

    policy: str
    workload: WorkloadSpec
    config: SimulationConfig = field(default_factory=SimulationConfig)
    arrival_scale: float = 1.0
    #: Encoded dynamics actions (see
    #: :func:`repro.simulator.dynamics.encode_actions`): a hashable,
    #: JSON-able content identity that workers decode back into live
    #: actions. Use :meth:`with_dynamics` to set from action objects.
    dynamics: tuple = ()
    #: Encoded topology spec (see
    #: :meth:`repro.simulator.topology.TopologySpec.encode`): ``()`` is
    #: the big-switch default; anything else names a multi-tier fabric
    #: that workers rebuild over the workload's host-port fabric. Use
    #: :meth:`with_topology` to set from a :class:`TopologySpec`.
    topology: tuple = ()

    def with_dynamics(self, actions) -> "RunSpec":
        """Copy of this spec carrying ``actions`` (encoded canonically)."""
        from dataclasses import replace

        return replace(self, dynamics=encode_actions(actions))

    def with_topology(self, spec: TopologySpec) -> "RunSpec":
        """Copy of this spec carrying ``spec`` (encoded canonically)."""
        from dataclasses import replace

        return replace(self, topology=spec.encode())

    def cache_key(self) -> str:
        """Stable content hash identifying this run across processes.

        The hash covers everything the outcome depends on — policy,
        workload recipe, config, arrival scaling, the dynamics injection
        *and* the topology — so cached results can never be reused across
        different failure scenarios or fabric geometries. The big-switch
        default omits the topology key entirely, keeping default run keys
        identical to the v2 format modulo the version bump (asserted by
        the cache-key regression test).
        """
        workload = asdict(self.workload)
        if not workload.get("params"):
            # Empty params (every pre-collective family) are dropped so the
            # payload — and therefore every existing on-disk cache key —
            # stays byte-identical to the v3 format.
            workload.pop("params", None)
        body = {
            "v": CACHE_VERSION,
            "policy": self.policy,
            "workload": workload,
            "config": asdict(self.config),
            "arrival_scale": self.arrival_scale,
            "dynamics": self.dynamics,
        }
        if self.topology:
            body["topology"] = self.topology
        payload = json.dumps(body, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RunOutcome:
    """Result of one run, reduced to what experiments consume."""

    spec: RunSpec
    #: coflow_id -> coflow completion time (seconds).
    ccts: dict[int, float]
    makespan: float
    reschedules: int
    from_cache: bool = False
    #: Execution attempts this outcome took (1 unless faults were retried;
    #: telemetry only — the payload is identical whatever the count).
    attempts: int = 1
    #: Per-run :class:`~repro.observability.MetricsRegistry` payload
    #: (``to_dict()`` form — plain JSON/pickle data), collected when the
    #: ``REPRO_SWEEP_METRICS`` environment variable is set; ``None``
    #: otherwise. Telemetry only: the simulation payload is identical
    #: whether metrics were collected or not.
    metrics: dict | None = None
    #: Parity with :class:`~repro.resilience.RunFailure` so callers can
    #: filter mixed outcome lists uniformly.
    failed: bool = field(default=False, init=False)


#: Per-process memo of pristine generated workloads. Generation is fully
#: seeded, so a clone of the memoised workload is bit-identical to a fresh
#: generation — experiments sweeping many policies over one trace (Fig. 9:
#: 4 policies × 2 traces) stop paying the generator once per run. Bounded:
#: sweeps touch a handful of distinct workloads.
_WORKLOAD_MEMO: dict[WorkloadSpec, tuple] = {}
_WORKLOAD_MEMO_MAX = 8


def _fresh_workload(workload: WorkloadSpec) -> tuple:
    """(fabric, fresh mutable coflows) for one run of ``workload``."""
    memo = _WORKLOAD_MEMO.get(workload)
    if memo is None:
        if workload.family == COLLECTIVE_FAMILY:
            fabric, jobs = collective_jobs_for(workload)
            pristine = [c for job in jobs for c in job]
        else:
            synth = workload.synthetic_spec()
            fabric = synth.make_fabric()
            pristine = WorkloadGenerator(
                synth, seed=workload.seed
            ).generate_coflows(fabric)
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            _WORKLOAD_MEMO.clear()
        memo = _WORKLOAD_MEMO[workload] = (fabric, pristine)
    fabric, pristine = memo
    return fabric, clone_coflows(pristine)


def execute_spec(spec: RunSpec) -> RunOutcome:
    """Run one spec to completion in this process (the worker entry point).

    The run goes through the scenario/session kernel: workload plus any
    decoded dynamics actions become one batch
    :class:`~repro.simulator.scenario.Scenario` driving a session — the
    same spine every other entry point uses, so outcomes are byte-identical
    whether a spec runs inline, in a worker, or streams from a generator.
    """
    # Chaos injection point "worker": disarmed in production (one env
    # lookup); the resilience tests and the CI chaos-smoke job arm it to
    # crash/kill/hang exactly this entry point.
    chaos.trip("worker", policy=spec.policy, seed=spec.workload.seed)
    fabric, coflows = _fresh_workload(spec.workload)
    if spec.arrival_scale != 1.0:
        scale_arrivals(coflows, spec.arrival_scale)
    scheduler = make_scheduler(spec.policy, spec.config)
    topology = (
        TopologySpec.decode(spec.topology).build(fabric)
        if spec.topology else None
    )
    metrics = MetricsRegistry() if os.environ.get(METRICS_ENV) else None
    result = run_policy(
        scheduler, coflows, fabric, spec.config,
        dynamics=decode_actions(spec.dynamics),
        topology=topology,
        metrics=metrics,
    )
    return RunOutcome(
        spec=spec,
        ccts=result.ccts(),
        makespan=result.makespan,
        reschedules=result.reschedules,
        metrics=metrics.to_dict() if metrics is not None else None,
    )


class ResultCache:
    """Content-addressed on-disk cache of :class:`RunOutcome` payloads.

    One JSON file per run keyed by :meth:`RunSpec.cache_key`. Floats
    round-trip exactly through JSON (shortest-repr), so cached CCTs equal
    freshly-computed ones bit for bit.

    Damaged entries can never poison a sweep: a file that fails to parse
    *or* parses but lacks the expected schema (a torn write, a truncation,
    or a payload from a different format generation) is quarantined — moved
    aside to ``<key>.corrupt`` for post-mortems — and counted as a miss, so
    the run is simply recomputed and the entry rewritten.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, spec: RunSpec) -> RunOutcome | None:
        path = self._path(spec.cache_key())
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            outcome = RunOutcome(
                spec=spec,
                ccts={int(k): v for k, v in payload["ccts"].items()},
                makespan=payload["makespan"],
                reschedules=payload["reschedules"],
                from_cache=True,
                # Optional key: entries written before metrics collection
                # existed (or with it disabled) simply lack it.
                metrics=payload.get("metrics"),
            )
        except (ValueError, KeyError, TypeError, AttributeError):
            # Unparseable (torn write/truncation) or schema drift (parses
            # but the payload shape is foreign). Either way: quarantine and
            # recompute rather than crash every future sweep on this key.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def _quarantine(self, path: Path) -> None:
        try:
            path.replace(path.with_suffix(".corrupt"))
            self.quarantined += 1
        except OSError:  # pragma: no cover - raced deletion; miss either way
            pass

    def put(self, outcome: RunOutcome) -> None:
        path = self._path(outcome.spec.cache_key())
        tmp = path.with_suffix(".tmp")
        payload = {
            "ccts": {str(k): v for k, v in outcome.ccts.items()},
            "makespan": outcome.makespan,
            "reschedules": outcome.reschedules,
        }
        if outcome.metrics is not None:
            # Optional: entries stay byte-identical to the v3 layout when
            # metrics collection is off (the common case).
            payload["metrics"] = outcome.metrics
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        # Chaos injection point "cache": lets tests damage the file the
        # instant after the atomic write, simulating torn storage.
        chaos.trip("cache", path=path)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``shutdown(wait=True)`` would block forever behind a hung task, so the
    workers are terminated first and the shutdown is non-blocking; the
    executor's management thread reaps the corpses.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        if proc.is_alive():
            proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _run_record(spec: RunSpec, result, attempts: Sequence[Attempt] = ()):
    """One sweep-log line for a finished (or failed) run."""
    record = {
        "event": "run",
        "policy": spec.policy,
        "family": spec.workload.family,
        "seed": spec.workload.seed,
        "key": spec.cache_key()[:16],
        "cached": result.from_cache,
        "status": "failed" if result.failed else "ok",
    }
    if result.failed:
        record["kind"] = result.kind
        record["error"] = result.error
        record["elapsed"] = round(result.elapsed, 6)
        record["tries"] = [a.as_record() for a in result.attempts]
    else:
        record["attempts"] = result.attempts
        if attempts:
            record["elapsed"] = round(sum(a.elapsed for a in attempts), 6)
            record["tries"] = [a.as_record() for a in attempts]
    return record


class SweepRunner:
    """Executes batches of :class:`RunSpec`, in parallel when allowed.

    ``jobs=1`` (the default on single-core hosts) runs inline with zero
    process overhead; ``jobs>1`` fans pending specs out over a process
    pool. Identical specs within a batch are computed once. Results come
    back in input order regardless of completion order.

    The runner is fault-tolerant, and because every run is deterministic
    the recovery is *provably safe*: a retried run reproduces the original
    bytes, so a sweep that survives faults returns results byte-identical
    to a fault-free execution (the chaos suite asserts exactly this).

    * Every finished run is streamed into the cache the moment it
      completes, so an interrupted sweep never loses finished work.
    * Failed runs are retried per ``retry`` (a :class:`RetryPolicy`, with
      deterministic seeded backoff); a run that exhausts its budget yields
      a structured :class:`~repro.resilience.RunFailure` in the result
      list instead of raising, so one bad run cannot discard the batch.
      ``strict=True`` opts back into fail-fast via
      :class:`~repro.errors.RunFailedError`.
    * A broken pool (a worker process died) is killed and respawned, and
      only unfinished specs are re-run; with ``retry.timeout`` set, hung
      workers are reclaimed the same way and their runs retried.
    * ``Ctrl-C`` surfaces as :class:`~repro.errors.SweepInterrupted`
      carrying completed/total counts — finished results are already on
      disk, so re-running the sweep resumes from the cache.
    * ``log_path`` (default: the ``REPRO_SWEEP_LOG`` environment
      variable) appends JSON-lines telemetry: per-run attempts, timings
      and cache hits.
    """

    def __init__(self, *, jobs: int | None = None,
                 cache_dir: str | Path | None = None,
                 retry: RetryPolicy | None = None,
                 strict: bool = False,
                 log_path: str | Path | None = None):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.retry = RetryPolicy() if retry is None else retry
        self.strict = strict
        if log_path is None:
            log_path = os.environ.get("REPRO_SWEEP_LOG") or None
        self.log_path = log_path
        #: Sweep-level execution metrics (runs, cache traffic, retries,
        #: fault kinds) accumulated across every :meth:`run` call.
        self.metrics = MetricsRegistry()

    def run(self, specs: Sequence[RunSpec]) -> list:
        """Run ``specs``; returns outcomes (or failures) in input order."""
        log = SweepLog(self.log_path) if self.log_path else None
        unique: dict[RunSpec, object] = {}
        for spec in specs:
            if spec not in unique:
                unique[spec] = self.cache.get(spec) if self.cache else None
        pending = [spec for spec, out in unique.items() if out is None]
        self.metrics.inc("sweep.specs", len(specs))
        self.metrics.inc("sweep.cache_hits", len(unique) - len(pending))
        self.metrics.inc("sweep.cache_misses",
                         len(pending) if self.cache else 0)
        if log:
            log.write({
                "event": "sweep-start", "specs": len(specs),
                "unique": len(unique), "cached": len(unique) - len(pending),
                "pending": len(pending), "jobs": self.jobs,
            })
            for spec, out in unique.items():
                if out is not None:
                    log.write(_run_record(spec, out))
        interrupted = False
        try:
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_pool(pending, unique, log)
                else:
                    self._run_inline(pending, unique, log)
        except KeyboardInterrupt:
            interrupted = True
        finally:
            completed = sum(1 for out in unique.values() if out is not None)
            if log:
                log.write({
                    "event": ("sweep-interrupted" if interrupted
                              else "sweep-end"),
                    "completed": completed, "unique": len(unique),
                })
                log.close()
        if interrupted:
            raise SweepInterrupted(completed, len(unique))
        return [unique[spec] for spec in specs]

    # -- shared plumbing ----------------------------------------------------

    def _finish(self, spec: RunSpec, result, unique: dict, log,
                attempts: Sequence[Attempt] = ()) -> None:
        """Record one terminal per-run result the moment it is known.

        Persisting per-completion (rather than per-batch) is the crash-
        safety property: whatever interrupts the sweep afterwards, this
        run's work is already on disk.
        """
        unique[spec] = result
        metrics = self.metrics
        metrics.inc("sweep.runs")
        if result.failed:
            metrics.inc("sweep.failures")
        for attempt in attempts:
            if attempt.kind != OK:
                # One counter per fault taxon: sweep.attempt.timeout,
                # sweep.attempt.worker-lost, sweep.attempt.exception.
                metrics.inc(f"sweep.attempt.{attempt.kind}")
        if len(attempts) > 1:
            metrics.inc("sweep.retries", len(attempts) - 1)
        if self.cache:
            metrics.set_gauge("sweep.quarantined", self.cache.quarantined)
        if self.cache and not result.failed:
            self.cache.put(result)
        if log:
            log.write(_run_record(spec, result, attempts))
        if self.strict and result.failed:
            raise RunFailedError(result)

    # -- inline execution ---------------------------------------------------

    def _run_inline(self, pending: Sequence[RunSpec], unique: dict,
                    log) -> None:
        for spec in pending:
            result, attempts = self._execute_with_retry(spec)
            self._finish(spec, result, unique, log, attempts)

    def _execute_with_retry(self, spec: RunSpec):
        """``(RunOutcome | RunFailure, attempts)`` for one inline run."""
        key = spec.cache_key()
        attempts: list[Attempt] = []
        total = 0.0
        for n in range(1, self.retry.max_attempts + 1):
            delay = self.retry.delay_before(n, key)
            if delay:
                time.sleep(delay)
            t0 = time.perf_counter()
            try:
                outcome = execute_spec(spec)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                elapsed = time.perf_counter() - t0
                total += elapsed
                attempts.append(Attempt(
                    n, EXCEPTION, elapsed, format_exception_chain(exc)))
                continue
            elapsed = time.perf_counter() - t0
            total += elapsed
            kind = OK
            if self.retry.timeout is not None and elapsed > self.retry.timeout:
                # Inline execution cannot preempt Python code, and the run
                # is deterministic — a retry would only repeat the overrun.
                # Record the deadline miss but keep the computed result.
                kind = TIMEOUT
            attempts.append(Attempt(n, kind, elapsed))
            outcome.attempts = n
            return outcome, attempts
        last = attempts[-1]
        return RunFailure(
            spec=spec, kind=last.kind, attempts=attempts,
            error=last.error, elapsed=total,
        ), attempts

    # -- pooled execution ---------------------------------------------------

    def _run_pool(self, pending: Sequence[RunSpec], unique: dict,
                  log) -> None:
        """Supervised process-pool fan-out.

        Submission is windowed (at most ``jobs`` specs in flight) so each
        run's watchdog clock starts at submission ≈ execution start.
        Streaming completion via ``wait(FIRST_COMPLETED)`` lets every
        result persist as it lands. Two fault paths reclaim the pool
        wholesale — kill the workers, respawn, re-run only unfinished
        specs:

        * *broken pool*: a worker died (SIGKILL, OOM, segfault). The
          executor cannot tell us which, so every in-flight spec gets a
          ``worker-lost`` attempt (the victim is among them; innocents
          merely re-run — determinism makes that free of harm).
        * *watchdog expiry*: only the overdue specs are charged a
          ``timeout`` attempt; other in-flight specs are requeued without
          attempt penalty (their partial work is lost, their budget not).
        """
        todo: deque[RunSpec] = deque(pending)
        attempts: dict[RunSpec, list[Attempt]] = {s: [] for s in pending}
        ready_at: dict[RunSpec, float] = {}
        watchdog = Watchdog(self.retry.timeout)
        in_flight: dict = {}
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        ok = False

        def respawn():
            nonlocal pool
            _kill_pool(pool)
            pool = ProcessPoolExecutor(max_workers=self.jobs)

        def charge(spec: RunSpec, kind: str, elapsed: float,
                   exc: BaseException | None) -> None:
            """Record a failed attempt; requeue or finalise the spec."""
            recs = attempts[spec]
            n = len(recs) + 1
            if exc is not None:
                error = format_exception_chain(exc)
            elif kind == TIMEOUT:
                error = (f"run exceeded the {self.retry.timeout:.3f}s "
                         f"deadline and its worker was killed")
            else:
                error = "worker process died while the pool was broken"
            recs.append(Attempt(n, kind, elapsed, error))
            if n < self.retry.max_attempts:
                delay = self.retry.delay_before(n + 1, spec.cache_key())
                if delay:
                    ready_at[spec] = time.monotonic() + delay
                todo.append(spec)
            else:
                failure = RunFailure(
                    spec=spec, kind=kind, attempts=recs, error=error,
                    elapsed=sum(a.elapsed for a in recs),
                )
                self._finish(spec, failure, unique, log, attempts.pop(spec))

        try:
            while todo or in_flight:
                # Submit while capacity and ready specs remain; specs still
                # backing off rotate to the queue's tail.
                for _ in range(len(todo)):
                    if len(in_flight) >= self.jobs:
                        break
                    spec = todo.popleft()
                    if ready_at.get(spec, 0.0) > time.monotonic():
                        todo.append(spec)
                        continue
                    try:
                        fut = pool.submit(execute_spec, spec)
                    except BrokenExecutor:
                        # Pool died between iterations; this spec never ran.
                        todo.appendleft(spec)
                        for stale, lost in list(in_flight.items()):
                            charge(lost, WORKER_LOST,
                                   watchdog.finished(lost), None)
                        in_flight.clear()
                        respawn()
                        break
                    in_flight[fut] = spec
                    watchdog.started(spec)
                if not in_flight:
                    if todo:
                        soonest = min(
                            ready_at.get(s, 0.0) for s in todo)
                        time.sleep(max(0.0, soonest - time.monotonic()))
                    continue
                budget = watchdog.wait_budget()
                if todo and len(in_flight) < self.jobs:
                    # Everything queued is backing off (the submit loop
                    # drained the ready ones); wake when the earliest
                    # delay expires so the free slot gets used.
                    soonest = min(ready_at.get(s, 0.0) for s in todo)
                    gap = max(0.0, soonest - time.monotonic())
                    budget = gap if budget is None else min(budget, gap)
                done, _ = futures_wait(
                    in_flight, timeout=budget, return_when=FIRST_COMPLETED)
                broken = False
                for fut in done:
                    spec = in_flight.pop(fut)
                    elapsed = watchdog.finished(spec)
                    try:
                        outcome = fut.result()
                    except KeyboardInterrupt:
                        raise
                    except BrokenExecutor as exc:
                        broken = True
                        charge(spec, WORKER_LOST, elapsed, exc)
                        continue
                    except Exception as exc:
                        charge(spec, EXCEPTION, elapsed, exc)
                        continue
                    n = len(attempts[spec]) + 1
                    recs = attempts.pop(spec)
                    recs.append(Attempt(n, OK, elapsed))
                    outcome.attempts = n
                    self._finish(spec, outcome, unique, log, recs)
                if broken:
                    # A dead worker poisons the whole executor: drain the
                    # remaining in-flight specs as worker-lost and respawn.
                    for fut, spec in list(in_flight.items()):
                        charge(spec, WORKER_LOST,
                               watchdog.finished(spec), None)
                    in_flight.clear()
                    respawn()
                    continue
                expired = set(watchdog.expired())
                if expired:
                    # Cancel-and-retry hung workers: the executor cannot
                    # cancel a running task, so the pool is reclaimed
                    # wholesale. Only overdue specs are charged; innocent
                    # in-flight specs requeue without attempt penalty.
                    for fut, spec in list(in_flight.items()):
                        elapsed = watchdog.finished(spec)
                        if spec in expired:
                            charge(spec, TIMEOUT, elapsed, None)
                        else:
                            todo.appendleft(spec)
                    in_flight.clear()
                    respawn()
            ok = True
        finally:
            if ok:
                pool.shutdown(wait=True)
            else:
                _kill_pool(pool)


def what_if_outcomes(snapshot, policies: Sequence[str],
                     config: SimulationConfig) -> dict:
    """Warm-started policy sweep from one mid-run session checkpoint.

    The shared workload prefix is simulated *once* (by whoever produced
    ``snapshot`` — see :meth:`repro.SimulationSession.snapshot`); each
    policy then resumes an independent branch from the identical half-done
    cluster — flow table, in-flight bytes, queue bookkeeping and the
    unconsumed scenario tail all carry over. The branch matching the
    donor's own policy continues its scheduler state untouched (bit-exact
    with an uninterrupted run); other policies are swapped in with a
    forced full rebuild. ``config`` should match the snapshot's embedded
    simulation config — it only parameterises the swapped-in schedulers.
    Returns ``policy → SimulationResult``.

    Every branch's sink is cleared so its result retains the finished
    coflows (a donor running in sink-streaming mode would otherwise leak
    each branch's completions into its own aggregator and return empty
    results).
    """
    from ..simulator.session import SimulationSession

    outcomes = {}
    for policy in policies:
        scheduler = (None if policy == snapshot.policy
                     else make_scheduler(policy, config))
        outcomes[policy] = SimulationSession.restore(
            snapshot, scheduler=scheduler, sink=None
        ).run()
    return outcomes


def fan_out_seeds(spec: RunSpec, seeds: Iterable[int]) -> list[RunSpec]:
    """Replicate one spec across workload seeds (replicated experiments)."""
    from dataclasses import replace

    return [
        replace(spec, workload=replace(spec.workload, seed=s)) for s in seeds
    ]


# ---- process-wide default runner (wired to the CLI) -----------------------

_default_runner: SweepRunner | None = None


def default_jobs() -> int:
    """``REPRO_RUNNER_JOBS`` if set, else 1.

    Parallelism is strictly opt-in (CLI ``--jobs`` or the environment
    variable): the default stays sequential so benchmark timings measure
    the simulator, not process fan-out, and stay comparable across hosts.
    """
    env = os.environ.get("REPRO_RUNNER_JOBS")
    if env:
        return max(int(env), 1)
    return 1


def configure(*, jobs: int | None = None,
              cache_dir: str | Path | None = None,
              retry: RetryPolicy | None = None,
              strict: bool = False,
              log_path: str | Path | None = None) -> SweepRunner:
    """Install the process-wide runner used by :func:`run_specs`."""
    global _default_runner
    _default_runner = SweepRunner(
        jobs=jobs, cache_dir=cache_dir, retry=retry, strict=strict,
        log_path=log_path,
    )
    return _default_runner


def get_runner() -> SweepRunner:
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner(
            cache_dir=os.environ.get("REPRO_RUNNER_CACHE") or None
        )
    return _default_runner


def run_specs(specs: Sequence[RunSpec]) -> list[RunOutcome]:
    """Run a batch through the process-wide runner."""
    return get_runner().run(specs)
