"""The paper's hand-worked toy scenarios (Fig. 1, 4, 5, 8, 17).

Each builder returns the exact port/coflow layout of the corresponding
figure so tests and examples can re-derive the schedules the paper reasons
about. Port counts and volumes are chosen so that the paper's unit ``t``
equals one second at 100 MB/s ports (volumes of ``t`` seconds = 100 MB).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow, make_coflow

#: One "t" of the figures: seconds to ship UNIT_BYTES at PORT_RATE.
PORT_RATE = 100e6  # bytes/second
UNIT_BYTES = 100e6  # 1 second worth of data


@dataclass
class ToyScenario:
    """A figure's setup: fabric, coflows, and the paper's predictions."""

    name: str
    fabric: Fabric
    coflows: list[CoFlow]
    #: CCT in units of t predicted by the paper, per policy family, when
    #: stated in the figure caption (used by the toy-scenario tests).
    paper_ccts: dict[str, dict[int, float]]


def _unit(n: float) -> float:
    return n * UNIT_BYTES


def fig1_out_of_sync() -> ToyScenario:
    """Fig. 1: four coflows on three ports; FIFO de-synchronises C1.

    Ports P1..P3; C1 occupies P1 and P3, C2 on P1, C3 on P2, C4 on P3 (C2-C4
    single-port), arrivals C1 < C2 < C3 < C4 with C1's two flows of length
    t. The paper reports average CCT 1.75t under Aalo vs 1.25t optimal.
    """
    fabric = Fabric(num_machines=6, port_rate=PORT_RATE)
    rcv = fabric.receiver_port
    # Senders 0,1,2 play P1,P2,P3; receivers are distinct per flow.
    c1 = make_coflow(1, 0.00, [(0, rcv(3), _unit(1)), (2, rcv(4), _unit(1))],
                     flow_id_start=0)
    c2 = make_coflow(2, 0.01, [(0, rcv(5), _unit(1))], flow_id_start=10)
    c3 = make_coflow(3, 0.02, [(1, rcv(3), _unit(1))], flow_id_start=20)
    c4 = make_coflow(4, 0.03, [(2, rcv(5), _unit(1))], flow_id_start=30)
    return ToyScenario(
        name="fig1",
        fabric=fabric,
        coflows=[c1, c2, c3, c4],
        paper_ccts={
            "aalo": {1: 2.0, 2: 2.0, 3: 1.0, 4: 2.0},  # average 1.75t
            "optimal": {1: 1.0, 2: 2.0, 3: 1.0, 4: 1.0},  # average 1.25t
        },
    )


def fig4_work_conservation() -> ToyScenario:
    """Fig. 4: three coflows on three ports.

    C1 on P1+P3, C2 on P1+P2, C3 on P2+P3, all flows of length t. Pure
    all-or-none serialises them (average CCT 2t); work conservation brings
    the average to 1.67t.
    """
    fabric = Fabric(num_machines=9, port_rate=PORT_RATE)
    rcv = fabric.receiver_port
    c1 = make_coflow(1, 0.00, [(0, rcv(3), _unit(1)), (2, rcv(4), _unit(1))],
                     flow_id_start=0)
    c2 = make_coflow(2, 0.01, [(0, rcv(5), _unit(1)), (1, rcv(6), _unit(1))],
                     flow_id_start=10)
    c3 = make_coflow(3, 0.02, [(1, rcv(7), _unit(1)), (2, rcv(8), _unit(1))],
                     flow_id_start=20)
    return ToyScenario(
        name="fig4",
        fabric=fabric,
        coflows=[c1, c2, c3],
        paper_ccts={
            "all-or-none": {1: 1.0, 2: 2.0, 3: 3.0},  # average 2t
            "saath": {1: 1.0, 2: 2.0, 3: 2.0},  # average 1.67t
        },
    )


def fig5_fast_transition() -> ToyScenario:
    """Fig. 5: per-flow thresholds speed up queue transitions.

    C2 has four flows on ports P1..P4; C1 contends on P1 and P4. With a
    total-bytes threshold of ``bandwidth * 4t``, Aalo needs 2t of C2's
    2-port progress to demote it; Saath's per-flow share ``bandwidth * t``
    demotes it after t.
    """
    fabric = Fabric(num_machines=10, port_rate=PORT_RATE)
    rcv = fabric.receiver_port
    c1 = make_coflow(1, 0.01, [(0, rcv(4), _unit(2)), (3, rcv(5), _unit(2))],
                     flow_id_start=0)
    c2 = make_coflow(2, 0.00, [
        (0, rcv(6), _unit(4)), (1, rcv(7), _unit(4)),
        (2, rcv(8), _unit(4)), (3, rcv(9), _unit(4)),
    ], flow_id_start=10)
    return ToyScenario(
        name="fig5", fabric=fabric, coflows=[c1, c2], paper_ccts={},
    )


def fig8_lcof_limitation() -> ToyScenario:
    """Fig. 8: the rare case where LCoF loses to the optimal schedule.

    C2 spans S1+S2 (length 2.5t each side in the figure; we use 2.5t), C1
    on S1 (1t), C3 on S2 (1t)... The figure's numbers: scheduling C2 first
    (it has the least contention pattern in the example) yields average CCT
    2.83t; the optimal 2.66t.
    """
    fabric = Fabric(num_machines=8, port_rate=PORT_RATE)
    rcv = fabric.receiver_port
    c2 = make_coflow(2, 0.00, [(0, rcv(2), _unit(2.5)), (1, rcv(3), _unit(2.5))],
                     flow_id_start=10)
    c1 = make_coflow(1, 0.01, [(0, rcv(4), _unit(1))], flow_id_start=0)
    c3 = make_coflow(3, 0.02, [(1, rcv(5), _unit(1))], flow_id_start=20)
    return ToyScenario(
        name="fig8", fabric=fabric, coflows=[c2, c1, c3], paper_ccts={},
    )


def fig17_sjf_suboptimal() -> ToyScenario:
    """Appendix Fig. 17: SJF is sub-optimal even offline.

    C1 has two flows of 5t on P1 and P2 (width 2, contention 2); C2 is 6t
    on P1; C3 is 7t on P2. SJF (SCF) schedules C1 first → average CCT 9.3t;
    scheduling C2/C3 first → 8.3t.
    """
    fabric = Fabric(num_machines=8, port_rate=PORT_RATE)
    rcv = fabric.receiver_port
    c1 = make_coflow(1, 0.00, [(0, rcv(2), _unit(5)), (1, rcv(3), _unit(5))],
                     flow_id_start=0)
    c2 = make_coflow(2, 0.01, [(0, rcv(4), _unit(6))], flow_id_start=10)
    c3 = make_coflow(3, 0.02, [(1, rcv(5), _unit(7))], flow_id_start=20)
    return ToyScenario(
        name="fig17",
        fabric=fabric,
        coflows=[c1, c2, c3],
        paper_ccts={
            "scf": {1: 5.0, 2: 11.0, 3: 12.0},  # average 9.33t
            "optimal": {1: 12.0, 2: 6.0, 3: 7.0},  # average 8.33t
        },
    )


ALL_SCENARIOS = {
    "fig1": fig1_out_of_sync,
    "fig4": fig4_work_conservation,
    "fig5": fig5_fast_transition,
    "fig8": fig8_lcof_limitation,
    "fig17": fig17_sjf_suboptimal,
}
