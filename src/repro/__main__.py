"""``python -m repro`` — module entry point.

Delegates to :func:`repro.cli.main`, so the module invocation behaves
identically to the ``saath-repro`` console script (and to
``python -m repro.cli``).
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
