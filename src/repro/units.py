"""Unit helpers and canonical units used throughout the reproduction.

Internally the simulator works in a single canonical unit system:

* **bytes** for data volume,
* **seconds** for time,
* **bytes per second** for rates and port capacities.

The paper (and the public ``coflow-benchmark`` trace format) quote sizes in
megabytes, times in milliseconds, and link speeds in Gbps; the helpers here
perform those conversions explicitly so no magic constants appear in the
algorithm code.
"""

from __future__ import annotations

#: Number of bytes in one kilobyte / megabyte / gigabyte / terabyte (SI-ish,
#: binary multiples as used by the coflow-benchmark trace tooling).
KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB
TB = 1024.0 * GB

#: One millisecond, in seconds.
MSEC = 1e-3

#: Bits per byte.
BITS_PER_BYTE = 8.0

#: Default port speed used in the paper's simulations: 1 Gbps.
GBPS = 1e9 / BITS_PER_BYTE  # bytes per second


def mb(value: float) -> float:
    """Convert megabytes to bytes."""
    return value * MB


def gb(value: float) -> float:
    """Convert gigabytes to bytes."""
    return value * GB


def msec(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MSEC


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * GBPS


def bytes_to_mb(value: float) -> float:
    """Convert bytes to megabytes."""
    return value / MB


def seconds_to_msec(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value / MSEC


def transfer_time(size_bytes: float, rate_bps: float) -> float:
    """Time in seconds to move ``size_bytes`` at ``rate_bps`` bytes/second.

    Raises :class:`ValueError` for a non-positive rate, because a zero rate
    would silently produce ``inf`` and propagate through the event queue.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes / rate_bps
