"""Command-line interface: ``saath-repro``.

Sub-commands:

* ``policies`` — list the registered scheduling policies.
* ``experiments`` — list the reproducible paper tables/figures.
* ``run-experiment <id>`` — run one experiment and print its rendering
  (``--scale tiny|small|paper``; ``--jobs``/``--cache-dir`` configure the
  sweep runner's process fan-out and result cache).
* ``simulate`` — run one policy on a trace file or a synthetic workload and
  print CCT statistics (``--policy``, ``--trace``/``--synthetic``;
  ``--no-incremental`` selects the full-recompute scheduling path;
  ``--streaming`` drives the run through a lazily-pulled scenario stream;
  ``--topology leaf-spine --oversub 4`` simulates an oversubscribed
  leaf–spine fabric instead of the paper's big switch; ``--checkpoint
  PATH`` writes durable session checkpoints as the run progresses and
  ``--resume-from PATH`` continues one — the resumed run finishes
  byte-identical to an uninterrupted one).
* ``sweep`` — run a policy × seed grid through the parallel sweep runner
  and print per-run mean/median CCTs plus cache statistics
  (``--retries``/``--run-timeout``/``--strict`` tune the fault-tolerant
  runner; ``--sweep-log`` appends JSON-lines per-run telemetry).
* ``gen-trace`` — emit a synthetic workload in coflow-benchmark format.

``Ctrl-C`` exits with status 130 after printing a partial-results summary;
finished sweep runs are already persisted, so re-running resumes from the
cache.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .analysis.metrics import DistributionSummary
from .observability import (
    FORMATS,
    MetricsRegistry,
    Tracer,
    aggregate_metrics,
)
from .config import SimulationConfig
from .errors import ReproError, SweepInterrupted
from .experiments import runner as sweep_runner
from .experiments.common import ExperimentScale
from .experiments.registry import (
    available_experiments,
    get_experiment,
    run_and_render,
)
from .experiments.runner import RunSpec, WorkloadSpec, collective_spec
from .resilience import RetryPolicy
from .schedulers.registry import available_policies, make_scheduler
from .simulator.engine import run_policy, run_scenario
from .simulator.fabric import Fabric
from .simulator.scenario import Scenario
from .simulator.session import SessionSnapshot, SimulationSession
from .simulator.topology import PATH_SELECTORS, TopologySpec
from .units import MB, MSEC
from .workloads.collectives import PATTERNS, collective_jobs
from .workloads.synthetic import (
    WorkloadGenerator,
    fb_like_spec,
    osp_like_spec,
)
from .workloads.traces import dump_trace, load_trace, trace_to_coflows


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    """Fabric-topology knobs shared by ``simulate`` and ``sweep``."""
    parser.add_argument("--topology", choices=["big-switch", "leaf-spine"],
                        default="big-switch",
                        help="fabric model (default: the paper's "
                             "non-blocking big switch)")
    parser.add_argument("--oversub", type=float, default=1.0,
                        help="leaf-spine oversubscription ratio (rack edge "
                             "bandwidth / fabric bandwidth; default 1)")
    parser.add_argument("--racks", type=int, default=None,
                        help="number of racks (default: ~sqrt(machines))")
    parser.add_argument("--spines", type=int, default=None,
                        help="number of spine switches (default: 2)")
    parser.add_argument("--path-select", choices=list(PATH_SELECTORS),
                        default="ecmp",
                        help="cross-rack path selector (default: ecmp)")


def _topology_spec(args: argparse.Namespace) -> TopologySpec | None:
    """Build the topology spec from CLI args; None = big-switch default."""
    if args.topology == "big-switch":
        if (args.oversub != 1.0 or args.racks is not None
                or args.spines is not None or args.path_select != "ecmp"):
            raise ReproError(
                "--oversub/--racks/--spines/--path-select require "
                "--topology leaf-spine"
            )
        return None
    return TopologySpec(
        kind="leaf-spine",
        oversub=args.oversub,
        racks=args.racks,
        spines=args.spines,
        path_select=args.path_select,
    )


def _add_collective_args(parser: argparse.ArgumentParser) -> None:
    """Collective-workload knobs shared by ``simulate`` and ``sweep``."""
    parser.add_argument("--pattern", choices=list(PATTERNS), default="ring",
                        help="collective pattern (default: ring all-reduce)")
    parser.add_argument("--workers", type=int, default=8,
                        help="training workers (one machine each)")
    parser.add_argument("--iterations", type=int, default=2,
                        help="training iterations per job")
    parser.add_argument("--volume-mb", type=float, default=64.0,
                        help="per-worker gradient volume in MB")
    parser.add_argument("--servers", type=int, default=2,
                        help="parameter servers (ps pattern only)")
    parser.add_argument("--train-jobs", type=int, default=1,
                        help="number of training jobs sharing the fabric")
    parser.add_argument("--placement", choices=["packed", "spread"],
                        default="packed",
                        help="worker placement across racks")
    parser.add_argument("--placement-racks", type=int, default=1,
                        help="rack count the placement assumes (match "
                             "--racks when using a leaf-spine topology)")
    parser.add_argument("--compute-gap-ms", type=float, default=0.0,
                        help="idealised per-iteration compute floor")
    parser.add_argument("--arrival-gap", type=float, default=0.0,
                        help="mean inter-arrival gap between jobs (s)")


def _collective_kwargs(args: argparse.Namespace) -> dict:
    """Generator kwargs shared by the simulate/sweep collective paths."""
    return dict(
        pattern=args.pattern,
        workers=args.workers,
        iterations=args.iterations,
        volume=args.volume_mb * MB,
        jobs=args.train_jobs,
        servers=args.servers if args.pattern == "ps" else 0,
        racks=args.placement_racks,
        placement=args.placement,
        compute_gap=args.compute_gap_ms * MSEC,
        arrival_gap=args.arrival_gap,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="saath-repro",
        description="Saath (CoNEXT 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list scheduling policies")
    sub.add_parser("experiments", help="list paper experiments")

    run_exp = sub.add_parser("run-experiment", help="reproduce a figure/table")
    run_exp.add_argument("exp_id", choices=available_experiments())
    run_exp.add_argument(
        "--scale", choices=[s.value for s in ExperimentScale],
        default=ExperimentScale.SMALL.value,
    )
    run_exp.add_argument("--jobs", type=int, default=None,
                         help="parallel worker processes for the sweep "
                              "runner (default: REPRO_RUNNER_JOBS or 1)")
    run_exp.add_argument("--cache-dir", type=Path, default=None,
                         help="directory for per-run result caching")

    simulate = sub.add_parser("simulate", help="run one policy on a workload")
    simulate.add_argument("--policy", default="saath",
                          choices=available_policies())
    source = simulate.add_mutually_exclusive_group()
    source.add_argument("--trace", type=Path,
                        help="coflow-benchmark trace file")
    source.add_argument("--synthetic", choices=["fb-like", "osp-like"],
                        default="fb-like")
    source.add_argument("--workload", choices=["collective"],
                        help="structured workload family (collective "
                             "training jobs; see --pattern and friends)")
    simulate.add_argument("--machines", type=int, default=50)
    simulate.add_argument("--coflows", type=int, default=150)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--sync-interval-ms", type=float, default=0.0)
    simulate.add_argument("--no-incremental", action="store_true",
                          help="use the full-recompute scheduling path "
                               "(slower; results are identical)")
    simulate.add_argument("--no-epochs", action="store_true",
                          help="disable the engine's allocation-epoch path "
                               "(slower; results are identical)")
    simulate.add_argument("--no-fastcore", action="store_true",
                          help="disable the compiled C hot-loop kernels "
                               "(slower; results are identical)")
    simulate.add_argument("--streaming", action="store_true",
                          help="feed the workload through a lazily-pulled "
                               "scenario stream instead of a materialised "
                               "batch (results are identical; open-loop "
                               "generators run in O(active) memory)")
    simulate.add_argument("--checkpoint", type=Path, default=None,
                          help="write a durable session checkpoint to this "
                               "path as the run progresses (each save "
                               "atomically replaces the last)")
    simulate.add_argument("--checkpoint-every", type=float, default=None,
                          help="checkpoint cadence in simulated seconds "
                               "(default: 1.0 when --checkpoint is given)")
    simulate.add_argument("--resume-from", type=Path, default=None,
                          help="resume a run from a checkpoint file; "
                               "workload flags are ignored (the checkpoint "
                               "carries the full session)")
    simulate.add_argument("--trace-out", type=Path, default=None,
                          help="write a structured event trace of the run "
                               "to this path (instrumentation is read-only: "
                               "results are byte-identical either way)")
    simulate.add_argument("--trace-format", choices=list(FORMATS),
                          default="jsonl",
                          help="trace file format: jsonl (one event per "
                               "line) or chrome (trace_event JSON, "
                               "viewable in Perfetto / chrome://tracing)")
    simulate.add_argument("--metrics", type=Path, default=None,
                          help="write the run's metrics registry (counters/"
                               "gauges/summaries) as JSON to this path")
    _add_collective_args(simulate)
    _add_topology_args(simulate)

    sweep = sub.add_parser(
        "sweep", help="run a policy x seed grid through the sweep runner"
    )
    sweep.add_argument("--policy", nargs="+", default=["saath"],
                       choices=available_policies())
    sweep.add_argument("--family",
                       choices=["fb-like", "osp-like", "collective"],
                       default="fb-like")
    sweep.add_argument("--machines", type=int, default=50)
    sweep.add_argument("--coflows", type=int, default=150)
    sweep.add_argument("--seed", type=int, default=7,
                       help="first workload seed")
    sweep.add_argument("--seeds", type=int, default=1,
                       help="number of seeds to fan out (seed, seed+1, ...)")
    sweep.add_argument("--sync-interval-ms", type=float, default=0.0)
    sweep.add_argument("--jobs", type=int, default=None)
    sweep.add_argument("--cache-dir", type=Path, default=None)
    sweep.add_argument("--no-incremental", action="store_true")
    sweep.add_argument("--no-epochs", action="store_true")
    sweep.add_argument("--no-fastcore", action="store_true")
    sweep.add_argument("--retries", type=int, default=None,
                       help="max attempts per run before it is reported as "
                            "failed (default: 3)")
    sweep.add_argument("--run-timeout", type=float, default=None,
                       help="per-run wall-clock deadline in seconds; hung "
                            "pool workers are killed and the run retried")
    sweep.add_argument("--strict", action="store_true",
                       help="fail fast on the first run that exhausts its "
                            "retry budget (default: report it and continue)")
    sweep.add_argument("--sweep-log", type=Path, default=None,
                       help="append JSON-lines per-run telemetry to this "
                            "file (default: REPRO_SWEEP_LOG)")
    sweep.add_argument("--metrics-dir", type=Path, default=None,
                       help="collect a per-run metrics registry for every "
                            "executed spec into this directory, plus an "
                            "aggregate.json rollup (includes sweep-level "
                            "retry/cache counters)")
    _add_collective_args(sweep)
    _add_topology_args(sweep)

    gen = sub.add_parser("gen-trace", help="emit a synthetic trace")
    gen.add_argument("--family", choices=["fb-like", "osp-like"],
                     default="fb-like")
    gen.add_argument("--machines", type=int, default=50)
    gen.add_argument("--coflows", type=int, default=150)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--output", type=Path, default=None)
    return parser


def _cmd_sweep(args: argparse.Namespace) -> str:
    config = SimulationConfig(
        sync_interval=args.sync_interval_ms * MSEC,
        incremental=not args.no_incremental,
        epochs=not args.no_epochs,
        fastcore=not args.no_fastcore,
    )
    retry = None
    if args.retries is not None or args.run_timeout is not None:
        retry_kwargs = {}
        if args.retries is not None:
            retry_kwargs["max_attempts"] = args.retries
        if args.run_timeout is not None:
            retry_kwargs["timeout"] = args.run_timeout
        retry = RetryPolicy(**retry_kwargs)
    runner = sweep_runner.configure(
        jobs=args.jobs, cache_dir=args.cache_dir, retry=retry,
        strict=args.strict, log_path=args.sweep_log,
    )
    if args.family == "collective":
        base = collective_spec(machines=args.machines, seed=args.seed,
                               **_collective_kwargs(args))
    else:
        base = WorkloadSpec(family=args.family, machines=args.machines,
                            coflows=args.coflows, seed=args.seed)
    topo_spec = _topology_spec(args)
    encoded_topology = topo_spec.encode() if topo_spec is not None else ()
    specs = [
        spec
        for policy in args.policy
        for spec in sweep_runner.fan_out_seeds(
            RunSpec(policy=policy, workload=base, config=config,
                    topology=encoded_topology),
            range(args.seed, args.seed + args.seeds),
        )
    ]
    if args.metrics_dir is not None:
        # Per-run collection rides an env var so pool workers (separate
        # processes) see it too; restored afterwards to avoid leaking into
        # in-process callers (tests drive main() directly).
        args.metrics_dir.mkdir(parents=True, exist_ok=True)
        os.environ[sweep_runner.METRICS_ENV] = "1"
    try:
        outcomes = runner.run(specs)
    finally:
        if args.metrics_dir is not None:
            os.environ.pop(sweep_runner.METRICS_ENV, None)
    lines = [f"{'policy':>14s} {'seed':>6s} {'mean CCT':>10s} "
             f"{'P50 CCT':>10s} {'makespan':>10s} {'cached':>6s}"]
    failed = 0
    for out in outcomes:
        if out.failed:
            failed += 1
            lines.append(
                f"{out.spec.policy:>14s} {out.spec.workload.seed:>6d} "
                f"FAILED ({out.kind}) after {len(out.attempts)} attempt(s): "
                f"{out.error}"
            )
            continue
        summary = DistributionSummary.of(list(out.ccts.values()))
        lines.append(
            f"{out.spec.policy:>14s} {out.spec.workload.seed:>6d} "
            f"{summary.mean:>10.4f} {summary.p50:>10.4f} "
            f"{out.makespan:>10.4f} {'yes' if out.from_cache else 'no':>6s}"
        )
    if failed:
        lines.append(
            f"{failed} of {len(outcomes)} runs failed after retries "
            f"(rerun to retry; finished runs are cached)"
        )
    if runner.cache is not None:
        quarantined = (
            f", {runner.cache.quarantined} quarantined"
            if runner.cache.quarantined else ""
        )
        lines.append(
            f"cache: {runner.cache.hits} hits, {runner.cache.misses} misses"
            f"{quarantined} ({runner.cache.directory})"
        )
    if args.metrics_dir is not None:
        parts = []
        for out in outcomes:
            if out.failed or out.metrics is None:
                # Cached entries from a pre-metrics sweep carry no payload.
                continue
            name = (f"{out.spec.policy}-seed{out.spec.workload.seed}-"
                    f"{out.spec.cache_key()[:12]}.json")
            registry = MetricsRegistry.from_dict(out.metrics)
            registry.save(str(args.metrics_dir / name))
            parts.append(registry)
        rollup = aggregate_metrics(parts)
        rollup.merge(runner.metrics)
        rollup.save(str(args.metrics_dir / "aggregate.json"))
        lines.append(
            f"metrics: {len(parts)} run payload(s) + aggregate.json "
            f"({args.metrics_dir})"
        )
    return "\n".join(lines)


def _summarize_result(policy: str, topology, result) -> str:
    summary = DistributionSummary.of([c.cct() for c in result.coflows])
    return "\n".join([
        f"policy: {policy}",
        f"topology: {topology if topology is not None else 'big-switch'}",
        f"coflows finished: {summary.count}",
        f"CCT mean: {summary.mean:.4f} s",
        f"CCT p10/p50/p90: {summary.p10:.4f} / {summary.p50:.4f} / "
        f"{summary.p90:.4f} s",
        f"makespan: {result.makespan:.4f} s",
        f"schedule computations: {result.reschedules}",
    ])


def _instrumentation(args: argparse.Namespace,
                     policy: str) -> tuple[Tracer | None,
                                           MetricsRegistry | None]:
    """(tracer, metrics) from the simulate flags; both None when off."""
    tracer = None
    if args.trace_out is not None:
        tracer = Tracer(str(args.trace_out), format=args.trace_format,
                        metadata={"policy": policy})
    metrics = MetricsRegistry() if args.metrics is not None else None
    return tracer, metrics


def _finish_instrumentation(args: argparse.Namespace, summary: str,
                            tracer: Tracer | None,
                            metrics: MetricsRegistry | None) -> str:
    lines = [summary]
    if tracer is not None:
        tracer.close()
        lines.append(f"trace: {tracer.events} events -> {args.trace_out} "
                     f"({args.trace_format})")
    if metrics is not None:
        metrics.save(str(args.metrics))
        lines.append(f"metrics: {args.metrics}")
    return "\n".join(lines)


def _cmd_simulate(args: argparse.Namespace) -> str:
    ckpt_every = args.checkpoint_every
    if args.checkpoint is not None and ckpt_every is None:
        ckpt_every = 1.0
    if ckpt_every is not None and args.checkpoint is None:
        raise ReproError("--checkpoint-every requires --checkpoint PATH")
    if args.resume_from is not None:
        # The checkpoint carries the full session (fabric, scheduler,
        # config, scenario tail); workload flags are ignored. Checkpoints
        # never embed instrumentation, so it is (re)attached here.
        snap = SessionSnapshot.load(args.resume_from)
        session = SimulationSession.restore(snap)
        tracer, metrics = _instrumentation(args, snap.policy)
        session.attach_instrumentation(tracer=tracer, metrics=metrics)
        result = session.run(
            checkpoint_every=ckpt_every, checkpoint_path=args.checkpoint
        )
        summary = _summarize_result(snap.policy, session.topology, result)
        return _finish_instrumentation(args, summary, tracer, metrics)
    config = SimulationConfig(
        sync_interval=args.sync_interval_ms * MSEC,
        incremental=not args.no_incremental,
        epochs=not args.no_epochs,
        fastcore=not args.no_fastcore,
    )
    if args.trace is not None:
        trace = load_trace(args.trace)
        fabric = Fabric(num_machines=trace.num_ports,
                        port_rate=config.port_rate)
        coflows = trace_to_coflows(trace, fabric)
    elif args.workload == "collective":
        fabric = Fabric(num_machines=args.machines,
                        port_rate=config.port_rate)
        jobs = collective_jobs(fabric, seed=args.seed,
                               **_collective_kwargs(args))
        coflows = [c for job in jobs for c in job]
    else:
        spec_fn = fb_like_spec if args.synthetic == "fb-like" else osp_like_spec
        spec = spec_fn(num_machines=args.machines, num_coflows=args.coflows)
        fabric = spec.make_fabric()
        coflows = WorkloadGenerator(spec, seed=args.seed).generate_coflows(
            fabric
        )

    scheduler = make_scheduler(args.policy, config)
    topo_spec = _topology_spec(args)
    topology = topo_spec.build(fabric) if topo_spec is not None else None
    tracer, metrics = _instrumentation(args, args.policy)
    if args.streaming:
        if args.checkpoint is not None:
            raise ReproError(
                "--checkpoint requires a replayable scenario; the "
                "--streaming path feeds a one-shot iterator that cannot "
                "be snapshotted"
            )
        ordered = sorted(coflows, key=lambda c: c.arrival_time)
        scenario = Scenario.from_stream(
            iter(ordered), total_coflows=len(ordered)
        )
        result = run_scenario(scheduler, scenario, fabric, config,
                              topology=topology, tracer=tracer,
                              metrics=metrics)
    elif args.checkpoint is not None:
        # Checkpointing needs the session surface; Scenario.from_coflows is
        # exactly what run_policy attaches, so results stay byte-identical.
        session = SimulationSession(
            fabric, scheduler, config,
            scenario=Scenario.from_coflows(coflows), topology=topology,
            tracer=tracer, metrics=metrics,
        )
        result = session.run(
            checkpoint_every=ckpt_every, checkpoint_path=args.checkpoint
        )
    else:
        result = run_policy(scheduler, coflows, fabric, config,
                            topology=topology, tracer=tracer,
                            metrics=metrics)
    summary = _summarize_result(args.policy, topology, result)
    return _finish_instrumentation(args, summary, tracer, metrics)


def _cmd_gen_trace(args: argparse.Namespace) -> str:
    spec_fn = fb_like_spec if args.family == "fb-like" else osp_like_spec
    spec = spec_fn(num_machines=args.machines, num_coflows=args.coflows)
    trace = WorkloadGenerator(spec, seed=args.seed).generate_trace()
    text = dump_trace(trace)
    if args.output is not None:
        args.output.write_text(text)
        return f"wrote {len(trace)} coflows to {args.output}"
    return text


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "policies":
            print("\n".join(available_policies()))
        elif args.command == "experiments":
            for exp_id in available_experiments():
                print(f"{exp_id}: {get_experiment(exp_id).description}")
        elif args.command == "run-experiment":
            if args.jobs is not None or args.cache_dir is not None:
                sweep_runner.configure(jobs=args.jobs,
                                       cache_dir=args.cache_dir)
            print(run_and_render(args.exp_id, ExperimentScale(args.scale)))
        elif args.command == "simulate":
            print(_cmd_simulate(args))
        elif args.command == "sweep":
            print(_cmd_sweep(args))
        elif args.command == "gen-trace":
            print(_cmd_gen_trace(args))
    except SweepInterrupted as exc:
        # Distinct exit status (128 + SIGINT) so drivers can tell "user
        # stopped it" from "it failed"; finished runs are already cached.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
