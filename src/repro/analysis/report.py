"""Plain-text rendering of experiment results.

The benchmark harness regenerates the paper's tables and figures as text:
aligned tables for bar charts and tables, and coarse ASCII CDF sketches for
CDF figures. Keeping rendering here (and out of the experiment logic) lets
tests assert on structured results instead of strings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .metrics import cdf_points


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_cdf(
    values: Sequence[float],
    *,
    title: str = "CDF",
    points: int = 11,
    value_fmt: str = "{:.3f}",
) -> str:
    """Summarise a distribution as a short percentile table (text 'CDF')."""
    xs, _ = cdf_points(values)
    fractions = np.linspace(0.0, 1.0, points)
    lines = [title]
    for frac in fractions:
        idx = min(int(frac * (len(xs) - 1)), len(xs) - 1) if len(xs) > 1 else 0
        lines.append(f"  P{int(frac * 100):3d}: " + value_fmt.format(xs[idx]))
    return "\n".join(lines)


def format_speedup_bars(
    medians: Mapping[str, float],
    *,
    title: str,
    p10: Mapping[str, float] | None = None,
    p90: Mapping[str, float] | None = None,
) -> str:
    """Render a bar-chart figure (e.g. Fig. 9/10) as a table with error bars."""
    headers = ["policy", "median"]
    if p10 is not None and p90 is not None:
        headers += ["p10", "p90"]
    rows = []
    for name, med in medians.items():
        row: list[object] = [name, med]
        if p10 is not None and p90 is not None:
            row += [p10.get(name, float("nan")), p90.get(name, float("nan"))]
        rows.append(row)
    return format_table(headers, rows, title=title)
