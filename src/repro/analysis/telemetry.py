"""Simulation telemetry: time series of utilisation and queue occupancy.

The paper's analysis sections reason about *why* schedulers behave as they
do — ports sitting idle under pure all-or-none (Fig. 4), busier ports in
the OSP trace (§6.1), queue populations under different thresholds (§6.3).
:class:`TelemetryRecorder` captures exactly those signals: attach it to a
:class:`~repro.simulator.engine.Simulator` via ``observer=`` and it samples
at every schedule application:

* per-port allocated bandwidth (utilisation),
* the number of active coflows and running flows,
* per-queue coflow populations (when the scheduler exposes a tracker),
* which coflows were admitted vs work-conserved.

Everything is stored as plain lists of :class:`Sample` so analysis code and
tests can assert on the series without parsing logs. Scalar aggregates
(peak actives, work-conservation fraction) are backed by a
:class:`~repro.observability.MetricsRegistry` the recorder maintains as it
samples, so recorder telemetry merges into run/sweep metric rollups via
:func:`~repro.observability.aggregate_metrics` like any other registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..observability import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..schedulers.base import Allocation
    from ..simulator.state import ClusterState


@dataclass(frozen=True)
class Sample:
    """One telemetry sample, taken when a schedule is applied."""

    time: float
    #: port -> allocated bytes/second at this instant.
    port_allocation: dict[int, float]
    active_coflows: int
    running_flows: int
    #: queue index -> resident coflow count ({} if not exposed).
    queue_population: dict[int, int]
    scheduled_coflows: int
    work_conserved_coflows: int


@dataclass
class TelemetryRecorder:
    """Observer collecting :class:`Sample` at every schedule application."""

    samples: list[Sample] = field(default_factory=list)
    #: Scalar-aggregate backing store: the recorder's scalar accessors
    #: derive from these counters/summaries, and the registry merges into
    #: sweep-level rollups like any other.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def on_schedule(self, state: "ClusterState", allocation: "Allocation",
                    now: float) -> None:
        """Engine hook; see :class:`repro.simulator.engine.Simulator`."""
        port_alloc: dict[int, float] = {}
        running = 0
        for coflow in state.active_coflows:
            for f in coflow.flows:
                if f.finished:
                    continue
                rate = allocation.rate_of(f.flow_id)
                if rate > 0:
                    running += 1
                    port_alloc[f.src] = port_alloc.get(f.src, 0.0) + rate
                    port_alloc[f.dst] = port_alloc.get(f.dst, 0.0) + rate

        queue_population: dict[int, int] = {}
        tracker = getattr(self._scheduler_of(state), "tracker", None)
        if tracker is not None:
            for coflow in state.active_coflows:
                try:
                    q = tracker.queue_of(coflow)
                except Exception:
                    continue
                queue_population[q] = queue_population.get(q, 0) + 1

        active = len(state.active_coflows)
        work_conserved = len(allocation.work_conserved_coflows)
        self.samples.append(
            Sample(
                time=now,
                port_allocation=port_alloc,
                active_coflows=active,
                running_flows=running,
                queue_population=queue_population,
                scheduled_coflows=len(allocation.scheduled_coflows),
                work_conserved_coflows=work_conserved,
            )
        )
        registry = self.registry
        registry.inc("telemetry.samples")
        registry.observe("telemetry.active_coflows", active)
        registry.observe("telemetry.running_flows", running)
        if work_conserved:
            registry.inc("telemetry.work_conserved_rounds")

    # The engine passes the scheduler alongside the state via attribute
    # injection before calling the hook; fall back gracefully otherwise.
    _scheduler = None

    def bind_scheduler(self, scheduler) -> "TelemetryRecorder":
        self._scheduler = scheduler
        return self

    def _scheduler_of(self, state: "ClusterState"):
        return self._scheduler

    # ---- series accessors ---------------------------------------------------

    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.samples])

    def utilisation_series(self, port: int,
                           capacity: float) -> np.ndarray:
        """Fraction of ``capacity`` allocated at ``port`` over time."""
        return np.array([
            s.port_allocation.get(port, 0.0) / capacity for s in self.samples
        ])

    def mean_utilisation(self, ports: list[int], capacity: float) -> float:
        """Time-weighted mean utilisation across ``ports``.

        Each sample holds until the next one; the final sample gets zero
        weight (the simulation ends there).
        """
        if len(self.samples) < 2:
            return 0.0
        times = self.times()
        widths = np.diff(times)
        totals = np.array([
            sum(s.port_allocation.get(p, 0.0) for p in ports)
            for s in self.samples
        ])[:-1]
        denom = widths.sum() * capacity * len(ports)
        if denom <= 0:
            return 0.0
        return float((totals * widths).sum() / denom)

    def peak_active_coflows(self) -> int:
        """Derived from the registry's running summary (no series scan)."""
        return int(self.registry.summary("telemetry.active_coflows")["max"])

    def queue_population_series(self, queue: int) -> np.ndarray:
        return np.array([
            s.queue_population.get(queue, 0) for s in self.samples
        ])

    def work_conservation_fraction(self) -> float:
        """Fraction of schedule rounds that used work conservation
        (derived from the registry's counters)."""
        total = self.registry.counter("telemetry.samples")
        if not total:
            return 0.0
        return self.registry.counter("telemetry.work_conserved_rounds") / total
