"""Analysis: CCT/speedup statistics, out-of-sync metrics, bins, reports."""

from .comparison import ComparisonOutcome, compare_policies
from .bins import (
    BIN_LABELS,
    BinnedSpeedups,
    bin_fractions,
    bin_membership,
    bin_of,
    binned_speedups,
)
from .metrics import (
    DistributionSummary,
    cdf_points,
    fraction_at_least,
    fraction_below,
    overall_cct_speedup,
    per_coflow_speedups,
    speedup_summary,
)
from .outofsync import (
    OutOfSyncProfile,
    flow_lengths_equal,
    normalized_fct_deviation,
    normalized_length_deviation,
    out_of_sync_profile,
    width_distribution,
)
from .report import format_cdf, format_speedup_bars, format_table
from .telemetry import Sample, TelemetryRecorder

__all__ = [
    "BIN_LABELS",
    "BinnedSpeedups",
    "ComparisonOutcome",
    "compare_policies",
    "DistributionSummary",
    "OutOfSyncProfile",
    "bin_fractions",
    "bin_membership",
    "bin_of",
    "binned_speedups",
    "cdf_points",
    "flow_lengths_equal",
    "format_cdf",
    "format_speedup_bars",
    "format_table",
    "Sample",
    "TelemetryRecorder",
    "fraction_at_least",
    "fraction_below",
    "normalized_fct_deviation",
    "normalized_length_deviation",
    "out_of_sync_profile",
    "overall_cct_speedup",
    "per_coflow_speedups",
    "speedup_summary",
    "width_distribution",
]
