"""Table 1 size×width binning (used by Fig. 11 and Fig. 12).

The paper groups coflows into four bins by total size and width::

                       width <= 10    width > 10
    size <= 100 MB        bin-1          bin-2
    size > 100 MB         bin-3          bin-4

Bin-1 (small, thin) is where all-or-none and LCoF shine; bins 2 and 4
(wide) are where the per-flow queue threshold pays off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import ConfigError
from ..simulator.flows import CoFlow
from ..units import MB

#: Bin boundaries from Table 1.
SIZE_BOUNDARY_BYTES = 100.0 * MB
WIDTH_BOUNDARY = 10

BIN_LABELS = ("bin-1", "bin-2", "bin-3", "bin-4")


def bin_of(coflow: CoFlow) -> str:
    """Table-1 bin label of one coflow."""
    small = coflow.total_volume <= SIZE_BOUNDARY_BYTES
    narrow = coflow.width <= WIDTH_BOUNDARY
    if small and narrow:
        return "bin-1"
    if small:
        return "bin-2"
    if narrow:
        return "bin-3"
    return "bin-4"


def bin_membership(coflows: Iterable[CoFlow]) -> dict[str, list[int]]:
    """coflow ids per bin, all four labels always present."""
    members: dict[str, list[int]] = {label: [] for label in BIN_LABELS}
    for c in coflows:
        members[bin_of(c)].append(c.coflow_id)
    return members


def bin_fractions(coflows: Iterable[CoFlow]) -> dict[str, float]:
    """Fraction of coflows per bin (the Fig. 11 x-label percentages)."""
    members = bin_membership(coflows)
    total = sum(len(v) for v in members.values())
    if total == 0:
        raise ConfigError("no coflows to bin")
    return {label: len(ids) / total for label, ids in members.items()}


@dataclass(frozen=True)
class BinnedSpeedups:
    """Per-bin speedup samples for one policy comparison."""

    samples: Mapping[str, tuple[float, ...]]

    def median(self, label: str) -> float:
        values = sorted(self.samples.get(label, ()))
        if not values:
            raise ConfigError(f"no speedup samples in {label}")
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def medians(self) -> dict[str, float]:
        return {
            label: self.median(label)
            for label in BIN_LABELS
            if self.samples.get(label)
        }


def binned_speedups(
    coflows: Iterable[CoFlow],
    speedups: Mapping[int, float],
) -> BinnedSpeedups:
    """Group per-coflow speedups into Table-1 bins.

    ``coflows`` provides the static size/width description (any replica of
    the workload will do — binning only reads volumes and widths).
    """
    members = bin_membership(coflows)
    samples: dict[str, tuple[float, ...]] = {}
    for label, ids in members.items():
        samples[label] = tuple(
            speedups[cid] for cid in ids if cid in speedups
        )
    return BinnedSpeedups(samples=samples)
