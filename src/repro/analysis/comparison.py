"""High-level policy comparison: one call from workload to report.

Every evaluation in this repository follows the same arc — run several
policies on identical copies of a workload, compute per-coflow speedups
against a baseline, and summarise. :func:`compare_policies` packages that
arc behind one function so user code (and the examples/benchmarks) never
re-implements the bookkeeping:

    from repro.analysis.comparison import compare_policies

    outcome = compare_policies(coflows, fabric, ["aalo", "saath"],
                               baseline="aalo")
    print(outcome.render())
    outcome.summary("saath").p50   # median speedup over the baseline
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..config import SimulationConfig
from ..errors import ConfigError
from ..schedulers.registry import make_scheduler
from ..simulator.engine import SimulationResult, run_policy
from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow, clone_coflows
from .metrics import (
    DistributionSummary,
    overall_cct_speedup,
    per_coflow_speedups,
)
from .report import format_table


@dataclass
class ComparisonOutcome:
    """Results of one multi-policy comparison."""

    baseline: str
    #: policy -> full simulation result (finished coflows included).
    results: dict[str, SimulationResult] = field(default_factory=dict)

    def ccts(self, policy: str) -> dict[int, float]:
        return self._result_of(policy).ccts()

    def average_cct(self, policy: str) -> float:
        return self._result_of(policy).average_cct()

    def speedups(self, policy: str) -> dict[int, float]:
        """Per-coflow speedup of ``policy`` over the baseline."""
        return per_coflow_speedups(self.ccts(self.baseline),
                                   self.ccts(policy))

    def summary(self, policy: str) -> DistributionSummary:
        return DistributionSummary.of(list(self.speedups(policy).values()))

    def overall_speedup(self, policy: str) -> float:
        return overall_cct_speedup(self.ccts(self.baseline),
                                   self.ccts(policy))

    def policies(self) -> list[str]:
        return list(self.results)

    def render(self, *, title: str | None = None) -> str:
        """Aligned table: avg CCT plus speedup summary per policy."""
        rows = []
        for policy in self.results:
            row: list[object] = [policy, self.average_cct(policy)]
            if policy == self.baseline:
                row += ["-", "-", "-"]
            else:
                s = self.summary(policy)
                row += [s.p50, s.p10, s.p90]
            rows.append(row)
        return format_table(
            ["policy", "avg CCT (s)",
             f"median speedup vs {self.baseline}", "p10", "p90"],
            rows,
            title=title or "Policy comparison",
            float_fmt="{:.3f}",
        )

    def _result_of(self, policy: str) -> SimulationResult:
        try:
            return self.results[policy]
        except KeyError:
            raise ConfigError(
                f"policy {policy!r} was not part of this comparison; "
                f"ran: {self.policies()}"
            ) from None


def compare_policies(
    coflows: Iterable[CoFlow],
    fabric: Fabric,
    policies: Sequence[str],
    *,
    baseline: str | None = None,
    config: SimulationConfig | None = None,
    **run_kwargs,
) -> ComparisonOutcome:
    """Run each policy on a fresh copy of ``coflows`` and compare.

    ``baseline`` defaults to the first policy. Extra keyword arguments
    (``dynamics=``, ``rate_perturbation=``, ``observer=``) are forwarded to
    every run — note that stateful extras (telemetry recorders, seeded
    jitter) are then *shared* across runs; pass per-policy instances by
    calling :func:`repro.run_policy` directly if that matters.
    """
    policies = list(policies)
    if not policies:
        raise ConfigError("need at least one policy to compare")
    baseline = baseline or policies[0]
    if baseline not in policies:
        raise ConfigError(
            f"baseline {baseline!r} must be among the policies {policies}"
        )
    config = config or SimulationConfig()
    source = list(coflows)

    outcome = ComparisonOutcome(baseline=baseline)
    for policy in policies:
        scheduler = make_scheduler(policy, config)
        outcome.results[policy] = run_policy(
            scheduler, clone_coflows(source), fabric, config, **run_kwargs,
        )
    return outcome
