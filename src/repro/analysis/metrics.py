"""CCT and speedup statistics used throughout the evaluation.

The paper's headline metric is the per-coflow **speedup**: the ratio of a
coflow's CCT under a baseline policy to its CCT under the evaluated policy
(>1 means the evaluated policy is faster, Fig. 9/15). Distribution summaries
report the median with P10/P90 error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class DistributionSummary:
    """Percentile summary of a sample (the paper's median + P10/P90 bars)."""

    count: int
    mean: float
    p10: float
    p50: float
    p90: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "DistributionSummary":
        if len(values) == 0:
            raise ConfigError("cannot summarise an empty sample")
        arr = np.asarray(values, dtype=float)
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            p10=float(np.percentile(arr, 10)),
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )


def per_coflow_speedups(
    baseline_ccts: Mapping[int, float],
    candidate_ccts: Mapping[int, float],
) -> dict[int, float]:
    """``speedup_c = CCT_baseline(c) / CCT_candidate(c)`` per coflow.

    Coflows with zero CCT under both policies (zero-byte coflows) are
    skipped; zero under exactly one would be a simulation bug and raises.
    """
    if set(baseline_ccts) != set(candidate_ccts):
        missing = set(baseline_ccts) ^ set(candidate_ccts)
        raise ConfigError(
            f"CCT maps cover different coflows; symmetric difference "
            f"{sorted(missing)[:10]}"
        )
    speedups: dict[int, float] = {}
    for cid, base in baseline_ccts.items():
        cand = candidate_ccts[cid]
        if base == 0 and cand == 0:
            continue
        if cand <= 0 or base <= 0:
            raise ConfigError(
                f"coflow {cid}: non-positive CCT (baseline={base}, "
                f"candidate={cand})"
            )
        speedups[cid] = base / cand
    return speedups


def speedup_summary(
    baseline_ccts: Mapping[int, float],
    candidate_ccts: Mapping[int, float],
) -> DistributionSummary:
    """Distribution summary of per-coflow speedups."""
    return DistributionSummary.of(
        list(per_coflow_speedups(baseline_ccts, candidate_ccts).values())
    )


def overall_cct_speedup(
    baseline_ccts: Mapping[int, float],
    candidate_ccts: Mapping[int, float],
) -> float:
    """Ratio of average CCTs (the paper's "overall CCT" metric, Fig. 3b)."""
    if not baseline_ccts:
        raise ConfigError("no coflows to compare")
    base = float(np.mean(list(baseline_ccts.values())))
    cand = float(np.mean(list(candidate_ccts.values())))
    if cand <= 0:
        raise ConfigError("candidate average CCT is non-positive")
    return base / cand


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative fractions in (0, 1])."""
    if len(values) == 0:
        raise ConfigError("cannot build a CDF from an empty sample")
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ys


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample strictly below ``threshold``."""
    if len(values) == 0:
        raise ConfigError("empty sample")
    arr = np.asarray(values, dtype=float)
    return float((arr < threshold).mean())


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample at or above ``threshold``."""
    if len(values) == 0:
        raise ConfigError("empty sample")
    arr = np.asarray(values, dtype=float)
    return float((arr >= threshold).mean())
