"""Out-of-sync analysis: normalised FCT deviation per coflow (§2.3, Fig. 2/13).

The paper quantifies the out-of-sync problem as the standard deviation of a
coflow's flow completion times, normalised by their mean. A perfectly
synchronised all-or-none schedule of an equal-flow-length coflow yields 0;
Aalo's uncoordinated FIFO yields large values.

Flow completion times are measured from the coflow's arrival (the flow's
wait contributes — that *is* the out-of-sync effect).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..simulator.flows import CoFlow

#: Coefficient-of-variation below which flow lengths count as "equal".
EQUAL_LENGTH_CV = 1e-9


def flow_lengths_equal(coflow: CoFlow) -> bool:
    """True when all flow volumes of the coflow are (numerically) equal."""
    volumes = np.array([f.volume for f in coflow.flows], dtype=float)
    if len(volumes) <= 1:
        return True
    mean = volumes.mean()
    if mean == 0:
        return True
    return float(volumes.std() / mean) <= EQUAL_LENGTH_CV


def normalized_length_deviation(coflow: CoFlow) -> float:
    """Std of flow volumes normalised by mean volume (Fig. 2b)."""
    volumes = np.array([f.volume for f in coflow.flows], dtype=float)
    mean = volumes.mean()
    if mean == 0:
        return 0.0
    return float(volumes.std() / mean)


def normalized_fct_deviation(coflow: CoFlow) -> float:
    """Std of flow FCTs normalised by mean FCT (Fig. 2c / Fig. 13).

    FCT of a flow is its finish time minus the *coflow* arrival. Requires a
    finished coflow.
    """
    if not coflow.all_flows_finished():
        raise ConfigError(f"coflow {coflow.coflow_id} has unfinished flows")
    fcts = np.array(
        [f.fct(coflow.arrival_time) for f in coflow.flows], dtype=float
    )
    mean = fcts.mean()
    if mean <= 0:
        return 0.0
    return float(fcts.std() / mean)


@dataclass(frozen=True)
class OutOfSyncProfile:
    """Fig. 2(c)/Fig. 13-style profile of one finished workload."""

    #: Normalised FCT deviations of multi-flow coflows with equal lengths.
    equal_length: tuple[float, ...]
    #: Same, for multi-flow coflows with unequal lengths.
    unequal_length: tuple[float, ...]
    #: Fraction of coflows excluded because they have a single flow.
    single_flow_fraction: float

    def equal_fraction_over(self, threshold: float) -> float:
        """Fraction of equal-length coflows with deviation > threshold."""
        if not self.equal_length:
            return 0.0
        arr = np.asarray(self.equal_length)
        return float((arr > threshold).mean())

    def unequal_fraction_over(self, threshold: float) -> float:
        if not self.unequal_length:
            return 0.0
        arr = np.asarray(self.unequal_length)
        return float((arr > threshold).mean())

    def equal_fraction_at_zero(self, tol: float = 1e-9) -> float:
        """Fraction of equal-length coflows that finished perfectly in sync
        (Fig. 13's "40% of CoFlows ... finished their flows at the same
        time" claim)."""
        if not self.equal_length:
            return 0.0
        arr = np.asarray(self.equal_length)
        return float((arr <= tol).mean())


def out_of_sync_profile(coflows: list[CoFlow]) -> OutOfSyncProfile:
    """Compute the out-of-sync profile of a finished workload."""
    if not coflows:
        raise ConfigError("no coflows to profile")
    equal, unequal = [], []
    singles = 0
    for c in coflows:
        if c.width <= 1:
            singles += 1
            continue
        dev = normalized_fct_deviation(c)
        if flow_lengths_equal(c):
            equal.append(dev)
        else:
            unequal.append(dev)
    return OutOfSyncProfile(
        equal_length=tuple(equal),
        unequal_length=tuple(unequal),
        single_flow_fraction=singles / len(coflows),
    )


def width_distribution(coflows: list[CoFlow]) -> np.ndarray:
    """Coflow widths, for the Fig. 2(a) CDF."""
    if not coflows:
        raise ConfigError("no coflows")
    return np.array([c.width for c in coflows], dtype=int)
