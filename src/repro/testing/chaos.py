"""Deterministic fault injection: named chaos points the tests and CI arm.

Recovery code that is never exercised is recovery code that is hoped-for.
This harness lets a test (or the CI ``chaos-smoke`` job) *deliberately*
fire the faults the resilience layer claims to survive — worker
exceptions, worker kills, hung workers, torn cache files — at named
injection points, with an exact budget, and fully disarmed by default.

Design constraints and how they are met:

* **Cross-process.** Sweep workers are separate processes (and the pool is
  respawned after a crash), so the armed plan lives on disk: a directory
  holding ``plan.json`` plus a ``fired/`` budget ledger, advertised to
  every process through the :data:`ENV_VAR` environment variable.
* **Exact budgets.** Each plan entry fires at most ``times`` times across
  the *whole* sweep, even with concurrent workers: a firing claims one
  budget slot by atomically creating ``fired/<entry>.<slot>`` with
  ``O_CREAT | O_EXCL``, which exactly one process can win.
* **Zero cost disarmed.** Instrumented sites call :func:`trip`, which is a
  single ``os.environ`` lookup when no plan is armed. Sites fire per *run*
  (not per simulated event), so even armed overhead is negligible.

Plan entries are dicts::

    {"site": "worker", "action": "exception", "times": 2}
    {"site": "worker", "action": "kill",      "times": 1}
    {"site": "worker", "action": "delay",     "times": 1, "seconds": 20.0}
    {"site": "cache",  "action": "corrupt",   "times": 1}
    {"site": "cache",  "action": "truncate",  "times": 1}
    {"site": "cache",  "action": "drift",     "times": 1}

Optional ``"policy"`` / ``"seed"`` keys restrict a ``worker`` entry to
matching runs (handy for poisoning exactly one spec). Sites instrumented
today: ``worker`` (start of :func:`~repro.experiments.runner.execute_spec`)
and ``cache`` (right after
:meth:`~repro.experiments.runner.ResultCache.put` writes a file).

``kill`` sends ``SIGKILL`` to the current process — but only when it is a
*child* process (a pool worker); in the main process the entry is skipped
without claiming budget, so an inline sweep can never kill the caller.
``corrupt`` rewrites the just-written cache file as torn JSON,
``truncate`` chops it mid-payload, and ``drift`` replaces it with valid
JSON that lacks the expected schema — the three flavours of cache damage
:meth:`ResultCache.get` must quarantine.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

from ..errors import ChaosError, ConfigError

#: Environment variable naming the armed chaos directory. Unset = disarmed.
ENV_VAR = "REPRO_CHAOS_DIR"

#: Known injection sites and the actions each supports.
SITES = {
    "worker": ("exception", "kill", "delay"),
    "cache": ("corrupt", "truncate", "drift"),
}

_PLAN_FILE = "plan.json"
_FIRED_DIR = "fired"


def arm(plan: list[dict], directory: str | Path) -> Path:
    """Write a validated chaos plan into ``directory`` and return it.

    The caller makes it effective by exporting ``ENV_VAR=<directory>``
    (e.g. ``monkeypatch.setenv`` in tests, or :func:`engage` for
    process-wide arming). Arming twice into the same directory resets the
    budget ledger.
    """
    for i, entry in enumerate(plan):
        site = entry.get("site")
        if site not in SITES:
            raise ConfigError(
                f"chaos plan entry {i}: unknown site {site!r}; "
                f"known: {sorted(SITES)}"
            )
        action = entry.get("action")
        if action not in SITES[site]:
            raise ConfigError(
                f"chaos plan entry {i}: site {site!r} supports "
                f"{SITES[site]}, got action {action!r}"
            )
        if int(entry.get("times", 1)) < 1:
            raise ConfigError(
                f"chaos plan entry {i}: times must be >= 1"
            )
    directory = Path(directory)
    fired = directory / _FIRED_DIR
    fired.mkdir(parents=True, exist_ok=True)
    for stale in fired.iterdir():
        stale.unlink()
    (directory / _PLAN_FILE).write_text(json.dumps(plan, indent=2))
    return directory


def engage(directory: str | Path) -> None:
    """Arm ``directory``'s plan for this process and its children."""
    os.environ[ENV_VAR] = str(directory)


def disarm() -> None:
    """Remove the process-wide arming (idempotent)."""
    os.environ.pop(ENV_VAR, None)


def active() -> bool:
    """True when a chaos plan is armed for this process."""
    return bool(os.environ.get(ENV_VAR))


def fired_count(directory: str | Path) -> int:
    """How many budget slots have been claimed under ``directory``."""
    fired = Path(directory) / _FIRED_DIR
    if not fired.is_dir():
        return 0
    return sum(1 for _ in fired.iterdir())


def trip(site: str, **ctx) -> None:
    """Fire any armed, matching, in-budget entries for ``site``.

    Called by instrumented production code. ``ctx`` carries site-specific
    context: ``policy=``/``seed=`` for ``worker`` (matched against the
    plan), ``path=`` for ``cache`` (the file to damage). Disarmed, this is
    one environment lookup.
    """
    directory = os.environ.get(ENV_VAR)
    if not directory:
        return
    base = Path(directory)
    try:
        plan = json.loads((base / _PLAN_FILE).read_text())
    except (OSError, ValueError):
        return
    for index, entry in enumerate(plan):
        if entry.get("site") != site or not _matches(entry, ctx):
            continue
        if entry.get("action") == "kill" and (
                multiprocessing.parent_process() is None):
            # Never kill the main process: an inline sweep would take the
            # caller down with it. The budget is left unclaimed so a later
            # pooled worker can still consume the entry.
            continue
        if _claim(base, index, int(entry.get("times", 1))):
            _fire(entry, ctx)


def _matches(entry: dict, ctx: dict) -> bool:
    for key in ("policy", "seed"):
        if key in entry and ctx.get(key) != entry[key]:
            return False
    return True


def _claim(base: Path, index: int, times: int) -> bool:
    """Atomically claim one of ``times`` budget slots for entry ``index``."""
    fired = base / _FIRED_DIR
    for slot in range(times):
        try:
            fd = os.open(
                fired / f"{index}.{slot}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            continue
        except OSError:
            return False  # ledger dir vanished; treat as exhausted
        os.close(fd)
        return True
    return False


def _fire(entry: dict, ctx: dict) -> None:
    action = entry["action"]
    if action == "exception":
        raise ChaosError(
            f"injected worker exception (chaos entry {entry})"
        )
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover
    if action == "delay":
        time.sleep(float(entry.get("seconds", 1.0)))
        return
    # cache-file damage actions
    path = Path(ctx["path"])
    if action == "corrupt":
        path.write_text('{"ccts": {"0": 1.5, "makes')  # torn mid-write
    elif action == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
    elif action == "drift":
        path.write_text(json.dumps({"schema": "from-the-future", "v": 999}))
