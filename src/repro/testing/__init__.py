"""Test-support utilities shipped with the library.

Currently one module: :mod:`repro.testing.chaos`, the deterministic
fault-injection harness the resilience tests and the CI ``chaos-smoke``
job use to exercise every recovery path on purpose.
"""

from . import chaos  # noqa: F401  (re-export for repro.testing.chaos use)
