"""repro — a full Python reproduction of *Saath: Speeding up CoFlows by
Exploiting the Spatial Dimension* (CoNEXT 2017).

Public API quick tour::

    from repro import (
        CoFlow, Fabric, SimulationConfig, make_coflow,
        make_scheduler, run_policy,
    )

    fabric = Fabric(num_machines=4, port_rate=gbps(1))
    coflows = [make_coflow(0, 0.0, [(0, fabric.receiver_port(1), mb(50))])]
    result = run_policy(make_scheduler("saath", SimulationConfig()),
                        coflows, fabric, SimulationConfig())
    print(result.average_cct())

Subpackages:

* :mod:`repro.core` — the Saath scheduler (the paper's contribution),
* :mod:`repro.simulator` — fluid-flow discrete-event fabric simulator,
* :mod:`repro.schedulers` — Aalo, Varys/SEBF, SCF/SRTF/LWTF, UC-TCP,
  ablations, and the policy registry,
* :mod:`repro.workloads` — trace I/O, synthetic FB/OSP-like generators,
  DAG jobs, JCT accounting,
* :mod:`repro.analysis` — CCT/speedup statistics, out-of-sync metrics,
  size×width binning, ASCII reports,
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .config import (
    PAPER_DEFAULTS,
    PAPER_SYNC_INTERVAL,
    QueueConfig,
    SimulationConfig,
)
from .core.saath import SaathScheduler
from .errors import (
    CapacityViolationError,
    ChaosError,
    CheckpointError,
    ConfigError,
    ReproError,
    RunFailedError,
    SchedulerError,
    SimulationError,
    SweepInterrupted,
    TraceFormatError,
    UnknownPolicyError,
)
from .resilience import Attempt, RetryPolicy, RunFailure
from .schedulers.base import Allocation, Scheduler
from .schedulers.registry import (
    available_policies,
    make_scheduler,
    register_policy,
)
from .simulator.engine import (
    SimulationResult,
    Simulator,
    run_policy,
    run_scenario,
)
from .simulator.fabric import Fabric, PortLedger
from .simulator.flows import CoFlow, Flow, clone_coflows, make_coflow
from .simulator.scenario import Scenario
from .simulator.session import SessionSnapshot, SimulationSession
from .simulator.state import ClusterState
from .units import GBPS, KB, MB, GB, TB, gb, gbps, mb, msec

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "Attempt",
    "CapacityViolationError",
    "ChaosError",
    "CheckpointError",
    "ClusterState",
    "CoFlow",
    "ConfigError",
    "Fabric",
    "Flow",
    "GBPS",
    "GB",
    "KB",
    "MB",
    "PAPER_DEFAULTS",
    "PAPER_SYNC_INTERVAL",
    "PortLedger",
    "QueueConfig",
    "ReproError",
    "RetryPolicy",
    "RunFailedError",
    "RunFailure",
    "SaathScheduler",
    "Scenario",
    "Scheduler",
    "SchedulerError",
    "SimulationConfig",
    "SessionSnapshot",
    "SimulationError",
    "SimulationResult",
    "SimulationSession",
    "Simulator",
    "SweepInterrupted",
    "TB",
    "TraceFormatError",
    "UnknownPolicyError",
    "available_policies",
    "clone_coflows",
    "gb",
    "gbps",
    "make_coflow",
    "make_scheduler",
    "mb",
    "msec",
    "register_policy",
    "run_policy",
    "run_scenario",
]
