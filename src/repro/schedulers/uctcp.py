"""UC-TCP: the uncoordinated baseline of Fig. 9.

No coordinator, no priority queues, no notion of coflows at all: every flow
is scheduled the moment it arrives and the fabric shares capacity per-flow
max-min fairly — the fluid-model equivalent of letting TCP congestion
control sort it out. The paper reports Saath beating this baseline by two
orders of magnitude in median CCT, which is the cost of ignoring coflow
semantics entirely.
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..simulator.flows import Flow
from ..simulator.ratealloc import max_min_fair
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler


class UcTcpScheduler(Scheduler):
    """Per-flow max-min fair sharing, no coordination."""

    name = "uc-tcp"
    clairvoyant = False

    def __init__(self, config: SimulationConfig):
        super().__init__(config)

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        flows: list[Flow] = []
        for coflow in state.active_coflows:
            flows.extend(state.schedulable_flows(coflow, now))
        ledger = self._round_ledger(state)
        rates = max_min_fair(flows, ledger, commit=False)
        allocation = Allocation()
        positive = allocation.rates
        scheduled = allocation.scheduled_coflows
        rates_get = rates.get
        for f in flows:
            rate = rates_get(f.flow_id, 0.0)
            if rate > 0:
                positive[f.flow_id] = rate
                scheduled.add(f.coflow_id)
        return allocation
