"""UC-TCP: the uncoordinated baseline of Fig. 9.

No coordinator, no priority queues, no notion of coflows at all: every flow
is scheduled the moment it arrives and the fabric shares capacity per-flow
max-min fairly — the fluid-model equivalent of letting TCP congestion
control sort it out. The paper reports Saath beating this baseline by two
orders of magnitude in median CCT, which is the cost of ignoring coflow
semantics entirely.
"""

from __future__ import annotations

from .._fastcore import core as _core
from ..config import SimulationConfig
from ..simulator.flows import Flow
from ..simulator.ratealloc import (
    max_min_fair,
    max_min_fair_paths,
    max_min_fair_rows_raw,
)
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler


class UcTcpScheduler(Scheduler):
    """Per-flow max-min fair sharing, no coordination."""

    name = "uc-tcp"
    clairvoyant = False

    def __init__(self, config: SimulationConfig):
        super().__init__(config)

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        allocation = Allocation()
        positive = allocation.rates
        scheduled = allocation.scheduled_coflows
        if state.paths is not None:
            # Path-aware round: fair sharing over every link of each
            # flow's path, so an oversubscribed core link caps the fair
            # shares of all flows crossing it (the fluid analogue of TCP
            # backing off at an in-network bottleneck).
            flows = []
            for coflow in state.active_coflows:
                flows.extend(state.schedulable_flows(coflow, now))
            ledger = self._round_ledger(state)
            rates = max_min_fair_paths(
                flows, state.paths, ledger, commit=False
            )
            for f in flows:
                rate = rates.get(f.flow_id, 0.0)
                if rate > 0:
                    positive[f.flow_id] = rate
                    scheduled.add(f.coflow_id)
            return allocation
        if state.rows_tracked():
            # Row path: gather table rows and run the fair filling straight
            # over the flow-table columns (same fills, same tie-breaks).
            # The raw core hands back (rows, rates) as aligned lists, so
            # the positive-rate pass needs no intermediate dict.
            table = state.table
            rows: list[int] = []
            for coflow in state.active_coflows:
                rows.extend(state.schedulable_rows(coflow, now))
            ledger = self._round_ledger(state)
            # Pending-row caches never hold finished flows, so the fair
            # filling can skip its liveness re-filter.
            active, rate_of = max_min_fair_rows_raw(
                rows, table, ledger, commit=False, prefiltered=True
            )
            fid = table.flow_id
            cid = table.coflow_id
            if table.fastcore and _core is not None:
                # Same pairs, same order, same rate objects — only the
                # zip loop moves to C.
                if self.metrics is not None:
                    self.metrics.inc("kernel.positive_rows.fastcore")
                _core.positive_rows(
                    active, rate_of, fid, cid, positive, scheduled
                )
                return allocation
            if self.metrics is not None:
                self.metrics.inc("kernel.positive_rows.python")
            for i, rate in zip(active, rate_of):
                if rate > 0:
                    positive[fid[i]] = rate
                    scheduled.add(cid[i])
            return allocation
        flows: list[Flow] = []
        for coflow in state.active_coflows:
            flows.extend(state.schedulable_flows(coflow, now))
        ledger = self._round_ledger(state)
        rates = max_min_fair(flows, ledger, commit=False)
        rates_get = rates.get
        for f in flows:
            rate = rates_get(f.flow_id, 0.0)
            if rate > 0:
                positive[f.flow_id] = rate
                scheduled.add(f.coflow_id)
        return allocation
