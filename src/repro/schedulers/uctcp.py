"""UC-TCP: the uncoordinated baseline of Fig. 9.

No coordinator, no priority queues, no notion of coflows at all: every flow
is scheduled the moment it arrives and the fabric shares capacity per-flow
max-min fairly — the fluid-model equivalent of letting TCP congestion
control sort it out. The paper reports Saath beating this baseline by two
orders of magnitude in median CCT, which is the cost of ignoring coflow
semantics entirely.
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..simulator.flows import Flow
from ..simulator.ratealloc import max_min_fair
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler


class UcTcpScheduler(Scheduler):
    """Per-flow max-min fair sharing, no coordination."""

    name = "uc-tcp"
    clairvoyant = False

    def __init__(self, config: SimulationConfig):
        super().__init__(config)

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        flows: list[Flow] = []
        for coflow in state.active_coflows:
            flows.extend(state.schedulable_flows(coflow, now))
        ledger = state.make_ledger()
        rates = max_min_fair(flows, ledger)
        allocation = Allocation(
            rates={fid: r for fid, r in rates.items() if r > 0}
        )
        allocation.scheduled_coflows = {
            f.coflow_id for f in flows if rates.get(f.flow_id, 0.0) > 0
        }
        return allocation
