"""Varys with SEBF + MADD (Chowdhury et al., SIGCOMM'14) — offline baseline.

Varys assumes coflow sizes are known a-priori (**clairvoyant**). At every
scheduling point it:

1. orders active coflows by **Smallest Effective Bottleneck First**: the
   coflow whose bottleneck port would finish soonest, ``Γ_c = max_p
   (remaining bytes at p) / capacity(p)``, goes first;
2. allocates each coflow **MADD** rates on the residual capacity — just
   enough for every flow to finish at the coflow's bottleneck completion
   time, which wastes no bandwidth on non-bottleneck flows;
3. later coflows fill the leftovers (work conservation falls out of MADD on
   residual capacity: every coflow still obtains rates whenever all its
   ports retain some residual).

The paper's Fig. 9 shows Saath — fully online — achieves speedups close to
this offline scheduler.
"""

from __future__ import annotations

import math

from ..config import SimulationConfig
from ..simulator.flows import CoFlow
from ..simulator.ratealloc import (
    greedy_residual_rates,
    greedy_residual_rates_rows,
    madd_rates,
    madd_rates_paths,
    madd_rates_rows,
)
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler


class VarysSebfScheduler(Scheduler):
    """SEBF ordering + MADD rate assignment + greedy backfill."""

    name = "varys-sebf"
    clairvoyant = True

    def __init__(self, config: SimulationConfig):
        super().__init__(config)
        #: coflow_id → Γ, valid until the coflow's remaining bytes change.
        self._gamma_cache: dict[int, float] = {}

    def _refresh_gamma_cache(self, state: ClusterState) -> None:
        """Invalidate cached Γ for coflows whose remaining bytes may have
        moved since the last round (the engine's dirty set); everyone
        else's Γ is bit-identical to a recompute. Full rounds (first round,
        dynamics, ``incremental=False``) drop the whole cache."""
        cache = self._gamma_cache
        delta = state.delta
        if not self.config.incremental or delta.full:
            cache.clear()
            return
        for cid in delta.completed:
            cache.pop(cid, None)
        for cid in delta.arrived:
            cache.pop(cid, None)
        for cid in delta.progressed:
            cache.pop(cid, None)
        for cid in delta.flow_completed:
            cache.pop(cid, None)

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        self._refresh_gamma_cache(state)
        # Path-aware states take the object path with the path-aware MADD:
        # Γ then covers core links, so rates respect the true bottleneck
        # (SEBF *ordering* keeps the paper's host-port Γ — the clairvoyant
        # priority is a policy choice, the rate feasibility is not).
        paths = state.paths
        if paths is None and state.rows_tracked():
            return self._schedule_rows(state, now)
        order = sorted(
            state.active_coflows,
            key=lambda c: (self._gamma(c, state), c.arrival_time, c.coflow_id),
        )
        ledger = self._round_ledger(state)
        allocation = Allocation()
        skipped: list[CoFlow] = []
        for coflow in order:
            flows = state.schedulable_flows(coflow, now)
            if not flows:
                continue
            if paths is not None:
                rates = madd_rates_paths(coflow, ledger, paths, flows=flows)
            else:
                rates = madd_rates(coflow, ledger, flows=flows)
            if rates:
                allocation.rates.update(rates)
                allocation.scheduled_coflows.add(coflow.coflow_id)
            else:
                skipped.append(coflow)
        # Backfill coflows fully blocked at some port (rare): greedy fill.
        if skipped:
            wc_flows = [
                f for c in skipped for f in state.schedulable_flows(c, now)
            ]
            extra = greedy_residual_rates(wc_flows, ledger)
            if extra:
                allocation.rates.update(extra)
                allocation.work_conserved_coflows |= {
                    f.coflow_id for f in wc_flows if f.flow_id in extra
                }
        return allocation

    def _schedule_rows(self, state: ClusterState, now: float) -> Allocation:
        """Row-path round: SEBF order, MADD and backfill over table rows."""
        order = sorted(
            state.active_coflows,
            key=lambda c: (self._gamma(c, state), c.arrival_time, c.coflow_id),
        )
        table = state.table
        ledger = self._round_ledger(state)
        allocation = Allocation()
        skipped: list[CoFlow] = []
        for coflow in order:
            rows = state.schedulable_rows(coflow, now)
            if not rows:
                continue
            rates = madd_rates_rows(rows, table, ledger)
            if rates:
                allocation.rates.update(rates)
                allocation.scheduled_coflows.add(coflow.coflow_id)
            else:
                skipped.append(coflow)
        if skipped:
            cid = table.coflow_id
            fid = table.flow_id
            wc_rows = [
                i for c in skipped for i in state.schedulable_rows(c, now)
            ]
            extra = greedy_residual_rates_rows(wc_rows, table, ledger)
            if extra:
                allocation.rates.update(extra)
                allocation.work_conserved_coflows |= {
                    cid[i] for i in wc_rows if fid[i] in extra
                }
        return allocation

    def _gamma(self, coflow: CoFlow, state: ClusterState) -> float:
        """Effective bottleneck completion time at full port capacity.

        Memoised per coflow; :meth:`_refresh_gamma_cache` drops entries
        whose inputs (remaining bytes, port capacities) may have changed.
        """
        cached = self._gamma_cache.get(coflow.coflow_id)
        if cached is not None:
            return cached
        gamma = self._compute_gamma(coflow, state)
        self._gamma_cache[coflow.coflow_id] = gamma
        return gamma

    def _compute_gamma(self, coflow: CoFlow, state: ClusterState) -> float:
        load: dict[int, float] = {}
        get = load.get
        rows = state.pending_rows(coflow)
        if rows is not None:
            t = state.table
            ft, vol, bs = t.finish_time, t.volume, t.bytes_sent
            src_col, dst_col = t.src, t.dst
            for i in rows:
                if ft[i] is not None:
                    continue
                remaining = vol[i] - bs[i]
                if remaining < 0.0:
                    remaining = 0.0
                src = src_col[i]
                dst = dst_col[i]
                load[src] = get(src, 0.0) + remaining
                load[dst] = get(dst, 0.0) + remaining
        else:
            for f in state.pending_flows(coflow):
                if f.finish_time is not None:
                    continue
                remaining = f.volume - f.bytes_sent
                if remaining < 0.0:
                    remaining = 0.0
                load[f.src] = get(f.src, 0.0) + remaining
                load[f.dst] = get(f.dst, 0.0) + remaining
        if not load:
            return 0.0
        if not state.capacity_override:
            # Homogeneous fabric: every port runs at the same rate, and
            # float division by a positive constant is monotone, so
            # ``max(load) / rate`` is bit-identical to the per-port maximum
            # of ``load / rate`` — one division instead of one per port.
            rate = state.fabric.port_rate
            return max(load.values()) / rate if rate > 0 else math.inf
        gamma = 0.0
        for port, volume in load.items():
            cap = state.port_capacity(port)
            gamma = max(gamma, volume / cap if cap > 0 else math.inf)
        return gamma
