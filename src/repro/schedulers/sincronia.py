"""Sincronia-style bottleneck ordering (Agarwal et al., SIGCOMM'18).

A post-Saath clairvoyant scheduler included as an *extension* baseline
(not part of the paper's evaluation): Sincronia showed that a good total
order of coflows plus greedy per-port service is within 4× of optimal, and
computes the order with a Bottleneck-Select-Scale-Iterate (BSSI) primal-
dual pass:

1. find the most-loaded port ``b`` (largest total remaining bytes);
2. among unordered coflows using ``b``, pick the *largest* one on that
   port to go **last**;
3. scale down the loads of the remaining coflows on ``b`` and iterate.

Flows are then admitted greedily in coflow order with MADD rates, exactly
like the other clairvoyant baselines in this repository, so the comparison
isolates the *ordering* policy.
"""

from __future__ import annotations

from collections import defaultdict

from ..config import SimulationConfig
from ..simulator.flows import CoFlow
from ..simulator.ratealloc import (
    greedy_residual_rates,
    madd_rates,
    madd_rates_paths,
)
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler


def bssi_order(coflows: list[CoFlow]) -> list[CoFlow]:
    """Bottleneck-Select-Scale-Iterate total order (first = schedule first).

    Implementation note: weights start at 1 per coflow; the "scale" step
    reduces a coflow's weight by the ratio its bottleneck-port load
    contributes, which is what breaks ties away from naive largest-last.
    Runs in ``O(n^2 * ports)`` — fine at per-round active-set sizes.
    """
    remaining = {c.coflow_id: c for c in coflows}
    port_load_of: dict[int, dict[int, float]] = {}
    for c in coflows:
        loads: dict[int, float] = defaultdict(float)
        for f in c.flows:
            if f.finished:
                continue
            loads[f.src] += f.remaining
            loads[f.dst] += f.remaining
        port_load_of[c.coflow_id] = dict(loads)

    weights = {c.coflow_id: 1.0 for c in coflows}
    reversed_order: list[CoFlow] = []

    while remaining:
        # 1. bottleneck port over the still-unordered coflows.
        total: dict[int, float] = defaultdict(float)
        for cid in remaining:
            for port, load in port_load_of[cid].items():
                total[port] += load
        if not total:
            reversed_order.extend(remaining.values())
            break
        bottleneck = max(total, key=lambda p: total[p])

        # 2. weighted-largest job on the bottleneck goes last.
        candidates = [
            cid for cid in remaining
            if port_load_of[cid].get(bottleneck, 0.0) > 0
        ]
        if not candidates:
            # Nobody uses the bottleneck (all-zero loads): emit arbitrary.
            cid = next(iter(remaining))
        else:
            cid = max(
                candidates,
                key=lambda c: (port_load_of[c][bottleneck] / weights[c], c),
            )
        last = remaining.pop(cid)
        reversed_order.append(last)

        # 3. scale: the removed coflow "absorbs" bottleneck capacity; the
        # others' urgency on that port grows proportionally.
        removed_load = port_load_of[cid].get(bottleneck, 0.0)
        if total[bottleneck] > removed_load > 0:
            factor = 1.0 - removed_load / total[bottleneck]
            for other in remaining:
                share = port_load_of[other].get(bottleneck, 0.0)
                if share > 0:
                    weights[other] = max(weights[other] * factor, 1e-12)

    reversed_order.reverse()
    return reversed_order


class SincroniaScheduler(Scheduler):
    """BSSI coflow order + MADD rates + greedy backfill (clairvoyant)."""

    name = "sincronia-bssi"
    clairvoyant = True

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        order = bssi_order(list(state.active_coflows))
        ledger = self._round_ledger(state)
        allocation = Allocation()
        skipped: list[CoFlow] = []
        paths = state.paths
        for coflow in order:
            flows = state.schedulable_flows(coflow, now)
            if not flows:
                continue
            if paths is not None:
                # BSSI keeps its host-port ordering; the committed rates
                # additionally respect core-link capacity.
                rates = madd_rates_paths(coflow, ledger, paths, flows=flows)
            else:
                rates = madd_rates(coflow, ledger, flows=flows)
            if rates:
                allocation.rates.update(rates)
                allocation.scheduled_coflows.add(coflow.coflow_id)
            else:
                skipped.append(coflow)
        if skipped:
            leftovers = [
                f for c in skipped for f in state.schedulable_flows(c, now)
            ]
            extra = greedy_residual_rates(leftovers, ledger)
            if extra:
                allocation.rates.update(extra)
                allocation.work_conserved_coflows |= {
                    f.coflow_id for f in leftovers if f.flow_id in extra
                }
        return allocation
