"""Name → scheduler factory registry.

Every experiment and the CLI refer to policies by the registry name, so
adding a scheduler in one place makes it available everywhere. Names:

=============  =====================================================
``saath``      full Saath (all-or-none + per-flow thresholds + LCoF)
``aalo``       Aalo baseline (total-bytes queues, per-port FIFO)
``varys-sebf`` offline SEBF + MADD (clairvoyant)
``scf``        offline Shortest-CoFlow-First (clairvoyant)
``srtf``       offline Shortest-Remaining-Time-First (clairvoyant)
``lwtf``       offline Least-Waiting-Time-First (clairvoyant)
``uc-tcp``     uncoordinated per-flow fair sharing
``baraat-fifo-lm`` decentralized FIFO with limited multiplexing (related work)
``sincronia-bssi`` Sincronia-style BSSI ordering (clairvoyant extension)
``an-fifo``    ablation: all-or-none + FIFO
``an-pf-fifo`` ablation: all-or-none + per-flow thresholds + FIFO
``saath-no-wc`` ablation: Saath without work conservation
=============  =====================================================
"""

from __future__ import annotations

from typing import Callable

from ..config import SimulationConfig
from ..errors import UnknownPolicyError
from .base import Scheduler

SchedulerFactory = Callable[[SimulationConfig], Scheduler]

_REGISTRY: dict[str, SchedulerFactory] = {}


def _builtin_factories() -> dict[str, SchedulerFactory]:
    """Build the builtin policy table.

    Imported lazily: the Saath classes live in :mod:`repro.core`, which
    itself imports :mod:`repro.schedulers.base`; resolving them at call time
    keeps the import graph acyclic.
    """
    from ..core.saath import SaathScheduler
    from .ablations import (
        AllOrNoneFifoScheduler,
        AllOrNonePerFlowFifoScheduler,
        SaathNoWorkConservationScheduler,
    )
    from .aalo import AaloScheduler
    from .baraat import BaraatFifoLmScheduler
    from .offline import LwtfScheduler, ScfScheduler, SrtfScheduler
    from .sincronia import SincroniaScheduler
    from .uctcp import UcTcpScheduler
    from .varys import VarysSebfScheduler

    classes = [
        SaathScheduler,
        AaloScheduler,
        VarysSebfScheduler,
        ScfScheduler,
        SrtfScheduler,
        LwtfScheduler,
        UcTcpScheduler,
        BaraatFifoLmScheduler,
        SincroniaScheduler,
        AllOrNoneFifoScheduler,
        AllOrNonePerFlowFifoScheduler,
        SaathNoWorkConservationScheduler,
    ]
    return {cls.name: cls for cls in classes}


def _registry() -> dict[str, SchedulerFactory]:
    if not _REGISTRY:
        _REGISTRY.update(_builtin_factories())
    return _REGISTRY


def available_policies() -> list[str]:
    """Sorted list of registered policy names."""
    return sorted(_registry())


def make_scheduler(name: str, config: SimulationConfig) -> Scheduler:
    """Instantiate the policy registered under ``name``."""
    try:
        factory = _registry()[name]
    except KeyError:
        raise UnknownPolicyError(name, available_policies()) from None
    return factory(config)


def register_policy(name: str, factory: SchedulerFactory,
                    *, overwrite: bool = False) -> None:
    """Register a custom policy (see ``examples/custom_scheduler.py``)."""
    table = _registry()
    if name in table and not overwrite:
        raise ValueError(f"policy {name!r} already registered")
    table[name] = factory
