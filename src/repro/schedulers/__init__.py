"""Coflow schedulers: Saath baselines, ablations and the policy registry."""

from .aalo import AaloScheduler
from .baraat import BaraatFifoLmScheduler
from .base import Allocation, Scheduler
from .offline import LwtfScheduler, ScfScheduler, SrtfScheduler
from .queues import QueueTracker
from .registry import available_policies, make_scheduler, register_policy
from .sincronia import SincroniaScheduler
from .uctcp import UcTcpScheduler
from .varys import VarysSebfScheduler

__all__ = [
    "AaloScheduler",
    "BaraatFifoLmScheduler",
    "Allocation",
    "LwtfScheduler",
    "QueueTracker",
    "ScfScheduler",
    "Scheduler",
    "SincroniaScheduler",
    "SrtfScheduler",
    "UcTcpScheduler",
    "VarysSebfScheduler",
    "available_policies",
    "make_scheduler",
    "register_policy",
]
