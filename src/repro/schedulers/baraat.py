"""Baraat-style FIFO with Limited Multiplexing (Dogar et al., SIGCOMM'14).

The paper's related-work section positions Baraat as the fully
*decentralised* online task-aware scheduler: no coordinator, every port
independently serves coflows ("tasks") in global arrival (FIFO) order, but
— unlike pure FIFO — multiplexes up to ``multiplexing_level`` concurrent
coflows per port to avoid head-of-line blocking behind heavy ones. The
multiplexed coflows at a port share its capacity equally (Baraat's
fair-share mode).

Like Aalo, Baraat has no notion of the spatial dimension: each port makes
its own choice of which ``k`` coflows to serve, so flows of one coflow can
be active at one port and queued at another — it inherits the out-of-sync
problem (§8 of the Saath paper: "Baraat ... suffers from the same
limitation as Aalo").
"""

from __future__ import annotations

from collections import defaultdict

from ..config import SimulationConfig
from ..errors import ConfigError
from ..simulator.flows import CoFlow, Flow
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler


class BaraatFifoLmScheduler(Scheduler):
    """Decentralised FIFO with limited multiplexing."""

    name = "baraat-fifo-lm"
    clairvoyant = False

    def __init__(self, config: SimulationConfig,
                 *, multiplexing_level: int = 4):
        super().__init__(config)
        if multiplexing_level < 1:
            raise ConfigError(
                f"multiplexing_level must be >= 1, got {multiplexing_level}"
            )
        self.multiplexing_level = multiplexing_level
        self._arrival_order: dict[int, int] = {}
        self._counter = 0

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        self._arrival_order[coflow.coflow_id] = self._counter
        self._counter += 1

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        self._arrival_order.pop(coflow.coflow_id, None)

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        per_sender: dict[int, list[Flow]] = defaultdict(list)
        for coflow in state.active_coflows:
            for f in state.schedulable_flows(coflow, now):
                per_sender[f.src].append(f)

        ledger = self._round_ledger(state)
        allocation = Allocation()
        for port in sorted(per_sender):
            flows = sorted(
                per_sender[port],
                key=lambda f: (self._arrival_order.get(f.coflow_id, 1 << 60),
                               f.flow_id),
            )
            # The first `multiplexing_level` distinct coflows at this port
            # are eligible; their flows share the port equally.
            eligible: list[Flow] = []
            admitted: set[int] = set()
            for f in flows:
                if f.coflow_id in admitted:
                    eligible.append(f)
                elif len(admitted) < self.multiplexing_level:
                    admitted.add(f.coflow_id)
                    eligible.append(f)
            if not eligible:
                continue
            # Multi-tier topologies: a flow's grant is additionally capped
            # by every core link on its path (extra_links is empty on the
            # big-switch default, leaving the classic arithmetic intact);
            # LinkLedger.commit then charges the same links.
            extra_links = (
                state.paths.extra_links if state.paths is not None
                else None
            )
            fair = ledger.residual(port) / len(eligible)
            for f in eligible:
                rate = min(fair, ledger.residual(f.dst))
                if extra_links is not None:
                    for link in extra_links(f.src, f.dst):
                        rate = min(rate, ledger.residual(link))
                if rate <= 0:
                    continue
                ledger.commit(f.src, f.dst, rate)
                allocation.rates[f.flow_id] = (
                    allocation.rates.get(f.flow_id, 0.0) + rate
                )
                allocation.scheduled_coflows.add(f.coflow_id)
            # Leftovers (receiver-capped flows) spill to eligible flows.
            for f in eligible:
                extra = min(ledger.residual(f.src), ledger.residual(f.dst))
                if extra_links is not None:
                    for link in extra_links(f.src, f.dst):
                        extra = min(extra, ledger.residual(link))
                if extra <= 0:
                    continue
                ledger.commit(f.src, f.dst, extra)
                allocation.rates[f.flow_id] = (
                    allocation.rates.get(f.flow_id, 0.0) + extra
                )
        return allocation
