"""Priority-queue bookkeeping shared by Aalo, Saath and the ablations.

The :class:`QueueTracker` maintains, per coflow, the current logical queue,
the instant it entered that queue, and (for Saath) the starvation deadline
derived from FIFO (§4.2 D5). It also computes *when* a coflow will cross its
queue threshold given current rates, which the engine uses to wake the
scheduler exactly at transition instants instead of polling.

Two transition metrics are supported, selected by the owner:

* ``"total"``  — Aalo: total bytes sent by the coflow vs ``Q_hi``.
* ``"perflow"`` — Saath: max bytes sent by any flow vs ``Q_hi / width``
  (Eq. 1, §4.2 D3).
"""

from __future__ import annotations

import math

from .._fastcore import core as _core
from ..config import SimulationConfig
from ..errors import SchedulerError
from ..simulator.flows import CoFlow


class QueueTracker:
    """Tracks queue membership, entry times, and starvation deadlines."""

    #: Observability hooks (class-level ``None``: the disabled path costs
    #: one attribute check; bound via ``Scheduler.bind_instrumentation``).
    tracer = None
    metrics = None

    def __init__(self, config: SimulationConfig, *, metric: str):
        if metric not in ("total", "perflow"):
            raise SchedulerError(f"unknown queue metric {metric!r}")
        self.config = config
        self.metric = metric
        #: coflow_id -> queue index
        self._queue: dict[int, int] = {}
        #: coflow_id -> time the coflow entered its current queue
        self._entered: dict[int, float] = {}
        #: coflow_id -> absolute starvation deadline
        self._deadline: dict[int, float] = {}
        #: queue index -> number of resident coflows (kept incrementally so
        #: deadline assignment is O(1) instead of an O(coflows) scan).
        self._population: dict[int, int] = {}

    # ---- membership ---------------------------------------------------------

    def admit(self, coflow: CoFlow, now: float) -> None:
        """Place a newly-arrived coflow in the highest-priority queue."""
        self._place(coflow, 0, now)

    def remove(self, coflow: CoFlow) -> None:
        queue = self._queue.pop(coflow.coflow_id, None)
        if queue is not None:
            self._population[queue] -= 1
        self._entered.pop(coflow.coflow_id, None)
        self._deadline.pop(coflow.coflow_id, None)

    def queue_of(self, coflow: CoFlow) -> int:
        try:
            return self._queue[coflow.coflow_id]
        except KeyError:
            raise SchedulerError(
                f"coflow {coflow.coflow_id} is not tracked; "
                f"was on_coflow_arrival delivered?"
            ) from None

    @property
    def queue_map(self) -> dict[int, int]:
        """Live ``coflow_id → queue`` mapping (read-only by convention);
        per-round hot loops index it directly instead of paying a method
        call per :meth:`queue_of` lookup."""
        return self._queue

    def deadline_of(self, coflow: CoFlow) -> float:
        return self._deadline.get(coflow.coflow_id, math.inf)

    def tracked_ids(self) -> set[int]:
        return set(self._queue)

    def population(self, queue: int) -> int:
        """Number of tracked coflows currently in ``queue``."""
        return self._population.get(queue, 0)

    # ---- transitions ----------------------------------------------------------

    def metric_value(self, coflow: CoFlow) -> float:
        """Progress metric compared against thresholds (see module doc)."""
        if self.metric == "total":
            return coflow.bytes_sent
        return coflow.max_flow_bytes_sent

    def target_queue(self, coflow: CoFlow) -> int:
        """Queue the coflow *should* be in given its progress metric.

        Queues are demotion-only here (progress only grows); §4.3 promotion
        is applied by Saath's dynamics handler, which calls
        :meth:`force_queue` explicitly.
        """
        qcfg = self.config.queues
        if self.metric == "total":
            return qcfg.queue_for_bytes(coflow.bytes_sent)
        return qcfg.queue_for_per_flow_bytes(
            coflow.max_flow_bytes_sent, coflow.width
        )

    def refresh(self, coflow: CoFlow, now: float) -> bool:
        """Move the coflow to its target queue if it crossed a threshold.

        Returns True if the queue changed. Demotion-only (never moves a
        coflow to a higher-priority queue; see :meth:`force_queue`).
        """
        current = self.queue_of(coflow)
        target = self.target_queue(coflow)
        if target > current:
            self._place(coflow, target, now)
            return True
        return False

    def force_queue(self, coflow: CoFlow, queue: int, now: float) -> bool:
        """Explicitly (re)assign ``coflow`` to ``queue`` (dynamics, §4.3).

        Promotion resets the entry time and deadline like any other queue
        change. Returns True if the queue changed.
        """
        if queue == self._queue.get(coflow.coflow_id):
            return False
        self._place(coflow, queue, now)
        return True

    def next_transition_time(self, coflow: CoFlow,
                             rates: dict[int, float],
                             pending_rows: "list[int] | None" = None,
                             ) -> float:
        """Seconds from now until the coflow crosses its queue threshold.

        Under constant ``rates`` (flow_id → bytes/s). ``inf`` if it never
        will (zero relevant rate or already in the last queue).
        ``pending_rows`` optionally narrows the walk to the coflow's
        unfinished table rows (the cluster state's pending cache) — the
        finished-flow filter below skips exactly the dropped rows, so the
        scan order over surviving flows (and every float) is unchanged.
        """
        qcfg = self.config.queues
        current = self.queue_of(coflow)
        if current >= qcfg.num_queues - 1:
            return math.inf
        hi = qcfg.hi_threshold(current)
        rates_get = rates.get
        rows = pending_rows if pending_rows is not None else coflow._rows
        if self.metric == "total":
            if rows is not None:
                # Row path: the rates lookup and liveness filter walk the
                # flow table columns (rows are in ``flows`` order, so the
                # accumulation order — and the sum — is unchanged).
                tbl = coflow._table
                ft = tbl.finish_time
                fid = tbl.flow_id
                if tbl.fastcore and _core is not None:
                    if self.metrics is not None:
                        self.metrics.inc("kernel.total_rate_rows.fastcore")
                    total_rate = _core.total_rate_rows(rows, fid, ft, rates)
                else:
                    total_rate = sum(
                        [rates_get(fid[i], 0.0)
                         for i in rows if ft[i] is None]
                    )
            else:
                total_rate = sum(
                    [rates_get(f.flow_id, 0.0) for f in coflow.flows
                     if f.finish_time is None]
                )
            if total_rate <= 0:
                return math.inf
            gap = hi - coflow.bytes_sent
            return max(gap, 0.0) / total_rate
        # Per-flow metric: first flow to reach hi / width.
        per_flow_hi = hi / coflow.width
        best = math.inf
        if rows is not None:
            tbl = coflow._table
            ft = tbl.finish_time
            fid = tbl.flow_id
            vol = tbl.volume
            bs = tbl.bytes_sent
            if tbl.fastcore and _core is not None:
                if self.metrics is not None:
                    self.metrics.inc("kernel.per_flow_transition.fastcore")
                return _core.per_flow_transition(
                    rows, fid, ft, vol, bs, rates, per_flow_hi
                )
            for i in rows:
                if ft[i] is not None:
                    continue
                rate = rates_get(fid[i], 0.0)
                if rate <= 0:
                    continue
                # A flow cannot push bytes_sent beyond its volume; crossing
                # only happens if the threshold is reachable within it.
                reachable = min(vol[i], per_flow_hi)
                if reachable <= bs[i]:
                    # Already at/over the reachable point: if it is the
                    # true threshold, the transition is immediate on next
                    # refresh.
                    if bs[i] >= per_flow_hi:
                        return 0.0
                    continue
                if per_flow_hi <= vol[i]:
                    best = min(best, (per_flow_hi - bs[i]) / rate)
            return best
        for f in coflow.flows:
            if f.finish_time is not None:
                continue
            rate = rates_get(f.flow_id, 0.0)
            if rate <= 0:
                continue
            # A flow cannot push bytes_sent beyond its volume; crossing only
            # happens if the threshold is reachable within the flow.
            reachable = min(f.volume, per_flow_hi)
            if reachable <= f.bytes_sent:
                # Already at/over the reachable point: if it is the true
                # threshold, the transition is immediate on next refresh.
                if f.bytes_sent >= per_flow_hi:
                    return 0.0
                continue
            if per_flow_hi <= f.volume:
                best = min(best, (per_flow_hi - f.bytes_sent) / rate)
        return best

    # ---- starvation deadlines (§4.2 D5) --------------------------------------

    def set_deadline(self, coflow: CoFlow, now: float) -> None:
        """Assign a fresh FIFO-derived deadline for the coflow's queue.

        ``deadline = now + d * C_q * t_q`` where ``C_q`` counts coflows
        resident in the queue (including this one) and ``t_q`` is the
        minimum queue-residency time at full port rate.
        """
        factor = self.config.deadline_factor
        if factor is None:
            self._deadline[coflow.coflow_id] = math.inf
            return
        queue = self.queue_of(coflow)
        population = max(self.population(queue), 1)
        t_q = self.config.queues.min_residency_time(
            queue, self.config.port_rate
        )
        self._deadline[coflow.coflow_id] = now + factor * population * t_q

    def starving(self, coflow: CoFlow, now: float) -> bool:
        """True if the coflow has passed its starvation deadline."""
        return now >= self._deadline.get(coflow.coflow_id, math.inf)

    def next_deadline_after(self, now: float) -> float:
        """Earliest deadline strictly in the future, or ``inf``."""
        future = [d for d in self._deadline.values() if d > now]
        return min(future, default=math.inf)

    # ---- internal -------------------------------------------------------------

    def _place(self, coflow: CoFlow, queue: int, now: float) -> None:
        previous = self._queue.get(coflow.coflow_id)
        if previous != queue:
            if previous is not None:
                self._population[previous] -= 1
            self._population[queue] = self._population.get(queue, 0) + 1
            if self.metrics is not None:
                self.metrics.inc("queue.transitions")
            if self.tracer is not None:
                self.tracer.instant(
                    "queue_transition", now, "queues",
                    {"coflow": coflow.coflow_id, "from": previous,
                     "to": queue},
                )
        self._queue[coflow.coflow_id] = queue
        self._entered[coflow.coflow_id] = now
        coflow.queue = queue
        coflow.queue_entry_time = now
        self.set_deadline(coflow, now)
        coflow.deadline = self._deadline[coflow.coflow_id]
