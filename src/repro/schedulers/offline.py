"""Offline ordering policies SCF, SRTF and LWTF (§2.4, Fig. 3).

These clairvoyant policies share one skeleton — sort active coflows by a
priority key, hand each coflow MADD rates on the residual capacity, backfill
the rest — and differ only in the key:

* **SCF** (Shortest CoFlow First): static total size, the direct port of
  SJF to coflows.
* **SRTF** (Shortest Remaining Time First): total remaining bytes, SJF with
  preemption.
* **LWTF** (Least Waiting Time First): ``t_c · k_c`` — remaining bottleneck
  duration times contention. This is the policy the paper uses to show that
  accounting for the spatial dimension beats SJF/SRTF (Fig. 3), and the
  offline ancestor of Saath's LCoF.

All three are used **only** in the motivation experiment; Saath itself never
reads flow volumes.
"""

from __future__ import annotations

from typing import Callable

from ..config import SimulationConfig
from ..simulator.flows import CoFlow
from ..simulator.ratealloc import (
    greedy_residual_rates,
    madd_rates,
    madd_rates_paths,
)
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler

#: Signature of a priority-key function: (coflow, state) → sort key.
KeyFunc = Callable[[CoFlow, ClusterState], float]


class OrderedClairvoyantScheduler(Scheduler):
    """Shared skeleton: clairvoyant ordering + MADD + greedy backfill."""

    clairvoyant = True

    def __init__(self, config: SimulationConfig):
        super().__init__(config)

    def priority_key(self, coflow: CoFlow, state: ClusterState) -> float:
        raise NotImplementedError

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        order = sorted(
            state.active_coflows,
            key=lambda c: (self.priority_key(c, state),
                           c.arrival_time, c.coflow_id),
        )
        ledger = self._round_ledger(state)
        allocation = Allocation()
        skipped: list[CoFlow] = []
        paths = state.paths
        for coflow in order:
            flows = state.schedulable_flows(coflow, now)
            if not flows:
                continue
            if paths is not None:
                # Multi-tier topology: Γ and the committed rates must
                # respect core links, not just host ports.
                rates = madd_rates_paths(coflow, ledger, paths, flows=flows)
            else:
                rates = madd_rates(coflow, ledger, flows=flows)
            if rates:
                allocation.rates.update(rates)
                allocation.scheduled_coflows.add(coflow.coflow_id)
            else:
                skipped.append(coflow)
        if skipped:
            wc_flows = [
                f for c in skipped for f in state.schedulable_flows(c, now)
            ]
            extra = greedy_residual_rates(wc_flows, ledger)
            if extra:
                allocation.rates.update(extra)
                allocation.work_conserved_coflows |= {
                    f.coflow_id for f in wc_flows if f.flow_id in extra
                }
        return allocation


class ScfScheduler(OrderedClairvoyantScheduler):
    """Shortest CoFlow First: order by static total size."""

    name = "scf"

    def priority_key(self, coflow: CoFlow, state: ClusterState) -> float:
        return coflow.total_volume


class SrtfScheduler(OrderedClairvoyantScheduler):
    """Shortest Remaining Time First: order by remaining bytes."""

    name = "srtf"

    def priority_key(self, coflow: CoFlow, state: ClusterState) -> float:
        return coflow.remaining


class LwtfScheduler(OrderedClairvoyantScheduler):
    """Least Waiting Time First: order by ``t_c · k_c`` (§2.4)."""

    name = "lwtf"

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        # Imported here, not at module level: repro.core depends on
        # repro.schedulers.base, so a top-level import would be circular.
        from ..core.contention import contention_counts

        # Contention is a property of the whole active set; compute it once
        # per round and let priority_key read the cache.
        self._contention = contention_counts(state.active_coflows, scope="all")
        return super().schedule(state, now)

    def priority_key(self, coflow: CoFlow, state: ClusterState) -> float:
        from ..core.contention import waiting_time_increase

        return waiting_time_increase(
            coflow, self._contention, self.config.port_rate
        )
