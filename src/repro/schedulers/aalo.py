"""The Aalo scheduler (Chowdhury & Stoica, SIGCOMM'15) — main baseline (§2.2).

Aalo approximates Shortest-CoFlow-First online with:

* a **global coordinator** that assigns each coflow to a logical priority
  queue based on the **total bytes** the coflow has sent so far, with
  exponentially growing queue thresholds; and
* **independent local ports**: each sender port splits its bandwidth across
  the non-empty priority queues by **weighted sharing** (Aalo §5.1 —
  higher-priority queues get larger weights, which also provides Aalo's
  starvation-freedom), serving flows FIFO (coflow arrival order) within a
  queue; leftover capacity spills down in priority order (work conserving).

Crucially the ports do **not** coordinate, which is precisely the spatial
blindness the paper attacks: flows of one coflow may be scheduled at some
ports and queued at others (out-of-sync, §2.3), and FIFO ignores contention
(§2.4).
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..config import SimulationConfig
from ..simulator.flows import CoFlow, Flow
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler
from .queues import QueueTracker


class AaloScheduler(Scheduler):
    """Aalo: total-bytes priority queues + per-port weighted FIFO.

    ``queue_weight_decay`` follows Aalo's design of giving queue ``q`` a
    weight that shrinks with priority; weight(q) = decay**(-q), normalised
    over the queues occupied at the port. A decay of 10 makes high-priority
    queues strongly dominant (close to strict priority) while guaranteeing
    forward progress for demoted coflows.
    """

    name = "aalo"
    clairvoyant = False

    def __init__(self, config: SimulationConfig,
                 *, queue_weight_decay: float = 10.0):
        super().__init__(config)
        if queue_weight_decay < 1.0:
            raise ValueError(
                f"queue_weight_decay must be >= 1, got {queue_weight_decay}"
            )
        self.queue_weight_decay = queue_weight_decay
        self.tracker = QueueTracker(config, metric="total")
        #: coflow_id -> arrival order index, the FIFO key at every port.
        self._arrival_order: dict[int, int] = {}
        self._arrival_counter = 0

    # ---- lifecycle ------------------------------------------------------------

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        self.tracker.admit(coflow, now)
        self._arrival_order[coflow.coflow_id] = self._arrival_counter
        self._arrival_counter += 1

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        self.tracker.remove(coflow)
        self._arrival_order.pop(coflow.coflow_id, None)

    # ---- scheduling -------------------------------------------------------------

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        for coflow in state.active_coflows:
            self.tracker.refresh(coflow, now)

        # Gather schedulable flows per sender port.
        per_sender: dict[int, list[tuple[tuple, Flow]]] = defaultdict(list)
        for coflow in state.active_coflows:
            queue = self.tracker.queue_of(coflow)
            fifo = self._arrival_order[coflow.coflow_id]
            for f in state.schedulable_flows(coflow, now):
                # Local priority: queue first, FIFO (arrival) within queue,
                # flow id as the final deterministic tie-break.
                per_sender[f.src].append(((queue, fifo, f.flow_id), f))

        ledger = state.make_ledger()
        allocation = Allocation()
        # Ports act independently; a deterministic port order stands in for
        # the real system's races on receiver capacity.
        for port in sorted(per_sender):
            queue_flows = sorted(per_sender[port], key=lambda kv: kv[0])
            self._allocate_port(port, queue_flows, ledger, allocation)
        return allocation

    def _allocate_port(self, port: int,
                       queue_flows: list[tuple[tuple, Flow]],
                       ledger, allocation: Allocation) -> None:
        """Weighted queue shares at one sender port, then a spill pass."""
        occupied = sorted({key[0] for key, _ in queue_flows})
        port_capacity = ledger.residual(port)
        if port_capacity <= 0:
            return
        weights = {q: self.queue_weight_decay ** (-q) for q in occupied}
        total_weight = sum(weights.values())

        # Pass 1: each occupied queue spends its weighted share, FIFO.
        for q in occupied:
            budget = port_capacity * weights[q] / total_weight
            for (queue, _, _), flow in queue_flows:
                if queue != q or budget <= 0:
                    continue
                rate = min(budget, ledger.residual(flow.src),
                           ledger.residual(flow.dst))
                if rate <= 0:
                    continue
                ledger.commit(flow.src, flow.dst, rate)
                budget -= rate
                allocation.rates[flow.flow_id] = (
                    allocation.rates.get(flow.flow_id, 0.0) + rate
                )
                allocation.scheduled_coflows.add(flow.coflow_id)

        # Pass 2 (work conservation): spill leftover capacity in strict
        # priority+FIFO order, e.g. when a queue's share outruns its flows'
        # receiver capacity.
        for _, flow in queue_flows:
            rate = min(ledger.residual(flow.src), ledger.residual(flow.dst))
            if rate <= 0:
                continue
            ledger.commit(flow.src, flow.dst, rate)
            allocation.rates[flow.flow_id] = (
                allocation.rates.get(flow.flow_id, 0.0) + rate
            )
            allocation.scheduled_coflows.add(flow.coflow_id)

    def next_wakeup(self, state: ClusterState, allocation: Allocation,
                    now: float) -> float | None:
        """Wake at the next total-bytes queue-threshold crossing."""
        best = math.inf
        for coflow in state.active_coflows:
            dt = self.tracker.next_transition_time(coflow, allocation.rates)
            if dt < math.inf:
                best = min(best, now + max(dt, 1e-9))
        return best if math.isfinite(best) else None
