"""The Aalo scheduler (Chowdhury & Stoica, SIGCOMM'15) — main baseline (§2.2).

Aalo approximates Shortest-CoFlow-First online with:

* a **global coordinator** that assigns each coflow to a logical priority
  queue based on the **total bytes** the coflow has sent so far, with
  exponentially growing queue thresholds; and
* **independent local ports**: each sender port splits its bandwidth across
  the non-empty priority queues by **weighted sharing** (Aalo §5.1 —
  higher-priority queues get larger weights, which also provides Aalo's
  starvation-freedom), serving flows FIFO (coflow arrival order) within a
  queue; leftover capacity spills down in priority order (work conserving).

Crucially the ports do **not** coordinate, which is precisely the spatial
blindness the paper attacks: flows of one coflow may be scheduled at some
ports and queued at others (out-of-sync, §2.3), and FIFO ignores contention
(§2.4).
"""

from __future__ import annotations

import math
from collections import defaultdict

from .._fastcore import core as _core
from ..config import SimulationConfig
from ..simulator.fabric import PortLedger
from ..simulator.flows import CoFlow, Flow
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler
from .queues import QueueTracker


class AaloScheduler(Scheduler):
    """Aalo: total-bytes priority queues + per-port weighted FIFO.

    ``queue_weight_decay`` follows Aalo's design of giving queue ``q`` a
    weight that shrinks with priority; weight(q) = decay**(-q), normalised
    over the queues occupied at the port. A decay of 10 makes high-priority
    queues strongly dominant (close to strict priority) while guaranteeing
    forward progress for demoted coflows.
    """

    name = "aalo"
    clairvoyant = False

    def __init__(self, config: SimulationConfig,
                 *, queue_weight_decay: float = 10.0):
        super().__init__(config)
        if queue_weight_decay < 1.0:
            raise ValueError(
                f"queue_weight_decay must be >= 1, got {queue_weight_decay}"
            )
        self.queue_weight_decay = queue_weight_decay
        #: queue index -> weight, precomputed once (the per-round pow calls
        #: used to show up in profiles; same floats, same decay rule).
        self._queue_weight = [
            queue_weight_decay ** (-q)
            for q in range(config.queues.num_queues)
        ]
        self.tracker = QueueTracker(config, metric="total")
        #: coflow_id -> arrival order index, the FIFO key at every port.
        self._arrival_order: dict[int, int] = {}
        self._arrival_counter = 0
        #: coflow_id -> True when its flow list already carries ascending
        #: flow ids (always the case for generated workloads); checked once
        #: at arrival so the per-round gather can skip re-sorting.
        self._id_sorted: dict[int, bool] = {}

    # ---- lifecycle ------------------------------------------------------------

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        self.tracker.admit(coflow, now)
        self._arrival_order[coflow.coflow_id] = self._arrival_counter
        self._arrival_counter += 1
        flows = coflow.flows
        self._id_sorted[coflow.coflow_id] = all(
            flows[i].flow_id <= flows[i + 1].flow_id
            for i in range(len(flows) - 1)
        )

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        self.tracker.remove(coflow)
        self._arrival_order.pop(coflow.coflow_id, None)
        self._id_sorted.pop(coflow.coflow_id, None)

    # ---- scheduling -------------------------------------------------------------

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        # Total-bytes demotions only fire when a coflow moved bytes, so
        # incremental rounds revisit just the engine's dirty set; full
        # rounds (first round, dynamics, incremental=False) rescan.
        if self.config.incremental and not state.delta.full:
            delta = state.delta
            dirty = delta.arrived | delta.progressed | delta.flow_completed
            # Visit in active order so deadline bookkeeping (which reads
            # queue populations at placement time) matches the full path.
            for coflow in state.active_coflows:
                if coflow.coflow_id in dirty:
                    self.tracker.refresh(coflow, now)
        else:
            for coflow in state.active_coflows:
                self.tracker.refresh(coflow, now)

        # Gather schedulable flows per sender port, already in local
        # priority order: sorting the *coflows* once by (queue, FIFO) and
        # emitting their flows in flow-id order yields exactly the per-port
        # (queue, fifo, flow_id) order the ports serve in — each coflow has
        # a unique FIFO index and its flows carry ascending ids — without
        # building or sorting a key tuple per flow. Flows are bucketed into
        # equal-queue runs directly, so the per-port pass needn't re-slice.
        queue_of = self.tracker.queue_of
        arrival_order = self._arrival_order
        # Path-aware states stay on the object path: every grant below goes
        # through ledger.fill_capped, which a LinkLedger bounds by (and
        # charges to) the flow's whole link path — the row path's inlined
        # port-only fill would ignore core links.
        if state.paths is None and state.rows_tracked():
            return self._schedule_rows(state, now)
        ordered = sorted(
            state.active_coflows,
            key=lambda c: (queue_of(c), arrival_order[c.coflow_id]),
        )
        per_sender: dict[int, list[tuple[int, list[Flow]]]] = defaultdict(list)
        for coflow in ordered:
            queue = queue_of(coflow)
            flows = state.schedulable_flows(coflow, now)
            if not self._id_sorted.get(coflow.coflow_id, True):
                flows.sort(key=lambda f: f.flow_id)
            for f in flows:
                runs = per_sender[f.src]
                if not runs or runs[-1][0] != queue:
                    runs.append((queue, [f]))
                else:
                    runs[-1][1].append(f)

        ledger = self._round_ledger(state)
        allocation = Allocation()
        # Ports act independently; a deterministic port order stands in for
        # the real system's races on receiver capacity.
        for port in sorted(per_sender):
            self._allocate_port(port, per_sender[port], ledger, allocation)
        return allocation

    def _schedule_rows(self, state: ClusterState, now: float) -> Allocation:
        """Row-path round: bucket table rows per sender, serve each port.

        Same (queue, fifo, flow_id) service order as the object path — rows
        are emitted per coflow in flow order (ascending ids, re-sorted via
        the table otherwise) — with the per-flow attribute reads replaced
        by integer-indexed column reads. The (queue, FIFO) coflow ordering
        is a plain tuple sort (no key lambda): FIFO indices are unique, so
        the trailing coflow object never gets compared.
        """
        table = state.table
        src_col = table.src
        fid = table.flow_id
        qmap = self.tracker.queue_map
        arrival_order = self._arrival_order
        id_sorted = self._id_sorted
        decorated = [
            (qmap[c.coflow_id], arrival_order[c.coflow_id], c)
            for c in state.active_coflows
        ]
        decorated.sort()
        ledger = self._round_ledger(state)
        # Compiled round core: same flatten-and-serve, with the per-port
        # bucketing (CSR over senders) and both allocation passes in C.
        # Only the exact PortLedger layout qualifies (paths is None here,
        # so that is always the case unless a subclass overrides it).
        # When a tracer wants port-level events this round runs on the
        # bit-identical Python twin instead, so per-grant state is visible.
        tracer = self.tracer
        if (table.fastcore and _core is not None
                and type(ledger) is PortLedger
                and not (tracer is not None
                         and tracer.forces_python_kernels)):
            coflow_runs = []
            for queue, _, coflow in decorated:
                rows = state.schedulable_rows(coflow, now)
                if not id_sorted.get(coflow.coflow_id, True):
                    rows = sorted(rows, key=lambda i: fid[i])
                coflow_runs.append((queue, rows))
            allocation = Allocation()
            if self.metrics is not None:
                self.metrics.inc("kernel.aalo_ports.fastcore")
            _core.aalo_ports(
                coflow_runs, self._queue_weight,
                table.src, table.dst, table.flow_id, table.coflow_id,
                ledger.capacity_list, ledger.used_list, ledger.touched_set,
                allocation.rates, allocation.scheduled_coflows,
            )
            return allocation
        if self.metrics is not None:
            self.metrics.inc("kernel.aalo_ports.python")
        per_sender: dict[int, list[tuple[int, list[int]]]] = defaultdict(list)
        for queue, _, coflow in decorated:
            rows = state.schedulable_rows(coflow, now)
            if not id_sorted.get(coflow.coflow_id, True):
                # Copy before ordering: the row list may be the live cache.
                rows = sorted(rows, key=lambda i: fid[i])
            for i in rows:
                runs = per_sender[src_col[i]]
                if not runs or runs[-1][0] != queue:
                    runs.append((queue, [i]))
                else:
                    runs[-1][1].append(i)

        allocation = Allocation()
        # Hoisted once per round: the ledger's dense lists and the table
        # columns the per-port pass indexes (property/attribute fetches per
        # port call used to add up across thousands of rounds).
        # Receivers observed exhausted anywhere this round: usage only ever
        # grows within a round, so a later fill against such a port would
        # grant 0 and commit nothing — skipping it is an exact no-op.
        dead_dst: set[int] = set()
        lists = (
            ledger.capacity_list, ledger.used_list, ledger.touched_set,
            table.flow_id, table.coflow_id, table.dst,
            allocation.rates, allocation.scheduled_coflows, dead_dst,
        )
        for port in sorted(per_sender):
            self._allocate_port_rows(port, per_sender[port], lists)
        return allocation

    def _allocate_port_rows(self, port: int,
                            runs: list[tuple[int, list[int]]],
                            lists: tuple) -> None:
        """Row-path twin of :meth:`_allocate_port` (same grants, same
        order); flow identity and receiver ports come from the table
        columns, and :meth:`~repro.simulator.fabric.PortLedger.fill_capped`
        is fused inline over the ledger's dense lists — every flow here
        sends from ``port``, so its usage rides in a local accumulator and
        is written back once (grant arithmetic and at-capacity clamps are
        identical, and receiver ports live in a disjoint id range, so no
        read can observe the deferred write). ``lists`` carries the
        round-hoisted ledger lists, table columns, allocation sinks and
        the round's dead-receiver memo — an exhausted receiver stays
        exhausted for the rest of the round (usage only grows), so
        skipping it is an exact no-op: the fill would have granted 0 and
        committed nothing."""
        (lcap, lused, touched, fid, cid, dst_col, rates, scheduled,
         dead_dst) = lists
        cap_src = lcap[port]
        used_src = lused[port]
        port_capacity = cap_src - used_src  # == ledger.residual(port)
        if port_capacity <= 0:
            return
        weight_of = self._queue_weight
        total_weight = 0.0
        for q, _ in runs:
            total_weight += weight_of[q]

        rates_get = rates.get

        # Pass 1: each occupied queue spends its weighted share, FIFO.
        for q, run in runs:
            budget = port_capacity * weight_of[q] / total_weight
            for i in run:
                if budget <= 0:
                    break
                rate = cap_src - used_src
                if rate <= 0:  # sender port exhausted
                    lused[port] = used_src
                    return
                dst = dst_col[i]
                if dst in dead_dst:
                    continue  # receiver full; later receivers may differ
                cap_dst = lcap[dst]
                other = cap_dst - lused[dst]
                if other < rate:
                    rate = other
                if budget < rate:
                    rate = budget
                if rate <= 0:
                    # Sender residual and budget are positive here, so the
                    # receiver must be exhausted: memoise it.
                    dead_dst.add(dst)
                    continue
                new_used = used_src + rate
                used_src = new_used if new_used < cap_src else cap_src
                new_used = lused[dst] + rate
                lused[dst] = new_used if new_used < cap_dst else cap_dst
                touched.add(port)
                touched.add(dst)
                budget -= rate
                flow_id = fid[i]
                rates[flow_id] = rates_get(flow_id, 0.0) + rate
                scheduled.add(cid[i])

        # Pass 2 (work conservation): spill leftover capacity in strict
        # priority+FIFO order, e.g. when a queue's share outruns its flows'
        # receiver capacity.
        for _, run in runs:
            for i in run:
                rate = cap_src - used_src
                if rate <= 0:  # sender port exhausted
                    lused[port] = used_src
                    return
                dst = dst_col[i]
                if dst in dead_dst:
                    continue
                cap_dst = lcap[dst]
                other = cap_dst - lused[dst]
                if other < rate:
                    rate = other
                if rate <= 0:
                    dead_dst.add(dst)
                    continue
                new_used = used_src + rate
                used_src = new_used if new_used < cap_src else cap_src
                new_used = lused[dst] + rate
                lused[dst] = new_used if new_used < cap_dst else cap_dst
                touched.add(port)
                touched.add(dst)
                flow_id = fid[i]
                rates[flow_id] = rates_get(flow_id, 0.0) + rate
                scheduled.add(cid[i])
        lused[port] = used_src

    def _allocate_port(self, port: int,
                       runs: list[tuple[int, list[Flow]]],
                       ledger, allocation: Allocation) -> None:
        """Weighted queue shares at one sender port, then a spill pass.

        ``runs`` holds the port's schedulable flows sliced into runs of
        equal queue, in (queue, fifo, flow_id) order. Each grant goes
        through :meth:`~repro.simulator.fabric.PortLedger.fill_capped` —
        one fused residual/commit call whose rate is the same
        ``min(budget, residual(src), residual(dst))`` as the unfused pair.
        """
        port_capacity = ledger.residual(port)
        if port_capacity <= 0:
            return
        weight_of = self._queue_weight
        total_weight = 0.0
        for q, _ in runs:
            total_weight += weight_of[q]

        fill_capped = ledger.fill_capped
        rates = allocation.rates
        rates_get = rates.get
        scheduled = allocation.scheduled_coflows

        # Every flow here sends from ``port``, so once the port's residual
        # hits zero no later flow (in either pass) can receive a rate —
        # the ledger's -1.0 sentinel bails out instead of scanning the
        # remaining no-op iterations.

        # Pass 1: each occupied queue spends its weighted share, FIFO.
        for q, run in runs:
            budget = port_capacity * weight_of[q] / total_weight
            for flow in run:
                if budget <= 0:
                    break
                rate = fill_capped(port, flow.dst, budget)
                if rate <= 0:
                    if rate < 0:
                        return  # sender port exhausted
                    continue  # receiver full; later receivers may differ
                budget -= rate
                rates[flow.flow_id] = rates_get(flow.flow_id, 0.0) + rate
                scheduled.add(flow.coflow_id)

        # Pass 2 (work conservation): spill leftover capacity in strict
        # priority+FIFO order, e.g. when a queue's share outruns its flows'
        # receiver capacity.
        for _, run in runs:
            for flow in run:
                rate = fill_capped(port, flow.dst, math.inf)
                if rate <= 0:
                    if rate < 0:
                        return  # sender port exhausted
                    continue
                rates[flow.flow_id] = rates_get(flow.flow_id, 0.0) + rate
                scheduled.add(flow.coflow_id)

    def next_wakeup(self, state: ClusterState, allocation: Allocation,
                    now: float) -> float | None:
        """Wake at the next total-bytes queue-threshold crossing."""
        if self.config.incremental:
            # Zero-rate coflows cannot cross a total-bytes threshold.
            candidates = [
                state.coflow(cid) for cid in allocation.scheduled_coflows
            ]
        else:
            candidates = state.active_coflows
        best = math.inf
        for coflow in candidates:
            dt = self.tracker.next_transition_time(
                coflow, allocation.rates,
                pending_rows=state.pending_rows(coflow),
            )
            if dt < math.inf:
                best = min(best, now + max(dt, 1e-9))
        return best if math.isfinite(best) else None
