"""The Aalo scheduler (Chowdhury & Stoica, SIGCOMM'15) — main baseline (§2.2).

Aalo approximates Shortest-CoFlow-First online with:

* a **global coordinator** that assigns each coflow to a logical priority
  queue based on the **total bytes** the coflow has sent so far, with
  exponentially growing queue thresholds; and
* **independent local ports**: each sender port splits its bandwidth across
  the non-empty priority queues by **weighted sharing** (Aalo §5.1 —
  higher-priority queues get larger weights, which also provides Aalo's
  starvation-freedom), serving flows FIFO (coflow arrival order) within a
  queue; leftover capacity spills down in priority order (work conserving).

Crucially the ports do **not** coordinate, which is precisely the spatial
blindness the paper attacks: flows of one coflow may be scheduled at some
ports and queued at others (out-of-sync, §2.3), and FIFO ignores contention
(§2.4).
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..config import SimulationConfig
from ..simulator.flows import CoFlow, Flow
from ..simulator.state import ClusterState
from .base import Allocation, Scheduler
from .queues import QueueTracker


class AaloScheduler(Scheduler):
    """Aalo: total-bytes priority queues + per-port weighted FIFO.

    ``queue_weight_decay`` follows Aalo's design of giving queue ``q`` a
    weight that shrinks with priority; weight(q) = decay**(-q), normalised
    over the queues occupied at the port. A decay of 10 makes high-priority
    queues strongly dominant (close to strict priority) while guaranteeing
    forward progress for demoted coflows.
    """

    name = "aalo"
    clairvoyant = False

    def __init__(self, config: SimulationConfig,
                 *, queue_weight_decay: float = 10.0):
        super().__init__(config)
        if queue_weight_decay < 1.0:
            raise ValueError(
                f"queue_weight_decay must be >= 1, got {queue_weight_decay}"
            )
        self.queue_weight_decay = queue_weight_decay
        self.tracker = QueueTracker(config, metric="total")
        #: coflow_id -> arrival order index, the FIFO key at every port.
        self._arrival_order: dict[int, int] = {}
        self._arrival_counter = 0
        #: coflow_id -> True when its flow list already carries ascending
        #: flow ids (always the case for generated workloads); checked once
        #: at arrival so the per-round gather can skip re-sorting.
        self._id_sorted: dict[int, bool] = {}

    # ---- lifecycle ------------------------------------------------------------

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        self.tracker.admit(coflow, now)
        self._arrival_order[coflow.coflow_id] = self._arrival_counter
        self._arrival_counter += 1
        flows = coflow.flows
        self._id_sorted[coflow.coflow_id] = all(
            flows[i].flow_id <= flows[i + 1].flow_id
            for i in range(len(flows) - 1)
        )

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        self.tracker.remove(coflow)
        self._arrival_order.pop(coflow.coflow_id, None)
        self._id_sorted.pop(coflow.coflow_id, None)

    # ---- scheduling -------------------------------------------------------------

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        # Total-bytes demotions only fire when a coflow moved bytes, so
        # incremental rounds revisit just the engine's dirty set; full
        # rounds (first round, dynamics, incremental=False) rescan.
        if self.config.incremental and not state.delta.full:
            delta = state.delta
            dirty = delta.arrived | delta.progressed | delta.flow_completed
            # Visit in active order so deadline bookkeeping (which reads
            # queue populations at placement time) matches the full path.
            for coflow in state.active_coflows:
                if coflow.coflow_id in dirty:
                    self.tracker.refresh(coflow, now)
        else:
            for coflow in state.active_coflows:
                self.tracker.refresh(coflow, now)

        # Gather schedulable flows per sender port, already in local
        # priority order: sorting the *coflows* once by (queue, FIFO) and
        # emitting their flows in flow-id order yields exactly the per-port
        # (queue, fifo, flow_id) order the ports serve in — each coflow has
        # a unique FIFO index and its flows carry ascending ids — without
        # building or sorting a key tuple per flow.
        ordered = sorted(
            state.active_coflows,
            key=lambda c: (self.tracker.queue_of(c),
                           self._arrival_order[c.coflow_id]),
        )
        per_sender: dict[int, list[tuple[int, Flow]]] = defaultdict(list)
        for coflow in ordered:
            queue = self.tracker.queue_of(coflow)
            flows = state.schedulable_flows(coflow, now)
            if not self._id_sorted.get(coflow.coflow_id, True):
                flows.sort(key=lambda f: f.flow_id)
            for f in flows:
                per_sender[f.src].append((queue, f))

        ledger = self._round_ledger(state)
        allocation = Allocation()
        # Ports act independently; a deterministic port order stands in for
        # the real system's races on receiver capacity.
        for port in sorted(per_sender):
            self._allocate_port(port, per_sender[port], ledger, allocation)
        return allocation

    def _allocate_port(self, port: int,
                       queue_flows: list[tuple[int, Flow]],
                       ledger, allocation: Allocation) -> None:
        """Weighted queue shares at one sender port, then a spill pass."""
        port_capacity = ledger.residual(port)
        if port_capacity <= 0:
            return
        # ``queue_flows`` arrives sorted by (queue, fifo, flow_id); slice it
        # into runs of equal queue so each queue's FIFO pass walks only its
        # own flows instead of rescanning the whole port.
        runs: list[tuple[int, list[Flow]]] = []
        for queue, flow in queue_flows:
            if not runs or runs[-1][0] != queue:
                runs.append((queue, []))
            runs[-1][1].append(flow)
        weights = {q: self.queue_weight_decay ** (-q) for q, _ in runs}
        total_weight = sum(weights.values())

        residual = ledger.residual
        commit = ledger.commit
        rates = allocation.rates
        scheduled = allocation.scheduled_coflows

        # Every flow here sends from ``port``, so once the port's residual
        # hits zero no later flow (in either pass) can receive a rate —
        # bail out instead of scanning the remaining no-op iterations.

        # Pass 1: each occupied queue spends its weighted share, FIFO.
        for q, run in runs:
            budget = port_capacity * weights[q] / total_weight
            for flow in run:
                if budget <= 0:
                    break
                port_left = residual(port)
                if port_left <= 0:
                    return
                rate = min(budget, port_left, residual(flow.dst))
                if rate <= 0:
                    continue
                commit(flow.src, flow.dst, rate)
                budget -= rate
                rates[flow.flow_id] = rates.get(flow.flow_id, 0.0) + rate
                scheduled.add(flow.coflow_id)

        # Pass 2 (work conservation): spill leftover capacity in strict
        # priority+FIFO order, e.g. when a queue's share outruns its flows'
        # receiver capacity.
        for _, flow in queue_flows:
            port_left = residual(port)
            if port_left <= 0:
                return
            rate = min(port_left, residual(flow.dst))
            if rate <= 0:
                continue
            commit(flow.src, flow.dst, rate)
            rates[flow.flow_id] = rates.get(flow.flow_id, 0.0) + rate
            scheduled.add(flow.coflow_id)

    def next_wakeup(self, state: ClusterState, allocation: Allocation,
                    now: float) -> float | None:
        """Wake at the next total-bytes queue-threshold crossing."""
        if self.config.incremental:
            # Zero-rate coflows cannot cross a total-bytes threshold.
            candidates = [
                state.coflow(cid) for cid in allocation.scheduled_coflows
            ]
        else:
            candidates = state.active_coflows
        best = math.inf
        for coflow in candidates:
            dt = self.tracker.next_transition_time(coflow, allocation.rates)
            if dt < math.inf:
                best = min(best, now + max(dt, 1e-9))
        return best if math.isfinite(best) else None
