"""Saath ablation variants used in the Fig. 10–12 breakdown.

The paper decomposes Saath's gain over Aalo into its three ideas by
evaluating the partial designs:

* ``A/N + FIFO`` — all-or-none admission and work conservation, but FIFO
  ordering within queues and Aalo's total-bytes queue metric;
* ``A/N + P/F + FIFO`` — adds the per-flow queue threshold;
* ``A/N + P/F + LCoF`` — the full Saath.

These are thin constructors over :class:`~repro.core.saath.SaathScheduler`'s
ablation switches, given stable registry names.
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..core.saath import SaathScheduler


class AllOrNoneFifoScheduler(SaathScheduler):
    """A/N + FIFO: all-or-none only (first bar of Fig. 10)."""

    name = "an-fifo"

    def __init__(self, config: SimulationConfig):
        super().__init__(
            config, use_lcof=False, use_perflow_threshold=False
        )


class AllOrNonePerFlowFifoScheduler(SaathScheduler):
    """A/N + P/F + FIFO: adds per-flow thresholds (second bar of Fig. 10)."""

    name = "an-pf-fifo"

    def __init__(self, config: SimulationConfig):
        super().__init__(
            config, use_lcof=False, use_perflow_threshold=True
        )


class SaathNoWorkConservationScheduler(SaathScheduler):
    """Full Saath minus work conservation.

    Not a paper figure, but the design discussion (§3, Fig. 4) argues work
    conservation is what keeps all-or-none from wasting ports; this variant
    lets the ablation benchmarks quantify that claim.
    """

    name = "saath-no-wc"

    def __init__(self, config: SimulationConfig):
        super().__init__(config, work_conservation=False)
