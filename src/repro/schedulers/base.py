"""Scheduler interface shared by Saath and all baselines.

A scheduler is a pure policy object: the engine hands it a
:class:`~repro.simulator.state.ClusterState` and the current time, and gets
back an :class:`Allocation` (flow-id → rate). The engine applies rates,
advances fluid state to the next event, and calls back. Event hooks
(``on_coflow_arrival`` etc.) let stateful schedulers maintain queue
assignments and deadlines incrementally.

``next_wakeup`` lets a scheduler request a recomputation *before* any
external event — Saath and Aalo use it for queue-threshold crossings and
starvation-deadline expiries, which change scheduling decisions even though
no flow completed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..simulator.flows import CoFlow, Flow
from ..simulator.state import ClusterState


@dataclass(slots=True)
class Allocation:
    """Result of one scheduling round: rates plus optional diagnostics."""

    #: flow_id -> rate in bytes/second. Flows absent from the map get 0.
    rates: dict[int, float] = field(default_factory=dict)
    #: coflow ids admitted by the primary policy this round (diagnostics).
    scheduled_coflows: set[int] = field(default_factory=set)
    #: coflow ids that only received work-conservation rates (diagnostics).
    work_conserved_coflows: set[int] = field(default_factory=set)

    def rate_of(self, flow_id: int) -> float:
        return self.rates.get(flow_id, 0.0)


class Scheduler(abc.ABC):
    """Abstract base class for coflow schedulers.

    Subclasses receive the shared :class:`SimulationConfig` so queue
    geometry, the starvation factor and feature flags are consistent across
    the whole experiment.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"
    #: True if the policy reads flow volumes (offline / clairvoyant).
    clairvoyant: bool = False
    #: Observability hooks (class-level ``None`` so the disabled path is a
    #: single attribute check with no per-instance storage cost; see
    #: :meth:`bind_instrumentation`).
    tracer = None
    metrics = None

    def __init__(self, config: SimulationConfig):
        self.config = config

    def bind_instrumentation(self, tracer, metrics) -> None:
        """Attach observability hooks (both may be ``None`` to detach).

        The session calls this at construction and after instrumentation
        is (re)attached; schedulers owning a
        :class:`~repro.schedulers.queues.QueueTracker` propagate the hooks
        so queue transitions are traced too.
        """
        self.tracer = tracer
        self.metrics = metrics
        tracker = getattr(self, "tracker", None)
        if tracker is not None:
            tracker.tracer = tracer
            tracker.metrics = metrics

    def _round_ledger(self, state: ClusterState):
        """Residual-capacity ledger for one scheduling round.

        Incremental mode reuses the state's cached ledger (cleared in
        O(changed ports)); the full-recompute fallback builds a fresh one
        exactly as the original implementation did.
        """
        if self.config.incremental:
            return state.acquire_ledger()
        return state.make_ledger()

    # ---- lifecycle hooks (optional) ----------------------------------------

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        """Called when ``coflow`` becomes active (arrival or DAG release)."""

    def on_flow_completion(self, flow: Flow, coflow: CoFlow, now: float) -> None:
        """Called when one flow of an active coflow finishes."""

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        """Called when the last flow of ``coflow`` finishes."""

    # ---- the policy ---------------------------------------------------------

    @abc.abstractmethod
    def schedule(self, state: ClusterState, now: float) -> Allocation:
        """Compute rates for every active flow at time ``now``."""

    def next_wakeup(self, state: ClusterState, allocation: Allocation,
                    now: float) -> float | None:
        """Earliest future instant the scheduler wants to re-run, if any.

        Returning ``None`` means "no internal trigger" — the engine will
        still re-run the scheduler at every external event and flow
        completion. Implementations must return a strictly-future time.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
