"""Job-completion-time accounting with shuffle fractions (§7.2, Fig. 16).

A data-analytics job spends part of its life computing and part shuffling.
Improving CCT only accelerates the shuffle part, so the paper reports JCT
speedups bucketed by the fraction of job time spent in shuffle (following
the distribution used in the Aalo paper).

Model: job ``j`` has a fixed compute time and a shuffle whose duration is
the job's coflow CCT under the scheduler being evaluated. Given the shuffle
fraction ``s_j`` *under the baseline* (Aalo), the compute time is inferred
as ``compute_j = cct_base_j * (1 - s_j) / s_j`` and held constant across
schedulers; then::

    jct(policy) = compute_j + cct_policy_j
    speedup_j   = jct(baseline) / jct(policy)

which reproduces exactly the dilution effect Fig. 16 shows: shuffle-light
jobs see speedups near 1 regardless of the CCT gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigError
from ..rng import make_rng

#: Fig. 16's shuffle-fraction buckets (labels match the x-axis).
SHUFFLE_BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("<25%", 0.0, 0.25),
    ("25-50%", 0.25, 0.50),
    ("50-75%", 0.50, 0.75),
    (">=75%", 0.75, 1.0 + 1e-9),
)


@dataclass(frozen=True)
class JobOutcome:
    """JCT of one job under baseline and candidate schedulers."""

    job_id: int
    shuffle_fraction: float
    compute_time: float
    jct_baseline: float
    jct_candidate: float

    @property
    def speedup(self) -> float:
        if self.jct_candidate <= 0:
            raise ConfigError(f"job {self.job_id}: non-positive candidate JCT")
        return self.jct_baseline / self.jct_candidate

    @property
    def bucket(self) -> str:
        for label, lo, hi in SHUFFLE_BUCKETS:
            if lo <= self.shuffle_fraction < hi:
                return label
        return SHUFFLE_BUCKETS[-1][0]


def sample_shuffle_fractions(n: int, seed: int = 0) -> np.ndarray:
    """Shuffle fractions for ``n`` jobs, following Aalo's distribution.

    Aalo (SIGCOMM'15, Fig. 11) buckets its jobs roughly evenly across the
    four quartile buckets with a mild tilt toward shuffle-light jobs; we use
    bucket weights (0.30, 0.25, 0.25, 0.20) and uniform placement within a
    bucket. The exact mix only affects the "All" column's weighting.
    """
    rng = make_rng(seed)
    weights = np.array([0.30, 0.25, 0.25, 0.20])
    bucket_idx = rng.choice(4, size=n, p=weights)
    lows = np.array([b[1] for b in SHUFFLE_BUCKETS])[bucket_idx]
    highs = np.minimum(
        np.array([b[2] for b in SHUFFLE_BUCKETS])[bucket_idx], 1.0
    )
    fractions = rng.uniform(lows, highs)
    # A zero fraction would make the compute time undefined.
    return np.clip(fractions, 0.01, 0.99)


def job_outcomes(
    cct_baseline: Mapping[int, float],
    cct_candidate: Mapping[int, float],
    shuffle_fractions: Sequence[float] | np.ndarray,
) -> list[JobOutcome]:
    """Combine per-coflow CCTs into per-job JCT outcomes.

    Jobs are identified with coflows one-to-one here (each trace coflow is
    one job's shuffle stage, as in the paper's testbed replay);
    ``shuffle_fractions`` is indexed positionally over the *sorted* coflow
    ids so results are reproducible regardless of dict ordering.
    """
    ids = sorted(cct_baseline)
    if len(shuffle_fractions) < len(ids):
        raise ConfigError(
            f"need {len(ids)} shuffle fractions, got {len(shuffle_fractions)}"
        )
    outcomes = []
    for pos, cid in enumerate(ids):
        if cid not in cct_candidate:
            raise ConfigError(f"coflow {cid} missing from candidate CCTs")
        s = float(shuffle_fractions[pos])
        base_cct = cct_baseline[cid]
        if base_cct <= 0:
            continue  # zero-byte coflow: no shuffle, no speedup signal
        compute = base_cct * (1.0 - s) / s
        outcomes.append(
            JobOutcome(
                job_id=cid,
                shuffle_fraction=s,
                compute_time=compute,
                jct_baseline=compute + base_cct,
                jct_candidate=compute + cct_candidate[cid],
            )
        )
    return outcomes


def bucket_speedups(outcomes: Sequence[JobOutcome]) -> dict[str, list[float]]:
    """Group speedups by Fig. 16 bucket, plus an ``"All"`` bucket."""
    buckets: dict[str, list[float]] = {label: [] for label, _, _ in SHUFFLE_BUCKETS}
    buckets["All"] = []
    for o in outcomes:
        buckets[o.bucket].append(o.speedup)
        buckets["All"].append(o.speedup)
    return buckets
