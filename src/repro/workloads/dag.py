"""Multi-stage DAG and multi-wave job modelling (§4.3).

Analytics queries are DAGs of dependent stages; Saath represents every
stage (and every wave of a multi-wave MapReduce job) as **one coflow** and
serialises dependent stages through the ``depends_on`` mechanism of the
engine: a stage coflow becomes active only when all its parents have
completed, and its CCT clock starts at release.

This module provides builders for the common DAG shapes:

* :func:`chain_stages` — a linear pipeline (also models multi-wave jobs,
  where each wave is a stage);
* :func:`fan_in_stages` — several parallel stages feeding a final stage
  (the map-side/shuffle/reduce-side pattern of Hive queries);
* :func:`validate_dag` — cycle/unknown-reference checking used by the
  engine's workload validation and by user code building custom DAGs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import ConfigError
from ..simulator.flows import CoFlow, make_coflow

Transfers = Sequence[tuple[int, int, float]]


def chain_stages(
    base_id: int,
    arrival_time: float,
    stage_transfers: Sequence[Transfers],
    *,
    flow_id_start: int = 0,
    job_id: int | None = None,
) -> list[CoFlow]:
    """Build a linear chain: stage ``i`` depends on stage ``i-1``.

    ``stage_transfers[i]`` lists the ``(src, dst, bytes)`` triples of stage
    ``i``'s coflow. Coflow ids are ``base_id, base_id+1, ...``; all stages
    carry the same ``arrival_time`` (later stages are gated by the DAG, not
    the clock) and the same ``job_id``.
    """
    if not stage_transfers:
        raise ConfigError("chain needs at least one stage")
    coflows = []
    fid = flow_id_start
    for i, transfers in enumerate(stage_transfers):
        deps = (base_id + i - 1,) if i > 0 else ()
        c = make_coflow(
            base_id + i, arrival_time, transfers,
            flow_id_start=fid, depends_on=deps, job_id=job_id,
        )
        fid += len(c.flows)
        coflows.append(c)
    return coflows


def fan_in_stages(
    base_id: int,
    arrival_time: float,
    branch_transfers: Sequence[Transfers],
    final_transfers: Transfers,
    *,
    flow_id_start: int = 0,
    job_id: int | None = None,
) -> list[CoFlow]:
    """Build a fan-in DAG: N parallel branches, then one dependent stage.

    Branch coflows get ids ``base_id .. base_id+N-1``; the final stage id is
    ``base_id+N`` and depends on every branch.
    """
    if not branch_transfers:
        raise ConfigError("fan-in needs at least one branch")
    coflows = []
    fid = flow_id_start
    for i, transfers in enumerate(branch_transfers):
        c = make_coflow(base_id + i, arrival_time, transfers,
                        flow_id_start=fid, job_id=job_id)
        fid += len(c.flows)
        coflows.append(c)
    final = make_coflow(
        base_id + len(branch_transfers), arrival_time, final_transfers,
        flow_id_start=fid,
        depends_on=tuple(base_id + i for i in range(len(branch_transfers))),
        job_id=job_id,
    )
    coflows.append(final)
    return coflows


def job_stream(jobs: Iterable[Sequence[CoFlow]]) -> Iterator[CoFlow]:
    """Flatten an arrival-ordered iterable of DAG jobs into a coflow stream.

    Each job is a stage list built by :func:`chain_stages` /
    :func:`fan_in_stages`: all stages of a job share one arrival time
    (later stages are DAG-gated, not clock-gated), so flattening jobs in
    arrival order yields a valid time-ordered stream for
    :meth:`repro.simulator.scenario.Scenario.from_stream`. Jobs may come
    from a generator, so an open-ended queue of analytics queries streams
    through the simulator in O(active) memory.
    """
    for stages in jobs:
        yield from stages


def validate_dag(coflows: Iterable[CoFlow]) -> None:
    """Check that DAG references resolve and contain no cycles.

    Raises :class:`~repro.errors.ConfigError` on an unknown dependency or a
    dependency cycle (which would deadlock the simulation); the cycle error
    spells out the full dependency path (``DAG cycle: a -> b -> c -> a``).
    Traversal is iterative, so arbitrarily deep chains (thousand-stage
    training jobs) validate without hitting the interpreter recursion limit.
    """
    by_id = {c.coflow_id: c for c in coflows}
    for c in by_id.values():
        for dep in c.depends_on:
            if dep not in by_id:
                raise ConfigError(
                    f"coflow {c.coflow_id} depends on unknown coflow {dep}"
                )

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {cid: WHITE for cid in by_id}
    for root in by_id:
        if colour[root] != WHITE:
            continue
        colour[root] = GREY
        path = [root]
        stack = [iter(by_id[root].depends_on)]
        while stack:
            advanced = False
            for dep in stack[-1]:
                if colour[dep] == GREY:
                    cycle = path[path.index(dep):] + [dep]
                    raise ConfigError(
                        f"DAG cycle: {' -> '.join(map(str, cycle))}"
                    )
                if colour[dep] == WHITE:
                    colour[dep] = GREY
                    path.append(dep)
                    stack.append(iter(by_id[dep].depends_on))
                    advanced = True
                    break
            if not advanced:
                colour[path.pop()] = BLACK
                stack.pop()


def critical_path_stages(coflows: Iterable[CoFlow]) -> list[int]:
    """Longest dependency chain (by stage count), as a list of coflow ids.

    Useful for asserting DAG-experiment expectations: the job completion
    time is bounded below by the critical path's serialised CCTs.
    """
    by_id = {c.coflow_id: c for c in coflows}
    validate_dag(by_id.values())
    # Iterative post-order (deep chains must not exhaust the recursion
    # limit); ties keep the first-seen dependency, matching dict order.
    memo: dict[int, list[int]] = {}
    for root in by_id:
        stack = [root]
        while stack:
            cid = stack[-1]
            if cid in memo:
                stack.pop()
                continue
            pending = [d for d in by_id[cid].depends_on if d not in memo]
            if pending:
                stack.extend(pending)
                continue
            best: list[int] = []
            for dep in by_id[cid].depends_on:
                cand = memo[dep]
                if len(cand) > len(best):
                    best = cand
            memo[cid] = best + [cid]
            stack.pop()

    overall: list[int] = []
    for cid in by_id:
        cand = memo[cid]
        if len(cand) > len(overall):
            overall = cand
    return overall
