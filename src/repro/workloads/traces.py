"""Trace I/O in the public ``coflow-benchmark`` format (§6.1 traces).

Feeds the trace-driven side of every §6 experiment: the paper evaluates on
the Facebook Hive/MapReduce trace (526 coflows, 150 ports) and an OSP trace
(O(1000) jobs, O(100) ports). The FB trace is published at
github.com/coflow/coflow-benchmark in a line-oriented text format:

.. code-block:: text

    <numPorts> <numCoflows>
    <id> <arrivalMillis> <numMappers> <m1 ... mM> <numReducers> <r1:sizeMB ... rR:sizeMB>

Each coflow is a mapper×reducer shuffle: machine indices ``m*`` send,
``r*:sizeMB`` receive ``sizeMB`` megabytes in total, split evenly over the
mappers. This module reads and writes that format, so the real Facebook
trace drops into every experiment unchanged; the synthetic generators in
:mod:`repro.workloads.synthetic` emit the same structure.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..errors import TraceFormatError
from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow, Flow
from ..units import MB, MSEC


@dataclass(frozen=True)
class TraceCoflow:
    """One parsed trace line (mapper/reducer form, before flow expansion)."""

    coflow_id: int
    arrival_ms: float
    mappers: tuple[int, ...]
    #: (reducer machine, total received bytes) pairs.
    reducers: tuple[tuple[int, float], ...]

    @property
    def width(self) -> int:
        return len(self.mappers) * len(self.reducers)

    @property
    def total_bytes(self) -> float:
        return sum(size for _, size in self.reducers)


@dataclass(frozen=True)
class Trace:
    """A parsed trace: port count plus coflows in file order."""

    num_ports: int
    coflows: tuple[TraceCoflow, ...]

    def __len__(self) -> int:
        return len(self.coflows)


def parse_trace(text: str) -> Trace:
    """Parse coflow-benchmark text into a :class:`Trace`."""
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise TraceFormatError("empty trace")
    header = lines[0].split()
    if len(header) != 2:
        raise TraceFormatError(
            f"header must be '<numPorts> <numCoflows>', got {lines[0]!r}"
        )
    try:
        num_ports, num_coflows = int(header[0]), int(header[1])
    except ValueError as exc:
        raise TraceFormatError(f"bad header {lines[0]!r}") from exc
    if len(lines) - 1 != num_coflows:
        raise TraceFormatError(
            f"header promises {num_coflows} coflows, file has {len(lines) - 1}"
        )

    coflows = []
    for lineno, line in enumerate(lines[1:], start=2):
        coflows.append(_parse_coflow_line(line, lineno, num_ports))
    return Trace(num_ports=num_ports, coflows=tuple(coflows))


def _parse_coflow_line(line: str, lineno: int, num_ports: int) -> TraceCoflow:
    tokens = line.split()
    try:
        coflow_id = int(tokens[0])
        arrival_ms = float(tokens[1])
        num_mappers = int(tokens[2])
        mappers = tuple(int(t) for t in tokens[3:3 + num_mappers])
        cursor = 3 + num_mappers
        num_reducers = int(tokens[cursor])
        reducer_tokens = tokens[cursor + 1:cursor + 1 + num_reducers]
        if (len(mappers) != num_mappers
                or len(reducer_tokens) != num_reducers):
            raise IndexError
        reducers = []
        for tok in reducer_tokens:
            machine_str, _, size_str = tok.partition(":")
            reducers.append((int(machine_str), float(size_str) * MB))
        if cursor + 1 + num_reducers != len(tokens):
            raise TraceFormatError(
                f"line {lineno}: trailing tokens after reducers"
            )
    except TraceFormatError:
        raise
    except (ValueError, IndexError) as exc:
        raise TraceFormatError(f"line {lineno}: malformed coflow {line!r}") from exc

    for m in mappers:
        if not 0 <= m < num_ports:
            raise TraceFormatError(
                f"line {lineno}: mapper machine {m} out of range"
            )
    for r, size in reducers:
        if not 0 <= r < num_ports:
            raise TraceFormatError(
                f"line {lineno}: reducer machine {r} out of range"
            )
        if size < 0:
            raise TraceFormatError(f"line {lineno}: negative reducer size")
    if not mappers or not reducers:
        raise TraceFormatError(f"line {lineno}: coflow needs mappers and reducers")
    if arrival_ms < 0:
        raise TraceFormatError(f"line {lineno}: negative arrival time")
    return TraceCoflow(coflow_id, arrival_ms, mappers, tuple(reducers))


def load_trace(path: str | Path) -> Trace:
    """Read and parse a trace file."""
    return parse_trace(Path(path).read_text())


def dump_trace(trace: Trace, stream: TextIO | None = None) -> str:
    """Serialise a :class:`Trace` back to coflow-benchmark text."""
    out = stream or io.StringIO()
    out.write(f"{trace.num_ports} {len(trace.coflows)}\n")
    for c in trace.coflows:
        # repr() keeps full float precision; together with MB being a power
        # of two, dump->parse round-trips bit-exactly.
        reducer_str = " ".join(
            f"{machine}:{float(size) / MB!r}" for machine, size in c.reducers
        )
        mapper_str = " ".join(str(m) for m in c.mappers)
        out.write(
            f"{c.coflow_id} {float(c.arrival_ms)!r} {len(c.mappers)} "
            f"{mapper_str} {len(c.reducers)} {reducer_str}\n"
        )
    if stream is None:
        return out.getvalue()  # type: ignore[union-attr]
    return ""


def save_trace(trace: Trace, path: str | Path) -> None:
    Path(path).write_text(dump_trace(trace))


def expand_trace_coflow(
    tc: TraceCoflow, fabric: Fabric, flow_id_start: int = 0
) -> CoFlow:
    """Expand one mapper×reducer trace line into a simulator coflow.

    Each reducer's bytes are split evenly over the mappers (the standard
    coflow-benchmark interpretation); a mapper co-located with a reducer on
    the same machine still generates a flow because sender and receiver
    ports are distinct directions of the NIC. Arrival times convert from
    milliseconds to seconds. Flow ids are assigned sequentially from
    ``flow_id_start``; the returned coflow's width tells the caller where
    the next block starts.
    """
    flow_id = flow_id_start
    flows: list[Flow] = []
    for reducer, total in tc.reducers:
        per_mapper = total / len(tc.mappers)
        if per_mapper <= 0:
            continue
        for mapper in tc.mappers:
            flows.append(
                Flow(
                    flow_id=flow_id,
                    coflow_id=tc.coflow_id,
                    src=fabric.sender_port(mapper),
                    dst=fabric.receiver_port(reducer),
                    volume=per_mapper,
                )
            )
            flow_id += 1
    if not flows:
        # Degenerate zero-byte coflow: keep one token flow so the
        # coflow still arrives/completes in the simulation.
        mapper, (reducer, _) = tc.mappers[0], tc.reducers[0]
        flows.append(
            Flow(flow_id=flow_id, coflow_id=tc.coflow_id,
                 src=fabric.sender_port(mapper),
                 dst=fabric.receiver_port(reducer), volume=0.0)
        )
        flow_id += 1
    return CoFlow(
        coflow_id=tc.coflow_id,
        arrival_time=tc.arrival_ms * MSEC,
        flows=flows,
    )


def trace_to_coflows(trace: Trace, fabric: Fabric) -> list[CoFlow]:
    """Expand every trace line into simulator coflows (see
    :func:`expand_trace_coflow` for the flow-expansion rules)."""
    return list(iter_trace_coflows(trace, fabric))


def iter_trace_coflows(trace: Trace, fabric: Fabric) -> Iterator[CoFlow]:
    """Lazily expand trace lines into coflows, in trace order.

    The streaming twin of :func:`trace_to_coflows`: coflow objects are
    created one at a time as the consumer pulls, so a trace fed into
    :meth:`repro.simulator.scenario.Scenario.from_stream` holds only the
    active coflows in memory. Flow-id numbering matches the batch expansion
    exactly. The coflow-benchmark format is arrival-ordered by convention;
    the scenario layer rejects out-of-order streams at the offending line.
    """
    if fabric.num_machines < trace.num_ports:
        raise TraceFormatError(
            f"trace needs {trace.num_ports} machines, fabric has "
            f"{fabric.num_machines}"
        )
    flow_id = 0
    for tc in trace.coflows:
        coflow = expand_trace_coflow(tc, fabric, flow_id)
        flow_id += len(coflow.flows)
        yield coflow


def coflows_to_trace(coflows: Iterable[CoFlow], fabric: Fabric) -> Trace:
    """Inverse of :func:`trace_to_coflows` for generator output.

    Groups each coflow's flows by reducer machine; mapper sets are the
    union of sender machines (sizes are re-aggregated per reducer).
    """
    out = []
    for c in coflows:
        mappers = tuple(sorted({fabric.machine_of(f.src) for f in c.flows}))
        per_reducer: dict[int, float] = {}
        for f in c.flows:
            machine = fabric.machine_of(f.dst)
            per_reducer[machine] = per_reducer.get(machine, 0.0) + f.volume
        reducers = tuple(sorted(per_reducer.items()))
        out.append(
            TraceCoflow(
                coflow_id=c.coflow_id,
                arrival_ms=c.arrival_time / MSEC,
                mappers=mappers,
                reducers=reducers,
            )
        )
    return Trace(num_ports=fabric.num_machines, coflows=tuple(out))
