"""Workloads: trace I/O, synthetic generators, DAG jobs, JCT accounting."""

from .dag import (
    chain_stages,
    critical_path_stages,
    fan_in_stages,
    job_stream,
    validate_dag,
)
from .jobs import (
    SHUFFLE_BUCKETS,
    JobOutcome,
    bucket_speedups,
    job_outcomes,
    sample_shuffle_fractions,
)
from .synthetic import (
    SyntheticSpec,
    WorkloadGenerator,
    fb_like_spec,
    generate_fb_like,
    generate_osp_like,
    osp_like_spec,
    scale_arrivals,
    stream_poisson_coflows,
)
from .traces import (
    Trace,
    TraceCoflow,
    coflows_to_trace,
    dump_trace,
    expand_trace_coflow,
    iter_trace_coflows,
    load_trace,
    parse_trace,
    save_trace,
    trace_to_coflows,
)

__all__ = [
    "SHUFFLE_BUCKETS",
    "JobOutcome",
    "SyntheticSpec",
    "Trace",
    "TraceCoflow",
    "WorkloadGenerator",
    "bucket_speedups",
    "chain_stages",
    "coflows_to_trace",
    "critical_path_stages",
    "dump_trace",
    "expand_trace_coflow",
    "fan_in_stages",
    "fb_like_spec",
    "generate_fb_like",
    "generate_osp_like",
    "iter_trace_coflows",
    "job_outcomes",
    "job_stream",
    "load_trace",
    "osp_like_spec",
    "parse_trace",
    "sample_shuffle_fractions",
    "save_trace",
    "scale_arrivals",
    "stream_poisson_coflows",
    "trace_to_coflows",
    "validate_dag",
]
