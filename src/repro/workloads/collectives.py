"""Collective-communication workloads: training jobs as coflow DAGs.

The paper's evaluation is entirely shuffle-shaped — every coflow is an
unstructured mapper→reducer transfer. ML training traffic is the opposite
extreme: a *structured* sequence of collectives (all-reduce, all-to-all,
parameter-server push/pull) repeated every iteration, with a dependency
chain between iterations. This module generates that traffic shape on the
existing coflow machinery so the registered policies can be compared on it.

Every collective **step** is one coflow; a collective is a linear chain of
step coflows built with :func:`~repro.workloads.dag.chain_stages` (the
§4.3 multi-stage machinery — a beyond-paper extension, not a figure); a
*training job* is ``iterations`` repetitions of one collective, chained so
iteration ``k+1``'s first step depends on iteration ``k``'s last step. All
patterns therefore produce pure chain DAGs, which makes the per-iteration
time metric exact: the engine starts a stage's CCT clock at DAG release, so
the duration of iteration ``k`` equals the sum of its stages' CCTs (see
:func:`iteration_times`).

Patterns (``N`` workers, gradient volume ``V`` per worker):

* ``ring`` — ring all-reduce: ``2·(N−1)`` dependent steps; in each step
  worker ``i`` sends one ``V/N`` chunk to worker ``(i+1) mod N`` (the
  reduce-scatter half, then the all-gather half). Each worker sends exactly
  ``2·(N−1)·V/N`` bytes per all-reduce.
* ``tree`` — binary-tree all-reduce: reduce-up (leaves toward the root,
  one step per depth level, each edge carrying ``V``) then broadcast-down
  (root toward the leaves).
* ``all-to-all`` — one dense step: every ordered worker pair exchanges
  ``V/N`` (MoE dispatch / DLRM embedding exchange shape).
* ``ps`` — parameter-server: a push step (every worker sends ``V/S`` to
  each of ``S`` servers) then a dependent pull step (each server sends the
  updated shard back to every worker).

Rack-aware placement (:func:`place_workers`) maps workers onto machines of
a fabric partitioned into racks (the same geometry as
:class:`~repro.simulator.topology.LeafSpineTopology`): ``"packed"`` fills
racks in order — collectives stay mostly rack-local; ``"spread"``
round-robins across racks — nearly every flow crosses the core, which is
what makes oversubscribed fabrics interesting.

Skew/straggler semantics: a *generation-time* skew
(``volume_skew={worker: factor}``) scales every byte a worker sends —
modelling imbalanced sharding; a *runtime* straggler is injected with
:class:`~repro.simulator.dynamics.StragglerEvent`, which scales a worker
machine's achieved send throughput mid-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..errors import ConfigError
from ..rng import make_rng
from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow
from .dag import chain_stages

#: Pattern names accepted by :func:`training_job` / the CLI / the sweep.
PATTERNS: tuple[str, ...] = ("ring", "tree", "all-to-all", "ps")

Transfers = list[tuple[int, int, float]]


# ---- placement -------------------------------------------------------------


def place_workers(
    count: int,
    fabric: Fabric,
    *,
    racks: int = 1,
    placement: str = "packed",
) -> list[int]:
    """Map ``count`` workers onto distinct machines, rack-aware.

    The fabric's ``n`` machines are partitioned into ``racks`` contiguous
    racks of ``ceil(n / racks)`` machines — exactly the geometry of
    :class:`~repro.simulator.topology.LeafSpineTopology`, so placements line
    up with the topology built over the same fabric.

    * ``"packed"`` — workers occupy machines ``0, 1, 2, …``: racks fill one
      after another and traffic stays as rack-local as possible.
    * ``"spread"`` — workers round-robin across racks (worker ``w`` goes to
      rack ``w mod racks``), maximising cross-rack traffic.

    Returns the worker→machine mapping (one distinct machine per worker).
    """
    n = fabric.num_machines
    if count < 1:
        raise ConfigError(f"need at least 1 worker, got {count}")
    if count > n:
        raise ConfigError(
            f"cannot place {count} workers on {n} machines "
            f"(one machine per worker)"
        )
    if not 1 <= racks <= n:
        raise ConfigError(
            f"racks must be in [1, {n}] for {n} machines, got {racks}"
        )
    stride = math.ceil(n / racks)
    if placement == "packed":
        return list(range(count))
    if placement == "spread":
        # Interleave racks: take slot 0 of every rack, then slot 1, …
        # Short tail racks (n % racks != 0) are skipped naturally, so the
        # order enumerates all n machines exactly once.
        order = [
            rack * stride + slot
            for slot in range(stride)
            for rack in range(racks)
            if rack * stride + slot < n
        ]
        return order[:count]
    raise ConfigError(
        f"unknown placement {placement!r}; known: 'packed', 'spread'"
    )


# ---- per-pattern stage builders --------------------------------------------


def _ring_transfers(fabric: Fabric, workers: Sequence[int], volume: float,
                    rounds: int | None) -> list[Transfers]:
    n = len(workers)
    if n < 2:
        raise ConfigError(f"ring all-reduce needs >= 2 workers, got {n}")
    steps = 2 * (n - 1) if rounds is None else rounds
    if steps < 1:
        raise ConfigError(f"ring all-reduce needs >= 1 round, got {steps}")
    chunk = volume / n
    step = [
        (workers[i], fabric.receiver_port(workers[(i + 1) % n]), chunk)
        for i in range(n)
    ]
    return [list(step) for _ in range(steps)]


def _tree_transfers(fabric: Fabric, workers: Sequence[int],
                    volume: float) -> list[Transfers]:
    n = len(workers)
    if n < 2:
        raise ConfigError(f"tree all-reduce needs >= 2 workers, got {n}")
    depth_of = [int(math.floor(math.log2(i + 1))) for i in range(n)]
    max_depth = depth_of[-1]
    # Reduce-up: deepest level first, every node sends to its parent.
    stages: list[Transfers] = []
    for d in range(max_depth, 0, -1):
        stages.append([
            (workers[i], fabric.receiver_port(workers[(i - 1) // 2]), volume)
            for i in range(n) if depth_of[i] == d
        ])
    # Broadcast-down: mirror image, parents send to children.
    for d in range(1, max_depth + 1):
        stages.append([
            (workers[(i - 1) // 2], fabric.receiver_port(workers[i]), volume)
            for i in range(n) if depth_of[i] == d
        ])
    return stages


def _all_to_all_transfers(fabric: Fabric, workers: Sequence[int],
                          volume: float) -> list[Transfers]:
    n = len(workers)
    if n < 2:
        raise ConfigError(f"all-to-all needs >= 2 workers, got {n}")
    chunk = volume / n
    return [[
        (workers[i], fabric.receiver_port(workers[j]), chunk)
        for i in range(n) for j in range(n) if i != j
    ]]


def _ps_transfers(fabric: Fabric, workers: Sequence[int],
                  servers: Sequence[int], volume: float) -> list[Transfers]:
    if not workers:
        raise ConfigError("parameter-server needs >= 1 worker")
    if not servers:
        raise ConfigError("parameter-server needs >= 1 server")
    if set(workers) & set(servers):
        raise ConfigError(
            "parameter-server workers and servers must be disjoint machines"
        )
    shard = volume / len(servers)
    push = [
        (w, fabric.receiver_port(s), shard) for w in workers for s in servers
    ]
    pull = [
        (s, fabric.receiver_port(w), shard) for s in servers for w in workers
    ]
    return [push, pull]


def _pattern_transfers(
    pattern: str,
    fabric: Fabric,
    workers: Sequence[int],
    volume: float,
    *,
    servers: Sequence[int] = (),
    rounds: int | None = None,
) -> list[Transfers]:
    if volume <= 0:
        raise ConfigError(f"collective volume must be > 0, got {volume}")
    if pattern == "ring":
        return _ring_transfers(fabric, workers, volume, rounds)
    if pattern == "tree":
        return _tree_transfers(fabric, workers, volume)
    if pattern == "all-to-all":
        return _all_to_all_transfers(fabric, workers, volume)
    if pattern == "ps":
        return _ps_transfers(fabric, workers, servers, volume)
    raise ConfigError(
        f"unknown collective pattern {pattern!r}; known: {PATTERNS}"
    )


# ---- public pattern builders (one collective = one coflow chain) -----------


def ring_allreduce(
    base_id: int,
    arrival_time: float,
    fabric: Fabric,
    workers: Sequence[int],
    volume: float,
    *,
    rounds: int | None = None,
    flow_id_start: int = 0,
    job_id: int | None = None,
) -> list[CoFlow]:
    """One ring all-reduce as ``2·(N−1)`` chained step coflows.

    ``workers`` are machine ids (see :func:`place_workers`); ``volume`` is
    the per-worker gradient size in bytes. ``rounds`` overrides the step
    count (default ``2·(N−1)``: reduce-scatter then all-gather).
    """
    return chain_stages(
        base_id, arrival_time,
        _pattern_transfers("ring", fabric, workers, volume, rounds=rounds),
        flow_id_start=flow_id_start, job_id=job_id,
    )


def tree_allreduce(
    base_id: int,
    arrival_time: float,
    fabric: Fabric,
    workers: Sequence[int],
    volume: float,
    *,
    flow_id_start: int = 0,
    job_id: int | None = None,
) -> list[CoFlow]:
    """One binary-tree all-reduce: reduce-up then broadcast-down stages."""
    return chain_stages(
        base_id, arrival_time,
        _pattern_transfers("tree", fabric, workers, volume),
        flow_id_start=flow_id_start, job_id=job_id,
    )


def all_to_all(
    base_id: int,
    arrival_time: float,
    fabric: Fabric,
    workers: Sequence[int],
    volume: float,
    *,
    flow_id_start: int = 0,
    job_id: int | None = None,
) -> list[CoFlow]:
    """One dense N×N exchange as a single coflow (in a 1-stage chain)."""
    return chain_stages(
        base_id, arrival_time,
        _pattern_transfers("all-to-all", fabric, workers, volume),
        flow_id_start=flow_id_start, job_id=job_id,
    )


def parameter_server(
    base_id: int,
    arrival_time: float,
    fabric: Fabric,
    workers: Sequence[int],
    servers: Sequence[int],
    volume: float,
    *,
    flow_id_start: int = 0,
    job_id: int | None = None,
) -> list[CoFlow]:
    """One PS exchange: push coflow then dependent pull coflow."""
    return chain_stages(
        base_id, arrival_time,
        _pattern_transfers("ps", fabric, workers, volume, servers=servers),
        flow_id_start=flow_id_start, job_id=job_id,
    )


# ---- training jobs ---------------------------------------------------------


@dataclass
class TrainingJob:
    """A multi-iteration training job: a chain DAG of collective steps.

    Behaves as a sequence of its stage coflows, so an iterable of jobs
    feeds straight into :func:`~repro.workloads.dag.job_stream` and from
    there into :meth:`~repro.simulator.scenario.Scenario.from_stream`.
    """

    job_id: int
    pattern: str
    arrival_time: float
    #: Worker machine ids, in worker-index order.
    workers: list[int]
    #: Server machine ids (``ps`` pattern only; empty otherwise).
    servers: list[int]
    #: Every stage coflow of every iteration, in chain order.
    coflows: list[CoFlow] = field(repr=False)
    #: Stage coflow ids per iteration: ``iteration_stages[k]`` lists
    #: iteration ``k``'s coflow ids in dependency order.
    iteration_stages: list[tuple[int, ...]]

    def __iter__(self) -> Iterator[CoFlow]:
        return iter(self.coflows)

    def __len__(self) -> int:
        return len(self.coflows)

    def __getitem__(self, i):
        return self.coflows[i]

    @property
    def iterations(self) -> int:
        return len(self.iteration_stages)


def training_job(
    pattern: str,
    iterations: int,
    compute_gap: float = 0.0,
    *,
    fabric: Fabric,
    workers: Sequence[int],
    volume: float,
    servers: Sequence[int] = (),
    arrival_time: float = 0.0,
    base_id: int = 0,
    flow_id_start: int = 0,
    job_id: int = 0,
    volume_skew: Mapping[int, float] | None = None,
) -> TrainingJob:
    """``iterations`` repetitions of one collective, chained into a job.

    Iteration ``k+1``'s first step depends on iteration ``k``'s last step
    (the backward pass needs the previous update). ``compute_gap`` models
    per-iteration compute as a fixed cadence: iteration ``k``'s first-step
    flows carry ``available_time = arrival_time + k·compute_gap`` — an
    idealised lower bound (compute overlapping communication), not a
    measured GPU time; the DAG still forbids starting before iteration
    ``k−1`` finishes.

    ``volume_skew`` maps *worker index* → volume factor and scales every
    byte that worker sends (imbalanced sharding / stuck-partition skew).
    Unknown worker indices raise :class:`~repro.errors.ConfigError`.
    """
    if iterations < 1:
        raise ConfigError(f"need >= 1 iteration, got {iterations}")
    if compute_gap < 0:
        raise ConfigError(f"compute_gap must be >= 0, got {compute_gap}")
    step_transfers = _pattern_transfers(
        pattern, fabric, workers, volume, servers=servers
    )
    stages_per_iter = len(step_transfers)
    all_transfers = [list(step) for _ in range(iterations)
                     for step in step_transfers]
    coflows = chain_stages(
        base_id, arrival_time, all_transfers,
        flow_id_start=flow_id_start, job_id=job_id,
    )
    iteration_stages = [
        tuple(c.coflow_id
              for c in coflows[k * stages_per_iter:(k + 1) * stages_per_iter])
        for k in range(iterations)
    ]
    if compute_gap > 0:
        for k, stage_ids in enumerate(iteration_stages):
            if k == 0:
                continue
            first = coflows[k * stages_per_iter]
            for f in first.flows:
                f.available_time = arrival_time + k * compute_gap
    if volume_skew:
        machine_factor = {}
        for w, factor in volume_skew.items():
            if not 0 <= w < len(workers):
                raise ConfigError(
                    f"volume_skew names unknown worker {w}; "
                    f"workers are 0..{len(workers) - 1}"
                )
            if factor <= 0:
                raise ConfigError(
                    f"volume_skew factor must be > 0, got {factor} "
                    f"for worker {w}"
                )
            machine_factor[workers[w]] = factor
        for c in coflows:
            for f in c.flows:
                factor = machine_factor.get(f.src)
                if factor is not None:
                    f.volume *= factor
    return TrainingJob(
        job_id=job_id, pattern=pattern, arrival_time=arrival_time,
        workers=list(workers), servers=list(servers),
        coflows=coflows, iteration_stages=iteration_stages,
    )


def iteration_times(job: TrainingJob,
                    ccts: Mapping[int, float]) -> list[float]:
    """Per-iteration durations of ``job`` from a run's CCT map.

    Every pattern is a pure stage chain and the engine starts each stage's
    CCT clock at DAG release (the previous stage's completion instant), so
    iteration ``k``'s duration — from the job arrival or the end of
    iteration ``k−1`` to the completion of iteration ``k``'s final
    collective — is exactly the sum of its stage CCTs. Compute-gap idle
    time is charged to the stage that waited, so it is included.
    """
    return [
        sum(ccts[cid] for cid in stage_ids)
        for stage_ids in job.iteration_stages
    ]


# ---- workload-level generation (sweep runner / CLI entry point) ------------


def collective_jobs(
    fabric: Fabric,
    *,
    pattern: str,
    workers: int,
    iterations: int,
    volume: float,
    jobs: int = 1,
    servers: int = 0,
    racks: int = 1,
    placement: str = "packed",
    compute_gap: float = 0.0,
    arrival_gap: float = 0.0,
    seed: int | None = None,
) -> list[TrainingJob]:
    """Generate ``jobs`` identical training jobs, arrival-staggered.

    Workers (and, for ``ps``, servers — placed after the workers in the
    same sweep) are mapped onto machines once via :func:`place_workers`;
    every job shares the placement, so jobs contend for the same ports
    exactly like successive training runs sharing a cluster slice.

    Arrivals: job ``j`` arrives at ``j·arrival_gap``; with a ``seed``,
    inter-arrival gaps are instead exponential with mean ``arrival_gap``
    (deterministic per seed). Coflow and flow ids are globally unique
    across jobs.
    """
    if jobs < 1:
        raise ConfigError(f"need >= 1 job, got {jobs}")
    if arrival_gap < 0:
        raise ConfigError(f"arrival_gap must be >= 0, got {arrival_gap}")
    n_servers = servers if pattern == "ps" else 0
    machines = place_workers(
        workers + n_servers, fabric, racks=racks, placement=placement,
    )
    worker_machines = machines[:workers]
    server_machines = machines[workers:]
    if arrival_gap > 0 and seed is not None:
        rng = make_rng(seed)
        gaps = rng.exponential(arrival_gap, size=jobs)
        arrivals = [float(sum(gaps[:j])) for j in range(jobs)]
    else:
        arrivals = [j * arrival_gap for j in range(jobs)]
    out: list[TrainingJob] = []
    base_id = 0
    fid = 0
    for j in range(jobs):
        job = training_job(
            pattern, iterations, compute_gap,
            fabric=fabric, workers=worker_machines, volume=volume,
            servers=server_machines, arrival_time=arrivals[j],
            base_id=base_id, flow_id_start=fid, job_id=j,
        )
        base_id += len(job.coflows)
        fid += sum(len(c.flows) for c in job.coflows)
        out.append(job)
    return out


def materialize_collective(
    machines: int,
    seed: int,
    params: Mapping[str, object],
    *,
    port_rate: float,
) -> tuple[Fabric, list[TrainingJob]]:
    """Build ``(fabric, jobs)`` from a sweep-runner collective recipe.

    ``params`` is the decoded ``WorkloadSpec.params`` mapping (see
    :func:`repro.experiments.runner.collective_spec`); generation is a pure
    function of ``(machines, seed, params)``, so worker processes rebuild
    the workload bit-identically.
    """
    fabric = Fabric(num_machines=machines, port_rate=port_rate)
    jobs = collective_jobs(
        fabric,
        pattern=str(params["pattern"]),
        workers=int(params["workers"]),
        iterations=int(params["iterations"]),
        volume=float(params["volume"]),
        jobs=int(params.get("jobs", 1)),
        servers=int(params.get("servers", 0)),
        racks=int(params.get("racks", 1)),
        placement=str(params.get("placement", "packed")),
        compute_gap=float(params.get("compute_gap", 0.0)),
        arrival_gap=float(params.get("arrival_gap", 0.0)),
        seed=seed,
    )
    return fabric, jobs
