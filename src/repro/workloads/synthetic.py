"""Synthetic FB-like and OSP-like workload generators.

The paper evaluates on two proprietary traces: the public Facebook Hive/
MapReduce trace (526 coflows, 150 ports) and a Microsoft online-service-
provider (OSP) trace (O(1000) jobs, O(100) ports, busier ports). Neither
ships with this repository, so the generators here synthesise workloads
with the published marginals; the real traces can be substituted through
:mod:`repro.workloads.traces` at any time.

Matched structure (sources in the paper):

* **Table 1 bin mix** — size≤100MB/width≤10 bins at 54/14/12/20% for the FB
  trace (Fig. 11 x-labels).
* **Width profile (Fig. 2a-b)** — 23% single-flow coflows, 50% multi-flow
  with equal-length flows, 27% multi-flow with skewed flow lengths.
* **Heavy-tailed sizes** — log-uniform within each bin's size range.
* **Port pressure** — the OSP trace keeps ports busier (§6.1 attributes its
  larger P90 wins to this); modelled with a hot-spot placement skew and a
  higher offered load.

Every coflow is a mapper×reducer shuffle expressed as a
:class:`~repro.workloads.traces.TraceCoflow`, so generated workloads
round-trip through the coflow-benchmark text format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..rng import make_rng
from ..simulator.fabric import Fabric
from ..simulator.flows import CoFlow
from ..units import GBPS, MB, MSEC
from .traces import Trace, TraceCoflow, expand_trace_coflow, trace_to_coflows

#: Table 1 bin definitions: (max size bytes, max width) per bin, paper order.
BIN_SIZE_BOUNDARY = 100.0 * MB
BIN_WIDTH_BOUNDARY = 10


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of one synthetic workload family."""

    name: str
    num_machines: int
    num_coflows: int
    #: Probability of Table-1 bins (bin-1..bin-4), summing to 1.
    bin_probs: tuple[float, float, float, float] = (0.54, 0.14, 0.12, 0.20)
    #: Overall fraction of single-flow coflows (Fig. 2a: 23%).
    single_flow_frac: float = 0.23
    #: Among multi-flow coflows, fraction with skewed flow lengths
    #: (Fig. 2b: 27% of all = 27/77 of multi-flow).
    skewed_frac_multi: float = 0.35
    #: Log-normal sigma of per-reducer size weights for skewed coflows.
    skew_sigma: float = 0.9
    #: Small/large coflow size ranges in bytes (log-uniform within).
    #: Calibrated so that Saath-over-Aalo speedups match the paper's FB
    #: distribution shape (median ~1.5x with a long right tail): sizes
    #: below ~4MB produce unrealistically extreme CCT ratios, and a size
    #: tail past ~1GB produces far heavier congestion than the FB trace.
    small_size_range: tuple[float, float] = (4.0 * MB, 100.0 * MB)
    large_size_range: tuple[float, float] = (100.0 * MB, 1_000.0 * MB)
    #: Wide coflow width range (bins 2 and 4), inclusive.
    wide_width_range: tuple[int, int] = (11, 150)
    #: Target average sender-port utilisation; fixes the arrival horizon.
    load: float = 0.7
    #: Fraction of placements drawn from the hot machine subset.
    placement_skew: float = 0.0
    #: Size of the hot subset as a fraction of machines.
    hot_fraction: float = 0.2
    port_rate: float = GBPS

    def __post_init__(self) -> None:
        if self.num_machines < 2:
            raise ConfigError("num_machines must be >= 2")
        if self.num_coflows < 1:
            raise ConfigError("num_coflows must be >= 1")
        if abs(sum(self.bin_probs) - 1.0) > 1e-9:
            raise ConfigError(f"bin_probs must sum to 1, got {self.bin_probs}")
        if not 0 < self.load <= 1.5:
            raise ConfigError(f"load must be in (0, 1.5], got {self.load}")
        if not 0 <= self.placement_skew <= 1:
            raise ConfigError("placement_skew must be in [0, 1]")

    def make_fabric(self) -> Fabric:
        return Fabric(num_machines=self.num_machines, port_rate=self.port_rate)


def fb_like_spec(*, num_machines: int = 150, num_coflows: int = 526,
                 load: float = 0.7) -> SyntheticSpec:
    """FB-like workload: Table-1 bin mix, uniform placement."""
    return SyntheticSpec(
        name="fb-like",
        num_machines=num_machines,
        num_coflows=num_coflows,
        wide_width_range=(11, max(12, num_machines)),
        load=load,
        placement_skew=0.0,
    )


def osp_like_spec(*, num_machines: int = 100, num_coflows: int = 1000,
                  load: float = 0.75) -> SyntheticSpec:
    """OSP-like workload: busier, hot-spotted ports (§6.1)."""
    return SyntheticSpec(
        name="osp-like",
        num_machines=num_machines,
        num_coflows=num_coflows,
        wide_width_range=(11, max(12, num_machines)),
        load=load,
        placement_skew=0.5,
        hot_fraction=0.2,
    )


class WorkloadGenerator:
    """Draws coflows from a :class:`SyntheticSpec`."""

    def __init__(self, spec: SyntheticSpec, seed: int = 0):
        self.spec = spec
        self._rng = make_rng(seed)
        hot_count = max(2, int(spec.num_machines * spec.hot_fraction))
        self._hot_machines = np.arange(hot_count)

    # ---- public -----------------------------------------------------------------

    def generate_trace(self) -> Trace:
        """Generate the workload as a coflow-benchmark :class:`Trace`."""
        spec = self.spec
        shapes = [self._draw_shape() for _ in range(spec.num_coflows)]
        total_bytes = sum(s[2] for s in shapes)
        horizon = self._arrival_horizon(total_bytes)
        arrivals = np.sort(self._rng.uniform(0.0, horizon, spec.num_coflows))

        coflows = []
        for cid, ((m, r, size, skewed), arrival) in enumerate(
                zip(shapes, arrivals)):
            coflows.append(self._build_coflow(cid, arrival, m, r, size, skewed))
        return Trace(num_ports=spec.num_machines, coflows=tuple(coflows))

    def generate_coflows(self, fabric: Fabric | None = None) -> list[CoFlow]:
        """Generate directly as simulator coflows."""
        fabric = fabric or self.spec.make_fabric()
        return trace_to_coflows(self.generate_trace(), fabric)

    # ---- shape sampling -------------------------------------------------------------

    def _draw_shape(self) -> tuple[int, int, float, bool]:
        """Sample (mappers, reducers, total size bytes, skewed?)."""
        spec = self.spec
        bin_idx = int(self._rng.choice(4, p=spec.bin_probs))
        narrow = bin_idx in (0, 2)  # bins 1 & 3: width <= 10
        small = bin_idx in (0, 1)  # bins 1 & 2: size <= 100MB

        if narrow:
            m, r = self._narrow_factorisation()
        else:
            m, r = self._wide_factorisation()

        lo, hi = spec.small_size_range if small else spec.large_size_range
        size = float(np.exp(self._rng.uniform(math.log(lo), math.log(hi))))

        width = m * r
        skewed = width > 1 and self._rng.random() < spec.skewed_frac_multi
        return m, r, size, skewed

    def _narrow_factorisation(self) -> tuple[int, int]:
        """(m, r) with m*r <= 10, honouring the single-flow fraction.

        The overall single-flow fraction targets Fig. 2(a)'s 23%; since only
        narrow bins (66% of coflows) can be single-flow, the conditional
        probability is ``0.23 / P(narrow)``.
        """
        spec = self.spec
        p_narrow = spec.bin_probs[0] + spec.bin_probs[2]
        p_single = min(spec.single_flow_frac / max(p_narrow, 1e-9), 1.0)
        if self._rng.random() < p_single:
            return 1, 1
        width = int(self._rng.integers(2, BIN_WIDTH_BOUNDARY + 1))
        divisors = [d for d in range(1, width + 1) if width % d == 0]
        m = int(self._rng.choice(divisors))
        return m, width // m

    def _wide_factorisation(self) -> tuple[int, int]:
        """(m, r) with m*r > 10, log-uniform width, both sides <= machines."""
        spec = self.spec
        lo, hi = spec.wide_width_range
        hi = min(hi, spec.num_machines * spec.num_machines)
        width = int(round(np.exp(self._rng.uniform(math.log(lo), math.log(hi)))))
        width = max(width, BIN_WIDTH_BOUNDARY + 1)
        m = max(1, int(round(math.sqrt(width))))
        m = min(m, spec.num_machines)
        r = min(math.ceil(width / m), spec.num_machines)
        if m * r <= BIN_WIDTH_BOUNDARY:  # clamped too hard on tiny fabrics
            r = min(BIN_WIDTH_BOUNDARY // m + 1, spec.num_machines)
        return m, r

    # ---- placement & sizes -----------------------------------------------------------

    def _pick_machines(self, count: int) -> np.ndarray:
        """Choose distinct machines, biased to the hot subset when skewed."""
        spec = self.spec
        if (spec.placement_skew > 0
                and self._rng.random() < spec.placement_skew
                and count <= len(self._hot_machines)):
            return self._rng.choice(self._hot_machines, size=count,
                                    replace=False)
        return self._rng.choice(spec.num_machines, size=count, replace=False)

    def _build_coflow(self, cid: int, arrival: float, m: int, r: int,
                      size: float, skewed: bool) -> TraceCoflow:
        mappers = tuple(int(x) for x in self._pick_machines(m))
        reducers = self._pick_machines(r)
        if skewed:
            weights = self._rng.lognormal(
                mean=0.0, sigma=self.spec.skew_sigma, size=r
            )
            weights /= weights.sum()
        else:
            weights = np.full(r, 1.0 / r)
        reducer_sizes = tuple(
            (int(machine), float(size * w))
            for machine, w in zip(reducers, weights)
        )
        return TraceCoflow(
            coflow_id=cid,
            arrival_ms=float(arrival) / MSEC,
            mappers=mappers,
            reducers=reducer_sizes,
        )

    def _arrival_horizon(self, total_bytes: float) -> float:
        """Horizon T such that average sender utilisation equals the load.

        Offered sender-side load is ``total_bytes / (machines * rate * T)``;
        solving for T at the spec's target load. A floor of one second keeps
        degenerate tiny workloads from all arriving at once.
        """
        spec = self.spec
        horizon = total_bytes / (spec.num_machines * spec.port_rate * spec.load)
        return max(horizon, 1.0)


def stream_poisson_coflows(
    spec: SyntheticSpec,
    *,
    rate_per_sec: float,
    num_coflows: int | None = None,
    seed: int = 0,
    fabric: Fabric | None = None,
):
    """Open-loop Poisson workload: coflows generated lazily, one per pull.

    The batch generator must materialise every shape up front to size the
    arrival horizon from the total byte count; an *open-loop* workload
    instead fixes the arrival process — exponential inter-arrival times at
    ``rate_per_sec`` coflows/second — and draws each coflow's shape and
    placement from ``spec`` only when the consumer asks for it. Feeding the
    returned generator (wrap a zero-argument factory for snapshot support)
    into :meth:`repro.simulator.scenario.Scenario.from_stream` runs a
    simulation in O(active-coflows) memory regardless of ``num_coflows``
    (``None`` = unbounded: stream forever, let the session's ``run_until``
    or the consumer decide when to stop).

    Deterministic per seed: the same (spec, rate, seed) triple replays the
    identical stream, which is what makes sessions over it resumable.
    """
    # Validate eagerly (a generator body would defer the error to the
    # first pull, far from the bad call site), then hand off to the
    # actual generator.
    if rate_per_sec <= 0:
        raise ConfigError(
            f"rate_per_sec must be positive, got {rate_per_sec}"
        )

    def generate():
        gen = WorkloadGenerator(spec, seed=seed)
        fab = fabric or spec.make_fabric()
        arrival = 0.0
        flow_id = 0
        cid = 0
        while num_coflows is None or cid < num_coflows:
            arrival += float(gen._rng.exponential(1.0 / rate_per_sec))
            m, r, size, skewed = gen._draw_shape()
            tc = gen._build_coflow(cid, arrival, m, r, size, skewed)
            coflow = expand_trace_coflow(tc, fab, flow_id)
            flow_id += len(coflow.flows)
            cid += 1
            yield coflow

    return generate()


def generate_fb_like(seed: int = 0, **spec_kwargs) -> tuple[Fabric, list[CoFlow]]:
    """One-call helper: FB-like fabric + coflows."""
    spec = fb_like_spec(**spec_kwargs)
    gen = WorkloadGenerator(spec, seed=seed)
    fabric = spec.make_fabric()
    return fabric, gen.generate_coflows(fabric)


def generate_osp_like(seed: int = 0, **spec_kwargs) -> tuple[Fabric, list[CoFlow]]:
    """One-call helper: OSP-like fabric + coflows."""
    spec = osp_like_spec(**spec_kwargs)
    gen = WorkloadGenerator(spec, seed=seed)
    fabric = spec.make_fabric()
    return fabric, gen.generate_coflows(fabric)


def scale_arrivals(coflows: list[CoFlow], factor: float) -> list[CoFlow]:
    """Speed up (+factor > 1) or slow down coflow arrivals (Fig. 14d).

    ``factor = 4`` makes coflows arrive 4× faster (arrival times divided by
    4), increasing contention; ``factor = 0.5`` spreads them out. Returns
    the same (mutated) list for chaining; apply to a fresh clone.
    """
    if factor <= 0:
        raise ConfigError(f"arrival scale factor must be positive, got {factor}")
    for c in coflows:
        c.arrival_time = c.arrival_time / factor
    return coflows


def add_pipelined_availability(
    coflows: list[CoFlow],
    rng,
    *,
    fraction: float = 0.3,
    max_delay: float = 0.5,
) -> list[CoFlow]:
    """Make a fraction of flows' data arrive late (§4.3 pipelining).

    Compute frameworks pipeline compute and communication: a flow's data
    may not exist yet when its coflow registers. ``fraction`` of all flows
    get an ``available_time`` of arrival + U(0, max_delay) seconds — skewed
    or slow upstream computation. Mutates and returns ``coflows``.
    """
    if not 0 <= fraction <= 1:
        raise ConfigError(f"fraction must be in [0, 1], got {fraction}")
    if max_delay < 0:
        raise ConfigError(f"max_delay must be >= 0, got {max_delay}")
    pairs = [(c, f) for c in coflows for f in c.flows]
    count = int(round(len(pairs) * fraction))
    if count == 0:
        return coflows
    chosen = rng.choice(len(pairs), size=count, replace=False)
    for idx in chosen:
        coflow, flow = pairs[int(idx)]
        flow.available_time = coflow.arrival_time + float(
            rng.uniform(0.0, max_delay)
        )
    return coflows
