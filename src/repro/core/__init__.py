"""The Saath scheduler — the paper's primary contribution."""

from .contention import contention_counts, ports_in_use, waiting_time_increase
from .dynamics import (
    estimated_finished_length,
    estimated_remaining_bottleneck,
    promotion_queue,
)
from .estimators import (
    CedarLikeEstimator,
    ESTIMATORS,
    LengthEstimator,
    MedianEstimator,
    QuantileEstimator,
    TrimmedMeanEstimator,
    get_estimator,
)
from .saath import SaathScheduler

__all__ = [
    "CedarLikeEstimator",
    "ESTIMATORS",
    "LengthEstimator",
    "MedianEstimator",
    "QuantileEstimator",
    "SaathScheduler",
    "TrimmedMeanEstimator",
    "get_estimator",
    "contention_counts",
    "estimated_finished_length",
    "estimated_remaining_bottleneck",
    "ports_in_use",
    "promotion_queue",
    "waiting_time_increase",
]
