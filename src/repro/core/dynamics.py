"""Approximated SRTF under cluster dynamics (§4.3).

Once some flows of a coflow have finished, the coordinator can estimate the
coflow's remaining work from *observed* data only (finished-flow lengths are
simply the bytes those flows sent — no clairvoyance involved):

1. ``f_e`` — median length of the finished flows,
2. per unfinished flow ``i``: ``f_rem_i = max(f_e - f_i, 0)`` where ``f_i``
   is the bytes flow ``i`` has sent so far,
3. ``m_c = max_i f_rem_i`` — the estimated remaining bottleneck,
4. re-assign the coflow's queue by Eq. 1 using ``m_c``.

Because ``f_i`` only grows, ``m_c`` only shrinks, so this rule *promotes*
coflows toward higher-priority queues as they approach completion — the
opposite of Aalo's demotion-only total-bytes rule, and the mechanism that
rescues coflows delayed by stragglers and restarts.
"""

from __future__ import annotations

import statistics

from ..config import QueueConfig
from ..simulator.flows import CoFlow


def estimated_finished_length(coflow: CoFlow) -> float | None:
    """Median observed length of the coflow's finished flows (``f_e``).

    Returns ``None`` when no flow has finished yet — the estimate is then
    undefined and queueing falls back to the threshold rule.
    """
    lengths = [f.bytes_sent for f in coflow.flows if f.finished]
    if not lengths:
        return None
    return float(statistics.median(lengths))


def estimated_remaining_bottleneck(coflow: CoFlow) -> float | None:
    """``m_c = max_i max(f_e - f_i, 0)`` over unfinished flows.

    ``None`` when undefined (no finished flows, or nothing unfinished).
    """
    f_e = estimated_finished_length(coflow)
    if f_e is None:
        return None
    unfinished = coflow.unfinished_flows()
    if not unfinished:
        return None
    return max(max(f_e - f.bytes_sent, 0.0) for f in unfinished)


def promotion_queue(coflow: CoFlow, queues: QueueConfig,
                    estimator=None) -> int | None:
    """Queue the coflow should occupy under the SRTF approximation.

    Applies Eq. 1 with the estimated remaining bottleneck in place of the
    max-bytes-sent metric. ``None`` when the estimate is unavailable.
    ``estimator`` optionally replaces the paper's median rule with one of
    the :mod:`repro.core.estimators` strategies (the paper's Cedar future
    work).
    """
    if estimator is None:
        m_c = estimated_remaining_bottleneck(coflow)
    else:
        m_c = estimator.estimated_remaining_bottleneck(coflow)
    if m_c is None:
        return None
    return queues.queue_for_per_flow_bytes(m_c, coflow.width)
