"""Pluggable flow-length estimators for the §4.3 dynamics handler.

The paper estimates a coflow's unfinished-flow lengths from the *median* of
its finished flows and notes: "more sophisticated schemes such as Cedar
[35] can be used to estimate flow lengths, which we leave as future work."
This module implements that future work as a small strategy family:

* :class:`MedianEstimator` — the paper's default.
* :class:`TrimmedMeanEstimator` — mean of the central ``1 - 2*trim``
  fraction; more sample-efficient than the median when finished-flow
  lengths are roughly symmetric.
* :class:`QuantileEstimator` — a configurable quantile; an upper quantile
  (e.g. 0.75) is *conservative*: it over-estimates remaining work, delaying
  promotion but avoiding promoting coflows that still have a long tail
  flow to run (the failure mode of optimistic estimates under skew).
* :class:`CedarLikeEstimator` — Cedar's key idea (Kumar et al., EuroSys'16)
  adapted to flows: combine the sample estimate with an uncertainty bonus
  that shrinks as more flows finish, i.e. ``quantile + z * s / sqrt(n)``.

All estimators consume only *observed* bytes (finished-flow lengths), never
clairvoyant volumes, so they are legal for online schedulers.
"""

from __future__ import annotations

import abc
import math
import statistics
from dataclasses import dataclass

from ..errors import ConfigError
from ..simulator.flows import CoFlow


class LengthEstimator(abc.ABC):
    """Estimates the typical flow length of a partially-finished coflow."""

    @abc.abstractmethod
    def estimate(self, finished_lengths: list[float]) -> float:
        """Point estimate of a flow's length given finished-flow samples.

        ``finished_lengths`` is non-empty (the caller guards).
        """

    def estimated_remaining_bottleneck(self, coflow: CoFlow) -> float | None:
        """``m_c`` under this estimator (None when no flow has finished)."""
        lengths = [f.bytes_sent for f in coflow.flows if f.finished]
        if not lengths:
            return None
        unfinished = coflow.unfinished_flows()
        if not unfinished:
            return None
        f_e = self.estimate(lengths)
        return max(max(f_e - f.bytes_sent, 0.0) for f in unfinished)


@dataclass(frozen=True)
class MedianEstimator(LengthEstimator):
    """The paper's default: the median of finished flow lengths."""

    def estimate(self, finished_lengths: list[float]) -> float:
        return float(statistics.median(finished_lengths))


@dataclass(frozen=True)
class TrimmedMeanEstimator(LengthEstimator):
    """Mean of the central portion after trimming ``trim`` from each end."""

    trim: float = 0.1

    def __post_init__(self) -> None:
        if not 0 <= self.trim < 0.5:
            raise ConfigError(f"trim must be in [0, 0.5), got {self.trim}")

    def estimate(self, finished_lengths: list[float]) -> float:
        values = sorted(finished_lengths)
        k = int(len(values) * self.trim)
        core = values[k:len(values) - k] or values
        return float(sum(core) / len(core))


@dataclass(frozen=True)
class QuantileEstimator(LengthEstimator):
    """A configurable quantile of the finished lengths."""

    quantile: float = 0.75

    def __post_init__(self) -> None:
        if not 0 < self.quantile <= 1:
            raise ConfigError(
                f"quantile must be in (0, 1], got {self.quantile}"
            )

    def estimate(self, finished_lengths: list[float]) -> float:
        values = sorted(finished_lengths)
        if len(values) == 1:
            return float(values[0])
        pos = self.quantile * (len(values) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(values) - 1)
        frac = pos - lo
        return float(values[lo] * (1 - frac) + values[hi] * frac)


@dataclass(frozen=True)
class CedarLikeEstimator(LengthEstimator):
    """Quantile + shrinking uncertainty bonus (Cedar's aggregation idea).

    With few samples the bonus is large (conservative, avoids premature
    promotion); it decays as ``1/sqrt(n)`` while the sample quantile takes
    over — matching Cedar's confidence-aware estimates for straggler-aware
    aggregation queries.
    """

    quantile: float = 0.5
    z: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.quantile <= 1:
            raise ConfigError(
                f"quantile must be in (0, 1], got {self.quantile}"
            )
        if self.z < 0:
            raise ConfigError(f"z must be >= 0, got {self.z}")

    def estimate(self, finished_lengths: list[float]) -> float:
        base = QuantileEstimator(self.quantile).estimate(finished_lengths)
        n = len(finished_lengths)
        if n < 2:
            # No spread information: assume the single sample could be half
            # the story and double-hedge.
            return base * (1.0 + self.z)
        spread = float(statistics.stdev(finished_lengths))
        return base + self.z * spread / math.sqrt(n)


#: Registry used by config/CLI surfaces.
ESTIMATORS: dict[str, LengthEstimator] = {
    "median": MedianEstimator(),
    "trimmed-mean": TrimmedMeanEstimator(),
    "quantile-75": QuantileEstimator(0.75),
    "cedar": CedarLikeEstimator(),
}


def get_estimator(name: str) -> LengthEstimator:
    try:
        return ESTIMATORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown estimator {name!r}; known: {sorted(ESTIMATORS)}"
        ) from None
