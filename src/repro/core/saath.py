"""The Saath scheduler — the paper's primary contribution (§3–§4).

Saath is an online (non-clairvoyant) coflow scheduler built from three
complementary ideas plus two safety mechanisms, all implemented here:

1. **All-or-none** (§3.1): a coflow is admitted only if *every* port its
   schedulable flows touch still has capacity; either all of its flows are
   scheduled together or none is. This removes Aalo's out-of-sync problem.
2. **Per-flow queue thresholds** (§3.2, D3/Eq. 1): queue transitions fire
   when the *largest flow* crosses its fair share ``Q_hi / width`` of the
   queue threshold, moving long coflows out of high-priority queues faster.
3. **Least-Contention-First** (§3.3, D1): within a queue, coflows are
   admitted in increasing order of contention ``k_c`` — the spatial
   generalisation of SJF.
4. **Work conservation** (D4): ports left idle by all-or-none are filled
   with the flows of skipped coflows, in scheduling order.
5. **Starvation avoidance** (D5): each coflow carries a FIFO-derived
   deadline ``d · C_q · t_q``; coflows past their deadline are admitted
   ahead of the LCoF order.

The optional §4.3 dynamics handler (approximated SRTF promotion when some
flows have finished) is enabled by ``config.enable_dynamics_promotion``.
"""

from __future__ import annotations

import math

from ..config import SimulationConfig
from ..schedulers.base import Allocation, Scheduler
from ..schedulers.queues import QueueTracker
from ..simulator.flows import CoFlow, Flow
from ..simulator.ratealloc import equal_rate_for_coflow, greedy_residual_rates
from ..simulator.state import ClusterState
from .contention import contention_counts
from .dynamics import promotion_queue


class SaathScheduler(Scheduler):
    """Saath, with ablation switches for the Fig. 10–12 breakdown.

    ``use_lcof=False`` replaces LCoF with FIFO (arrival order) within each
    queue; ``use_perflow_threshold=False`` falls back to Aalo's total-bytes
    queue metric. Both default to the full Saath design. All variants keep
    all-or-none admission and work conservation, matching the paper's
    breakdown (A/N+FIFO, A/N+P/F+FIFO, A/N+P/F+LCoF).
    """

    name = "saath"
    clairvoyant = False

    def __init__(
        self,
        config: SimulationConfig,
        *,
        use_lcof: bool = True,
        use_perflow_threshold: bool = True,
        work_conservation: bool = True,
        length_estimator=None,
    ):
        super().__init__(config)
        self.use_lcof = use_lcof
        self.use_perflow_threshold = use_perflow_threshold
        self.work_conservation = work_conservation
        #: Strategy for the §4.3 remaining-length estimate (None = the
        #: paper's median rule; see repro.core.estimators).
        self.length_estimator = length_estimator
        metric = "perflow" if use_perflow_threshold else "total"
        self.tracker = QueueTracker(config, metric=metric)
        #: Coflows governed by the §4.3 SRTF approximation (some flows done).
        self._dynamics_mode: set[int] = set()
        #: Diagnostics: how often the starvation path admitted a coflow.
        self.starvation_admissions = 0

    # ---- lifecycle ------------------------------------------------------------

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        self.tracker.admit(coflow, now)

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        self.tracker.remove(coflow)
        self._dynamics_mode.discard(coflow.coflow_id)

    def on_flow_completion(self, flow: Flow, coflow: CoFlow, now: float) -> None:
        if not self.config.enable_dynamics_promotion:
            return
        self._dynamics_mode.add(coflow.coflow_id)
        self._apply_promotion(coflow, now)

    # ---- the scheduling round (Fig. 7) ------------------------------------------

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        self._assign_queues(state, now)
        order = self._scheduling_order(state, now)

        ledger = state.make_ledger()
        allocation = Allocation()
        missed: list[CoFlow] = []

        for coflow in order:
            flows = state.schedulable_flows(coflow, now)
            if not flows:
                continue
            if self._all_or_none_admissible(flows, ledger):
                rates = equal_rate_for_coflow(coflow, ledger, flows=flows)
                if rates:
                    allocation.rates.update(rates)
                    allocation.scheduled_coflows.add(coflow.coflow_id)
                    continue
            missed.append(coflow)

        if self.work_conservation and missed:
            self._work_conserve(missed, state, ledger, allocation, now)
        return allocation

    def next_wakeup(self, state: ClusterState, allocation: Allocation,
                    now: float) -> float | None:
        """Queue-threshold crossings and starvation-deadline expiries."""
        best = math.inf
        for coflow in state.active_coflows:
            dt = self.tracker.next_transition_time(coflow, allocation.rates)
            if dt < math.inf:
                best = min(best, now + max(dt, 0.0))
        if self.config.deadline_factor is not None:
            best = min(best, self.tracker.next_deadline_after(now))
        if not math.isfinite(best) or best <= now:
            # A zero transition gap means refresh already happens on the
            # next schedule; nudge forward to avoid a same-instant livelock.
            if best <= now and math.isfinite(best):
                return now + 1e-9
            return None
        return best

    # ---- pieces ------------------------------------------------------------------

    def _assign_queues(self, state: ClusterState, now: float) -> None:
        """AssignQueue (Fig. 7 line 15): demotions plus §4.3 promotions."""
        for coflow in state.active_coflows:
            if coflow.coflow_id in self._dynamics_mode:
                self._apply_promotion(coflow, now)
            else:
                self.tracker.refresh(coflow, now)

    def _apply_promotion(self, coflow: CoFlow, now: float) -> None:
        target = promotion_queue(coflow, self.config.queues,
                                 estimator=self.length_estimator)
        if target is not None:
            self.tracker.force_queue(coflow, target, now)

    def _scheduling_order(self, state: ClusterState,
                          now: float) -> list[CoFlow]:
        """Starved coflows first, then queues top-down, LCoF within each."""
        starving: list[CoFlow] = []
        per_queue: dict[int, list[CoFlow]] = {}
        for coflow in state.active_coflows:
            if (self.config.deadline_factor is not None
                    and self.tracker.starving(coflow, now)):
                starving.append(coflow)
            else:
                per_queue.setdefault(
                    self.tracker.queue_of(coflow), []
                ).append(coflow)

        starving.sort(key=lambda c: (self.tracker.deadline_of(c), c.coflow_id))
        self.starvation_admissions += len(starving)

        order = starving
        contention = None
        if self.use_lcof:
            queue_of = {
                c.coflow_id: self.tracker.queue_of(c)
                for c in state.active_coflows
            }
            contention = contention_counts(
                state.active_coflows,
                scope=self.config.contention_scope,
                queue_of=queue_of,
            )
        for queue in sorted(per_queue):
            members = per_queue[queue]
            if self.use_lcof:
                assert contention is not None
                members.sort(
                    key=lambda c: (contention[c.coflow_id],
                                   c.arrival_time, c.coflow_id)
                )
            else:  # FIFO within the queue
                members.sort(key=lambda c: (c.arrival_time, c.coflow_id))
            order.extend(members)
        return order

    def _all_or_none_admissible(self, flows: list[Flow],
                                ledger) -> bool:
        """True if every port the flows touch has ≥ min_rate residual."""
        min_rate = self.config.min_rate
        ports: set[int] = set()
        for f in flows:
            ports.add(f.src)
            ports.add(f.dst)
        return all(ledger.has_capacity(p, min_rate) for p in ports)

    def _work_conserve(self, missed: list[CoFlow], state: ClusterState,
                       ledger, allocation: Allocation, now: float) -> None:
        """Fig. 7 lines 18–23: fill leftover capacity in scheduling order."""
        wc_flows: list[Flow] = []
        for coflow in missed:
            wc_flows.extend(state.schedulable_flows(coflow, now))
        rates = greedy_residual_rates(wc_flows, ledger)
        if rates:
            allocation.rates.update(rates)
            granted = {f.coflow_id for f in wc_flows if f.flow_id in rates}
            allocation.work_conserved_coflows |= granted
