"""The Saath scheduler — the paper's primary contribution (§3–§4).

Saath is an online (non-clairvoyant) coflow scheduler built from three
complementary ideas plus two safety mechanisms, all implemented here:

1. **All-or-none** (§3.1): a coflow is admitted only if *every* port its
   schedulable flows touch still has capacity; either all of its flows are
   scheduled together or none is. This removes Aalo's out-of-sync problem.
2. **Per-flow queue thresholds** (§3.2, D3/Eq. 1): queue transitions fire
   when the *largest flow* crosses its fair share ``Q_hi / width`` of the
   queue threshold, moving long coflows out of high-priority queues faster.
3. **Least-Contention-First** (§3.3, D1): within a queue, coflows are
   admitted in increasing order of contention ``k_c`` — the spatial
   generalisation of SJF.
4. **Work conservation** (D4): ports left idle by all-or-none are filled
   with the flows of skipped coflows, in scheduling order.
5. **Starvation avoidance** (D5): each coflow carries a FIFO-derived
   deadline ``d · C_q · t_q``; coflows past their deadline are admitted
   ahead of the LCoF order.

The optional §4.3 dynamics handler (approximated SRTF promotion when some
flows have finished) is enabled by ``config.enable_dynamics_promotion``.
"""

from __future__ import annotations

import math

from ..config import SimulationConfig
from ..schedulers.base import Allocation, Scheduler
from ..schedulers.queues import QueueTracker
from ..simulator.flows import CoFlow, Flow
from ..simulator.ratealloc import (
    equal_rate_for_coflow,
    equal_rate_for_coflow_paths,
    equal_rate_for_coflow_rows,
    greedy_residual_rates,
    greedy_residual_rates_rows,
)
from ..simulator.state import ClusterState
from .contention import ContentionTracker, contention_counts
from .dynamics import promotion_queue


class SaathScheduler(Scheduler):
    """Saath, with ablation switches for the Fig. 10–12 breakdown.

    ``use_lcof=False`` replaces LCoF with FIFO (arrival order) within each
    queue; ``use_perflow_threshold=False`` falls back to Aalo's total-bytes
    queue metric. Both default to the full Saath design. All variants keep
    all-or-none admission and work conservation, matching the paper's
    breakdown (A/N+FIFO, A/N+P/F+FIFO, A/N+P/F+LCoF).
    """

    name = "saath"
    clairvoyant = False

    def __init__(
        self,
        config: SimulationConfig,
        *,
        use_lcof: bool = True,
        use_perflow_threshold: bool = True,
        work_conservation: bool = True,
        length_estimator=None,
    ):
        super().__init__(config)
        self.use_lcof = use_lcof
        self.use_perflow_threshold = use_perflow_threshold
        self.work_conservation = work_conservation
        #: Strategy for the §4.3 remaining-length estimate (None = the
        #: paper's median rule; see repro.core.estimators).
        self.length_estimator = length_estimator
        metric = "perflow" if use_perflow_threshold else "total"
        self.tracker = QueueTracker(config, metric=metric)
        #: Incrementally-maintained contention index (LCoF only). Rebuilt
        #: whenever the engine flags a full resync; config.incremental=False
        #: ignores it and recomputes contention from scratch every round.
        self._contention = (
            ContentionTracker(config.contention_scope) if use_lcof else None
        )
        #: Coflows governed by the §4.3 SRTF approximation (some flows done).
        self._dynamics_mode: set[int] = set()
        #: Diagnostics: how often the starvation path admitted a coflow.
        self.starvation_admissions = 0

    # ---- lifecycle ------------------------------------------------------------

    def on_coflow_arrival(self, coflow: CoFlow, now: float) -> None:
        self.tracker.admit(coflow, now)

    def on_coflow_completion(self, coflow: CoFlow, now: float) -> None:
        self.tracker.remove(coflow)
        self._dynamics_mode.discard(coflow.coflow_id)

    def on_flow_completion(self, flow: Flow, coflow: CoFlow, now: float) -> None:
        if not self.config.enable_dynamics_promotion:
            return
        self._dynamics_mode.add(coflow.coflow_id)
        if self._apply_promotion(coflow, now) and self._contention is not None:
            # Queue-scoped contention counts depend on queue membership;
            # dirty the sharers now so the next incremental round recounts.
            self._contention.note_queue_change(coflow.coflow_id)

    # ---- the scheduling round (Fig. 7) ------------------------------------------

    def schedule(self, state: ClusterState, now: float) -> Allocation:
        # Incremental rounds consume the engine's dirty set; full rounds
        # (first round, dynamics, or incremental=False) rebuild everything.
        incremental = self.config.incremental and not state.delta.full
        queue_moves = self._assign_queues(state, now, incremental)
        order = self._scheduling_order(state, now, incremental, queue_moves)

        ledger = self._round_ledger(state)
        allocation = Allocation()

        #: Flow-group compaction: per-port pending counts replace the
        #: per-flow recount in admission and D2 rate assignment whenever
        #: they exactly describe the schedulable set.
        use_counts = self.config.epochs

        paths = state.paths
        if paths is not None:
            # Path-aware round (multi-tier topology): all-or-none admission
            # and the D2 equal rate run over *link* counts, so a coflow is
            # admitted only when every core link on its flows' paths still
            # has capacity, and its rate saturates at the true bottleneck.
            missed_path: list[list[Flow]] = []
            for coflow in order:
                flows = state.schedulable_flows(coflow, now)
                if not flows:
                    continue
                counts = state.link_counts(coflow, now, flows=flows)
                if self._all_or_none_admissible(flows, ledger, counts):
                    rates = equal_rate_for_coflow_paths(
                        coflow, ledger, paths,
                        flows=flows, link_counts=counts,
                    )
                    if rates:
                        allocation.rates.update(rates)
                        allocation.scheduled_coflows.add(coflow.coflow_id)
                        continue
                missed_path.append(flows)
            if self.work_conservation and missed_path:
                # greedy_residual_rates fills through ledger.fill, which a
                # LinkLedger bounds by (and charges to) the whole path.
                self._work_conserve(missed_path, ledger, allocation)
            return allocation

        if state.rows_tracked():
            # Row path: admission, D2 rates and work conservation all walk
            # table rows (same arithmetic and order as the object path).
            table = state.table
            missed_rows: list[list[int]] = []
            for coflow in order:
                rows = state.schedulable_rows(coflow, now)
                if not rows:
                    continue
                counts = (state.port_counts(coflow, now)
                          if use_counts else None)
                if self._admissible_rows(rows, table, ledger, counts):
                    rates = equal_rate_for_coflow_rows(
                        rows, table, ledger, port_counts=counts
                    )
                    if rates:
                        allocation.rates.update(rates)
                        allocation.scheduled_coflows.add(coflow.coflow_id)
                        continue
                missed_rows.append(rows)
            if self.work_conservation and missed_rows:
                self._work_conserve_rows(
                    missed_rows, table, ledger, allocation
                )
            return allocation

        #: Missed coflows with their (already gathered) schedulable flows,
        #: so work conservation does not re-derive the same lists.
        missed: list[list[Flow]] = []
        for coflow in order:
            flows = state.schedulable_flows(coflow, now)
            if not flows:
                continue
            counts = state.port_counts(coflow, now) if use_counts else None
            if self._all_or_none_admissible(flows, ledger, counts):
                rates = equal_rate_for_coflow(
                    coflow, ledger, flows=flows, port_counts=counts
                )
                if rates:
                    allocation.rates.update(rates)
                    allocation.scheduled_coflows.add(coflow.coflow_id)
                    continue
            missed.append(flows)

        if self.work_conservation and missed:
            self._work_conserve(missed, ledger, allocation)
        return allocation

    def next_wakeup(self, state: ClusterState, allocation: Allocation,
                    now: float) -> float | None:
        """Queue-threshold crossings and starvation-deadline expiries."""
        if self.config.incremental:
            # Only coflows that received rate this round can cross a
            # threshold before the next event; everyone else sits still
            # (zero rate on every flow ⇒ infinite transition time).
            candidates = [
                state.coflow(cid)
                for cid in (allocation.scheduled_coflows
                            | allocation.work_conserved_coflows)
            ]
        else:
            candidates = state.active_coflows
        best = math.inf
        for coflow in candidates:
            dt = self.tracker.next_transition_time(
                coflow, allocation.rates,
                pending_rows=state.pending_rows(coflow),
            )
            if dt < math.inf:
                best = min(best, now + max(dt, 0.0))
        if self.config.deadline_factor is not None:
            best = min(best, self.tracker.next_deadline_after(now))
        if not math.isfinite(best) or best <= now:
            # A zero transition gap means refresh already happens on the
            # next schedule; nudge forward to avoid a same-instant livelock.
            if best <= now and math.isfinite(best):
                return now + 1e-9
            return None
        return best

    # ---- pieces ------------------------------------------------------------------

    def _assign_queues(self, state: ClusterState, now: float,
                       incremental: bool) -> set[int]:
        """AssignQueue (Fig. 7 line 15): demotions plus §4.3 promotions.

        Returns the ids of coflows whose queue changed this round. In
        incremental mode only coflows whose progress metric can have moved
        (arrived, progressed, or lost a flow since the last round) are
        revisited — for everyone else the demotion-only rule guarantees the
        target queue is unchanged, so skipping them is exact.
        """
        moved: set[int] = set()
        if incremental:
            delta = state.delta
            dirty = delta.arrived | delta.progressed | delta.flow_completed
            # Walk in active order, not set order: deadline assignment
            # depends on queue populations at placement time, so the visit
            # order must match the full-recompute path exactly.
            coflows = [c for c in state.active_coflows
                       if c.coflow_id in dirty]
        else:
            coflows = state.active_coflows
        for coflow in coflows:
            if coflow.coflow_id in self._dynamics_mode:
                if self._apply_promotion(coflow, now):
                    moved.add(coflow.coflow_id)
            elif self.tracker.refresh(coflow, now):
                moved.add(coflow.coflow_id)
        return moved

    def _apply_promotion(self, coflow: CoFlow, now: float) -> bool:
        target = promotion_queue(coflow, self.config.queues,
                                 estimator=self.length_estimator)
        if target is not None:
            return self.tracker.force_queue(coflow, target, now)
        return False

    def _scheduling_order(self, state: ClusterState, now: float,
                          incremental: bool,
                          queue_moves: set[int]) -> list[CoFlow]:
        """Starved coflows first, then queues top-down, LCoF within each."""
        starving: list[CoFlow] = []
        per_queue: dict[int, list[CoFlow]] = {}
        for coflow in state.active_coflows:
            if (self.config.deadline_factor is not None
                    and self.tracker.starving(coflow, now)):
                starving.append(coflow)
            else:
                per_queue.setdefault(
                    self.tracker.queue_of(coflow), []
                ).append(coflow)

        starving.sort(key=lambda c: (self.tracker.deadline_of(c), c.coflow_id))
        self.starvation_admissions += len(starving)

        order = starving
        contention = None
        if self.use_lcof:
            contention = self._contention_counts(state, incremental,
                                                 queue_moves)
        for queue in sorted(per_queue):
            members = per_queue[queue]
            if self.use_lcof:
                assert contention is not None
                # Decorate-and-sort without a key lambda: coflow ids are
                # unique, so the trailing object is never compared and the
                # (contention, arrival, id) tie-break is unchanged.
                decorated = [
                    (contention[c.coflow_id], c.arrival_time, c.coflow_id, c)
                    for c in members
                ]
                decorated.sort()
                order.extend([t[3] for t in decorated])
            else:  # FIFO within the queue
                members.sort(key=lambda c: (c.arrival_time, c.coflow_id))
                order.extend(members)
        return order

    def _contention_counts(self, state: ClusterState, incremental: bool,
                           queue_moves: set[int]) -> dict[int, int]:
        """Current LCoF contention map ``k_c`` for every active coflow.

        ``config.incremental=False`` keeps the original full recompute;
        otherwise the :class:`ContentionTracker` is patched from the
        engine's delta (rebuilt from scratch on full-resync rounds). The
        ``validate_incremental`` debug mode runs both and asserts equality.
        """
        queue_of: dict[int, int] | None = None
        if self.config.contention_scope == "queue":
            queue_of = {
                c.coflow_id: self.tracker.queue_of(c)
                for c in state.active_coflows
            }
        if not self.config.incremental:
            return contention_counts(
                state.active_coflows,
                scope=self.config.contention_scope,
                queue_of=queue_of,
            )

        tracker = self._contention
        assert tracker is not None  # use_lcof guards construction
        if not incremental:
            tracker.rebuild(state.active_coflows)
        else:
            # Delta-driven rounds run against live engine notifications, so
            # the compaction caches are exact and hand the tracker each
            # dirty coflow's port footprint without a flow rescan.
            delta = state.delta
            for cid in delta.completed:
                tracker.remove(cid)
            for cid in delta.arrived:
                coflow = state.coflow(cid)
                tracker.add(
                    coflow, ports=set(state.pending_port_counts(coflow))
                )
            for cid in delta.flow_completed - delta.arrived:
                coflow = state.coflow(cid)
                tracker.refresh_ports(
                    coflow, ports=set(state.pending_port_counts(coflow))
                )
            for cid in queue_moves:
                tracker.note_queue_change(cid)
        if self.config.validate_incremental:
            tracker.assert_matches_full(state.active_coflows, queue_of)
        return tracker.counts(queue_of)

    def _all_or_none_admissible(self, flows: list[Flow], ledger,
                                port_counts: dict[int, int] | None = None,
                                ) -> bool:
        """True if every port the flows touch has ≥ min_rate residual.

        ``port_counts`` (the cluster state's compaction cache) supplies the
        port set directly when it exactly covers ``flows``, skipping the
        per-flow set build; the admission predicate is a conjunction over
        the same ports either way.
        """
        min_rate = self.config.min_rate
        residual = ledger.residual
        if port_counts is not None:
            return all(residual(p) >= min_rate for p in port_counts)
        ports: set[int] = set()
        for f in flows:
            ports.add(f.src)
            ports.add(f.dst)
        return all(residual(p) >= min_rate for p in ports)

    def _admissible_rows(self, rows: list[int], table, ledger,
                         port_counts: dict[int, int] | None = None) -> bool:
        """Row-path twin of :meth:`_all_or_none_admissible` (same ports,
        same conjunction). ``residual(p) >= min_rate`` is evaluated as
        ``capacity - used >= min_rate`` over the ledger's dense lists —
        ``min_rate`` is validated positive, so the max-with-zero clamp
        inside ``residual`` cannot change the comparison."""
        min_rate = self.config.min_rate
        lcap = ledger.capacity_list
        lused = ledger.used_list
        if port_counts is not None:
            for p in port_counts:
                if lcap[p] - lused[p] < min_rate:
                    return False
            return True
        src_col = table.src
        dst_col = table.dst
        ports: set[int] = set()
        for i in rows:
            ports.add(src_col[i])
            ports.add(dst_col[i])
        for p in ports:
            if lcap[p] - lused[p] < min_rate:
                return False
        return True

    def _work_conserve(self, missed: list[list[Flow]],
                       ledger, allocation: Allocation) -> None:
        """Fig. 7 lines 18–23: fill leftover capacity in scheduling order."""
        wc_flows: list[Flow] = []
        for flows in missed:
            wc_flows.extend(flows)
        rates = greedy_residual_rates(wc_flows, ledger)
        if rates:
            allocation.rates.update(rates)
            granted = {f.coflow_id for f in wc_flows if f.flow_id in rates}
            allocation.work_conserved_coflows |= granted

    def _work_conserve_rows(self, missed: list[list[int]], table,
                            ledger, allocation: Allocation) -> None:
        """Row-path twin of :meth:`_work_conserve` (same fill walk)."""
        wc_rows: list[int] = []
        for rows in missed:
            wc_rows.extend(rows)
        rates = greedy_residual_rates_rows(wc_rows, table, ledger)
        if rates:
            allocation.rates.update(rates)
            fid = table.flow_id
            cid = table.coflow_id
            granted = {cid[i] for i in wc_rows if fid[i] in rates}
            allocation.work_conserved_coflows |= granted
