"""CoFlow contention — the quantity behind Least-Contention-First (§3, §4.2).

The contention ``k_c`` of a coflow ``c`` is the number of *other* coflows
that would be blocked on ``c``'s ports if ``c`` were scheduled there: i.e.
the number of distinct other coflows with at least one unfinished flow on a
port that ``c`` also uses. Scheduling ``c`` for duration ``t`` increases the
total waiting time of the rest of the system by roughly ``t * k_c``, which
is what LCoF (and the offline LWTF policy of Fig. 3) minimises.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from ..simulator.flows import CoFlow


def ports_in_use(coflow: CoFlow) -> set[int]:
    """Ports touched by the coflow's *unfinished* flows.

    Finished flows have released their ports and no longer contend.
    """
    ports: set[int] = set()
    for f in coflow.flows:
        if not f.finished:
            ports.add(f.src)
            ports.add(f.dst)
    return ports


def contention_counts(
    coflows: Iterable[CoFlow],
    *,
    scope: str = "all",
    queue_of: Mapping[int, int] | None = None,
) -> dict[int, int]:
    """Compute ``k_c`` for every coflow in one pass.

    ``scope="all"`` (the default, used by Saath) counts contention against
    every active coflow sharing a port. ``scope="queue"`` restricts the
    count to coflows in the same priority queue, in which case ``queue_of``
    (coflow_id → queue index) must be provided.

    Runs in ``O(total port occupancies)``: build the port → coflow-set
    index, then union per coflow.
    """
    coflows = list(coflows)
    if scope not in ("all", "queue"):
        raise ValueError(f"unknown contention scope {scope!r}")
    if scope == "queue" and queue_of is None:
        raise ValueError("scope='queue' requires queue_of mapping")

    occupants: dict[int, set[int]] = defaultdict(set)
    my_ports: dict[int, set[int]] = {}
    for c in coflows:
        ports = ports_in_use(c)
        my_ports[c.coflow_id] = ports
        for p in ports:
            occupants[p].add(c.coflow_id)

    counts: dict[int, int] = {}
    for c in coflows:
        blocked: set[int] = set()
        for p in my_ports[c.coflow_id]:
            blocked |= occupants[p]
        blocked.discard(c.coflow_id)
        if scope == "queue":
            assert queue_of is not None
            mine = queue_of.get(c.coflow_id)
            blocked = {b for b in blocked if queue_of.get(b) == mine}
        counts[c.coflow_id] = len(blocked)
    return counts


def waiting_time_increase(
    coflow: CoFlow, contention: Mapping[int, int], port_rate: float
) -> float:
    """The LWTF key ``t_c * k_c`` (§2.4): clairvoyant remaining duration at
    the bottleneck port times the number of coflows it would block."""
    t_c = coflow.bottleneck_remaining_bytes() / port_rate
    return t_c * contention.get(coflow.coflow_id, 0)
