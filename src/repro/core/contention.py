"""CoFlow contention — the quantity behind Least-Contention-First (§3, §4.2).

The contention ``k_c`` of a coflow ``c`` is the number of *other* coflows
that would be blocked on ``c``'s ports if ``c`` were scheduled there: i.e.
the number of distinct other coflows with at least one unfinished flow on a
port that ``c`` also uses. Scheduling ``c`` for duration ``t`` increases the
total waiting time of the rest of the system by roughly ``t * k_c``, which
is what LCoF (and the offline LWTF policy of Fig. 3) minimises.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from ..simulator.flows import CoFlow


def ports_in_use(coflow: CoFlow) -> set[int]:
    """Ports touched by the coflow's *unfinished* flows.

    Finished flows have released their ports and no longer contend.
    """
    ports: set[int] = set()
    rows = coflow._rows
    if rows is not None:
        # Row path: table-tracked coflows read the port columns directly.
        tbl = coflow._table
        ft = tbl.finish_time
        src = tbl.src
        dst = tbl.dst
        for i in rows:
            if ft[i] is None:
                ports.add(src[i])
                ports.add(dst[i])
        return ports
    for f in coflow.flows:
        if not f.finished:
            ports.add(f.src)
            ports.add(f.dst)
    return ports


def contention_counts(
    coflows: Iterable[CoFlow],
    *,
    scope: str = "all",
    queue_of: Mapping[int, int] | None = None,
) -> dict[int, int]:
    """Compute ``k_c`` for every coflow in one pass.

    ``scope="all"`` (the default, used by Saath) counts contention against
    every active coflow sharing a port. ``scope="queue"`` restricts the
    count to coflows in the same priority queue, in which case ``queue_of``
    (coflow_id → queue index) must be provided.

    Runs in ``O(total port occupancies)``: build the port → coflow-set
    index, then union per coflow.
    """
    coflows = list(coflows)
    if scope not in ("all", "queue"):
        raise ValueError(f"unknown contention scope {scope!r}")
    if scope == "queue" and queue_of is None:
        raise ValueError("scope='queue' requires queue_of mapping")

    occupants: dict[int, set[int]] = defaultdict(set)
    my_ports: dict[int, set[int]] = {}
    for c in coflows:
        ports = ports_in_use(c)
        my_ports[c.coflow_id] = ports
        for p in ports:
            occupants[p].add(c.coflow_id)

    counts: dict[int, int] = {}
    for c in coflows:
        blocked: set[int] = set()
        for p in my_ports[c.coflow_id]:
            blocked |= occupants[p]
        blocked.discard(c.coflow_id)
        if scope == "queue":
            assert queue_of is not None
            mine = queue_of.get(c.coflow_id)
            blocked = {b for b in blocked if queue_of.get(b) == mine}
        counts[c.coflow_id] = len(blocked)
    return counts


class ContentionTracker:
    """Incrementally-maintained contention counts ``k_c``.

    Equivalent to calling :func:`contention_counts` every round, but driven
    by the engine's :class:`~repro.simulator.state.SchedulingDelta`: the
    port → occupants index is patched for arrived / completed / shrunk
    coflows, and only coflows whose count can actually have changed (the
    coflow itself plus the occupants of every port whose membership
    changed) are recounted. In steady state one flow completion dirties a
    handful of coflows instead of the whole active set.

    With ``scope="queue"`` the owner must report queue moves through
    :meth:`note_queue_change` (a queue move changes which sharers count)
    and pass the current ``queue_of`` mapping to :meth:`counts`.
    """

    def __init__(self, scope: str = "all"):
        if scope not in ("all", "queue"):
            raise ValueError(f"unknown contention scope {scope!r}")
        self.scope = scope
        #: port -> ids of coflows with an unfinished flow on the port.
        self._occupants: dict[int, set[int]] = {}
        #: coflow_id -> ports currently occupied.
        self._ports: dict[int, set[int]] = {}
        self._coflows: dict[int, CoFlow] = {}
        self._counts: dict[int, int] = {}
        #: Coflow ids whose cached count may be stale.
        self._dirty: set[int] = set()

    # ---- maintenance ------------------------------------------------------

    def rebuild(self, coflows: Iterable[CoFlow]) -> None:
        """Re-index from scratch (first round, or after a dynamics event)."""
        self._occupants.clear()
        self._ports.clear()
        self._coflows.clear()
        self._counts.clear()
        self._dirty.clear()
        for c in coflows:
            self.add(c)

    def add(self, coflow: CoFlow, *, ports: set[int] | None = None) -> None:
        """Index a newly-active coflow.

        ``ports`` optionally supplies the coflow's unfinished-flow port set
        (the cluster state's flow-group compaction cache) so the tracker
        needn't rescan every flow; it must equal ``ports_in_use(coflow)``.
        """
        if ports is None:
            ports = ports_in_use(coflow)
        cid = coflow.coflow_id
        self._coflows[cid] = coflow
        self._ports[cid] = ports
        occupants = self._occupants
        dirty = self._dirty
        for p in ports:
            members = occupants.get(p)
            if members is None:
                occupants[p] = {cid}
            else:
                dirty |= members
                members.add(cid)
        dirty.add(cid)

    def remove(self, coflow_id: int) -> None:
        """Drop a completed coflow; no-op if it was never indexed."""
        ports = self._ports.pop(coflow_id, None)
        if ports is None:
            return
        self._coflows.pop(coflow_id, None)
        self._counts.pop(coflow_id, None)
        self._dirty.discard(coflow_id)
        occupants = self._occupants
        for p in ports:
            members = occupants.get(p)
            if members is None:
                continue
            members.discard(coflow_id)
            if members:
                self._dirty |= members
            else:
                del occupants[p]

    def refresh_ports(self, coflow: CoFlow, *,
                      ports: set[int] | None = None) -> None:
        """Re-derive a coflow's port footprint after some flows finished.

        ``ports`` optionally supplies the new footprint from the cluster
        state's compaction cache (see :meth:`add`).
        """
        cid = coflow.coflow_id
        old = self._ports.get(cid)
        if old is None:
            self.add(coflow, ports=ports)
            return
        new = ports_in_use(coflow) if ports is None else ports
        if new == old:
            return
        occupants = self._occupants
        dirty = self._dirty
        for p in old - new:
            members = occupants.get(p)
            if members is None:
                continue
            members.discard(cid)
            if members:
                dirty |= members
            else:
                del occupants[p]
        for p in new - old:
            members = occupants.get(p)
            if members is None:
                occupants[p] = {cid}
            else:
                dirty |= members
                members.add(cid)
        self._ports[cid] = new
        dirty.add(cid)

    def note_queue_change(self, coflow_id: int) -> None:
        """A coflow moved queue: its sharers' queue-scoped counts change."""
        if self.scope != "queue":
            return
        ports = self._ports.get(coflow_id)
        if ports is None:
            return
        occupants = self._occupants
        for p in ports:
            members = occupants.get(p)
            if members:
                self._dirty |= members
        self._dirty.add(coflow_id)

    # ---- queries ----------------------------------------------------------

    def counts(self, queue_of: Mapping[int, int] | None = None
               ) -> dict[int, int]:
        """Current ``coflow_id -> k_c`` map, recounting only dirty coflows."""
        if self.scope == "queue" and queue_of is None:
            raise ValueError("scope='queue' requires queue_of mapping")
        if self._dirty:
            occupants = self._occupants
            counts = self._counts
            for cid in self._dirty:
                ports = self._ports.get(cid)
                if ports is None:
                    continue
                blocked: set[int] = set()
                for p in ports:
                    members = occupants.get(p)
                    if members:
                        blocked |= members
                blocked.discard(cid)
                if self.scope == "queue":
                    assert queue_of is not None
                    mine = queue_of.get(cid)
                    blocked = {b for b in blocked if queue_of.get(b) == mine}
                counts[cid] = len(blocked)
            self._dirty.clear()
        return self._counts

    def assert_matches_full(
        self, coflows: Iterable[CoFlow],
        queue_of: Mapping[int, int] | None = None,
    ) -> None:
        """Equivalence assertion: incremental counts == full recompute.

        Used by the ``validate_incremental`` debug mode and the equivalence
        tests; raises ``AssertionError`` with the differing entries.
        """
        full = contention_counts(
            coflows, scope=self.scope, queue_of=queue_of
        )
        mine = self.counts(queue_of)
        assert mine == full, (
            "incremental contention diverged from full recompute: "
            f"{ {k: (mine.get(k), full.get(k)) for k in set(mine) | set(full) if mine.get(k) != full.get(k)} }"
        )


def waiting_time_increase(
    coflow: CoFlow, contention: Mapping[int, int], port_rate: float
) -> float:
    """The LWTF key ``t_c * k_c`` (§2.4): clairvoyant remaining duration at
    the bottleneck port times the number of coflows it would block."""
    t_c = coflow.bottleneck_remaining_bytes() / port_rate
    return t_c * contention.get(coflow.coflow_id, 0)
