"""Scenarios: the unified external-event spine feeding a simulation.

A :class:`Scenario` is *everything that happens to the cluster from the
outside*, expressed as one lazily-pulled, time-ordered stream of
:class:`~repro.simulator.events.Event`\\ s: coflow arrivals, cluster
dynamics (:class:`~repro.simulator.dynamics.FlowRestart`,
:class:`~repro.simulator.dynamics.PortDegradation`, …) and anything else
implementing the engine's ``DynamicsAction`` protocol. DAG releases and
data-availability wakeups are *derived* events — the session generates them
itself — so a scenario never needs to enumerate them.

The session (:class:`~repro.simulator.session.SimulationSession`) pulls the
stream one event ahead of simulated time, which is what makes open-loop
workloads scale: a million-coflow Poisson scenario backed by a generator
holds only the *active* flows in memory, because each coflow object is
created when its arrival is pulled and dropped when it completes (pair with
the session's ``sink=`` to avoid retaining finished coflows).

Two concrete shapes:

* :class:`ListScenario` — a materialised, pre-sorted event list (what
  :meth:`Scenario.from_coflows` builds). Cheap to replay and to resume
  mid-stream, so snapshots of sessions driving one are always restorable.
* :class:`StreamScenario` — wraps an iterator (or better, a zero-argument
  *factory* of iterators) of coflows/events/dynamics actions, merged with
  an optional pre-sorted dynamics list. Factory-backed streams are
  replayable: restoring a snapshot re-invokes the factory and skips the
  already-consumed prefix, which is exact for deterministic generators.

Ordering contract: events must be non-decreasing in time. Within one
instant, arrivals precede dynamics (the queue's
:class:`~repro.simulator.events.EventKind` tie-break), and events of the
same kind keep their submission order — exactly the order the pre-scenario
engine produced by pushing every arrival, then every dynamics action, into
the event queue up front. The equivalence suite pins batch vs streaming
byte-identity on this contract.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Iterable, Iterator

from ..errors import SimulationError
from .events import Event, EventKind
from .flows import CoFlow, clone_coflows


def validate_workload(coflows: list[CoFlow]) -> None:
    """Reject duplicate coflow/flow ids and unknown DAG dependencies.

    This is the up-front validation batch workloads have always had;
    streaming scenarios cannot enumerate the future, so they rely on the
    session's lazy per-arrival checks instead (duplicate coflow ids are
    caught on arrival; an unknown dependency surfaces as a stalled-
    simulation error once the stream ends).
    """
    seen_cf: set[int] = set()
    seen_fl: set[int] = set()
    for c in coflows:
        if c.coflow_id in seen_cf:
            raise SimulationError(f"duplicate coflow id {c.coflow_id}")
        seen_cf.add(c.coflow_id)
        for f in c.flows:
            if f.flow_id in seen_fl:
                raise SimulationError(f"duplicate flow id {f.flow_id}")
            seen_fl.add(f.flow_id)
    ids = seen_cf
    for c in coflows:
        for dep in c.depends_on:
            if dep not in ids:
                raise SimulationError(
                    f"coflow {c.coflow_id} depends on unknown coflow {dep}"
                )


def _as_event(item: Any) -> Event:
    """Coerce a stream element into an :class:`Event`.

    Accepts ready-made events, coflows (→ arrival at their
    ``arrival_time``) and dynamics actions (anything with ``time`` and
    ``apply``, → a dynamics event at ``action.time``).
    """
    if isinstance(item, Event):
        return item
    if isinstance(item, CoFlow):
        return Event(item.arrival_time, EventKind.COFLOW_ARRIVAL, item)
    if hasattr(item, "apply") and hasattr(item, "time"):
        return Event(item.time, EventKind.DYNAMICS, item)
    raise SimulationError(
        f"scenario stream yielded {item!r}; expected a CoFlow, an Event, "
        f"or a dynamics action with .time/.apply"
    )


class Scenario:
    """Base class: a time-ordered stream of external events.

    Subclasses implement :meth:`events`. ``total_coflows`` (when known)
    lets the session keep the classic count-based termination — it stops
    the instant the last coflow completes, exactly like ``run(coflows)``
    always has, instead of draining trailing no-op events.
    """

    #: True when :meth:`events` can be re-created from scratch, making
    #: sessions driving this scenario snapshottable.
    replayable: bool = False
    #: Number of coflow arrivals in the stream, if known up front.
    total_coflows: int | None = None

    def events(self) -> Iterator[Event]:
        """A fresh iterator over the scenario's events, in time order.

        Replayable scenarios must yield *freshly created* coflow objects on
        every invocation (generator factories naturally do; materialised
        scenarios clone): a simulation mutates the coflows it activates, so
        handing the same objects to a second consumer would replay corpses.
        """
        raise NotImplementedError

    def tail(self, consumed: int) -> "Scenario":
        """The scenario minus its first ``consumed`` events, as a scenario.

        This is the snapshot cursor: a session checkpoint stores
        ``scenario.tail(events_consumed_so_far)``, and restore simply
        drives the tail. The tail must be insulated from the donor
        session's future mutations — the default skips a fresh replay of
        the stream (factory-backed streams regenerate objects, so skipping
        is enough); :class:`ListScenario` overrides it to clone, because
        its event payloads are shared with the first consumer.
        ``total_coflows`` is preserved (it counts the *whole* scenario, and
        a restored session's finished-set already holds the prefix).
        """
        if not self.replayable:
            raise SimulationError(
                f"{type(self).__name__} is not replayable; a session "
                f"driving it cannot be snapshotted or restored"
            )
        return _StreamTail(self, consumed)

    # ---- builders ---------------------------------------------------------

    @staticmethod
    def from_coflows(
        coflows: Iterable[CoFlow],
        dynamics: Iterable[Any] = (),
        *,
        validate: bool = True,
    ) -> "ListScenario":
        """The classic batch workload as a scenario.

        Materialises ``coflows`` (and optional dynamics actions), validates
        them exactly as ``Simulator.run`` always did, and stable-sorts into
        spine order: time-ordered, arrivals before dynamics within an
        instant, submission order within ties.
        """
        submitted = list(coflows)
        if validate:
            validate_workload(submitted)
        events = [
            Event(c.arrival_time, EventKind.COFLOW_ARRIVAL, c)
            for c in submitted
        ]
        events.extend(
            Event(action.time, EventKind.DYNAMICS, action)
            for action in dynamics
        )
        for e in events:
            if e.time < 0:
                raise ValueError(f"event time must be >= 0, got {e.time}")
        events.sort(key=lambda e: (e.time, e.kind.value))
        return ListScenario(events, total_coflows=len(submitted))

    @staticmethod
    def from_stream(
        source: Iterable[Any] | Callable[[], Iterable[Any]],
        dynamics: Iterable[Any] = (),
        *,
        total_coflows: int | None = None,
    ) -> "StreamScenario":
        """A lazily-pulled scenario from an iterable (or iterator factory).

        ``source`` yields coflows (ordered by ``arrival_time``), events, or
        dynamics actions; ``dynamics`` is an optional separate time-sorted
        action list merged in on the fly. Pass a zero-argument callable
        (e.g. a generator *function*) instead of an iterator to make the
        scenario replayable — required for session snapshots.
        """
        return StreamScenario(
            source, dynamics=dynamics, total_coflows=total_coflows
        )


class ListScenario(Scenario):
    """A fully materialised scenario (already in spine order)."""

    replayable = True

    def __init__(self, events: list[Event],
                 total_coflows: int | None = None):
        self._events = events
        self._driven = False
        if total_coflows is None:
            total_coflows = sum(
                1 for e in events if e.kind is EventKind.COFLOW_ARRIVAL
            )
        self.total_coflows = total_coflows

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> Iterator[Event]:
        # The one direct consumer gets the original objects: the classic
        # run(coflows) contract is that the simulation mutates the very
        # coflows the caller submitted (clone_coflows exists for replays).
        # A second consumer would therefore replay mutated corpses, so it
        # is rejected up front.
        if self._driven:
            raise SimulationError(
                "this scenario's coflows were already driven by a session "
                "and carry its mutations; build a fresh Scenario (or use "
                "snapshot/restore) to replay the workload"
            )
        self._driven = True
        return iter(self._events)

    def tail(self, consumed: int) -> "Scenario":
        # Our payloads are shared with the session that is (or was)
        # consuming this scenario, and they are pristine only until that
        # session reaches them — so the tail must clone *now*, at
        # checkpoint time, not when a restore eventually replays it.
        return _FrozenTail(
            _pristine_copy(self._events[consumed:]), self.total_coflows
        )


class StreamScenario(Scenario):
    """A scenario backed by a lazy stream, optionally merged with dynamics.

    The stream is validated as it is pulled: events must be non-decreasing
    in time (an out-of-order stream raises
    :class:`~repro.errors.SimulationError` at the offending event, naming
    both instants).
    """

    def __init__(
        self,
        source: Iterable[Any] | Callable[[], Iterable[Any]],
        *,
        dynamics: Iterable[Any] = (),
        total_coflows: int | None = None,
    ):
        self._factory: Callable[[], Iterable[Any]] | None
        self._once: Iterable[Any] | None
        if callable(source):
            self._factory = source
            self._once = None
            self.replayable = True
        else:
            self._factory = None
            self._once = source
            self.replayable = False
        self._dynamics = sorted(
            (_as_event(a) for a in dynamics), key=lambda e: e.time
        )
        self.total_coflows = total_coflows

    def events(self) -> Iterator[Event]:
        if self._factory is not None:
            stream = iter(self._factory())
        else:
            if self._once is None:
                raise SimulationError(
                    "one-shot stream scenario already consumed"
                )
            stream, self._once = iter(self._once), None
        return self._merged(stream)

    def _merged(self, stream: Iterator[Any]) -> Iterator[Event]:
        """Merge the stream with the dynamics list, checking time order."""
        dyn = iter(self._dynamics)
        pending_dyn = next(dyn, None)
        last = -0.0
        for item in stream:
            event = _as_event(item)
            if event.time < last:
                raise SimulationError(
                    f"scenario stream out of order: event at t={event.time} "
                    f"after t={last}"
                )
            last = event.time
            while pending_dyn is not None and (
                (pending_dyn.time, pending_dyn.kind.value)
                < (event.time, event.kind.value)
            ):
                yield pending_dyn
                pending_dyn = next(dyn, None)
            yield event
        while pending_dyn is not None:
            yield pending_dyn
            pending_dyn = next(dyn, None)


def _pristine_copy(events: list[Event]) -> list[Event]:
    """Events with every arrival payload replaced by a pristine clone."""
    out = []
    for e in events:
        if e.kind is EventKind.COFLOW_ARRIVAL:
            out.append(Event(e.time, e.kind, clone_coflows([e.payload])[0]))
        else:
            out.append(e)
    return out


class _FrozenTail(Scenario):
    """A materialised scenario tail captured at checkpoint time.

    Holds pristine master copies of the remaining events; every
    :meth:`events` call hands out fresh clones, so one snapshot supports
    any number of independent restores.
    """

    replayable = True

    def __init__(self, pristine_events: list[Event],
                 total_coflows: int | None):
        self._events = pristine_events
        self.total_coflows = total_coflows

    def events(self) -> Iterator[Event]:
        for e in self._events:
            if e.kind is EventKind.COFLOW_ARRIVAL:
                yield Event(
                    e.time, e.kind, clone_coflows([e.payload])[0]
                )
            else:
                yield e

    def tail(self, consumed: int) -> "Scenario":
        # The masters are never handed out directly, so re-slicing them is
        # safe without another clone pass.
        return _FrozenTail(self._events[consumed:], self.total_coflows)


class _StreamTail(Scenario):
    """A replayable stream minus a consumed prefix (the snapshot cursor of
    factory-backed scenarios: the factory regenerates fresh objects on
    every replay, so skipping is exact and O(1) to capture)."""

    replayable = True

    def __init__(self, parent: Scenario, skip: int):
        self._parent = parent
        self._skip = skip
        self.total_coflows = parent.total_coflows

    def events(self) -> Iterator[Event]:
        it = self._parent.events()
        skipped = sum(1 for _ in islice(it, self._skip))
        if skipped < self._skip:
            raise SimulationError(
                f"scenario replay produced only {skipped} of the "
                f"{self._skip} already-consumed events; stream factories "
                f"must be deterministic for snapshots to be restorable"
            )
        return it

    def tail(self, consumed: int) -> "Scenario":
        return _StreamTail(self._parent, self._skip + consumed)
