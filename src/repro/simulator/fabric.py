"""Datacenter fabric model: a non-blocking big switch.

Following the paper's evaluation setup (§6): full bisection bandwidth is
assumed, so the network is abstracted as one big switch where congestion can
occur only at the sender (uplink) and receiver (downlink) ports. Each machine
``i`` contributes sender port ``SND(i)`` and receiver port ``RCV(i)``.

Port identifiers are plain integers in two disjoint ranges so that a coflow's
"ports" set (needed by all-or-none and contention) can be a flat set:
machine ``i``'s sender port is ``i`` and its receiver port is ``i + n``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..errors import CapacityViolationError, ConfigError

#: Slack factor when validating allocations against capacity, to absorb
#: floating-point accumulation across many flows.
_CAPACITY_TOLERANCE = 1.0 + 1e-9


@dataclass(frozen=True)
class Fabric:
    """A big-switch fabric with ``num_machines`` machines.

    Every port has the same capacity ``port_rate`` (bytes/second), matching
    the paper's homogeneous 1 Gbps setting; heterogeneous capacities are
    modelled with dynamics actions —
    :class:`repro.simulator.dynamics.PortDegradation` for host ports, or
    :class:`repro.simulator.dynamics.LinkDegradation` for any link of a
    multi-tier :class:`repro.simulator.topology.Topology` (which wraps a
    fabric with core links and their own capacities).
    """

    num_machines: int
    port_rate: float

    def __post_init__(self) -> None:
        if self.num_machines < 2:
            raise ConfigError(
                f"fabric needs at least 2 machines, got {self.num_machines}"
            )
        if self.port_rate <= 0:
            raise ConfigError(f"port_rate must be positive, got {self.port_rate}")

    # ---- port id scheme ----------------------------------------------------

    def sender_port(self, machine: int) -> int:
        """Sender (uplink) port id of ``machine``."""
        self._check_machine(machine)
        return machine

    def receiver_port(self, machine: int) -> int:
        """Receiver (downlink) port id of ``machine``."""
        self._check_machine(machine)
        return machine + self.num_machines

    def is_sender_port(self, port: int) -> bool:
        return 0 <= port < self.num_machines

    def is_receiver_port(self, port: int) -> bool:
        return self.num_machines <= port < 2 * self.num_machines

    def machine_of(self, port: int) -> int:
        """Machine owning ``port`` (either direction)."""
        if self.is_sender_port(port):
            return port
        if self.is_receiver_port(port):
            return port - self.num_machines
        raise ConfigError(f"port {port} out of range for {self}")

    @property
    def num_ports(self) -> int:
        """Total number of ports (senders + receivers)."""
        return 2 * self.num_machines

    def all_ports(self) -> range:
        return range(self.num_ports)

    def capacity(self, port: int) -> float:
        """Capacity of ``port`` in bytes/second."""
        if not 0 <= port < self.num_ports:
            raise ConfigError(f"port {port} out of range for {self}")
        return self.port_rate

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < self.num_machines:
            raise ConfigError(
                f"machine {machine} out of range [0, {self.num_machines})"
            )


class PortLedger:
    """Mutable residual-capacity tracker used while building an allocation.

    Schedulers repeatedly ask "how much is left at this port?" and then
    commit flow rates; the ledger centralises that arithmetic and raises
    :class:`CapacityViolationError` on over-commit, which turns subtle
    scheduler bugs into loud failures.

    The ledger records the set of ports touched since the last
    :meth:`reset`, so clearing it between scheduling rounds costs
    O(changed ports) rather than O(all ports) — the basis of the
    :meth:`~repro.simulator.state.ClusterState.acquire_ledger` reuse path.

    Port ids are dense (machine ``i`` owns sender port ``i`` and receiver
    port ``i + n``), so capacity and usage live in flat ``array('d')``
    buffers indexed by port id; the rate allocators index them directly via
    :attr:`capacity_list` / :attr:`used_list` in their fill loops, and the
    compiled kernels in :mod:`repro._fastcore` address the same buffers as
    contiguous C ``double`` arrays.
    """

    __slots__ = ("_fabric", "_capacity", "_used", "_touched", "_metrics")

    def __init__(self, fabric: Fabric,
                 capacity_override: dict[int, float] | None = None):
        self._fabric = fabric
        #: Optional observability registry counting allocation-primitive
        #: calls (set by the owning ClusterState; None = disabled).
        self._metrics = None
        self._capacity: array = array(
            "d", [fabric.capacity(p) for p in fabric.all_ports()]
        )
        if capacity_override:
            num_ports = fabric.num_ports
            for port, cap in capacity_override.items():
                if not 0 <= port < num_ports:
                    raise ConfigError(
                        f"capacity override for unknown link {port}: "
                        f"big-switch fabric has ports [0, {num_ports}) — "
                        f"core-link overrides need a multi-tier topology"
                    )
                if cap < 0:
                    raise ConfigError(
                        f"capacity override for port {port} must be >= 0"
                    )
                self._capacity[port] = cap
        self._used: array = array("d", bytes(8 * fabric.num_ports))
        #: Ports with a non-zero commitment since the last reset.
        self._touched: set[int] = set()

    @property
    def fabric(self) -> Fabric:
        return self._fabric

    @property
    def capacity_list(self) -> array:
        """Per-port capacity, indexed by port id (read-only by convention)."""
        return self._capacity

    @property
    def used_list(self) -> array:
        """Per-port usage, indexed by port id (read-only by convention)."""
        return self._used

    @property
    def touched_set(self) -> set[int]:
        """Ports committed since the last reset. Allocator fill loops that
        write :attr:`used_list` directly must add the ports they touch, or
        :meth:`reset` will miss them."""
        return self._touched

    def capacity(self, port: int) -> float:
        return self._capacity[port]

    def used(self, port: int) -> float:
        return self._used[port]

    def residual(self, port: int) -> float:
        """Unallocated capacity at ``port`` (never negative)."""
        return max(self._capacity[port] - self._used[port], 0.0)

    def has_capacity(self, port: int, min_rate: float) -> bool:
        """True if ``port`` still has at least ``min_rate`` bytes/s free."""
        return self.residual(port) >= min_rate

    def commit(self, src: int, dst: int, rate: float) -> None:
        """Reserve ``rate`` bytes/s on the sender and receiver of one flow."""
        if rate < 0:
            raise ConfigError(f"rate must be >= 0, got {rate}")
        if rate == 0:
            return
        if self._metrics is not None:
            self._metrics.inc("ledger.commit")
        used = self._used
        capacity = self._capacity
        touched = self._touched
        touched.add(src)
        touched.add(dst)
        # Unrolled src/dst update: this is the hottest ledger operation.
        cap = capacity[src]
        new_used = used[src] + rate
        if new_used > cap * _CAPACITY_TOLERANCE:
            raise CapacityViolationError(str(src), new_used, cap)
        used[src] = new_used if new_used < cap else cap
        cap = capacity[dst]
        new_used = used[dst] + rate
        if new_used > cap * _CAPACITY_TOLERANCE:
            raise CapacityViolationError(str(dst), new_used, cap)
        used[dst] = new_used if new_used < cap else cap

    def fill_capped(self, src: int, dst: int, cap: float) -> float:
        """Commit and return ``min(cap, residual(src), residual(dst))``.

        One fused call for the per-port pass of queue-share allocators
        (Aalo serves thousands of flows per round, so the residual/commit
        call pair is material). Commits nothing and returns 0.0 when the
        *receiver* is exhausted or ``cap <= 0``, and **-1.0** when the
        sender itself has no residual — the sentinel lets a caller walking
        one sender's flow list bail out without a second residual probe.
        Usage updates apply the same at-capacity clamp as :meth:`commit`,
        so the ledger state is bit-identical to
        ``commit(src, dst, min(...))``; over-commit is impossible by
        construction, so the violation check is skipped.
        """
        if self._metrics is not None:
            self._metrics.inc("ledger.fill_capped")
        used = self._used
        capacity = self._capacity
        cap_src = capacity[src]
        cap_dst = capacity[dst]
        rate = cap_src - used[src]
        if rate <= 0:
            return -1.0
        other = cap_dst - used[dst]
        if other < rate:
            rate = other
        if cap < rate:
            rate = cap
        if rate <= 0:
            return 0.0
        new_used = used[src] + rate
        used[src] = new_used if new_used < cap_src else cap_src
        new_used = used[dst] + rate
        used[dst] = new_used if new_used < cap_dst else cap_dst
        self._touched.add(src)
        self._touched.add(dst)
        return rate

    def fill(self, src: int, dst: int) -> float:
        """Commit and return ``min(residual(src), residual(dst))``.

        The greedy work-conservation primitive: grants whatever the tighter
        of the two ports still has. Returns 0.0 (committing nothing) when
        either port is exhausted. Cannot over-commit by construction, so it
        skips :meth:`commit`'s violation check.
        """
        if self._metrics is not None:
            self._metrics.inc("ledger.fill")
        used = self._used
        capacity = self._capacity
        rate = capacity[src] - used[src]
        rate_dst = capacity[dst] - used[dst]
        if rate_dst < rate:
            rate = rate_dst
        if rate <= 0:
            return 0.0
        used[src] += rate
        used[dst] += rate
        self._touched.add(src)
        self._touched.add(dst)
        return rate

    def reset(self) -> None:
        """Release every commitment in O(ports touched since last reset).

        Only ports named in a :meth:`commit` since the previous reset can
        have non-zero usage, so zeroing exactly those restores a pristine
        ledger without walking the whole fabric.
        """
        used = self._used
        for port in self._touched:
            used[port] = 0.0
        self._touched.clear()

    def snapshot_residuals(self) -> dict[int, float]:
        """Copy of per-port residual capacity (for diagnostics/tests)."""
        return {p: self.residual(p) for p in self._fabric.all_ports()}
